//! Web-farm consolidation: the paper's motivating workload (§1) — a
//! high-traffic web site colocated with batch VMs. Shows request
//! latency percentiles under every scheduling policy, including the
//! published comparators.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example webfarm_consolidation
//! ```

use aql_sched::baselines::{xen_credit, Microsliced, VSlicer, VTurbo};
use aql_sched::core::AqlSched;
use aql_sched::hv::workload::WorkloadMetrics;
use aql_sched::hv::{MachineSpec, SchedPolicy, SimulationBuilder, VmSpec};
use aql_sched::mem::CacheSpec;
use aql_sched::sim::time::SEC;
use aql_sched::workloads::{IoServer, IoServerCfg, MemWalk};

fn run(policy: Box<dyn SchedPolicy>) -> (String, f64, f64, f64) {
    let cache = CacheSpec::i7_3770();
    let machine = MachineSpec::custom("webfarm", 1, 4, cache);
    let mut b = SimulationBuilder::new(machine).seed(3).policy(policy);
    for i in 0..4 {
        let name = format!("web-{i}");
        b = b.vm(
            VmSpec::single(&name),
            Box::new(IoServer::new(
                &name,
                IoServerCfg::heterogeneous(150.0),
                30 + i,
            )),
        );
    }
    for i in 0..12 {
        let name = format!("batch-{i}");
        let wl = match i % 3 {
            0 => MemWalk::llcf(&name, &cache),
            1 => MemWalk::llco(&name, &cache),
            _ => MemWalk::lolcf(&name, &cache),
        };
        b = b.vm(VmSpec::single(&name), Box::new(wl));
    }
    let mut sim = b.build();
    sim.run_for(SEC);
    sim.reset_measurements();
    sim.run_for(6 * SEC);
    let report = sim.report();
    let policy_name = report.policy.clone();
    // Aggregate the web VMs' latency distribution.
    let mut mean = 0.0;
    let mut p95: f64 = 0.0;
    let mut p99: f64 = 0.0;
    let mut n = 0.0;
    for vm in &report.vms {
        if let WorkloadMetrics::Io { latency, .. } = &vm.metrics {
            mean += latency.mean_ns;
            p95 = p95.max(latency.p95_ns);
            p99 = p99.max(latency.p99_ns);
            n += 1.0;
        }
    }
    (policy_name, mean / n / 1e6, p95 / 1e6, p99 / 1e6)
}

fn main() {
    let webs = ["web-0", "web-1", "web-2", "web-3"];
    let policies: Vec<Box<dyn SchedPolicy>> = vec![
        Box::new(xen_credit()),
        Box::new(VSlicer::new(&webs)),
        Box::new(VTurbo::new(&webs)),
        Box::new(Microsliced::default()),
        Box::new(AqlSched::paper_defaults()),
    ];
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "policy", "mean (ms)", "p95 (ms)", "p99 (ms)"
    );
    println!("{}", "-".repeat(64));
    for p in policies {
        let (name, mean, p95, p99) = run(p);
        println!("{name:<24} {mean:>12.2} {p95:>12.2} {p99:>12.2}");
    }
    println!();
    println!("note: vSlicer/vTurbo need the web VMs tagged by hand;");
    println!("AQL_Sched finds them online via vTRS.");
}
