//! Web-farm consolidation: the paper's motivating workload (§1) — a
//! high-traffic web site colocated with batch VMs. Shows request
//! latency percentiles under every scheduling policy, including the
//! published comparators.
//!
//! The machine/VM population comes from the declarative scenario
//! catalog (`aql_sched::scenarios::catalog::WEBFARM`); the sweep
//! runner (`cargo run --release -p aql_experiments --bin sweep`) runs
//! the same entry inside the full scenario × policy matrix.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example webfarm_consolidation
//! ```

use aql_sched::hv::workload::WorkloadMetrics;
use aql_sched::scenarios::{catalog, policy_for, run, ScenarioSpec};

fn run_policy(spec: &ScenarioSpec, policy_name: &str) -> (String, f64, f64, f64) {
    let report = run(spec, policy_for(spec, policy_name).expect("known policy"));
    let policy_name = report.policy.clone();
    // Aggregate the web VMs' latency distribution.
    let mut mean = 0.0;
    let mut p95: f64 = 0.0;
    let mut p99: f64 = 0.0;
    let mut n = 0.0;
    for vm in &report.vms {
        if let WorkloadMetrics::Io { latency, .. } = &vm.metrics {
            mean += latency.mean_ns;
            p95 = p95.max(latency.p95_ns);
            p99 = p99.max(latency.p99_ns);
            n += 1.0;
        }
    }
    (policy_name, mean / n / 1e6, p95 / 1e6, p99 / 1e6)
}

fn main() {
    let spec = catalog::load("webfarm").expect("catalog entry");
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "policy", "mean (ms)", "p95 (ms)", "p99 (ms)"
    );
    println!("{}", "-".repeat(64));
    // vSlicer/vTurbo receive the IOInt VM names automatically — the
    // scenario layer stands in for the paper's manual tagging.
    for name in [
        "xen-credit",
        "vslicer",
        "vturbo",
        "microsliced",
        "aql-sched",
    ] {
        let (name, mean, p95, p99) = run_policy(&spec, name);
        println!("{name:<24} {mean:>12.2} {p95:>12.2} {p99:>12.2}");
    }
    println!();
    println!("note: vSlicer/vTurbo need the web VMs tagged by hand;");
    println!("AQL_Sched finds them online via vTRS.");
}
