//! Watch the vCPU Type Recognition System live: a workload that
//! changes its class every two seconds, with the recognised type and
//! cursor averages printed every monitoring window.
//!
//! The machine/VM population comes from the declarative scenario
//! catalog (`aql_sched::scenarios::catalog::VTRS_LIVE`); this example
//! builds it and steps through the recognition windows by hand.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vtrs_live
//! ```

use aql_sched::core::{AqlSched, AqlSchedConfig};
use aql_sched::scenarios::{build_sim, catalog};
use aql_sched::sim::time::MS;

fn main() {
    let spec = catalog::load("vtrs-live").expect("catalog entry");
    let mut sim = build_sim(&spec, Box::new(AqlSched::new(AqlSchedConfig::default())));

    println!(
        "{:>8}  {:>7} {:>8} {:>6} {:>6} {:>6}  recognised type",
        "time", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"
    );
    println!("{}", "-".repeat(66));
    // Step through monitoring windows and print the decision evolution.
    for step in 1..=50 {
        sim.run_for(120 * MS); // one full vTRS window (n = 4 periods)
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched");
        let vtrs = policy.vtrs().expect("running");
        let avg = vtrs.averages_of(0);
        println!(
            "{:>7.1}s  {:>7.1} {:>8.1} {:>6.1} {:>6.1} {:>6.1}  {}",
            (step as f64) * 0.12,
            avg.ioint,
            avg.conspin,
            avg.llcf,
            avg.lolcf,
            avg.llco,
            vtrs.type_of(0)
        );
    }
}
