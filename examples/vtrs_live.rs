//! Watch the vCPU Type Recognition System live: a workload that
//! changes its class every two seconds, with the recognised type and
//! cursor averages printed every monitoring window.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vtrs_live
//! ```

use aql_sched::core::{AqlSched, AqlSchedConfig};
use aql_sched::hv::{MachineSpec, SimulationBuilder, VmSpec};
use aql_sched::mem::{CacheSpec, MemProfile};
use aql_sched::sim::time::{MS, SEC};
use aql_sched::workloads::phased::Phase;
use aql_sched::workloads::PhasedMemWalk;

fn main() {
    let cache = CacheSpec::i7_3770();
    let machine = MachineSpec::custom("live", 1, 1, cache);
    let shape_shifter = PhasedMemWalk::new(
        "shape-shifter",
        vec![
            Phase {
                duration_ns: 2 * SEC,
                profile: MemProfile::lolcf(&cache),
            },
            Phase {
                duration_ns: 2 * SEC,
                profile: MemProfile::llcf(&cache),
            },
            Phase {
                duration_ns: 2 * SEC,
                profile: MemProfile::llco(&cache),
            },
        ],
    );
    let mut sim = SimulationBuilder::new(machine)
        .policy(Box::new(AqlSched::new(AqlSchedConfig::default())))
        .vm(VmSpec::single("shape-shifter"), Box::new(shape_shifter))
        .build();

    println!(
        "{:>8}  {:>7} {:>8} {:>6} {:>6} {:>6}  recognised type",
        "time", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"
    );
    println!("{}", "-".repeat(66));
    // Step through monitoring windows and print the decision evolution.
    for step in 1..=50 {
        sim.run_for(120 * MS); // one full vTRS window (n = 4 periods)
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched");
        let vtrs = policy.vtrs().expect("running");
        let avg = vtrs.averages_of(0);
        println!(
            "{:>7.1}s  {:>7.1} {:>8.1} {:>6.1} {:>6.1} {:>6.1}  {}",
            (step as f64) * 0.12,
            avg.ioint,
            avg.conspin,
            avg.llcf,
            avg.lolcf,
            avg.llco,
            vtrs.type_of(0)
        );
    }
}
