//! A PARSEC batch night: parallel spin-synchronised jobs from the
//! application catalog colocated with cache trashers on a 2-socket
//! host. Shows how AQL_Sched clusters the vCPUs and what it buys.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parsec_batch
//! ```

use aql_sched::baselines::xen_credit;
use aql_sched::core::AqlSched;
use aql_sched::hv::workload::WorkloadMetrics;
use aql_sched::hv::{MachineSpec, RunReport, SchedPolicy, SimulationBuilder, VmSpec};
use aql_sched::mem::CacheSpec;
use aql_sched::sim::time::SEC;
use aql_sched::workloads::{build_app_vm, MemWalk};

const JOBS: [&str; 2] = ["fluidanimate", "streamcluster"];

fn build(policy: Box<dyn SchedPolicy>) -> aql_sched::hv::Simulation {
    let cache = CacheSpec::i7_3770();
    let machine = MachineSpec::custom("batch", 2, 4, cache);
    let mut b = SimulationBuilder::new(machine).seed(8).policy(policy);
    for (i, job) in JOBS.iter().enumerate() {
        let (mut spec, wl) = build_app_vm(job, &cache, 40 + i as u64).expect("catalog");
        spec.weight = 256 * spec.vcpus as u32;
        b = b.vm(spec, wl);
    }
    for i in 0..16 {
        let name = format!("tenant-{i}");
        let wl = match i % 2 {
            0 => MemWalk::llcf(&name, &cache),
            _ => MemWalk::llco(&name, &cache),
        };
        b = b.vm(VmSpec::single(&name), Box::new(wl));
    }
    let mut sim = b.build();
    sim.run_for(SEC);
    sim.reset_measurements();
    sim.run_for(6 * SEC);
    sim
}

fn job_items(report: &RunReport, name: &str) -> u64 {
    let WorkloadMetrics::Spin { work_items, .. } = report.vm_by_name(name).unwrap().metrics else {
        panic!("expected Spin metrics");
    };
    work_items
}

fn main() {
    println!("running under native Xen Credit...");
    let xen = build(Box::new(xen_credit())).report();
    println!("running under AQL_Sched...");
    let aql_sim = build(Box::new(AqlSched::paper_defaults()));
    let aql = aql_sim.report();

    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "job", "xen items", "aql items", "gain"
    );
    println!("{}", "-".repeat(56));
    for job in JOBS {
        let x = job_items(&xen, job);
        let a = job_items(&aql, job);
        println!("{job:<16} {x:>14} {a:>14} {:>7.2}x", a as f64 / x as f64);
    }

    // Show what AQL decided.
    if let Some(policy) = aql_sim.policy().as_any().downcast_ref::<AqlSched>() {
        if let Some(plan) = policy.last_plan() {
            println!();
            println!("clusters AQL settled on:");
            for c in &plan.clusters {
                println!(
                    "  {:<10} {} quantum={} vcpus={} pcpus={}",
                    c.label,
                    c.socket,
                    aql_sched::sim::time::fmt_dur(c.quantum_ns),
                    c.vcpus.len(),
                    c.pcpus.len()
                );
            }
        }
        println!("reclusterings: {}", policy.reclusterings());
    }
}
