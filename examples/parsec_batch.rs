//! A PARSEC batch night: parallel spin-synchronised jobs from the
//! application catalog colocated with cache trashers on a 2-socket
//! host. Shows how AQL_Sched clusters the vCPUs and what it buys.
//!
//! The machine/VM population comes from the declarative scenario
//! catalog (`aql_sched::scenarios::catalog::PARSEC_BATCH`); this
//! example only runs it and inspects the resulting cluster plan.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parsec_batch
//! ```

use aql_sched::baselines::xen_credit;
use aql_sched::core::AqlSched;
use aql_sched::hv::workload::WorkloadMetrics;
use aql_sched::hv::{RunReport, SchedPolicy};
use aql_sched::scenarios::{build_sim, catalog, ScenarioSpec};

const JOBS: [&str; 2] = ["fluidanimate", "streamcluster"];

fn run_sim(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>) -> aql_sched::hv::Simulation {
    let mut sim = build_sim(spec, policy);
    // The cluster plan is inspected afterwards, so keep the simulation
    // and let the caller pull reports off it.
    let _ = sim.run_measured(spec.warmup_ns, spec.measure_ns);
    sim
}

fn job_items(report: &RunReport, name: &str) -> u64 {
    let WorkloadMetrics::Spin { work_items, .. } = report.vm_by_name(name).unwrap().metrics else {
        panic!("expected Spin metrics");
    };
    work_items
}

fn main() {
    let spec = catalog::load("parsec-batch").expect("catalog entry");
    println!("running under native Xen Credit...");
    let xen = run_sim(&spec, Box::new(xen_credit())).report();
    println!("running under AQL_Sched...");
    let aql_sim = run_sim(&spec, Box::new(AqlSched::paper_defaults()));
    let aql = aql_sim.report();

    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "job", "xen items", "aql items", "gain"
    );
    println!("{}", "-".repeat(56));
    for job in JOBS {
        let x = job_items(&xen, job);
        let a = job_items(&aql, job);
        println!("{job:<16} {x:>14} {a:>14} {:>7.2}x", a as f64 / x as f64);
    }

    // Show what AQL decided.
    if let Some(policy) = aql_sim.policy().as_any().downcast_ref::<AqlSched>() {
        if let Some(plan) = policy.last_plan() {
            println!();
            println!("clusters AQL settled on:");
            for c in &plan.clusters {
                println!(
                    "  {:<10} {} quantum={} vcpus={} pcpus={}",
                    c.label,
                    c.socket,
                    aql_sched::sim::time::fmt_dur(c.quantum_ns),
                    c.vcpus.len(),
                    c.pcpus.len()
                );
            }
        }
        println!("reclusterings: {}", policy.reclusterings());
    }
}
