//! Quickstart: one VM of each application type on a consolidated
//! 4-core host, compared under native Xen Credit (fixed 30 ms quantum)
//! and under AQL_Sched (adaptive per-type quanta).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aql_sched::baselines::xen_credit;
use aql_sched::core::AqlSched;
use aql_sched::hv::workload::WorkloadMetrics;
use aql_sched::hv::{MachineSpec, RunReport, SchedPolicy, SimulationBuilder, VmSpec};
use aql_sched::mem::CacheSpec;
use aql_sched::sim::time::SEC;
use aql_sched::workloads::{IoServer, IoServerCfg, MemWalk, SpinJob, SpinJobCfg};

/// Builds the demo machine: 16 vCPUs on 4 cores — the 4-to-1
/// consolidation the paper observes is typical in clouds.
fn run(policy: Box<dyn SchedPolicy>) -> RunReport {
    let cache = CacheSpec::i7_3770();
    let machine = MachineSpec::custom("quickstart", 1, 4, cache);
    let mut b = SimulationBuilder::new(machine).seed(1).policy(policy);
    // A latency-critical web server that also runs CGI scripts.
    for i in 0..4 {
        let name = format!("web-{i}");
        b = b.vm(
            VmSpec::single(&name),
            Box::new(IoServer::new(
                &name,
                IoServerCfg::heterogeneous(120.0),
                10 + i,
            )),
        );
    }
    // A parallel, spin-synchronised job (PARSEC-like).
    b = b.vm(
        VmSpec {
            weight: 1024,
            ..VmSpec::smp("parsec", 4)
        },
        Box::new(SpinJob::new("parsec", SpinJobCfg::kernbench(4), 20)),
    );
    // Cache-sensitive and cache-trashing batch work.
    for i in 0..4 {
        let name = format!("llcf-{i}");
        b = b.vm(
            VmSpec::single(&name),
            Box::new(MemWalk::llcf(&name, &cache)),
        );
    }
    for i in 0..2 {
        let name = format!("llco-{i}");
        b = b.vm(
            VmSpec::single(&name),
            Box::new(MemWalk::llco(&name, &cache)),
        );
    }
    for i in 0..2 {
        let name = format!("lolcf-{i}");
        b = b.vm(
            VmSpec::single(&name),
            Box::new(MemWalk::lolcf(&name, &cache)),
        );
    }
    let mut sim = b.build();
    sim.run_for(SEC); // warm-up
    sim.reset_measurements();
    sim.run_for(6 * SEC);
    sim.report()
}

fn main() {
    println!("running under native Xen Credit (30 ms quantum)...");
    let xen = run(Box::new(xen_credit()));
    println!("running under AQL_Sched (adaptive quanta)...");
    let aql = run(Box::new(AqlSched::paper_defaults()));

    println!();
    println!(
        "{:<10} {:>22} {:>22} {:>9}",
        "VM", "xen-credit", "aql-sched", "gain"
    );
    println!("{}", "-".repeat(68));
    for vm in &xen.vms {
        let a = aql.vm_by_name(&vm.name).expect("same population");
        let (xv, av, unit) = match (&vm.metrics, &a.metrics) {
            (WorkloadMetrics::Io { latency: lx, .. }, WorkloadMetrics::Io { latency: la, .. }) => {
                (lx.mean_ns / 1e6, la.mean_ns / 1e6, "ms latency")
            }
            (
                WorkloadMetrics::Spin { work_items: ix, .. },
                WorkloadMetrics::Spin { work_items: ia, .. },
            ) => (*ix as f64, *ia as f64, "items"),
            (
                WorkloadMetrics::Mem { instructions: nx },
                WorkloadMetrics::Mem { instructions: na },
            ) => (*nx / 1e9, *na / 1e9, "G instr"),
            _ => continue,
        };
        // For latency lower is better; for throughput higher is better.
        let gain = if unit == "ms latency" {
            xv / av
        } else {
            av / xv
        };
        println!(
            "{:<10} {:>15.2} {:<6} {:>15.2} {:<6} {:>8.2}x",
            vm.name, xv, unit, av, unit, gain
        );
    }
    println!();
    println!(
        "fairness (Jain): xen={:.3} aql={:.3}; utilisation: xen={:.3} aql={:.3}",
        xen.jain_fairness(),
        aql.jain_fairness(),
        xen.utilisation(),
        aql.utilisation()
    );
}
