//! Quickstart: one VM of each application type on a consolidated
//! 4-core host, compared under native Xen Credit (fixed 30 ms quantum)
//! and under AQL_Sched (adaptive per-type quanta).
//!
//! The machine/VM population comes from the declarative scenario
//! catalog (`aql_sched::scenarios::catalog::QUICKSTART`); this example
//! only runs it and formats the comparison.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aql_sched::baselines::xen_credit;
use aql_sched::core::AqlSched;
use aql_sched::hv::workload::WorkloadMetrics;
use aql_sched::scenarios::catalog;

fn main() {
    let spec = catalog::load("quickstart").expect("catalog entry");
    println!("running under native Xen Credit (30 ms quantum)...");
    let xen = aql_sched::scenarios::run(&spec, Box::new(xen_credit()));
    println!("running under AQL_Sched (adaptive quanta)...");
    let aql = aql_sched::scenarios::run(&spec, Box::new(AqlSched::paper_defaults()));

    println!();
    println!(
        "{:<10} {:>22} {:>22} {:>9}",
        "VM", "xen-credit", "aql-sched", "gain"
    );
    println!("{}", "-".repeat(68));
    for vm in &xen.vms {
        let a = aql.vm_by_name(&vm.name).expect("same population");
        let (xv, av, unit) = match (&vm.metrics, &a.metrics) {
            (WorkloadMetrics::Io { latency: lx, .. }, WorkloadMetrics::Io { latency: la, .. }) => {
                (lx.mean_ns / 1e6, la.mean_ns / 1e6, "ms latency")
            }
            (
                WorkloadMetrics::Spin { work_items: ix, .. },
                WorkloadMetrics::Spin { work_items: ia, .. },
            ) => (*ix as f64, *ia as f64, "items"),
            (
                WorkloadMetrics::Mem { instructions: nx },
                WorkloadMetrics::Mem { instructions: na },
            ) => (*nx / 1e9, *na / 1e9, "G instr"),
            _ => continue,
        };
        // For latency lower is better; for throughput higher is better.
        let gain = if unit == "ms latency" {
            xv / av
        } else {
            av / xv
        };
        println!(
            "{:<10} {:>15.2} {:<6} {:>15.2} {:<6} {:>8.2}x",
            vm.name, xv, unit, av, unit, gain
        );
    }
    println!();
    println!(
        "fairness (Jain): xen={:.3} aql={:.3}; utilisation: xen={:.3} aql={:.3}",
        xen.jain_fairness(),
        aql.jain_fairness(),
        xen.utilisation(),
        aql.utilisation()
    );
}
