//! From declarative spec to running simulation.
//!
//! The construction pipeline is: [`ScenarioSpec`] → [`expand`] (VM
//! instances with workloads and seeds) → [`aql_hv::SimulationBuilder`]
//! → [`aql_hv::Simulation`] → [`aql_hv::RunReport`].
//!
//! # The determinism contract
//!
//! A run is a pure function of `(spec, policy, base_seed)`:
//!
//! 1. The engine RNG is seeded with `base_seed` (for a plain
//!    [`run`], the spec's own `seed`).
//! 2. A VM with an explicit `seed=` keeps exactly that value when the
//!    run uses the spec's declared base seed; running at a different
//!    base *rebases* it by the same delta, so intra-scenario
//!    de-correlation (distinct streams per VM) is preserved while
//!    every replicate gets fresh streams.
//! 3. A VM without `seed=` derives one from
//!    [`derive_seed`]`("scenario/vm-name", base_seed)` — stable
//!    across reordering of unrelated VM lines.
//!
//! Nothing depends on wall-clock time, thread scheduling or iteration
//! order of any map, so repeated runs are byte-identical.

use aql_baselines::{xen_credit, Microsliced, VSlicer, VTurbo};
use aql_core::AqlSched;
use aql_hv::apptype::VcpuType;
use aql_hv::workload::GuestWorkload;
use aql_hv::{
    MachineSpec, RunReport, SchedPolicy, Simulation, SimulationBuilder, TimeMode, VmSpec,
};
use aql_sim::rng::derive_seed;

use crate::spec::ScenarioSpec;

/// The five policies every sweep compares, in presentation order.
/// `xen-credit` first: it is the normalisation baseline.
pub const POLICY_NAMES: [&str; 5] = [
    "xen-credit",
    "microsliced",
    "vslicer",
    "vturbo",
    "aql-sched",
];

/// The concrete machine a spec describes.
pub fn machine(spec: &ScenarioSpec) -> MachineSpec {
    let name = spec.machine.name.as_deref().unwrap_or(&spec.name);
    MachineSpec::custom(
        name,
        spec.machine.sockets,
        spec.machine.cores_per_socket,
        spec.machine.cache.cache_spec(),
    )
}

/// Expands a spec into its VM instances (spec + workload, placement
/// order) at the spec's own base seed.
pub fn expand(spec: &ScenarioSpec) -> Vec<(VmSpec, Box<dyn GuestWorkload>)> {
    expand_seeded(spec, spec.seed)
}

/// Expands a spec at an arbitrary base seed (see the module docs for
/// the rebasing rule).
pub fn expand_seeded(spec: &ScenarioSpec, base_seed: u64) -> Vec<(VmSpec, Box<dyn GuestWorkload>)> {
    let delta = base_seed.wrapping_sub(spec.seed);
    let cache = spec.machine.cache.cache_spec();
    let mut out = Vec::new();
    for vm in &spec.vms {
        for i in 0..vm.count {
            let name = vm.instance_name(i);
            let seed = match vm.seed {
                Some(s) => s.of_instance(i).wrapping_add(delta),
                None => derive_seed(&format!("{}/{}", spec.name, name), base_seed),
            };
            let (mut vspec, wl) = vm.workload_of(i).build(&name, &cache, seed);
            if let Some(w) = vm.weight {
                vspec.weight = w;
            }
            out.push((vspec, wl));
        }
    }
    out
}

/// The ground-truth class of every VM instance, in placement order
/// (parallel to [`expand`]'s output and to `RunReport::vms`).
pub fn classes(spec: &ScenarioSpec) -> Vec<VcpuType> {
    spec.vms
        .iter()
        .flat_map(|vm| (0..vm.count).map(|i| vm.class_of(i)))
        .collect()
}

/// Builds the simulation (without running it) at the spec's own seed.
pub fn build_sim(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>) -> Simulation {
    build_sim_seeded(spec, policy, spec.seed)
}

/// Builds the simulation at an arbitrary base seed, in the default
/// time mode ([`TimeMode::Adaptive`]).
pub fn build_sim_seeded(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
) -> Simulation {
    build_sim_seeded_in(spec, policy, base_seed, TimeMode::default())
}

/// Builds the simulation at an arbitrary base seed under an explicit
/// [`TimeMode`]. Both modes produce byte-identical reports; `Dense` is
/// the conformance oracle, `Adaptive` the fast default.
pub fn build_sim_seeded_in(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
) -> Simulation {
    SimulationBuilder::new(machine(spec))
        .seed(base_seed)
        .substep_ns(spec.substep_ns)
        .time_mode(mode)
        .policy(policy)
        .vms(expand_seeded(spec, base_seed))
        .build()
}

/// Runs warm-up + measurement at the spec's own seed; returns the
/// steady-state report.
pub fn run(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>) -> RunReport {
    run_seeded(spec, policy, spec.seed)
}

/// Runs warm-up + measurement at an arbitrary base seed.
pub fn run_seeded(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>, base_seed: u64) -> RunReport {
    run_seeded_in(spec, policy, base_seed, TimeMode::default())
}

/// Runs warm-up + measurement at an arbitrary base seed under an
/// explicit [`TimeMode`].
pub fn run_seeded_in(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
) -> RunReport {
    build_sim_seeded_in(spec, policy, base_seed, mode).run_measured(spec.warmup_ns, spec.measure_ns)
}

/// The names of the spec's latency-sensitive VM instances (ground
/// truth class `IOInt`) — what vSlicer/vTurbo's manual tagging step
/// would mark.
pub fn tagged_io_vms(spec: &ScenarioSpec) -> Vec<String> {
    let mut names = Vec::new();
    for vm in &spec.vms {
        for i in 0..vm.count {
            if vm.class_of(i) == VcpuType::IoInt {
                names.push(vm.instance_name(i));
            }
        }
    }
    names
}

/// Whether a policy can run on the spec's machine at all. vTurbo
/// dedicates one turbo core per socket and must leave regular cores,
/// so it needs at least two cores per socket; everything else runs on
/// any machine.
pub fn policy_applicable(spec: &ScenarioSpec, name: &str) -> bool {
    match name {
        "vturbo" => spec.machine.cores_per_socket >= 2,
        _ => true,
    }
}

/// Instantiates a policy by sweep name. The comparators that need
/// manual VM tagging (vSlicer, vTurbo) are given the spec's IOInt VMs,
/// mirroring the paper's "manually configured for best performance".
/// Returns `None` for unknown names.
pub fn policy_for(spec: &ScenarioSpec, name: &str) -> Option<Box<dyn SchedPolicy>> {
    match name {
        "xen-credit" => Some(Box::new(xen_credit())),
        "microsliced" => Some(Box::new(Microsliced::default())),
        "vslicer" => {
            let tagged = tagged_io_vms(spec);
            let refs: Vec<&str> = tagged.iter().map(String::as_str).collect();
            Some(Box::new(VSlicer::new(&refs)))
        }
        "vturbo" => {
            let tagged = tagged_io_vms(spec);
            let refs: Vec<&str> = tagged.iter().map(String::as_str).collect();
            Some(Box::new(VTurbo::new(&refs)))
        }
        "aql-sched" => Some(Box::new(AqlSched::paper_defaults())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VmSeed;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec::parse(
            "scenario = tiny\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             seed = 5\n\
             warmup_ms = 100\n\
             measure_ms = 300\n\
             vm web workload=io/heterogeneous/120 seed=9\n\
             vm walk-%i count=2 workload=walk/llcf|walk/llco\n",
        )
        .unwrap()
    }

    #[test]
    fn expansion_matches_declaration_order() {
        let s = tiny();
        let vms = expand(&s);
        let names: Vec<&str> = vms.iter().map(|(v, _)| v.name.as_str()).collect();
        assert_eq!(names, ["web", "walk-0", "walk-1"]);
        assert_eq!(
            classes(&s),
            [VcpuType::IoInt, VcpuType::Llcf, VcpuType::Llco]
        );
        assert_eq!(tagged_io_vms(&s), ["web"]);
    }

    #[test]
    fn run_is_deterministic_and_seed_sensitive() {
        let s = tiny();
        let a = run(&s, Box::new(xen_credit()));
        let b = run(&s, Box::new(xen_credit()));
        assert_eq!(a.vms[0].metrics.time_cost(), b.vms[0].metrics.time_cost());
        assert_eq!(a.total_cpu_ns(), b.total_cpu_ns());
        let c = run_seeded(&s, Box::new(xen_credit()), 999);
        assert_ne!(
            a.vms[0].metrics.time_cost(),
            c.vms[0].metrics.time_cost(),
            "a different base seed must change the IO trace"
        );
    }

    #[test]
    fn rebasing_shifts_explicit_seeds_by_the_delta() {
        let mut s = tiny();
        s.vms[0].seed = Some(VmSeed::Indexed(9));
        // At the declared base seed the explicit values hold; at
        // base+delta every explicit seed shifts by delta. Verify via
        // the pure seed arithmetic (streams are opaque).
        let delta = 100u64;
        let base = s.seed.wrapping_add(delta);
        let rebased = s.vms[0]
            .seed
            .unwrap()
            .of_instance(0)
            .wrapping_add(base.wrapping_sub(s.seed));
        assert_eq!(rebased, 9 + delta);
    }

    #[test]
    fn every_policy_name_instantiates() {
        let s = tiny();
        for name in POLICY_NAMES {
            let p = policy_for(&s, name).unwrap_or_else(|| panic!("{name} must build"));
            drop(p);
        }
        assert!(policy_for(&s, "cfs").is_none());
    }

    #[test]
    fn all_five_policies_complete_a_quick_run() {
        let s = tiny();
        for name in POLICY_NAMES {
            let r = run(&s, policy_for(&s, name).unwrap());
            assert_eq!(r.vms.len(), 3, "{name}");
            assert!(r.total_cpu_ns() > 0, "{name}");
        }
    }
}
