//! From declarative spec to running simulation.
//!
//! The construction pipeline is: [`ScenarioSpec`] → [`expand`] (VM
//! instances with workloads and seeds) → [`aql_hv::SimulationBuilder`]
//! → [`aql_hv::Simulation`] → [`aql_hv::RunReport`].
//!
//! # The determinism contract
//!
//! A run is a pure function of `(spec, policy, base_seed)`:
//!
//! 1. The engine RNG is seeded with `base_seed` (for a plain
//!    [`run`], the spec's own `seed`).
//! 2. A VM with an explicit `seed=` keeps exactly that value when the
//!    run uses the spec's declared base seed; running at a different
//!    base *rebases* it by the same delta, so intra-scenario
//!    de-correlation (distinct streams per VM) is preserved while
//!    every replicate gets fresh streams.
//! 3. A VM without `seed=` derives one from
//!    [`derive_seed`]`("scenario/vm-name", base_seed)` — stable
//!    across reordering of unrelated VM lines.
//!
//! Nothing depends on wall-clock time, thread scheduling or iteration
//! order of any map, so repeated runs are byte-identical.

use aql_baselines::{xen_credit, Microsliced, VSlicer, VTurbo};
use aql_core::{AqlSched, AqlSchedConfig, VtrsConfig};
use aql_hv::apptype::VcpuType;
use aql_hv::ids::SocketId;
use aql_hv::policy::{FixedQuantumPolicy, RestrictedCredit};
use aql_hv::workload::GuestWorkload;
use aql_hv::{
    MachineSpec, RunReport, SchedPolicy, Simulation, SimulationBuilder, TimeMode, VmSpec,
};
use aql_sim::rng::derive_seed;
use aql_sim::time::parse_dur;

use crate::spec::ScenarioSpec;

/// The five registry base names every sweep compares, in presentation
/// order. `xen-credit` first: it is the normalisation baseline.
pub const POLICY_NAMES: [&str; 5] = [
    "xen-credit",
    "microsliced",
    "vslicer",
    "vturbo",
    "aql-sched",
];

/// The concrete machine a spec describes.
pub fn machine(spec: &ScenarioSpec) -> MachineSpec {
    let name = spec.machine.name.as_deref().unwrap_or(&spec.name);
    MachineSpec::custom(
        name,
        spec.machine.sockets,
        spec.machine.cores_per_socket,
        spec.machine.cache.cache_spec(),
    )
}

/// Expands a spec into its VM instances (spec + workload, placement
/// order) at the spec's own base seed.
pub fn expand(spec: &ScenarioSpec) -> Vec<(VmSpec, Box<dyn GuestWorkload>)> {
    expand_seeded(spec, spec.seed)
}

/// Expands a spec at an arbitrary base seed (see the module docs for
/// the rebasing rule).
pub fn expand_seeded(spec: &ScenarioSpec, base_seed: u64) -> Vec<(VmSpec, Box<dyn GuestWorkload>)> {
    let delta = base_seed.wrapping_sub(spec.seed);
    let machine_cache = spec.machine.cache.cache_spec();
    let mut out = Vec::new();
    for vm in &spec.vms {
        // A per-VM cache= overlay sizes the workload model against
        // that preset instead of the host's.
        let cache = vm.cache.map_or(machine_cache, |c| c.cache_spec());
        for i in 0..vm.count {
            let name = vm.instance_name(i);
            let seed = match vm.seed {
                Some(s) => s.of_instance(i).wrapping_add(delta),
                None => derive_seed(&format!("{}/{}", spec.name, name), base_seed),
            };
            let (mut vspec, mut wl) = vm.workload_of(i).build(&name, &cache, seed);
            if let Some(fault) = vm.fault {
                // Fault injection: misbehave on purpose, so the
                // harness's degradation paths are provable end to end.
                wl = Box::new(aql_workloads::FaultyWorkload::new(wl, fault));
            }
            if let Some(w) = vm.weight {
                vspec.weight = w;
            }
            vspec.pin = vm.pin;
            out.push((vspec, wl));
        }
    }
    out
}

/// The ground-truth class of every VM instance, in placement order
/// (parallel to [`expand`]'s output and to `RunReport::vms`).
pub fn classes(spec: &ScenarioSpec) -> Vec<VcpuType> {
    spec.vms
        .iter()
        .flat_map(|vm| (0..vm.count).map(|i| vm.class_of(i)))
        .collect()
}

/// The ground-truth class of every *vCPU*, in engine id order (an SMP
/// VM contributes one entry per vCPU). Parallel to
/// `Hypervisor::vcpus`; cluster-composition reports index into this.
pub fn vcpu_classes(spec: &ScenarioSpec) -> Vec<VcpuType> {
    spec.vms
        .iter()
        .flat_map(|vm| {
            (0..vm.count)
                .flat_map(|i| std::iter::repeat_n(vm.class_of(i), vm.workload_of(i).vcpus()))
        })
        .collect()
}

/// Builds the simulation (without running it) at the spec's own seed.
pub fn build_sim(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>) -> Simulation {
    build_sim_seeded(spec, policy, spec.seed)
}

/// Builds the simulation at an arbitrary base seed, in the default
/// time mode ([`TimeMode::Adaptive`]).
pub fn build_sim_seeded(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
) -> Simulation {
    build_sim_seeded_in(spec, policy, base_seed, TimeMode::default())
}

/// Builds the simulation at an arbitrary base seed under an explicit
/// [`TimeMode`]. `Dense` is the conformance oracle; `Adaptive` (the
/// fast default) reproduces it within the documented tolerance
/// (bit-identical u64 accounting and events, ≤1e-6 relative drift on
/// f64 metrics from chunk coalescing).
pub fn build_sim_seeded_in(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
) -> Simulation {
    build_sim_seeded_tuned(spec, policy, base_seed, mode, true)
}

/// [`build_sim_seeded_in`] with explicit control over chunk
/// coalescing. `coalesce = false` pins `TimeMode::Adaptive` to the
/// grid-replaying fast path that is bit-identical to `Dense` — the
/// perf baseline the CI bench records next to the coalesced default.
pub fn build_sim_seeded_tuned(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
    coalesce: bool,
) -> Simulation {
    build_sim_seeded_full(spec, policy, base_seed, mode, coalesce, 1)
}

/// [`build_sim_seeded_tuned`] with explicit parallel span execution:
/// `span_workers` threads (including the calling one) fan a coalesced
/// span's per-socket slots across the engine's span pool (see
/// `SimulationBuilder::span_workers`). Results are byte-identical for
/// every value — 1 is fully serial.
pub fn build_sim_seeded_full(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
    coalesce: bool,
    span_workers: usize,
) -> Simulation {
    SimulationBuilder::new(machine(spec))
        .seed(base_seed)
        .substep_ns(spec.substep_ns)
        .time_mode(mode)
        .coalesce(coalesce)
        .span_workers(span_workers)
        .policy(policy)
        .vms(expand_seeded(spec, base_seed))
        .build()
}

/// Runs warm-up + measurement at the spec's own seed; returns the
/// steady-state report.
pub fn run(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>) -> RunReport {
    run_seeded(spec, policy, spec.seed)
}

/// Runs warm-up + measurement at an arbitrary base seed.
pub fn run_seeded(spec: &ScenarioSpec, policy: Box<dyn SchedPolicy>, base_seed: u64) -> RunReport {
    run_seeded_in(spec, policy, base_seed, TimeMode::default())
}

/// Runs warm-up + measurement at an arbitrary base seed under an
/// explicit [`TimeMode`].
pub fn run_seeded_in(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
) -> RunReport {
    build_sim_seeded_in(spec, policy, base_seed, mode).run_measured(spec.warmup_ns, spec.measure_ns)
}

/// [`run_seeded_in`] with explicit control over chunk coalescing (see
/// [`build_sim_seeded_tuned`]).
pub fn run_seeded_tuned(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
    coalesce: bool,
) -> RunReport {
    build_sim_seeded_tuned(spec, policy, base_seed, mode, coalesce)
        .run_measured(spec.warmup_ns, spec.measure_ns)
}

/// [`run_seeded_tuned`] with explicit parallel span execution (see
/// [`build_sim_seeded_full`]).
pub fn run_seeded_full(
    spec: &ScenarioSpec,
    policy: Box<dyn SchedPolicy>,
    base_seed: u64,
    mode: TimeMode,
    coalesce: bool,
    span_workers: usize,
) -> RunReport {
    build_sim_seeded_full(spec, policy, base_seed, mode, coalesce, span_workers)
        .run_measured(spec.warmup_ns, spec.measure_ns)
}

/// The names of the spec's latency-sensitive VM instances (ground
/// truth class `IOInt`) — what vSlicer/vTurbo's manual tagging step
/// would mark.
pub fn tagged_io_vms(spec: &ScenarioSpec) -> Vec<String> {
    let mut names = Vec::new();
    for vm in &spec.vms {
        for i in 0..vm.count {
            if vm.class_of(i) == VcpuType::IoInt {
                names.push(vm.instance_name(i));
            }
        }
    }
    names
}

/// A parsed policy token.
///
/// Besides the five bare registry names ([`POLICY_NAMES`]), tokens
/// may carry parameters after a `/`:
///
/// | Token | Policy |
/// |---|---|
/// | `fixed/<dur>` | [`FixedQuantumPolicy`] with that machine-wide quantum (`fixed/10ms`) |
/// | `xen-credit/sockets=<list>` | [`RestrictedCredit`]: native Xen confined to those sockets |
/// | `aql-sched/<k=v,…>` | [`AqlSched`] with config overrides: `sockets=<list>` (usable sockets), `uniform=<dur>` (disable quantum customisation), `window=<n>` (vTRS window), `history=<n>` (cursor periods recorded) |
///
/// A socket `<list>` is `+`-separated indices and `a-b` ranges
/// (`sockets=1-3`, `sockets=0+2`; `,` separates whole arguments).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Native Xen Credit, optionally confined to a socket subset.
    XenCredit {
        /// Guest-usable sockets; `None` = the whole machine.
        sockets: Option<Vec<SocketId>>,
    },
    /// Microsliced: a small uniform quantum.
    Microsliced,
    /// vSlicer with the spec's IOInt VMs manually tagged.
    VSlicer,
    /// vTurbo with the spec's IOInt VMs manually tagged.
    VTurbo,
    /// The paper's AQL_Sched, with optional config overrides.
    AqlSched {
        /// Usable sockets (`None` = all).
        sockets: Option<Vec<SocketId>>,
        /// Uniform quantum disabling the customisation step (Fig. 7).
        uniform_quantum: Option<u64>,
        /// vTRS window override.
        window: Option<usize>,
        /// Cursor-history periods to record (Fig. 4).
        history: Option<usize>,
    },
    /// A fixed machine-wide quantum (the Fig. 2/Fig. 5 sweeps).
    Fixed {
        /// Quantum in ns.
        quantum_ns: u64,
    },
}

fn parse_sockets(list: &str) -> Result<Vec<SocketId>, String> {
    let mut out = Vec::new();
    for item in list.split('+') {
        if let Some((a, b)) = item.split_once('-') {
            let (a, b) = (
                a.parse::<usize>().map_err(|_| bad_sockets(list))?,
                b.parse::<usize>().map_err(|_| bad_sockets(list))?,
            );
            if a > b {
                return Err(bad_sockets(list));
            }
            out.extend((a..=b).map(SocketId));
        } else {
            out.push(SocketId(item.parse().map_err(|_| bad_sockets(list))?));
        }
    }
    if out.is_empty() {
        return Err(bad_sockets(list));
    }
    Ok(out)
}

fn bad_sockets(list: &str) -> String {
    format!("bad socket list '{list}' (want e.g. '1-3' or '0+2')")
}

/// Parses a policy token. Errors are human-readable and name the
/// offending part.
pub fn parse_policy(token: &str) -> Result<PolicySpec, String> {
    let (base, args) = match token.split_once('/') {
        Some((b, a)) => (b, Some(a)),
        None => (token, None),
    };
    let kv_args = |args: Option<&str>| -> Result<Vec<(String, String)>, String> {
        let Some(args) = args else {
            return Ok(Vec::new());
        };
        args.split(',')
            .map(|kv| {
                kv.split_once('=')
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .ok_or_else(|| format!("malformed policy argument '{kv}' in '{token}'"))
            })
            .collect()
    };
    match base {
        "fixed" => {
            let Some(args) = args else {
                return Err("fixed needs a quantum, e.g. 'fixed/10ms'".to_string());
            };
            let quantum_ns =
                parse_dur(args).ok_or_else(|| format!("bad quantum '{args}' in '{token}'"))?;
            Ok(PolicySpec::Fixed { quantum_ns })
        }
        "xen-credit" => {
            let mut sockets = None;
            for (k, v) in kv_args(args)? {
                match k.as_str() {
                    "sockets" => sockets = Some(parse_sockets(&v)?),
                    _ => return Err(format!("unknown xen-credit argument '{k}' in '{token}'")),
                }
            }
            Ok(PolicySpec::XenCredit { sockets })
        }
        "microsliced" if args.is_none() => Ok(PolicySpec::Microsliced),
        "vslicer" if args.is_none() => Ok(PolicySpec::VSlicer),
        "vturbo" if args.is_none() => Ok(PolicySpec::VTurbo),
        "aql-sched" => {
            let (mut sockets, mut uniform_quantum, mut window, mut history) =
                (None, None, None, None);
            for (k, v) in kv_args(args)? {
                match k.as_str() {
                    "sockets" => sockets = Some(parse_sockets(&v)?),
                    "uniform" => {
                        uniform_quantum = Some(
                            parse_dur(&v)
                                .ok_or_else(|| format!("bad quantum '{v}' in '{token}'"))?,
                        )
                    }
                    "window" => {
                        window = Some(
                            v.parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| format!("bad window '{v}' in '{token}'"))?,
                        )
                    }
                    "history" => {
                        history = Some(
                            v.parse::<usize>()
                                .map_err(|_| format!("bad history '{v}' in '{token}'"))?,
                        )
                    }
                    _ => return Err(format!("unknown aql-sched argument '{k}' in '{token}'")),
                }
            }
            Ok(PolicySpec::AqlSched {
                sockets,
                uniform_quantum,
                window,
                history,
            })
        }
        _ => Err(format!(
            "unknown policy '{token}' (known: {}, fixed/<dur>)",
            POLICY_NAMES.join(", ")
        )),
    }
}

impl PolicySpec {
    /// The socket-restriction argument, if the token carries one.
    fn socket_args(&self) -> Option<&[SocketId]> {
        match self {
            PolicySpec::XenCredit { sockets } | PolicySpec::AqlSched { sockets, .. } => {
                sockets.as_deref()
            }
            _ => None,
        }
    }

    /// Checks the token against a concrete scenario: every named
    /// socket must exist on the spec's machine. A mismatch is a
    /// *configuration error* (fail fast), not inapplicability — a
    /// typoed socket list must not silently render as `-` cells.
    pub fn validate_for(&self, spec: &ScenarioSpec) -> Result<(), String> {
        let Some(sockets) = self.socket_args() else {
            return Ok(());
        };
        let machine_sockets = spec.machine.sockets;
        for s in sockets {
            if s.index() >= machine_sockets {
                return Err(format!(
                    "socket {} does not exist on '{}' ({machine_sockets} sockets)",
                    s.index(),
                    spec.name
                ));
            }
        }
        Ok(())
    }

    /// Whether the policy can run on the spec's machine at all.
    /// vTurbo dedicates one turbo core per socket and must leave
    /// regular cores, so it needs at least two cores per socket;
    /// everything else runs on any machine.
    pub fn applicable(&self, spec: &ScenarioSpec) -> bool {
        match self {
            PolicySpec::VTurbo => spec.machine.cores_per_socket >= 2,
            _ => true,
        }
    }

    /// Instantiates the policy for a scenario. The comparators that
    /// need manual VM tagging (vSlicer, vTurbo) are given the spec's
    /// IOInt VMs, mirroring the paper's "manually configured for best
    /// performance".
    pub fn build(&self, spec: &ScenarioSpec) -> Box<dyn SchedPolicy> {
        match self {
            PolicySpec::XenCredit { sockets: None } => Box::new(xen_credit()),
            PolicySpec::XenCredit {
                sockets: Some(sockets),
            } => Box::new(RestrictedCredit::new(sockets.clone())),
            PolicySpec::Microsliced => Box::new(Microsliced::default()),
            PolicySpec::VSlicer => {
                let tagged = tagged_io_vms(spec);
                let refs: Vec<&str> = tagged.iter().map(String::as_str).collect();
                Box::new(VSlicer::new(&refs))
            }
            PolicySpec::VTurbo => {
                let tagged = tagged_io_vms(spec);
                let refs: Vec<&str> = tagged.iter().map(String::as_str).collect();
                Box::new(VTurbo::new(&refs))
            }
            PolicySpec::AqlSched {
                sockets,
                uniform_quantum,
                window,
                history,
            } => {
                let mut cfg = AqlSchedConfig {
                    usable_sockets: sockets.clone(),
                    uniform_quantum: *uniform_quantum,
                    record_history: history.unwrap_or(0),
                    ..AqlSchedConfig::default()
                };
                if let Some(n) = window {
                    cfg.vtrs = VtrsConfig {
                        window: *n,
                        ..VtrsConfig::default()
                    };
                }
                Box::new(AqlSched::new(cfg))
            }
            PolicySpec::Fixed { quantum_ns } => Box::new(FixedQuantumPolicy::new(*quantum_ns)),
        }
    }
}

/// Whether a policy token can run on the spec's machine at all (see
/// [`PolicySpec::applicable`]). Unknown tokens are "applicable" so the
/// caller's parse error surfaces instead of a silent skip.
pub fn policy_applicable(spec: &ScenarioSpec, name: &str) -> bool {
    parse_policy(name).map_or(true, |p| p.applicable(spec))
}

/// Instantiates a policy by token (see [`parse_policy`]); `None` for
/// unknown or malformed tokens.
pub fn policy_for(spec: &ScenarioSpec, name: &str) -> Option<Box<dyn SchedPolicy>> {
    parse_policy(name).ok().map(|p| p.build(spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VmSeed;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec::parse(
            "scenario = tiny\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             seed = 5\n\
             warmup_ms = 100\n\
             measure_ms = 300\n\
             vm web workload=io/heterogeneous/120 seed=9\n\
             vm walk-%i count=2 workload=walk/llcf|walk/llco\n",
        )
        .unwrap()
    }

    #[test]
    fn expansion_matches_declaration_order() {
        let s = tiny();
        let vms = expand(&s);
        let names: Vec<&str> = vms.iter().map(|(v, _)| v.name.as_str()).collect();
        assert_eq!(names, ["web", "walk-0", "walk-1"]);
        assert_eq!(
            classes(&s),
            [VcpuType::IoInt, VcpuType::Llcf, VcpuType::Llco]
        );
        assert_eq!(tagged_io_vms(&s), ["web"]);
    }

    #[test]
    fn run_is_deterministic_and_seed_sensitive() {
        let s = tiny();
        let a = run(&s, Box::new(xen_credit()));
        let b = run(&s, Box::new(xen_credit()));
        assert_eq!(a.vms[0].metrics.time_cost(), b.vms[0].metrics.time_cost());
        assert_eq!(a.total_cpu_ns(), b.total_cpu_ns());
        let c = run_seeded(&s, Box::new(xen_credit()), 999);
        assert_ne!(
            a.vms[0].metrics.time_cost(),
            c.vms[0].metrics.time_cost(),
            "a different base seed must change the IO trace"
        );
    }

    #[test]
    fn rebasing_shifts_explicit_seeds_by_the_delta() {
        let mut s = tiny();
        s.vms[0].seed = Some(VmSeed::Indexed(9));
        // At the declared base seed the explicit values hold; at
        // base+delta every explicit seed shifts by delta. Verify via
        // the pure seed arithmetic (streams are opaque).
        let delta = 100u64;
        let base = s.seed.wrapping_add(delta);
        let rebased = s.vms[0]
            .seed
            .unwrap()
            .of_instance(0)
            .wrapping_add(base.wrapping_sub(s.seed));
        assert_eq!(rebased, 9 + delta);
    }

    #[test]
    fn every_policy_name_instantiates() {
        let s = tiny();
        for name in POLICY_NAMES {
            let p = policy_for(&s, name).unwrap_or_else(|| panic!("{name} must build"));
            drop(p);
        }
        assert!(policy_for(&s, "cfs").is_none());
    }

    #[test]
    fn parameterised_tokens_parse() {
        use aql_sim::time::MS;
        assert_eq!(
            parse_policy("fixed/10ms"),
            Ok(PolicySpec::Fixed {
                quantum_ns: 10 * MS
            })
        );
        assert_eq!(
            parse_policy("xen-credit/sockets=1-3"),
            Ok(PolicySpec::XenCredit {
                sockets: Some(vec![SocketId(1), SocketId(2), SocketId(3)])
            })
        );
        assert_eq!(
            parse_policy("aql-sched/sockets=0+2+3,uniform=90ms,window=8,history=50"),
            Ok(PolicySpec::AqlSched {
                sockets: Some(vec![SocketId(0), SocketId(2), SocketId(3)]),
                uniform_quantum: Some(90 * MS),
                window: Some(8),
                history: Some(50),
            })
        );
        assert_eq!(parse_policy("aql-sched"), parse_policy("aql-sched"));
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for bad in [
            "fixed",
            "fixed/oops",
            "fixed/0ms",
            "xen-credit/sockets=3-1",
            "xen-credit/quantum=10ms",
            "aql-sched/window=0",
            "aql-sched/uniform=never",
            "aql-sched/sockets=",
            "vturbo/fast",
            "microsliced/1ms",
            "cfs",
        ] {
            assert!(parse_policy(bad).is_err(), "'{bad}' must fail");
        }
    }

    #[test]
    fn socket_lists_must_name_existing_sockets() {
        let s = tiny(); // 1-socket machine
        let ok = parse_policy("xen-credit/sockets=0").unwrap();
        assert!(ok.validate_for(&s).is_ok());
        for token in ["xen-credit/sockets=1-3", "aql-sched/sockets=2"] {
            let p = parse_policy(token).unwrap();
            let e = p.validate_for(&s).unwrap_err();
            assert!(e.contains("does not exist"), "{token}: {e}");
        }
        // Tokens without a sockets argument always validate.
        assert!(parse_policy("fixed/10ms").unwrap().validate_for(&s).is_ok());
    }

    #[test]
    fn parameterised_tokens_build_policies() {
        let s = tiny();
        let fixed = policy_for(&s, "fixed/10ms").unwrap();
        assert_eq!(fixed.name(), "fixed-10ms");
        let restricted = policy_for(&s, "xen-credit/sockets=0").unwrap();
        assert_eq!(restricted.name(), "xen-credit-restricted");
        let aql = policy_for(&s, "aql-sched/window=2,uniform=1ms").unwrap();
        assert_eq!(aql.name(), "aql-sched");
    }

    #[test]
    fn vcpu_classes_expand_smp_vms() {
        let s = ScenarioSpec::parse(
            "scenario = smp\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             vm spin workload=spin/kernbench/3\n\
             vm web workload=io/exclusive/100\n",
        )
        .unwrap();
        assert_eq!(
            vcpu_classes(&s),
            [
                VcpuType::ConSpin,
                VcpuType::ConSpin,
                VcpuType::ConSpin,
                VcpuType::IoInt
            ]
        );
        assert_eq!(classes(&s), [VcpuType::ConSpin, VcpuType::IoInt]);
    }

    #[test]
    fn cache_overlay_changes_the_built_working_set() {
        // The same walk/llcf line sized against the two presets must
        // produce different working sets (the LLCs differ), which is
        // what keeps the Fig. 3 walkers byte-faithful on the Xeon.
        let text = |cache: &str| {
            format!(
                "scenario = c\nmachine = sockets=1 cores=1 cache=xeon-e5-4603\n\
                 vm a workload=walk/llcf{cache}\n"
            )
        };
        let host = ScenarioSpec::parse(&text("")).unwrap();
        let overlay = ScenarioSpec::parse(&text(" cache=i7-3770")).unwrap();
        // A short run exposes the different working sets as different
        // measured costs (everything else about the runs is equal).
        let cost = |spec: &ScenarioSpec| {
            let spec = spec.clone().with_warmup_ns(0).with_measure_ns(100_000_000);
            run(&spec, policy_for(&spec, "xen-credit").unwrap()).vms[0]
                .metrics
                .time_cost()
        };
        assert_ne!(cost(&host), cost(&overlay));
    }

    #[test]
    fn all_five_policies_complete_a_quick_run() {
        let s = tiny();
        for name in POLICY_NAMES {
            let r = run(&s, policy_for(&s, name).unwrap());
            assert_eq!(r.vms.len(), 3, "{name}");
            assert!(r.total_cpu_ns() > 0, "{name}");
        }
    }
}
