//! The declarative scenario format.
//!
//! A scenario file is a small line-oriented text document (hand-rolled
//! parser — this environment is offline, so no external parser crates)
//! describing everything a reproducible colocation experiment needs:
//! machine topology, cache preset, VM population with workload mix,
//! seeds and run durations. Example:
//!
//! ```text
//! # Sixteen vCPUs on four cores, one group per application type.
//! scenario   = quickstart
//! machine    = sockets=1 cores=4 cache=i7-3770
//! seed       = 1
//! warmup_ms  = 1000
//! measure_ms = 6000
//! substep_us = 100
//! vm web-%i   count=4 workload=io/heterogeneous/120 seed=10+
//! vm parsec   workload=spin/kernbench/4 seed=20
//! vm llcf-%i  count=4 workload=walk/llcf
//! vm llco-%i  count=2 workload=walk/llco
//! vm lolcf-%i count=2 workload=walk/lolcf
//! ```
//!
//! Grammar, line by line:
//!
//! * `#`-prefixed lines and blank lines are ignored.
//! * `key = value` header lines: `scenario` (required, first),
//!   `machine` (required; `sockets=<n> cores=<n> cache=<preset>` with
//!   optional `name=<s>`), `seed`, `warmup_ms`, `measure_ms`,
//!   `substep_us` (all optional, with the defaults shown above).
//! * `vm <name> [attr=value]…` lines declare a VM group, in placement
//!   order. Attributes:
//!   * `count=<n>` — instances (default 1). The name must contain
//!     `%i` (replaced by the instance index) iff `count > 1`.
//!   * `workload=<token>[|<token>…]` — required; each token is a
//!     [`WorkloadSpec`]. With alternation, instance `i` uses token
//!     `i mod k`, which expresses interleaved mixes compactly.
//!   * `seed=<n>` or `seed=<n>+` — the workload's private seed;
//!     with `+`, instance `i` gets `n + i`. Omitted seeds are derived
//!     from the VM name (see [`crate::build`]).
//!   * `weight=<n>` — Credit weight override (default: 256 per vCPU).
//!   * `class=<label>` — ground-truth type override (default: derived
//!     from the workload token).
//!   * `pin=<pcpu>` — hard pCPU pin for every instance's vCPUs (the
//!     single-pCPU calibration panels); must name a pCPU that exists.
//!   * `cache=<preset>` — size the workload model against this cache
//!     preset instead of the host machine's (benchmark binaries keep
//!     their working sets wherever they run).
//!   * `fault=<token>` — wrap every instance's workload in a
//!     [`FaultyWorkload`](aql_workloads::FaultyWorkload) injecting one
//!     deterministic failure mode (`panic@<dur>`, `hang`,
//!     `hang@<dur>`, `nan-rate`, `horizon-lie`, `coalesce-break`).
//!     Fault-injection scenarios exist to prove the harness's
//!     degradation paths; the catalog never uses them.
//!
//! Every spec round-trips: [`ScenarioSpec::to_text`] serialises the
//! canonical form and [`ScenarioSpec::parse`] reproduces the value
//! exactly ([`PartialEq`]).

use core::fmt;

use aql_hv::apptype::VcpuType;
use aql_mem::CacheSpec;
use aql_sim::time::{MS, US};
use aql_workloads::{FaultSpec, WorkloadSpec};

/// Default base seed when a scenario file omits `seed`.
pub const DEFAULT_SEED: u64 = 42;
/// Default warm-up (ns) when a scenario file omits `warmup_ms`.
pub const DEFAULT_WARMUP_NS: u64 = 1000 * MS;
/// Default measured time (ns) when a scenario file omits `measure_ms`.
pub const DEFAULT_MEASURE_NS: u64 = 6000 * MS;
/// Default engine sub-step (ns) when a scenario file omits
/// `substep_us`.
pub const DEFAULT_SUBSTEP_NS: u64 = 100 * US;

/// A named cache-hierarchy preset (the paper's two hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePreset {
    /// Intel Core i7-3770 (Table 2): 8 MB LLC.
    I7_3770,
    /// Intel Xeon E5-4603 (§4.2): 10 MB LLC per socket.
    XeonE5_4603,
}

impl CachePreset {
    /// The preset's token in scenario files.
    pub fn token(self) -> &'static str {
        match self {
            CachePreset::I7_3770 => "i7-3770",
            CachePreset::XeonE5_4603 => "xeon-e5-4603",
        }
    }

    /// Parses a preset token.
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "i7-3770" => Some(CachePreset::I7_3770),
            "xeon-e5-4603" => Some(CachePreset::XeonE5_4603),
            _ => None,
        }
    }

    /// The concrete cache geometry.
    pub fn cache_spec(self) -> CacheSpec {
        match self {
            CachePreset::I7_3770 => CacheSpec::i7_3770(),
            CachePreset::XeonE5_4603 => CacheSpec::xeon_e5_4603(),
        }
    }
}

/// The machine shape a scenario runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineDecl {
    /// Machine name; `None` defaults to the scenario name.
    pub name: Option<String>,
    /// Socket count.
    pub sockets: usize,
    /// Cores (pCPUs) per socket.
    pub cores_per_socket: usize,
    /// Cache preset.
    pub cache: CachePreset,
}

/// How a VM group's workload seeds are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmSeed {
    /// Every instance uses exactly this seed.
    Fixed(u64),
    /// Instance `i` uses `base + i` (the `<n>+` form).
    Indexed(u64),
}

impl VmSeed {
    /// The seed of instance `i`, before rebasing (see
    /// [`crate::build::expand_seeded`]).
    pub fn of_instance(self, i: usize) -> u64 {
        match self {
            VmSeed::Fixed(s) => s,
            VmSeed::Indexed(base) => base.wrapping_add(i as u64),
        }
    }
}

/// One `vm` line: a group of `count` VM instances.
#[derive(Debug, Clone, PartialEq)]
pub struct VmDecl {
    /// Name pattern; `%i` expands to the instance index.
    pub name: String,
    /// Number of instances.
    pub count: usize,
    /// Workload alternation ring; instance `i` uses entry
    /// `i mod len`.
    pub workloads: Vec<WorkloadSpec>,
    /// Explicit seed assignment; `None` derives from the VM name.
    pub seed: Option<VmSeed>,
    /// Credit-weight override; `None` uses 256 per vCPU.
    pub weight: Option<u32>,
    /// Ground-truth class override; `None` derives from the workload.
    pub class: Option<VcpuType>,
    /// Hard pCPU pin: every instance's vCPUs run only on this pCPU
    /// (the single-pCPU calibration panels); `None` = free placement.
    pub pin: Option<usize>,
    /// Cache overlay: size the workload model against this preset
    /// instead of the host machine's (a benchmark binary keeps its
    /// working set wherever it runs). `None` = the machine's cache.
    pub cache: Option<CachePreset>,
    /// Injected fault: every instance's workload is wrapped in a
    /// [`FaultyWorkload`](aql_workloads::FaultyWorkload) with this
    /// spec. `None` (always, outside directed fault tests) runs the
    /// workload unwrapped.
    pub fault: Option<FaultSpec>,
}

impl VmDecl {
    /// The concrete name of instance `i`.
    pub fn instance_name(&self, i: usize) -> String {
        self.name.replace("%i", &i.to_string())
    }

    /// The workload spec instance `i` uses.
    pub fn workload_of(&self, i: usize) -> &WorkloadSpec {
        &self.workloads[i % self.workloads.len()]
    }

    /// The ground-truth class of instance `i`.
    pub fn class_of(&self, i: usize) -> VcpuType {
        self.class.unwrap_or_else(|| self.workload_of(i).class())
    }
}

/// A parsed declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name; seeds of a sweep derive from it.
    pub name: String,
    /// Machine shape.
    pub machine: MachineDecl,
    /// Base seed: the engine seed, and the anchor explicit VM seeds
    /// are declared relative to.
    pub seed: u64,
    /// Warm-up before measurement (ns).
    pub warmup_ns: u64,
    /// Measured time (ns).
    pub measure_ns: u64,
    /// Engine execution sub-step (ns).
    pub substep_ns: u64,
    /// VM groups in placement order.
    pub vms: Vec<VmDecl>,
}

/// A scenario-file syntax or validation error, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the input (0 for document-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        line,
        message: message.into(),
    })
}

/// Splits `key=value` (exactly one `=`).
fn split_kv(tok: &str) -> Option<(&str, &str)> {
    let (k, v) = tok.split_once('=')?;
    (!k.is_empty() && !v.is_empty() && !v.contains('=')).then_some((k, v))
}

fn parse_machine(value: &str, line: usize) -> Result<MachineDecl, SpecError> {
    let mut name = None;
    let mut sockets = None;
    let mut cores = None;
    let mut cache = None;
    for tok in value.split_whitespace() {
        let Some((k, v)) = split_kv(tok) else {
            return err(line, format!("malformed machine attribute '{tok}'"));
        };
        match k {
            "name" => name = Some(v.to_string()),
            "sockets" => {
                sockets = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or(SpecError {
                            line,
                            message: format!("bad socket count '{v}'"),
                        })?,
                )
            }
            "cores" => {
                cores = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or(SpecError {
                            line,
                            message: format!("bad core count '{v}'"),
                        })?,
                )
            }
            "cache" => {
                cache = Some(CachePreset::parse(v).ok_or(SpecError {
                    line,
                    message: format!("unknown cache preset '{v}'"),
                })?)
            }
            _ => return err(line, format!("unknown machine attribute '{k}'")),
        }
    }
    match (sockets, cores, cache) {
        (Some(sockets), Some(cores), Some(cache)) => Ok(MachineDecl {
            name,
            sockets,
            cores_per_socket: cores,
            cache,
        }),
        _ => err(line, "machine needs sockets=, cores= and cache="),
    }
}

fn parse_vm(rest: &str, line: usize) -> Result<VmDecl, SpecError> {
    let mut toks = rest.split_whitespace();
    let Some(name) = toks.next() else {
        return err(line, "vm line needs a name");
    };
    let mut decl = VmDecl {
        name: name.to_string(),
        count: 1,
        workloads: Vec::new(),
        seed: None,
        weight: None,
        class: None,
        pin: None,
        cache: None,
        fault: None,
    };
    for tok in toks {
        let Some((k, v)) = split_kv(tok) else {
            return err(line, format!("malformed vm attribute '{tok}'"));
        };
        match k {
            "count" => match v.parse::<usize>() {
                Ok(n) if n > 0 => decl.count = n,
                _ => return err(line, format!("bad count '{v}'")),
            },
            "workload" => {
                for w in v.split('|') {
                    match WorkloadSpec::parse(w) {
                        Ok(spec) => decl.workloads.push(spec),
                        Err(e) => return err(line, e),
                    }
                }
            }
            "seed" => {
                let (num, indexed) = match v.strip_suffix('+') {
                    Some(base) => (base, true),
                    None => (v, false),
                };
                match num.parse::<u64>() {
                    Ok(n) if indexed => decl.seed = Some(VmSeed::Indexed(n)),
                    Ok(n) => decl.seed = Some(VmSeed::Fixed(n)),
                    Err(_) => return err(line, format!("bad seed '{v}'")),
                }
            }
            "weight" => match v.parse::<u32>() {
                Ok(n) if n > 0 => decl.weight = Some(n),
                _ => return err(line, format!("bad weight '{v}'")),
            },
            "class" => match VcpuType::from_label(v) {
                Some(c) => decl.class = Some(c),
                None => return err(line, format!("unknown class '{v}'")),
            },
            "pin" => match v.parse::<usize>() {
                Ok(p) => decl.pin = Some(p),
                Err(_) => return err(line, format!("bad pin '{v}'")),
            },
            "cache" => match CachePreset::parse(v) {
                Some(c) => decl.cache = Some(c),
                None => return err(line, format!("unknown cache preset '{v}'")),
            },
            "fault" => match FaultSpec::parse(v) {
                Ok(fs) => decl.fault = Some(fs),
                Err(e) => return err(line, e),
            },
            _ => return err(line, format!("unknown vm attribute '{k}'")),
        }
    }
    if decl.workloads.is_empty() {
        return err(line, format!("vm '{name}' needs workload="));
    }
    if (decl.count > 1) != decl.name.contains("%i") {
        return err(
            line,
            format!("vm '{name}': name must contain %i iff count > 1"),
        );
    }
    Ok(decl)
}

impl ScenarioSpec {
    /// Parses a scenario document. Errors carry the offending line.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut name: Option<String> = None;
        let mut machine: Option<MachineDecl> = None;
        let mut seed = DEFAULT_SEED;
        let mut warmup_ns = DEFAULT_WARMUP_NS;
        let mut measure_ns = DEFAULT_MEASURE_NS;
        let mut substep_ns = DEFAULT_SUBSTEP_NS;
        let mut vms: Vec<VmDecl> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("vm ") {
                vms.push(parse_vm(rest, lineno)?);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(
                    lineno,
                    format!("expected 'key = value' or 'vm …': '{line}'"),
                );
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return err(lineno, format!("empty value for '{key}'"));
            }
            let parse_u64 = |v: &str| -> Result<u64, SpecError> {
                v.parse::<u64>().map_err(|_| SpecError {
                    line: lineno,
                    message: format!("bad number '{v}' for '{key}'"),
                })
            };
            // Durations are declared in ms/µs but stored in ns; reject
            // values whose ns form overflows u64 instead of wrapping.
            let parse_dur = |v: &str, unit_ns: u64| -> Result<u64, SpecError> {
                parse_u64(v)?.checked_mul(unit_ns).ok_or(SpecError {
                    line: lineno,
                    message: format!("'{key}' value '{v}' overflows the ns clock"),
                })
            };
            match key {
                "scenario" => name = Some(value.to_string()),
                "machine" => machine = Some(parse_machine(value, lineno)?),
                "seed" => seed = parse_u64(value)?,
                "warmup_ms" => warmup_ns = parse_dur(value, MS)?,
                "measure_ms" => {
                    let v = parse_dur(value, MS)?;
                    if v == 0 {
                        return err(lineno, "measure_ms must be positive");
                    }
                    measure_ns = v;
                }
                "substep_us" => {
                    let v = parse_dur(value, US)?;
                    if v == 0 {
                        return err(lineno, "substep_us must be positive");
                    }
                    substep_ns = v;
                }
                _ => return err(lineno, format!("unknown header key '{key}'")),
            }
        }

        let Some(name) = name else {
            return err(0, "missing 'scenario =' header");
        };
        let Some(machine) = machine else {
            return err(0, "missing 'machine =' header");
        };
        if vms.is_empty() {
            return err(0, "a scenario needs at least one vm line");
        }
        // Instance names must be unique machine-wide (reports are
        // looked up by name).
        let mut names: Vec<String> = vms
            .iter()
            .flat_map(|vm| (0..vm.count).map(|i| vm.instance_name(i)))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        if names.len() != total {
            return err(0, "duplicate VM instance names");
        }
        let pcpus = machine.sockets * machine.cores_per_socket;
        if let Some(bad) = vms.iter().find_map(|vm| vm.pin.filter(|&p| p >= pcpus)) {
            return err(0, format!("pin={bad} outside the {pcpus}-pCPU machine"));
        }
        Ok(ScenarioSpec {
            name,
            machine,
            seed,
            warmup_ns,
            measure_ns,
            substep_ns,
            vms,
        })
    }

    /// Serialises the canonical text form;
    /// `parse(&spec.to_text())` reproduces `spec` exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario   = {}\n", self.name));
        let m = &self.machine;
        out.push_str("machine    = ");
        if let Some(n) = &m.name {
            out.push_str(&format!("name={n} "));
        }
        out.push_str(&format!(
            "sockets={} cores={} cache={}\n",
            m.sockets,
            m.cores_per_socket,
            m.cache.token()
        ));
        out.push_str(&format!("seed       = {}\n", self.seed));
        out.push_str(&format!("warmup_ms  = {}\n", self.warmup_ns / MS));
        out.push_str(&format!("measure_ms = {}\n", self.measure_ns / MS));
        out.push_str(&format!("substep_us = {}\n", self.substep_ns / US));
        for vm in &self.vms {
            out.push_str(&format!("vm {}", vm.name));
            if vm.count > 1 {
                out.push_str(&format!(" count={}", vm.count));
            }
            let ring = vm
                .workloads
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join("|");
            out.push_str(&format!(" workload={ring}"));
            match vm.seed {
                Some(VmSeed::Fixed(s)) => out.push_str(&format!(" seed={s}")),
                Some(VmSeed::Indexed(s)) => out.push_str(&format!(" seed={s}+")),
                None => {}
            }
            if let Some(w) = vm.weight {
                out.push_str(&format!(" weight={w}"));
            }
            if let Some(c) = vm.class {
                out.push_str(&format!(" class={}", c.label()));
            }
            if let Some(p) = vm.pin {
                out.push_str(&format!(" pin={p}"));
            }
            if let Some(c) = vm.cache {
                out.push_str(&format!(" cache={}", c.token()));
            }
            if let Some(fs) = vm.fault {
                out.push_str(&format!(" fault={fs}"));
            }
            out.push('\n');
        }
        out
    }

    /// Total vCPUs the scenario places.
    pub fn total_vcpus(&self) -> usize {
        self.vms
            .iter()
            .map(|vm| {
                (0..vm.count)
                    .map(|i| vm.workload_of(i).vcpus())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Consolidation ratio: vCPUs per pCPU.
    pub fn consolidation(&self) -> f64 {
        self.total_vcpus() as f64 / (self.machine.sockets * self.machine.cores_per_socket) as f64
    }

    /// Shortens warm-up and measurement (smoke tests, CI).
    pub fn quick(mut self) -> Self {
        self.warmup_ns = 300 * MS;
        self.measure_ns = 1000 * MS;
        self
    }

    // -----------------------------------------------------------------
    // Overlays: experiment plans derive axis variants of a base spec
    // (a machine swap, a different window, a finer engine sub-step)
    // without re-serialising scenario text.
    // -----------------------------------------------------------------

    /// Overlay: replaces the warm-up window (ns).
    pub fn with_warmup_ns(mut self, warmup_ns: u64) -> Self {
        self.warmup_ns = warmup_ns;
        self
    }

    /// Overlay: replaces the measured window (ns; must be positive).
    pub fn with_measure_ns(mut self, measure_ns: u64) -> Self {
        assert!(measure_ns > 0, "measure window must be positive");
        self.measure_ns = measure_ns;
        self
    }

    /// Overlay: replaces the engine sub-step (ns; must be positive).
    pub fn with_substep_ns(mut self, substep_ns: u64) -> Self {
        assert!(substep_ns > 0, "sub-step must be positive");
        self.substep_ns = substep_ns;
        self
    }

    /// Overlay: replaces the machine shape. Panics if a declared
    /// `pin=` no longer fits the new machine.
    pub fn with_machine(mut self, machine: MachineDecl) -> Self {
        let pcpus = machine.sockets * machine.cores_per_socket;
        assert!(
            self.vms.iter().all(|vm| vm.pin.is_none_or(|p| p < pcpus)),
            "a pinned VM does not fit the overlay machine"
        );
        self.machine = machine;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# demo scenario
scenario   = demo
machine    = sockets=2 cores=4 cache=i7-3770
seed       = 7
warmup_ms  = 500
measure_ms = 2000
substep_us = 50
vm web-%i  count=3 workload=io/heterogeneous/120 seed=10+
vm batch-%i count=4 workload=walk/llcf|walk/llco
vm spin    workload=spin/kernbench/4 seed=20 weight=512
vm ghost   workload=idle class=IOInt
";

    #[test]
    fn parses_the_reference_document() {
        let s = ScenarioSpec::parse(DOC).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.machine.sockets, 2);
        assert_eq!(s.machine.cores_per_socket, 4);
        assert_eq!(s.machine.cache, CachePreset::I7_3770);
        assert_eq!(s.seed, 7);
        assert_eq!(s.warmup_ns, 500 * MS);
        assert_eq!(s.measure_ns, 2000 * MS);
        assert_eq!(s.substep_ns, 50 * US);
        assert_eq!(s.vms.len(), 4);
        assert_eq!(s.vms[0].count, 3);
        assert_eq!(s.vms[0].instance_name(2), "web-2");
        assert_eq!(s.vms[0].seed, Some(VmSeed::Indexed(10)));
        // Alternation ring: instance i uses workload i mod 2.
        assert_eq!(s.vms[1].class_of(0), VcpuType::Llcf);
        assert_eq!(s.vms[1].class_of(1), VcpuType::Llco);
        assert_eq!(s.vms[1].class_of(2), VcpuType::Llcf);
        assert_eq!(s.vms[2].weight, Some(512));
        // class= overrides the derived class.
        assert_eq!(s.vms[3].class_of(0), VcpuType::IoInt);
        assert_eq!(s.total_vcpus(), 3 + 4 + 4 + 1);
        assert!((s.consolidation() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn round_trips_exactly() {
        let s = ScenarioSpec::parse(DOC).unwrap();
        let text = s.to_text();
        let back = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(back, s);
        // And the canonical form is a fixed point.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn fault_attribute_parses_and_round_trips() {
        let doc = "\
scenario = faulty
machine  = sockets=1 cores=2 cache=i7-3770
vm good  workload=walk/llcf
vm bad   workload=walk/llcf fault=panic@30ms
vm hung  workload=io/exclusive/100 fault=hang
";
        let s = ScenarioSpec::parse(doc).unwrap();
        assert_eq!(s.vms[0].fault, None);
        assert_eq!(
            s.vms[1].fault,
            Some(FaultSpec::Panic { at_cpu_ns: 30 * MS })
        );
        assert_eq!(s.vms[2].fault, Some(FaultSpec::Hang { after_cpu_ns: 0 }));
        let text = s.to_text();
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), s);
        assert!(ScenarioSpec::parse(
            "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a workload=idle fault=explode\n"
        )
        .is_err());
    }

    #[test]
    fn defaults_apply_when_headers_are_omitted() {
        let s = ScenarioSpec::parse(
            "scenario = d\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a workload=idle\n",
        )
        .unwrap();
        assert_eq!(s.seed, DEFAULT_SEED);
        assert_eq!(s.warmup_ns, DEFAULT_WARMUP_NS);
        assert_eq!(s.measure_ns, DEFAULT_MEASURE_NS);
        assert_eq!(s.substep_ns, DEFAULT_SUBSTEP_NS);
    }

    #[test]
    fn pin_and_cache_attrs_parse_and_round_trip() {
        let s = ScenarioSpec::parse(
            "scenario = pinned\n\
             machine = sockets=1 cores=8 cache=i7-3770\n\
             vm a workload=io/heterogeneous/120 seed=42 pin=0\n\
             vm b-%i count=3 workload=walk/llcf pin=0 cache=xeon-e5-4603\n\
             vm c workload=walk/llco cache=i7-3770\n",
        )
        .unwrap();
        assert_eq!(s.vms[0].pin, Some(0));
        assert_eq!(s.vms[0].cache, None);
        assert_eq!(s.vms[1].pin, Some(0));
        assert_eq!(s.vms[1].cache, Some(CachePreset::XeonE5_4603));
        assert_eq!(s.vms[2].pin, None);
        assert_eq!(s.vms[2].cache, Some(CachePreset::I7_3770));
        let back = ScenarioSpec::parse(&s.to_text()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pins_must_fit_the_machine() {
        let e = ScenarioSpec::parse(
            "scenario = x\nmachine = sockets=1 cores=2 cache=i7-3770\n\
             vm a workload=idle pin=2\n",
        )
        .unwrap_err();
        assert!(
            e.message.contains("pin=2 outside the 2-pCPU machine"),
            "{e}"
        );
        let e = ScenarioSpec::parse(
            "scenario = x\nmachine = sockets=1 cores=2 cache=i7-3770\n\
             vm a workload=idle pin=no\n",
        )
        .unwrap_err();
        assert!(e.message.contains("bad pin"), "{e}");
    }

    #[test]
    fn overlays_replace_single_fields() {
        let s = ScenarioSpec::parse(
            "scenario = o\nmachine = sockets=1 cores=2 cache=i7-3770\nvm a workload=idle\n",
        )
        .unwrap();
        let o = s
            .clone()
            .with_warmup_ns(7)
            .with_measure_ns(9)
            .with_substep_ns(11);
        assert_eq!((o.warmup_ns, o.measure_ns, o.substep_ns), (7, 9, 11));
        assert_eq!(o.vms, s.vms);
        let m = MachineDecl {
            name: Some("big".into()),
            sockets: 2,
            cores_per_socket: 4,
            cache: CachePreset::XeonE5_4603,
        };
        assert_eq!(s.clone().with_machine(m.clone()).machine, m);
    }

    #[test]
    #[should_panic(expected = "pinned VM does not fit")]
    fn machine_overlay_checks_pins() {
        let s = ScenarioSpec::parse(
            "scenario = o\nmachine = sockets=1 cores=8 cache=i7-3770\n\
             vm a workload=idle pin=7\n",
        )
        .unwrap();
        let _ = s.with_machine(MachineDecl {
            name: None,
            sockets: 1,
            cores_per_socket: 2,
            cache: CachePreset::I7_3770,
        });
    }

    #[test]
    fn seed_instance_assignment() {
        assert_eq!(VmSeed::Fixed(9).of_instance(5), 9);
        assert_eq!(VmSeed::Indexed(9).of_instance(5), 14);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a workload=warp/9\n";
        let e = ScenarioSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"), "{e}");
    }

    #[test]
    fn rejects_malformed_documents() {
        let cases = [
            ("", "missing 'scenario"),
            ("scenario = x\n", "missing 'machine"),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\n",
                "at least one vm",
            ),
            (
                "scenario = x\nmachine = sockets=0 cores=1 cache=i7-3770\nvm a workload=idle\n",
                "bad socket count",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=l4\nvm a workload=idle\n",
                "unknown cache preset",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a count=2 workload=idle\n",
                "%i",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a-%i workload=idle\n",
                "%i",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a workload=idle\nvm a workload=idle\n",
                "duplicate VM instance names",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a workload=idle seed=1x\n",
                "bad seed",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nmeasure_ms = 0\nvm a workload=idle\n",
                "measure_ms must be positive",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nwarmup_ms = 18446744073709551615\nvm a workload=idle\n",
                "overflows the ns clock",
            ),
            (
                "scenario = x\nmachine = sockets=1 cores=1 cache=i7-3770\nsubstep_us = 184467440737095517\nvm a workload=idle\n",
                "overflows the ns clock",
            ),
            (
                "scenario = x\nwhatever = 3\nmachine = sockets=1 cores=1 cache=i7-3770\nvm a workload=idle\n",
                "unknown header key",
            ),
        ];
        for (doc, needle) in cases {
            let e = ScenarioSpec::parse(doc).unwrap_err();
            assert!(
                e.message.contains(needle),
                "doc {doc:?}: expected '{needle}' in '{}'",
                e.message
            );
        }
    }
}
