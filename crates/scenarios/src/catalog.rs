//! The named scenario catalog.
//!
//! Each entry is a complete scenario document in the [`crate::spec`]
//! text format — the catalog is *data*, not code, so every entry can
//! be printed (`sweep --show <name>`), edited and re-parsed. The first
//! four entries are the repository's long-standing examples,
//! re-expressed declaratively (their examples are now thin wrappers
//! over these entries); the rest open new colocation mixes for the
//! sweep runner.

use crate::spec::{ScenarioSpec, SpecError};

/// quickstart — one VM group per application type, 16 vCPUs on 4
/// cores (the 4-to-1 consolidation the paper observes is typical).
pub const QUICKSTART: &str = "\
# One VM of each application type on a consolidated 4-core host.
scenario   = quickstart
machine    = sockets=1 cores=4 cache=i7-3770
seed       = 1
vm web-%i   count=4 workload=io/heterogeneous/120 seed=10+
vm parsec   workload=spin/kernbench/4 seed=20
vm llcf-%i  count=4 workload=walk/llcf
vm llco-%i  count=2 workload=walk/llco
vm lolcf-%i count=2 workload=walk/lolcf
";

/// webfarm — the paper's motivating workload (§1): a high-traffic web
/// site colocated with batch VMs.
pub const WEBFARM: &str = "\
# High-traffic web servers next to twelve cache-bound batch tenants.
scenario   = webfarm
machine    = sockets=1 cores=4 cache=i7-3770
seed       = 3
vm web-%i   count=4  workload=io/heterogeneous/150 seed=30+
vm batch-%i count=12 workload=walk/llcf|walk/llco|walk/lolcf
";

/// parsec-batch — parallel spin-synchronised jobs from the
/// application catalog next to cache trashers on a 2-socket host.
pub const PARSEC_BATCH: &str = "\
# A PARSEC batch night: two SMP jobs and sixteen cache-bound tenants.
scenario   = parsec-batch
machine    = name=batch sockets=2 cores=4 cache=i7-3770
seed       = 8
vm fluidanimate  workload=app/fluidanimate seed=40
vm streamcluster workload=app/streamcluster seed=41
vm tenant-%i count=16 workload=walk/llcf|walk/llco
";

/// vtrs-live — a single type-shifting VM on one core, for watching
/// the recognition system live.
pub const VTRS_LIVE: &str = "\
# One shape-shifting VM: LoLCF -> LLCF -> LLCO every two seconds.
scenario   = vtrs-live
machine    = name=live sockets=1 cores=1 cache=i7-3770
seed       = 1
vm shape-shifter workload=phased/shift/2000
";

/// webfarm-oversub — the webfarm pushed to 6.5-to-1 consolidation:
/// eight web servers, a mail tier and sixteen batch tenants on four
/// cores.
pub const WEBFARM_OVERSUB: &str = "\
# Oversubscribed web farm: 26 vCPUs on 4 cores.
scenario   = webfarm-oversub
machine    = sockets=1 cores=4 cache=i7-3770
vm web-%i   count=8  workload=io/heterogeneous/200 seed=100+
vm mail-%i  count=2  workload=io/mail/80 seed=120+
vm batch-%i count=16 workload=walk/llcf|walk/llco|walk/lolcf
";

/// memthrash — a memory-thrash colocation: trashing walkers eroding
/// cache-friendly neighbours at 4-to-1 on eight cores.
pub const MEMTHRASH: &str = "\
# Cache war: twelve trashers against twelve LLC-friendly victims.
scenario   = memthrash
machine    = sockets=1 cores=8 cache=i7-3770
vm thrash-%i count=12 workload=walk/llco
vm victim-%i count=12 workload=walk/llcf
vm quiet-%i  count=8  workload=walk/lolcf
";

/// phased-tenants — bursty, type-shifting tenants that defeat any
/// static tagging, next to steady IO and batch VMs.
pub const PHASED_TENANTS: &str = "\
# Four shape-shifters (1.5 s phases) among steady IO and batch VMs.
scenario   = phased-tenants
machine    = sockets=1 cores=4 cache=i7-3770
vm shifty-%i count=4 workload=phased/shift/1500
vm web-%i    count=4 workload=io/heterogeneous/100 seed=140+
vm llcf-%i   count=4 workload=walk/llcf
vm lolcf-%i  count=4 workload=walk/lolcf
";

/// spinfarm — three 4-way spin-synchronised jobs with trashing and
/// mail tenants across two sockets.
pub const SPINFARM: &str = "\
# Spin-lock farm: three SMP jobs, mail servers and trashers, 24 vCPUs on 8 cores.
scenario   = spinfarm
machine    = sockets=2 cores=4 cache=i7-3770
vm spin-%i   count=3 workload=spin/kernbench/4 seed=160+
vm mail-%i   count=4 workload=io/mail/120 seed=170+
vm thrash-%i count=8 workload=walk/llco
";

/// policy-duel — a balanced head-to-head mix containing every
/// application type at once; the canonical scenario for comparing all
/// five policies.
pub const POLICY_DUEL: &str = "\
# Every type at once: the head-to-head mix for policy comparisons.
scenario   = policy-duel
machine    = sockets=1 cores=4 cache=i7-3770
vm web-%i   count=4 workload=io/heterogeneous/120 seed=200+
vm spin     workload=spin/kernbench/4 seed=210
vm llcf-%i  count=4 workload=walk/llcf
vm llco-%i  count=2 workload=walk/llco
vm lolcf-%i count=2 workload=walk/lolcf
vm ghost    workload=idle
";

/// foursocket — the §4.2 scale: 48 vCPUs of all types across a
/// 4-socket Xeon E5-4603.
pub const FOURSOCKET: &str = "\
# The 4-socket case: 48 vCPUs across four sockets of four cores.
scenario   = foursocket
machine    = sockets=4 cores=4 cache=xeon-e5-4603
vm web-%i   count=8  workload=io/heterogeneous/120 seed=220+
vm spin-%i  count=2  workload=spin/kernbench/4 seed=230+
vm llcf-%i  count=12 workload=walk/llcf
vm llco-%i  count=10 workload=walk/llco
vm lolcf-%i count=10 workload=walk/lolcf
";

/// solo-calibration — the paper's solo baselines: one cache-friendly
/// walker alone on an otherwise idle 8-core host. Every normalised
/// figure divides by a run like this one; it is also the pure
/// next-event regime of the adaptive time-advance (no contention, no
/// coupling, seven idle cores the dense loop re-scans every sub-step).
pub const SOLO_CALIBRATION: &str = "\
# Solo baseline: one LLCF walker on an otherwise idle 8-core host.
scenario   = solo-calibration
machine    = sockets=1 cores=8 cache=i7-3770
vm victim   workload=walk/llcf
vm ghost-%i count=4 workload=idle
";

/// nightly-lull — the web farm after hours: the same tenant classes
/// at a fraction of the daytime pressure, leaving most cores idle
/// most of the time. Consolidation planners care about this regime —
/// light load is where over-eager quantum policies waste wakeups —
/// and it is the event-horizon core's home turf: long quiescent spans
/// with one or two busy cores.
pub const NIGHTLY_LULL: &str = "\
# After-hours lull: two batch walkers and low-rate IO on eight cores.
scenario   = nightly-lull
machine    = sockets=1 cores=8 cache=i7-3770
vm web-%i   count=4 workload=io/exclusive/40 seed=300+
vm batch-%i count=2 workload=walk/llcf
vm ghost-%i count=2 workload=idle
";

/// Every catalog entry as `(name, document)`, in sweep order.
pub const ENTRIES: [(&str, &str); 12] = [
    ("quickstart", QUICKSTART),
    ("webfarm", WEBFARM),
    ("parsec-batch", PARSEC_BATCH),
    ("vtrs-live", VTRS_LIVE),
    ("webfarm-oversub", WEBFARM_OVERSUB),
    ("memthrash", MEMTHRASH),
    ("phased-tenants", PHASED_TENANTS),
    ("spinfarm", SPINFARM),
    ("policy-duel", POLICY_DUEL),
    ("foursocket", FOURSOCKET),
    ("solo-calibration", SOLO_CALIBRATION),
    ("nightly-lull", NIGHTLY_LULL),
];

/// Catalog names in sweep order.
pub fn names() -> Vec<&'static str> {
    ENTRIES.iter().map(|(n, _)| *n).collect()
}

/// The raw scenario document for a name.
pub fn document(name: &str) -> Option<&'static str> {
    ENTRIES.iter().find(|(n, _)| *n == name).map(|(_, d)| *d)
}

/// Parses the named catalog entry. `None` for unknown names; catalog
/// documents themselves always parse (enforced by test).
pub fn load(name: &str) -> Option<ScenarioSpec> {
    document(name).map(|d| ScenarioSpec::parse(d).expect("catalog entries are well-formed"))
}

/// Parses every catalog entry, in sweep order.
pub fn load_all() -> Result<Vec<ScenarioSpec>, SpecError> {
    ENTRIES
        .iter()
        .map(|(_, d)| ScenarioSpec::parse(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{expand, machine, POLICY_NAMES};

    #[test]
    fn every_entry_parses_and_matches_its_name() {
        for (name, doc) in ENTRIES {
            let s = ScenarioSpec::parse(doc).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(s.name, name, "catalog key must equal the scenario header");
        }
    }

    #[test]
    fn every_entry_round_trips() {
        for spec in load_all().unwrap() {
            let back = ScenarioSpec::parse(&spec.to_text()).unwrap();
            assert_eq!(back, spec, "{}", spec.name);
        }
    }

    #[test]
    fn every_entry_expands_and_builds() {
        for spec in load_all().unwrap() {
            let m = machine(&spec);
            assert!(m.total_pcpus() > 0);
            let vms = expand(&spec);
            assert!(!vms.is_empty(), "{}", spec.name);
            for (v, wl) in &vms {
                assert_eq!(v.vcpus, wl.vcpu_slots(), "{}/{}", spec.name, v.name);
            }
        }
    }

    #[test]
    fn the_matrix_meets_the_acceptance_floor() {
        // The sweep acceptance criterion: >= 8 scenarios x 5 policies.
        assert!(ENTRIES.len() >= 8);
        assert_eq!(POLICY_NAMES.len(), 5);
    }

    #[test]
    fn example_backing_entries_match_the_historic_setups() {
        // These four entries are behind the examples; pin the facts
        // their byte-stable output depends on.
        let q = load("quickstart").unwrap();
        assert_eq!(q.seed, 1);
        assert_eq!(q.total_vcpus(), 16);
        let w = load("webfarm").unwrap();
        assert_eq!(w.seed, 3);
        assert_eq!(w.total_vcpus(), 16);
        let p = load("parsec-batch").unwrap();
        assert_eq!(p.seed, 8);
        assert_eq!(p.total_vcpus(), 4 + 4 + 16);
        let v = load("vtrs-live").unwrap();
        assert_eq!(v.total_vcpus(), 1);
        assert_eq!(machine(&v).total_pcpus(), 1);
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(load("doom").is_none());
        assert!(document("doom").is_none());
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let ns = names();
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ns.len());
        assert_eq!(ns[0], "quickstart");
    }
}
