//! The named scenario catalog.
//!
//! Each entry is a complete scenario document in the [`crate::spec`]
//! text format — the catalog is *data*, not code, so every entry can
//! be printed (`sweep --show <name>`), edited and re-parsed. The first
//! four entries are the repository's long-standing examples,
//! re-expressed declaratively (their examples are now thin wrappers
//! over these entries); the rest open new colocation mixes for the
//! sweep runner.

use crate::spec::{ScenarioSpec, SpecError};

/// quickstart — one VM group per application type, 16 vCPUs on 4
/// cores (the 4-to-1 consolidation the paper observes is typical).
pub const QUICKSTART: &str = "\
# One VM of each application type on a consolidated 4-core host.
scenario   = quickstart
machine    = sockets=1 cores=4 cache=i7-3770
seed       = 1
vm web-%i   count=4 workload=io/heterogeneous/120 seed=10+
vm parsec   workload=spin/kernbench/4 seed=20
vm llcf-%i  count=4 workload=walk/llcf
vm llco-%i  count=2 workload=walk/llco
vm lolcf-%i count=2 workload=walk/lolcf
";

/// webfarm — the paper's motivating workload (§1): a high-traffic web
/// site colocated with batch VMs.
pub const WEBFARM: &str = "\
# High-traffic web servers next to twelve cache-bound batch tenants.
scenario   = webfarm
machine    = sockets=1 cores=4 cache=i7-3770
seed       = 3
vm web-%i   count=4  workload=io/heterogeneous/150 seed=30+
vm batch-%i count=12 workload=walk/llcf|walk/llco|walk/lolcf
";

/// parsec-batch — parallel spin-synchronised jobs from the
/// application catalog next to cache trashers on a 2-socket host.
pub const PARSEC_BATCH: &str = "\
# A PARSEC batch night: two SMP jobs and sixteen cache-bound tenants.
scenario   = parsec-batch
machine    = name=batch sockets=2 cores=4 cache=i7-3770
seed       = 8
vm fluidanimate  workload=app/fluidanimate seed=40
vm streamcluster workload=app/streamcluster seed=41
vm tenant-%i count=16 workload=walk/llcf|walk/llco
";

/// vtrs-live — a single type-shifting VM on one core, for watching
/// the recognition system live.
pub const VTRS_LIVE: &str = "\
# One shape-shifting VM: LoLCF -> LLCF -> LLCO every two seconds.
scenario   = vtrs-live
machine    = name=live sockets=1 cores=1 cache=i7-3770
seed       = 1
vm shape-shifter workload=phased/shift/2000
";

/// webfarm-oversub — the webfarm pushed to 6.5-to-1 consolidation:
/// eight web servers, a mail tier and sixteen batch tenants on four
/// cores.
pub const WEBFARM_OVERSUB: &str = "\
# Oversubscribed web farm: 26 vCPUs on 4 cores.
scenario   = webfarm-oversub
machine    = sockets=1 cores=4 cache=i7-3770
vm web-%i   count=8  workload=io/heterogeneous/200 seed=100+
vm mail-%i  count=2  workload=io/mail/80 seed=120+
vm batch-%i count=16 workload=walk/llcf|walk/llco|walk/lolcf
";

/// memthrash — a memory-thrash colocation: trashing walkers eroding
/// cache-friendly neighbours at 4-to-1 on eight cores.
pub const MEMTHRASH: &str = "\
# Cache war: twelve trashers against twelve LLC-friendly victims.
scenario   = memthrash
machine    = sockets=1 cores=8 cache=i7-3770
vm thrash-%i count=12 workload=walk/llco
vm victim-%i count=12 workload=walk/llcf
vm quiet-%i  count=8  workload=walk/lolcf
";

/// phased-tenants — bursty, type-shifting tenants that defeat any
/// static tagging, next to steady IO and batch VMs.
pub const PHASED_TENANTS: &str = "\
# Four shape-shifters (1.5 s phases) among steady IO and batch VMs.
scenario   = phased-tenants
machine    = sockets=1 cores=4 cache=i7-3770
vm shifty-%i count=4 workload=phased/shift/1500
vm web-%i    count=4 workload=io/heterogeneous/100 seed=140+
vm llcf-%i   count=4 workload=walk/llcf
vm lolcf-%i  count=4 workload=walk/lolcf
";

/// spinfarm — three 4-way spin-synchronised jobs with trashing and
/// mail tenants across two sockets.
pub const SPINFARM: &str = "\
# Spin-lock farm: three SMP jobs, mail servers and trashers, 24 vCPUs on 8 cores.
scenario   = spinfarm
machine    = sockets=2 cores=4 cache=i7-3770
vm spin-%i   count=3 workload=spin/kernbench/4 seed=160+
vm mail-%i   count=4 workload=io/mail/120 seed=170+
vm thrash-%i count=8 workload=walk/llco
";

/// policy-duel — a balanced head-to-head mix containing every
/// application type at once; the canonical scenario for comparing all
/// five policies.
pub const POLICY_DUEL: &str = "\
# Every type at once: the head-to-head mix for policy comparisons.
scenario   = policy-duel
machine    = sockets=1 cores=4 cache=i7-3770
vm web-%i   count=4 workload=io/heterogeneous/120 seed=200+
vm spin     workload=spin/kernbench/4 seed=210
vm llcf-%i  count=4 workload=walk/llcf
vm llco-%i  count=2 workload=walk/llco
vm lolcf-%i count=2 workload=walk/lolcf
vm ghost    workload=idle
";

/// foursocket — the §4.2 scale: 48 vCPUs of all types across a
/// 4-socket Xeon E5-4603.
pub const FOURSOCKET: &str = "\
# The 4-socket case: 48 vCPUs across four sockets of four cores.
scenario   = foursocket
machine    = sockets=4 cores=4 cache=xeon-e5-4603
vm web-%i   count=8  workload=io/heterogeneous/120 seed=220+
vm spin-%i  count=2  workload=spin/kernbench/4 seed=230+
vm llcf-%i  count=12 workload=walk/llcf
vm llco-%i  count=10 workload=walk/llco
vm lolcf-%i count=10 workload=walk/lolcf
";

/// solo-calibration — the paper's solo baselines: one cache-friendly
/// walker alone on an otherwise idle 8-core host. Every normalised
/// figure divides by a run like this one; it is also the pure
/// next-event regime of the adaptive time-advance (no contention, no
/// coupling, seven idle cores the dense loop re-scans every sub-step).
pub const SOLO_CALIBRATION: &str = "\
# Solo baseline: one LLCF walker on an otherwise idle 8-core host.
scenario   = solo-calibration
machine    = sockets=1 cores=8 cache=i7-3770
vm victim   workload=walk/llcf
vm ghost-%i count=4 workload=idle
";

/// nightly-lull — the web farm after hours: the same tenant classes
/// at a fraction of the daytime pressure, leaving most cores idle
/// most of the time. Consolidation planners care about this regime —
/// light load is where over-eager quantum policies waste wakeups —
/// and it is the event-horizon core's home turf: long quiescent spans
/// with one or two busy cores.
pub const NIGHTLY_LULL: &str = "\
# After-hours lull: two batch walkers and low-rate IO on eight cores.
scenario   = nightly-lull
machine    = sockets=1 cores=8 cache=i7-3770
vm web-%i   count=4 workload=io/exclusive/40 seed=300+
vm batch-%i count=2 workload=walk/llcf
vm ghost-%i count=2 workload=idle
";

/// s1–s5 — the five colocation scenarios of the paper's Table 4:
/// 16 vCPUs on a 4-core single socket. These back Fig. 6 (left),
/// Fig. 8, Table 5 and the fairness table; explicit seeds pin the
/// historic per-VM streams (base seed 42 + placement index).
pub const S1: &str = "\
# Table 4, S1: 5 ConSpin (fluidanimate), 5 LLCF (bzip2), 6 LoLCF (hmmer).
scenario   = s1
machine    = name=fig6-4core sockets=1 cores=4 cache=i7-3770
vm fluidanimate workload=spin/kernbench/5 seed=42
vm bzip2-%i count=5 workload=walk/llcf
vm hmmer-%i count=6 workload=walk/lolcf
";

/// Table 4, S2 (see [`S1`]).
pub const S2: &str = "\
# Table 4, S2: 5 IOInt (SPECweb), 5 LLCF (bzip2), 6 LLCO (libquantum).
scenario   = s2
machine    = name=fig6-4core sockets=1 cores=4 cache=i7-3770
vm SPECweb-%i count=5 workload=io/heterogeneous/120 seed=42+
vm bzip2-%i count=5 workload=walk/llcf
vm libquantum-%i count=6 workload=walk/llco
";

/// Table 4, S3 (see [`S1`]).
pub const S3: &str = "\
# Table 4, S3: 5 LLCF, 5 LLCO, 6 LoLCF.
scenario   = s3
machine    = name=fig6-4core sockets=1 cores=4 cache=i7-3770
vm bzip2-%i count=5 workload=walk/llcf
vm libquantum-%i count=5 workload=walk/llco
vm hmmer-%i count=6 workload=walk/lolcf
";

/// Table 4, S4 (see [`S1`]).
pub const S4: &str = "\
# Table 4, S4: 4 IOInt, 4 ConSpin (facesim), 4 LLCF, 4 LLCO.
scenario   = s4
machine    = name=fig6-4core sockets=1 cores=4 cache=i7-3770
vm SPECweb-%i count=4 workload=io/heterogeneous/120 seed=42+
vm facesim workload=spin/kernbench/4 seed=46
vm bzip2-%i count=4 workload=walk/llcf
vm libquantum-%i count=4 workload=walk/llco
";

/// Table 4, S5 (see [`S1`]) — also the Fig. 8 comparison mix.
pub const S5: &str = "\
# Table 4, S5: 4 IOInt, 4 ConSpin, 4 LLCF, 2 LLCO, 2 LoLCF.
scenario   = s5
machine    = name=fig6-4core sockets=1 cores=4 cache=i7-3770
vm SPECweb-%i count=4 workload=io/heterogeneous/120 seed=42+
vm facesim workload=spin/kernbench/4 seed=46
vm bzip2-%i count=4 workload=walk/llcf
vm libquantum-%i count=2 workload=walk/llco
vm hmmer-%i count=2 workload=walk/lolcf
";

/// fig3-complex — the paper's Fig. 3 worked example on the 4-socket
/// Xeon: 48 vCPUs (12 IOInt⁺, 17 LLCF, 7 ConSpin⁻ as a 4+3 job pair,
/// 12 LLCO). Socket 0 is dom0's: run it under
/// `xen-credit/sockets=1-3` and `aql-sched/sockets=1-3`.
pub const FIG3_COMPLEX: &str = "\
# The Fig. 3 population: 12 IOInt+, 17 LLCF, 7 ConSpin- (4+3), 12 LLCO.
# The walkers carry the calibration host's cache overlay: the paper's
# benchmark binaries keep their i7-sized working sets on the Xeon.
scenario   = fig3-complex
machine    = name=Xeon-E5-4603 sockets=4 cores=4 cache=xeon-e5-4603
vm ioplus-%i count=12 workload=io/plus/120 seed=42+
vm llcf-%i count=17 workload=walk/llcf cache=i7-3770
vm spin-a workload=spin/kernbench/4 seed=71
vm spin-b workload=spin/kernbench/3 seed=72
vm llco-%i count=12 workload=walk/llco cache=i7-3770
";

/// pinned-calibration — a Fig. 2(b)-style calibration cell expressed
/// on the full 8-core host: the measured VM and its fillers share
/// pCPU 0 through hard `pin=` affinity while the other cores idle,
/// instead of shrinking the machine to one core.
pub const PINNED_CALIBRATION: &str = "\
# Calibration cell on the full host: 4 vCPUs pinned to pCPU 0, 7 cores idle.
scenario   = pinned-calibration
machine    = name=i7-3770 sockets=1 cores=8 cache=i7-3770
vm baseline workload=io/heterogeneous/120 seed=42 pin=0
vm filler-%i count=3 workload=walk/lolcf pin=0
";

/// Every catalog entry as `(name, document)`, in sweep order.
pub const ENTRIES: [(&str, &str); 19] = [
    ("quickstart", QUICKSTART),
    ("webfarm", WEBFARM),
    ("parsec-batch", PARSEC_BATCH),
    ("vtrs-live", VTRS_LIVE),
    ("webfarm-oversub", WEBFARM_OVERSUB),
    ("memthrash", MEMTHRASH),
    ("phased-tenants", PHASED_TENANTS),
    ("spinfarm", SPINFARM),
    ("policy-duel", POLICY_DUEL),
    ("foursocket", FOURSOCKET),
    ("solo-calibration", SOLO_CALIBRATION),
    ("nightly-lull", NIGHTLY_LULL),
    ("s1", S1),
    ("s2", S2),
    ("s3", S3),
    ("s4", S4),
    ("s5", S5),
    ("fig3-complex", FIG3_COMPLEX),
    ("pinned-calibration", PINNED_CALIBRATION),
];

/// Catalog names in sweep order.
pub fn names() -> Vec<&'static str> {
    ENTRIES.iter().map(|(n, _)| *n).collect()
}

/// The raw scenario document for a name.
pub fn document(name: &str) -> Option<&'static str> {
    ENTRIES.iter().find(|(n, _)| *n == name).map(|(_, d)| *d)
}

/// Parses the named catalog entry. `None` for unknown names; catalog
/// documents themselves always parse (enforced by test).
pub fn load(name: &str) -> Option<ScenarioSpec> {
    document(name).map(|d| ScenarioSpec::parse(d).expect("catalog entries are well-formed"))
}

/// Parses every catalog entry, in sweep order.
pub fn load_all() -> Result<Vec<ScenarioSpec>, SpecError> {
    ENTRIES
        .iter()
        .map(|(_, d)| ScenarioSpec::parse(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{expand, machine, POLICY_NAMES};

    #[test]
    fn every_entry_parses_and_matches_its_name() {
        for (name, doc) in ENTRIES {
            let s = ScenarioSpec::parse(doc).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(s.name, name, "catalog key must equal the scenario header");
        }
    }

    #[test]
    fn every_entry_round_trips() {
        for spec in load_all().unwrap() {
            let back = ScenarioSpec::parse(&spec.to_text()).unwrap();
            assert_eq!(back, spec, "{}", spec.name);
        }
    }

    #[test]
    fn every_entry_expands_and_builds() {
        for spec in load_all().unwrap() {
            let m = machine(&spec);
            assert!(m.total_pcpus() > 0);
            let vms = expand(&spec);
            assert!(!vms.is_empty(), "{}", spec.name);
            for (v, wl) in &vms {
                assert_eq!(v.vcpus, wl.vcpu_slots(), "{}/{}", spec.name, v.name);
            }
        }
    }

    #[test]
    fn the_matrix_meets_the_acceptance_floor() {
        // The sweep acceptance criterion: >= 8 scenarios x 5 policies.
        assert!(ENTRIES.len() >= 8);
        assert_eq!(POLICY_NAMES.len(), 5);
    }

    #[test]
    fn example_backing_entries_match_the_historic_setups() {
        // These four entries are behind the examples; pin the facts
        // their byte-stable output depends on.
        let q = load("quickstart").unwrap();
        assert_eq!(q.seed, 1);
        assert_eq!(q.total_vcpus(), 16);
        let w = load("webfarm").unwrap();
        assert_eq!(w.seed, 3);
        assert_eq!(w.total_vcpus(), 16);
        let p = load("parsec-batch").unwrap();
        assert_eq!(p.seed, 8);
        assert_eq!(p.total_vcpus(), 4 + 4 + 16);
        let v = load("vtrs-live").unwrap();
        assert_eq!(v.total_vcpus(), 1);
        assert_eq!(machine(&v).total_pcpus(), 1);
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(load("doom").is_none());
        assert!(document("doom").is_none());
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let ns = names();
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ns.len());
        assert_eq!(ns[0], "quickstart");
    }
}
