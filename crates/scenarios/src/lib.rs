//! Declarative scenarios for the AQL_Sched evaluation.
//!
//! The paper's claims live or die on scenario diversity: per-type
//! quanta only show their worth once IO-, memory- and CPU-bound VMs
//! are consolidated in enough different mixes. This crate turns the
//! repository's hand-coded experiment setups into *data*:
//!
//! * [`spec`] — a small hand-rolled text format ([`ScenarioSpec`])
//!   describing topology, cache preset, VM placement, workload mix,
//!   seeds and durations; parse ↔ serialise round-trips exactly.
//! * [`catalog`] — named, ready-made scenario documents: the four
//!   long-standing examples re-expressed declaratively plus new
//!   mixes (oversubscribed webfarm, memory-thrash colocation, phased
//!   tenants, spin farms, the 4-socket case).
//! * [`build`] — spec → [`aql_hv::Simulation`] construction, the
//!   seed-derivation determinism contract, and the policy registry
//!   ([`build::POLICY_NAMES`]) used by sweep matrices.
//!
//! The multi-threaded sweep runner that fans a scenario × policy ×
//! seed matrix across cores lives in `aql_experiments::sweep` (it
//! needs the table machinery); this crate stays below it so examples,
//! tests and benches can all load scenarios without pulling the
//! experiment harness in.

#![warn(missing_docs)]

pub mod build;
pub mod catalog;
pub mod spec;

pub use aql_hv::TimeMode;
pub use build::{
    build_sim, build_sim_seeded, build_sim_seeded_full, build_sim_seeded_in,
    build_sim_seeded_tuned, classes, expand, machine, parse_policy, policy_applicable, policy_for,
    run, run_seeded, run_seeded_full, run_seeded_in, run_seeded_tuned, tagged_io_vms, vcpu_classes,
    PolicySpec, POLICY_NAMES,
};
pub use spec::{CachePreset, MachineDecl, ScenarioSpec, SpecError, VmDecl, VmSeed};
