//! Fig. 5 as a Criterion bench: one representative application per
//! class swept through its quantum extremes (miniature version of the
//! full validation sweep).

use aql_bench::run_quick_token;
use aql_experiments::fig5::catalog_spec;
use aql_sim::time::MS;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_validation");
    group.sample_size(10);
    for app in ["SPECweb2009", "bzip2", "hmmer", "mcf"] {
        for q in [MS, 90 * MS] {
            group.bench_function(format!("{app}_{}", aql_sim::time::fmt_dur(q)), |b| {
                b.iter(|| {
                    let token = format!("fixed/{}", aql_sim::time::fmt_dur(q));
                    let r = run_quick_token(catalog_spec(app), &token);
                    black_box(r.total_cpu_ns())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
