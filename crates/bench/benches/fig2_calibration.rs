//! Fig. 2 calibration panels as Criterion benches: each iteration runs
//! a miniature calibration scenario (one panel, one quantum).

use aql_bench::run_quick_token;
use aql_experiments::fig2::{panel_spec, Panel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_calibration");
    group.sample_size(10);
    for panel in [Panel::ExclusiveIo, Panel::ConSpin, Panel::Llcf] {
        group.bench_function(format!("panel_{}_xen30ms_k4", panel.letter()), |b| {
            b.iter(|| {
                let r = run_quick_token(panel_spec(panel, 4), "xen-credit");
                black_box(r.total_cpu_ns())
            })
        });
        group.bench_function(format!("panel_{}_1ms_k4", panel.letter()), |b| {
            b.iter(|| {
                let r = run_quick_token(panel_spec(panel, 4), "fixed/1ms");
                black_box(r.total_cpu_ns())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
