//! Dense-grid chunking vs coalesced single-call execution at the
//! memory fixpoint — the mem-layer half of the chunk-coalescing win,
//! tracked independently of the engine.
//!
//! Each case advances a warm (fixpoint) workload by 10 ms of CPU:
//!
//! * `grid/…` replays the engine's dense chunk grid — one
//!   `exec_step_lean` call per 100 µs sub-step (100 calls);
//! * `coalesced/…` answers the same budget with one
//!   `exec_step_cached` call, which a hot [`aql_mem::RateCache`]
//!   resolves in O(1);
//! * `integrator/…` is the same single call without the rate cache —
//!   isolating the cache's contribution from plain call batching.
//!
//! `llcf` exercises the occupancy fixpoint (footprint resident in the
//! LLC), `lolcf` the L2-warmth fixpoint; `llco` never reaches a
//! fixpoint and pins the non-coalescible baseline (all three paths
//! must then cost the same — the cache may not slow the miss path).

use aql_mem::{
    exec_step, exec_step_cached, exec_step_lean, CacheSpec, LlcState, MemProfile, RateCache,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SPAN_NS: u64 = 10_000_000; // one 10 ms quiescent span
const GRID_NS: u64 = 100_000; // the engine's 100 µs sub-step

/// A warm state for `profile`: footprint filled, L2 saturated.
fn warm_state(profile: &MemProfile, spec: &CacheSpec) -> (LlcState, f64) {
    let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
    let mut warmth = 0.0;
    for _ in 0..300 {
        let _ = exec_step(profile, spec, &mut llc, 0, &mut warmth, 1_000_000);
    }
    (llc, warmth)
}

fn bench_exec_step(c: &mut Criterion) {
    let spec = CacheSpec::i7_3770();
    let cases = [
        ("llcf", MemProfile::llcf(&spec)),
        ("lolcf", MemProfile::lolcf(&spec)),
        ("llco", MemProfile::llco(&spec)),
    ];
    let mut group = c.benchmark_group("exec_step");
    group.sample_size(20);
    for (name, profile) in cases {
        let warm = warm_state(&profile, &spec);
        {
            let (llc0, w0) = warm.clone();
            group.bench_function(format!("grid/{name}"), move |b| {
                b.iter(|| {
                    let mut llc = llc0.clone();
                    let mut w = w0;
                    let mut total = 0.0;
                    for _ in 0..(SPAN_NS / GRID_NS) {
                        total += exec_step_lean(&profile, &spec, &mut llc, 0, &mut w, GRID_NS)
                            .instructions;
                    }
                    black_box(total)
                })
            });
        }
        {
            let (llc0, w0) = warm.clone();
            group.bench_function(format!("coalesced/{name}"), move |b| {
                let mut cache = RateCache::new(1);
                b.iter(|| {
                    let mut llc = llc0.clone();
                    let mut w = w0;
                    black_box(
                        exec_step_cached(&profile, &spec, &mut llc, 0, &mut w, SPAN_NS, &mut cache)
                            .instructions,
                    )
                })
            });
        }
        {
            let (llc0, w0) = warm.clone();
            group.bench_function(format!("integrator/{name}"), move |b| {
                b.iter(|| {
                    let mut llc = llc0.clone();
                    let mut w = w0;
                    black_box(
                        exec_step_lean(&profile, &spec, &mut llc, 0, &mut w, SPAN_NS).instructions,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exec_step);
criterion_main!(benches);
