//! Fig. 7 as a Criterion bench: the quantum-customisation ablation —
//! full AQL_Sched versus clustering-only with a uniform quantum.

use aql_bench::run_quick;
use aql_core::{AqlSched, AqlSchedConfig};
use aql_experiments::fig6::{fig3_scenario, usable_sockets};
use aql_sim::time::MS;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn aql(uniform: Option<u64>) -> AqlSched {
    AqlSched::new(AqlSchedConfig {
        usable_sockets: Some(usable_sockets()),
        uniform_quantum: uniform,
        ..AqlSchedConfig::default()
    })
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_customization");
    group.sample_size(10);
    group.bench_function("full_aql", |b| {
        b.iter(|| black_box(run_quick(fig3_scenario(), Box::new(aql(None))).total_cpu_ns()))
    });
    for (q, label) in [(MS, "small"), (30 * MS, "medium"), (90 * MS, "large")] {
        group.bench_function(format!("clustering_only_{label}"), |b| {
            b.iter(|| black_box(run_quick(fig3_scenario(), Box::new(aql(Some(q)))).total_cpu_ns()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
