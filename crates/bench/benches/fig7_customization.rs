//! Fig. 7 as a Criterion bench: the quantum-customisation ablation —
//! full AQL_Sched versus clustering-only with a uniform quantum.

use aql_bench::run_quick_token;
use aql_experiments::fig6::{fig3_spec, GUEST_SOCKETS};
use aql_sim::time::{fmt_dur, MS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_customization");
    group.sample_size(10);
    group.bench_function("full_aql", |b| {
        b.iter(|| {
            let token = format!("aql-sched/sockets={GUEST_SOCKETS}");
            black_box(run_quick_token(fig3_spec(), &token).total_cpu_ns())
        })
    });
    for (q, label) in [(MS, "small"), (30 * MS, "medium"), (90 * MS, "large")] {
        group.bench_function(format!("clustering_only_{label}"), |b| {
            b.iter(|| {
                let token = format!("aql-sched/sockets={GUEST_SOCKETS},uniform={}", fmt_dur(q));
                black_box(run_quick_token(fig3_spec(), &token).total_cpu_ns())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
