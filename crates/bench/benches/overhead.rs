//! §4.3 overhead micro-benchmarks: the per-invocation cost of the
//! recognition and clustering systems, and the engine's scheduler hot
//! paths. The paper claims `O(max(m, n))` complexity and "negligible"
//! overall overhead; these benches quantify it.

use aql_core::clustering::{cluster_machine, VcpuDesc};
use aql_core::cursors::{CursorLimits, Cursors};
use aql_core::{QuantumTable, Vtrs, VtrsConfig};
use aql_hv::apptype::VcpuType;
use aql_hv::ids::{SocketId, VcpuId, VmId};
use aql_hv::sched::RunQueue;
use aql_hv::vm::Prio;
use aql_hv::MachineSpec;
use aql_mem::PmuSample;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sample(i: usize) -> PmuSample {
    PmuSample {
        instructions: 1e7 + i as f64,
        llc_refs: 5e5,
        llc_misses: 2e5,
        io_events: (i % 3) as u64,
        ple_exits: (i % 7) as u64,
        ran_ns: 7_500_000,
        period_ns: 30_000_000,
    }
}

fn descs(n: usize) -> Vec<VcpuDesc> {
    (0..n)
        .map(|i| VcpuDesc {
            vcpu: VcpuId(i),
            vm: VmId(i),
            vtype: VcpuType::ALL[i % 5],
            trashing: i % 5 == 4,
        })
        .collect()
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");

    group.bench_function("cursor_equations", |b| {
        let s = sample(1);
        let limits = CursorLimits::default();
        b.iter(|| black_box(Cursors::from_sample(&s, &limits)))
    });

    for n in [16usize, 48, 256] {
        group.bench_function(format!("vtrs_observe_{n}"), |b| {
            let mut vtrs = Vtrs::new(n, VtrsConfig::default());
            let samples: Vec<PmuSample> = (0..n).map(sample).collect();
            b.iter(|| black_box(vtrs.observe(&samples).len()))
        });
        group.bench_function(format!("clustering_{n}"), |b| {
            // Scale the machine with the population (the paper's
            // O(max(m, n)) claim).
            let sockets_n = (n / 16).max(1) + 1;
            let machine =
                MachineSpec::custom("bench", sockets_n, 4, aql_mem::CacheSpec::xeon_e5_4603());
            let usable: Vec<SocketId> = (1..sockets_n).map(SocketId).collect();
            let usable = if usable.is_empty() {
                vec![SocketId(0)]
            } else {
                usable
            };
            let table = QuantumTable::paper_defaults();
            let population = descs(n);
            b.iter(|| black_box(cluster_machine(&machine, &usable, &population, &table)))
        });
    }

    group.bench_function("runqueue_push_pop", |b| {
        b.iter(|| {
            let mut q = RunQueue::new();
            for i in 0..64 {
                q.push_tail(
                    match i % 3 {
                        0 => Prio::Boost,
                        1 => Prio::Under,
                        _ => Prio::Over,
                    },
                    VcpuId(i),
                );
            }
            let mut n = 0;
            while q.pop_best().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
