//! Fig. 8 as a Criterion bench: scenario S5 under each comparator
//! policy (vTurbo, vSlicer, Microsliced, AQL_Sched).

use aql_baselines::{Microsliced, VSlicer, VTurbo};
use aql_bench::run_quick;
use aql_core::AqlSched;
use aql_experiments::fig6::scenario;
use aql_experiments::fig8::s5_io_vms;
use aql_hv::SchedPolicy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

type PolicyCtor = Box<dyn Fn() -> Box<dyn SchedPolicy>>;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_comparison");
    group.sample_size(10);
    let io_names = s5_io_vms();
    let policies: Vec<(&str, PolicyCtor)> = vec![
        ("vturbo", {
            let io = io_names.clone();
            Box::new(move || {
                let refs: Vec<&str> = io.iter().map(|s| s.as_str()).collect();
                Box::new(VTurbo::new(&refs))
            })
        }),
        ("microsliced", Box::new(|| Box::new(Microsliced::default()))),
        ("vslicer", {
            let io = io_names.clone();
            Box::new(move || {
                let refs: Vec<&str> = io.iter().map(|s| s.as_str()).collect();
                Box::new(VSlicer::new(&refs))
            })
        }),
        ("aql", Box::new(|| Box::new(AqlSched::paper_defaults()))),
    ];
    for (name, make) in policies {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_quick(scenario(5), make()).total_cpu_ns()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
