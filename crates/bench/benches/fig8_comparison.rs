//! Fig. 8 as a Criterion bench: scenario S5 under each comparator
//! policy (vTurbo, vSlicer, Microsliced, AQL_Sched).

use aql_bench::run_quick_token;
use aql_experiments::fig6::scenario_spec;
use aql_experiments::fig8::COMPARATORS;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_comparison");
    group.sample_size(10);
    for token in COMPARATORS {
        group.bench_function(token, |b| {
            b.iter(|| black_box(run_quick_token(scenario_spec(5), token).total_cpu_ns()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
