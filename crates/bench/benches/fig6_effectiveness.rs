//! Fig. 6 as a Criterion bench: scenario S5 under native Xen and under
//! AQL_Sched (miniature effectiveness comparison), plus the 4-socket
//! Fig. 3 case.

use aql_bench::run_quick_token;
use aql_experiments::fig6::{fig3_spec, scenario_spec, GUEST_SOCKETS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_effectiveness");
    group.sample_size(10);
    group.bench_function("s5_xen", |b| {
        b.iter(|| black_box(run_quick_token(scenario_spec(5), "xen-credit").total_cpu_ns()))
    });
    group.bench_function("s5_aql", |b| {
        b.iter(|| black_box(run_quick_token(scenario_spec(5), "aql-sched").total_cpu_ns()))
    });
    group.bench_function("fig3_xen_restricted", |b| {
        b.iter(|| {
            let token = format!("xen-credit/sockets={GUEST_SOCKETS}");
            black_box(run_quick_token(fig3_spec(), &token).total_cpu_ns())
        })
    });
    group.bench_function("fig3_aql", |b| {
        b.iter(|| {
            let token = format!("aql-sched/sockets={GUEST_SOCKETS}");
            black_box(run_quick_token(fig3_spec(), &token).total_cpu_ns())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
