//! Fig. 6 as a Criterion bench: scenario S5 under native Xen and under
//! AQL_Sched (miniature effectiveness comparison), plus the 4-socket
//! Fig. 3 case.

use aql_baselines::xen_credit;
use aql_bench::run_quick;
use aql_core::AqlSched;
use aql_experiments::fig6::{aql_for_fig3, fig3_scenario, scenario, usable_sockets, RestrictedXen};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_effectiveness");
    group.sample_size(10);
    group.bench_function("s5_xen", |b| {
        b.iter(|| black_box(run_quick(scenario(5), Box::new(xen_credit())).total_cpu_ns()))
    });
    group.bench_function("s5_aql", |b| {
        b.iter(|| {
            black_box(run_quick(scenario(5), Box::new(AqlSched::paper_defaults())).total_cpu_ns())
        })
    });
    group.bench_function("fig3_xen_restricted", |b| {
        b.iter(|| {
            black_box(
                run_quick(
                    fig3_scenario(),
                    Box::new(RestrictedXen::new(usable_sockets())),
                )
                .total_cpu_ns(),
            )
        })
    });
    group.bench_function("fig3_aql", |b| {
        b.iter(|| black_box(run_quick(fig3_scenario(), Box::new(aql_for_fig3())).total_cpu_ns()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
