//! Dense vs adaptive time-advance on catalog scenarios.
//!
//! Tracks the event-horizon core's speedup per regime: the light-load
//! entries (`solo-calibration`, `nightly-lull`) coalesce nearly every
//! span into one chunk per slot (expect order-of-magnitude multiples),
//! while the saturated entries are bounded by contended cache-model
//! execution, which never reaches the coalescible fixpoint (expect
//! ~1.1–2×). Compare the `dense/…` and `adaptive/…` lines pairwise;
//! `benches/exec_step.rs` tracks the mem-layer half in isolation.

use aql_scenarios::{catalog, policy_for, run_seeded_in, TimeMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SCENARIOS: [&str; 3] = ["solo-calibration", "nightly-lull", "quickstart"];

fn bench_time_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_modes");
    group.sample_size(10);
    for name in SCENARIOS {
        let spec = catalog::load(name).expect("catalog entry").quick();
        for (mode, label) in [(TimeMode::Dense, "dense"), (TimeMode::Adaptive, "adaptive")] {
            let spec = spec.clone();
            group.bench_function(format!("{label}/{name}"), move |b| {
                b.iter(|| {
                    let policy = policy_for(&spec, "xen-credit").expect("known policy");
                    black_box(run_seeded_in(&spec, policy, spec.seed, mode))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_time_modes);
criterion_main!(benches);
