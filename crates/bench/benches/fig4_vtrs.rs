//! Fig. 4 as a Criterion bench: the cost of tracing vTRS cursors for a
//! representative application, plus the raw vTRS decision path.

use aql_core::{Vtrs, VtrsConfig};
use aql_experiments::fig4::trace_app;
use aql_mem::PmuSample;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_vtrs");
    group.sample_size(10);
    group.bench_function("trace_libquantum_quick", |b| {
        let opts = aql_experiments::ExecOpts::serial();
        b.iter(|| black_box(trace_app("libquantum", true, &opts).rows.len()))
    });

    // The §4.3 hot path: one vTRS observation pass over 48 vCPUs.
    group.bench_function("vtrs_observe_48_vcpus", |b| {
        let mut vtrs = Vtrs::new(48, VtrsConfig::default());
        let samples: Vec<PmuSample> = (0..48)
            .map(|i| PmuSample {
                instructions: 1e7,
                llc_refs: 5e5,
                llc_misses: 2e5,
                io_events: (i % 3) as u64,
                ple_exits: (i % 7) as u64,
                ran_ns: 7_500_000,
                period_ns: 30_000_000,
            })
            .collect();
        b.iter(|| black_box(vtrs.observe(&samples).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
