//! Benchmark support: shared helpers for the Criterion benches.
//!
//! Each bench target regenerates a scaled-down version of one paper
//! figure or table (full-scale regeneration is the `repro` binary's
//! job; the benches track the *cost* of producing each artifact and
//! the micro-costs behind the §4.3 overhead claims).

#![warn(missing_docs)]

use aql_hv::{RunReport, SchedPolicy};
use aql_scenarios::ScenarioSpec;

/// Runs a declarative scenario in quick mode under a policy; used by
/// the figure benches so each iteration is a complete miniature
/// experiment.
pub fn run_quick(spec: ScenarioSpec, policy: Box<dyn SchedPolicy>) -> RunReport {
    aql_scenarios::run(&spec.quick(), policy)
}

/// Like [`run_quick`] but resolving the policy from its registry
/// token (e.g. `"fixed/1ms"`, `"aql-sched/sockets=1-3"`).
pub fn run_quick_token(spec: ScenarioSpec, policy: &str) -> RunReport {
    let spec = spec.quick();
    let policy = aql_scenarios::policy_for(&spec, policy)
        .unwrap_or_else(|| panic!("invalid policy token '{policy}'"));
    aql_scenarios::run(&spec, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_experiments::fig2::{panel_spec, Panel};

    #[test]
    fn quick_runner_produces_reports() {
        let r = run_quick_token(panel_spec(Panel::Lolcf, 2), "xen-credit");
        assert_eq!(r.vms.len(), 2);
    }
}
