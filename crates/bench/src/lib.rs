//! Benchmark support: shared helpers for the Criterion benches.
//!
//! Each bench target regenerates a scaled-down version of one paper
//! figure or table (full-scale regeneration is the `repro` binary's
//! job; the benches track the *cost* of producing each artifact and
//! the micro-costs behind the §4.3 overhead claims).

#![warn(missing_docs)]

use aql_hv::{RunReport, SchedPolicy};

use aql_experiments::Scenario;

/// Runs a scenario in quick mode under a policy; used by the figure
/// benches so each iteration is a complete miniature experiment.
pub fn run_quick(scenario: Scenario, policy: Box<dyn SchedPolicy>) -> RunReport {
    scenario.quick().run(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_baselines::xen_credit;
    use aql_experiments::fig2::{panel_scenario, Panel};

    #[test]
    fn quick_runner_produces_reports() {
        let r = run_quick(panel_scenario(Panel::Lolcf, 2), Box::new(xen_credit()));
        assert_eq!(r.vms.len(), 2);
    }
}
