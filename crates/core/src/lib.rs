//! AQL_Sched — the paper's contribution.
//!
//! An Adaptable Quantum Length scheduler (EuroSys 2016): instead of
//! Xen Credit's fixed 30 ms quantum, each application type gets the
//! quantum it performs best with. Four pieces compose the system:
//!
//! * [`cursors`] — equations (1)–(5) of §3.3.1: per-monitoring-period
//!   metrics are normalised into five percentage *cursors*, one per
//!   application type.
//! * [`vtrs`] — the online vCPU Type Recognition System: a sliding
//!   window of `n = 4` cursor rows per vCPU; the type is the cursor
//!   with the highest window average.
//! * [`calibration`] — the offline quantum-length calibration (§3.4):
//!   the best-quantum table (`IOInt` → 1 ms, `ConSpin` → 1 ms,
//!   `LLCF` → 90 ms, `LoLCF`/`LLCO` agnostic) plus a generic
//!   calibrator that recomputes it from sweep measurements.
//! * [`clustering`] — the two-level clustering of §3.5: Algorithm 1
//!   spreads trashing and non-trashing vCPUs across sockets,
//!   Algorithm 2 groups quantum-length-compatible vCPUs into per-pCPU
//!   pools and configures each pool's quantum.
//! * [`aql`] — the [`aql::AqlSched`] scheduling policy tying it all to
//!   the hypervisor's CPU pools.

#![warn(missing_docs)]

pub mod aql;
pub mod calibration;
pub mod clustering;
pub mod cursors;
pub mod vtrs;

pub use aql::{AqlSched, AqlSchedConfig};
pub use calibration::{Calibrator, QuantumTable};
pub use clustering::{cluster_machine, ClusterInfo, ClusterPlan, VcpuDesc};
pub use cursors::{CursorLimits, Cursors};
pub use vtrs::{Vtrs, VtrsConfig};
