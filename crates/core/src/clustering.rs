//! Two-level vCPU clustering (§3.5, Algorithms 1 and 2).
//!
//! After each vTRS decision, vCPUs are organised into clusters so that
//! those performing best with the same quantum share a pool of pCPUs:
//!
//! * **Algorithm 1** (machine level) splits vCPUs into *trashing*
//!   (`LLCO`, plus `IOInt⁺`/`ConSpin⁺` whose LLCO cursor is high) and
//!   *non-trashing* groups and deals them out to sockets, keeping
//!   same-VM vCPUs adjacent (NUMA) and LoLCF ahead of the non-trashing
//!   list so LLCF vCPUs land away from disturbers.
//! * **Algorithm 2** (socket level) groups vCPUs by *quantum-length
//!   compatibility* (QLC), uses the quantum-agnostic types (`LoLCF`,
//!   `LLCO`) to balance cluster sizes, assigns `k = vCPUs/pCPUs`
//!   vCPUs per pCPU for fairness, and parks the unavoidable mixed
//!   leftovers in a default-quantum (30 ms) cluster.
//!
//! Note on the paper text: Algorithm 1's line 5 tests
//! `max(...) = LLCF_cur_avg` for membership of the *trashing* list,
//! contradicting the prose ("vCPUs which are part of the trashing list
//! are LLCO..."); the `LLCF` there is an evident typo for `LLCO` and
//! this implementation follows the prose. The worked example (Fig. 3)
//! also implies the trashing list is ordered with `LLCO` first — that
//! ordering is applied here and validated by the
//! `fig3_worked_example` test.

use aql_hv::apptype::VcpuType;
use aql_hv::ids::{PcpuId, PoolId, SocketId, VcpuId, VmId};
use aql_hv::pool::PoolSpec;
use aql_hv::topology::MachineSpec;
use aql_sim::time::fmt_dur;

use crate::calibration::QuantumTable;

/// What clustering needs to know about one vCPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcpuDesc {
    /// The vCPU.
    pub vcpu: VcpuId,
    /// Its VM (same-VM vCPUs are kept on one socket where possible).
    pub vm: VmId,
    /// The vTRS-recognised type.
    pub vtype: VcpuType,
    /// Whether the vCPU is a trashing disturber (`LLCO`, `IOInt⁺`,
    /// `ConSpin⁺`).
    pub trashing: bool,
}

impl VcpuDesc {
    /// The paper's annotated notation: `IOInt+`, `ConSpin-`, ...
    pub fn annotated(&self) -> String {
        match self.vtype {
            VcpuType::IoInt | VcpuType::ConSpin => {
                format!("{}{}", self.vtype, if self.trashing { "+" } else { "-" })
            }
            _ => self.vtype.to_string(),
        }
    }
}

/// One cluster of the resulting plan (reporting view).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfo {
    /// Paper-style label, e.g. `C3^90ms`.
    pub label: String,
    /// Socket hosting the cluster.
    pub socket: SocketId,
    /// Configured quantum (ns).
    pub quantum_ns: u64,
    /// Member vCPUs.
    pub vcpus: Vec<VcpuId>,
    /// pCPUs of the cluster's pool.
    pub pcpus: Vec<PcpuId>,
    /// Whether this is a mixed/default-quantum cluster.
    pub is_default: bool,
}

/// A complete clustering decision, ready for
/// [`aql_hv::engine::Hypervisor::apply_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    /// Pool layout (one pool per cluster plus, possibly, an idle pool
    /// for unused pCPUs).
    pub pools: Vec<PoolSpec>,
    /// vCPU → pool assignment, indexed by vCPU id.
    pub assignment: Vec<PoolId>,
    /// Reporting view of the clusters (excludes the idle pool).
    pub clusters: Vec<ClusterInfo>,
}

/// Algorithm 1: deal vCPUs out to sockets, trashing first.
///
/// Returns per-socket descriptor lists, in `usable_sockets` order.
pub fn first_level(descs: &[VcpuDesc], usable_sockets: &[SocketId]) -> Vec<Vec<VcpuDesc>> {
    assert!(!usable_sockets.is_empty(), "need at least one socket");
    // Line 3: same-VM vCPUs adjacent.
    let mut ordered: Vec<VcpuDesc> = descs.to_vec();
    ordered.sort_by_key(|d| (d.vm, d.vcpu));
    // Lines 4-10 (with the LLCF→LLCO typo corrected): split.
    let mut trashing: Vec<VcpuDesc> = Vec::new();
    let mut non_trashing: Vec<VcpuDesc> = Vec::new();
    for d in ordered {
        if d.trashing {
            trashing.push(d);
        } else {
            non_trashing.push(d);
        }
    }
    // Fig. 3 ordering: agnostic trashers (LLCO) ahead of typed ones.
    trashing.sort_by_key(|d| (d.vtype != VcpuType::Llco, d.vm, d.vcpu));
    // Line 11: LoLCF at the head of the non-trashing list.
    non_trashing.sort_by_key(|d| (d.vtype != VcpuType::Lolcf, d.vm, d.vcpu));

    // Lines 12-17: chunk the concatenated stream over the sockets.
    let total = trashing.len() + non_trashing.len();
    let per_socket = total.div_ceil(usable_sockets.len());
    let mut stream = trashing;
    stream.extend(non_trashing);
    let mut out: Vec<Vec<VcpuDesc>> = Vec::with_capacity(usable_sockets.len());
    let mut it = stream.into_iter();
    for _ in usable_sockets {
        out.push(it.by_ref().take(per_socket).collect());
    }
    debug_assert!(it.next().is_none(), "stream fully consumed");
    out
}

/// One socket's share of the plan, produced by [`second_level`].
#[derive(Debug, Clone)]
pub struct SocketClusters {
    /// Clusters formed on the socket: (quantum, vCPUs, pCPUs, default?).
    pub clusters: Vec<(u64, Vec<VcpuId>, Vec<PcpuId>, bool)>,
    /// pCPUs of the socket left without vCPUs.
    pub spare_pcpus: Vec<PcpuId>,
}

/// Algorithm 2: cluster one socket's vCPUs by quantum-length
/// compatibility and assign pCPU pools fairly.
pub fn second_level(vcpus: &[VcpuDesc], pcpus: &[PcpuId], table: &QuantumTable) -> SocketClusters {
    assert!(!pcpus.is_empty(), "socket without pCPUs");
    if vcpus.is_empty() {
        return SocketClusters {
            clusters: Vec::new(),
            spare_pcpus: pcpus.to_vec(),
        };
    }
    // Lines 2-7: one candidate cluster per calibrated quantum;
    // agnostic vCPUs (LoLCF, LLCO) held aside for balancing.
    let mut clusters: Vec<(u64, Vec<VcpuDesc>)> = Vec::new();
    let mut agnostic: Vec<VcpuDesc> = Vec::new();
    for q in table.distinct_quanta() {
        let members: Vec<VcpuDesc> = vcpus
            .iter()
            .filter(|d| table.best_for(d.vtype) == Some(q))
            .copied()
            .collect();
        if !members.is_empty() {
            clusters.push((q, members));
        }
    }
    for d in vcpus {
        if table.best_for(d.vtype).is_none() {
            agnostic.push(*d);
        }
    }

    // Fairness unit (line 11): k vCPUs per pCPU.
    let k = vcpus.len().div_ceil(pcpus.len()).max(1);

    // Line 10: agnostic vCPUs balance the clusters — first top up each
    // cluster to a multiple of k, then deal out the remainder in
    // k-sized chunks. A socket of only-agnostic vCPUs becomes a single
    // default-quantum cluster.
    let mut agnostic = std::collections::VecDeque::from(agnostic);
    let mut default_only = false;
    if clusters.is_empty() {
        if !agnostic.is_empty() {
            clusters.push((table.default_quantum_ns, agnostic.drain(..).collect()));
            default_only = true;
        }
    } else {
        for (_, members) in &mut clusters {
            while members.len() % k != 0 {
                match agnostic.pop_front() {
                    Some(d) => members.push(d),
                    None => break,
                }
            }
        }
        // Remaining agnostic chunks join clusters starting from the
        // last (the paper's Table 5 pairs them with the LLCF cluster).
        let mut i = 0;
        while !agnostic.is_empty() {
            let chunk = k.min(agnostic.len());
            let idx = clusters.len() - 1 - (i % clusters.len());
            for _ in 0..chunk {
                let d = agnostic.pop_front().expect("non-empty");
                clusters[idx].1.push(d);
            }
            i += 1;
        }
    }

    // Keep VMs whole where the walk allows it: the walk consumes each
    // cluster front-to-back in k-chunks and the final partial chunk
    // lands in the mixed/default cluster, so large VM groups go first
    // (they chunk cleanly) and small groups pool into the leftover —
    // splitting as few VMs as possible (the paper's same-VM-adjacency
    // ordering serves the same goal at the socket level).
    for (_, members) in &mut clusters {
        let mut group_size: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for d in members.iter() {
            *group_size.entry(d.vm.index()).or_insert(0) += 1;
        }
        members.sort_by_key(|d| (std::cmp::Reverse(group_size[&d.vm.index()]), d.vm, d.vcpu));
    }

    // Lines 11-30: walk the pCPUs, taking k vCPUs at a time; when a
    // cluster runs short, the mixed set goes to the default cluster.
    let mut out: Vec<(u64, Vec<VcpuId>, Vec<PcpuId>, bool)> = clusters
        .iter()
        .map(|(q, _)| (*q, Vec::new(), Vec::new(), default_only))
        .collect();
    let mut default_cluster: (u64, Vec<VcpuId>, Vec<PcpuId>, bool) =
        (table.default_quantum_ns, Vec::new(), Vec::new(), true);
    let mut spare_pcpus: Vec<PcpuId> = Vec::new();
    let mut ci = 0; // current cluster index
    let mut offset = 0; // consumed vCPUs within current cluster
    for &p in pcpus {
        // Skip exhausted clusters.
        while ci < clusters.len() && offset >= clusters[ci].1.len() {
            ci += 1;
            offset = 0;
        }
        if ci >= clusters.len() {
            spare_pcpus.push(p);
            continue;
        }
        let remaining = clusters[ci].1.len() - offset;
        if remaining >= k {
            // Line 14-16: a clean k-sized set from one cluster.
            for d in &clusters[ci].1[offset..offset + k] {
                out[ci].1.push(d.vcpu);
            }
            out[ci].2.push(p);
            offset += k;
        } else {
            // Lines 17-24: mixed leftovers → default cluster.
            let mut taken = 0;
            while taken < k && ci < clusters.len() {
                let avail = clusters[ci].1.len() - offset;
                let grab = avail.min(k - taken);
                for d in &clusters[ci].1[offset..offset + grab] {
                    default_cluster.1.push(d.vcpu);
                }
                offset += grab;
                taken += grab;
                if offset >= clusters[ci].1.len() {
                    ci += 1;
                    offset = 0;
                }
            }
            default_cluster.2.push(p);
        }
    }
    while ci < clusters.len() && offset >= clusters[ci].1.len() {
        ci += 1;
        offset = 0;
    }
    debug_assert!(
        ci >= clusters.len(),
        "every vCPU must be placed (k covers the socket)"
    );
    if !default_cluster.1.is_empty() {
        out.push(default_cluster);
    }
    out.retain(|(_, vcpus, pcpus, _)| !vcpus.is_empty() && !pcpus.is_empty());
    SocketClusters {
        clusters: out,
        spare_pcpus,
    }
}

/// Runs both levels and assembles a machine-wide [`ClusterPlan`].
///
/// `usable_sockets` lets the caller reserve sockets (e.g. for dom0 as
/// in Fig. 3); the reserved sockets' pCPUs join an idle default pool.
pub fn cluster_machine(
    machine: &MachineSpec,
    usable_sockets: &[SocketId],
    descs: &[VcpuDesc],
    table: &QuantumTable,
) -> ClusterPlan {
    let total_vcpus = descs.len();
    let per_socket = first_level(descs, usable_sockets);

    let mut pools: Vec<PoolSpec> = Vec::new();
    let mut clusters: Vec<ClusterInfo> = Vec::new();
    let mut assignment: Vec<PoolId> = vec![PoolId(usize::MAX); total_vcpus];
    let mut spare: Vec<PcpuId> = Vec::new();

    // Sockets not in `usable_sockets` contribute idle pCPUs.
    for s in 0..machine.sockets {
        if !usable_sockets.contains(&SocketId(s)) {
            spare.extend(machine.pcpus_of_socket(SocketId(s)));
        }
    }

    let mut label_counter = 0usize;
    for (si, socket) in usable_sockets.iter().enumerate() {
        let pcpus = machine.pcpus_of_socket(*socket);
        let sc = second_level(&per_socket[si], &pcpus, table);
        spare.extend(sc.spare_pcpus);
        for (q, vcpus, cpus, is_default) in sc.clusters {
            label_counter += 1;
            let pool_id = PoolId(pools.len());
            pools.push(PoolSpec::new(cpus.clone(), q));
            for v in &vcpus {
                assignment[v.index()] = pool_id;
            }
            clusters.push(ClusterInfo {
                label: format!("C{}^{}", label_counter, fmt_dur(q)),
                socket: *socket,
                quantum_ns: q,
                vcpus,
                pcpus: cpus,
                is_default,
            });
        }
    }
    if !spare.is_empty() {
        pools.push(PoolSpec::new(spare, table.default_quantum_ns));
    }
    debug_assert!(
        assignment.iter().all(|p| p.index() != usize::MAX),
        "every vCPU assigned"
    );
    ClusterPlan {
        pools,
        assignment,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_mem::CacheSpec;

    fn desc(i: usize, vm: usize, t: VcpuType, trashing: bool) -> VcpuDesc {
        VcpuDesc {
            vcpu: VcpuId(i),
            vm: VmId(vm),
            vtype: t,
            trashing,
        }
    }

    /// Builds the Fig. 3 population: 12 IOInt+, 7 ConSpin-, 17 LLCF,
    /// 12 LLCO — 48 single-vCPU VMs in that construction order.
    fn fig3_descs() -> Vec<VcpuDesc> {
        let mut v = Vec::new();
        let mut idx = 0;
        let mut push = |t: VcpuType, trashing: bool, n: usize, v: &mut Vec<VcpuDesc>| {
            for _ in 0..n {
                v.push(desc(idx, idx, t, trashing));
                idx += 1;
            }
        };
        // Paper VM order (implied by Fig. 3's socket contents): the
        // LLCF VMs precede the ConSpin VMs.
        push(VcpuType::IoInt, true, 12, &mut v);
        push(VcpuType::Llcf, false, 17, &mut v);
        push(VcpuType::ConSpin, false, 7, &mut v);
        push(VcpuType::Llco, true, 12, &mut v);
        v
    }

    fn xeon3() -> (MachineSpec, Vec<SocketId>) {
        // The Fig. 3 machine: 4 sockets × 4 pCPUs, one socket kept for
        // dom0 → 3 usable sockets.
        let m = MachineSpec::xeon_e5_4603();
        (m, vec![SocketId(1), SocketId(2), SocketId(3)])
    }

    #[test]
    fn first_level_balances_and_separates() {
        let descs = fig3_descs();
        let (_, sockets) = xeon3();
        let per = first_level(&descs, &sockets);
        assert_eq!(per.len(), 3);
        for s in &per {
            assert_eq!(s.len(), 16, "each socket gets 16 vCPUs");
        }
        // Socket 0: trashing first — 12 LLCO then 4 IOInt+.
        let s0: Vec<VcpuType> = per[0].iter().map(|d| d.vtype).collect();
        assert_eq!(s0.iter().filter(|t| **t == VcpuType::Llco).count(), 12);
        assert_eq!(s0.iter().filter(|t| **t == VcpuType::IoInt).count(), 4);
        // Socket 1: the remaining 8 IOInt+ and the first 8 LLCF.
        let s1: Vec<VcpuType> = per[1].iter().map(|d| d.vtype).collect();
        assert_eq!(s1.iter().filter(|t| **t == VcpuType::IoInt).count(), 8);
        assert_eq!(s1.iter().filter(|t| **t == VcpuType::Llcf).count(), 8);
        // Socket 2: 9 LLCF + 7 ConSpin-.
        let s2: Vec<VcpuType> = per[2].iter().map(|d| d.vtype).collect();
        assert_eq!(s2.iter().filter(|t| **t == VcpuType::Llcf).count(), 9);
        assert_eq!(s2.iter().filter(|t| **t == VcpuType::ConSpin).count(), 7);
    }

    #[test]
    fn fig3_worked_example() {
        let descs = fig3_descs();
        let (machine, sockets) = xeon3();
        let table = QuantumTable::paper_defaults();
        let plan = cluster_machine(&machine, &sockets, &descs, &table);

        // Six clusters, as in the paper.
        assert_eq!(plan.clusters.len(), 6, "clusters: {:#?}", plan.clusters);

        // Socket 1 (first usable): a unique 1 ms cluster of 16.
        let s1: Vec<&ClusterInfo> = plan
            .clusters
            .iter()
            .filter(|c| c.socket == SocketId(1))
            .collect();
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].quantum_ns, aql_sim::time::MS);
        assert_eq!(s1[0].vcpus.len(), 16);
        assert_eq!(s1[0].pcpus.len(), 4);

        // Socket 2: one 1 ms cluster (8 IOInt+) and one 90 ms cluster
        // (8 LLCF), two pCPUs each.
        let mut s2: Vec<&ClusterInfo> = plan
            .clusters
            .iter()
            .filter(|c| c.socket == SocketId(2))
            .collect();
        s2.sort_by_key(|c| c.quantum_ns);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2[0].quantum_ns, aql_sim::time::MS);
        assert_eq!(s2[0].vcpus.len(), 8);
        assert_eq!(s2[0].pcpus.len(), 2);
        assert_eq!(s2[1].quantum_ns, 90 * aql_sim::time::MS);
        assert_eq!(s2[1].vcpus.len(), 8);
        assert_eq!(s2[1].pcpus.len(), 2);

        // Socket 3: 90 ms cluster of 8 LLCF, 1 ms cluster of 4
        // ConSpin-, and a default 30 ms cluster of the leftovers
        // (1 LLCF + 3 ConSpin-).
        let mut s3: Vec<&ClusterInfo> = plan
            .clusters
            .iter()
            .filter(|c| c.socket == SocketId(3))
            .collect();
        s3.sort_by_key(|c| (c.is_default, c.quantum_ns));
        assert_eq!(s3.len(), 3);
        let one_ms = s3
            .iter()
            .find(|c| c.quantum_ns == aql_sim::time::MS && !c.is_default)
            .unwrap();
        assert_eq!(one_ms.vcpus.len(), 4);
        let ninety = s3
            .iter()
            .find(|c| c.quantum_ns == 90 * aql_sim::time::MS)
            .unwrap();
        assert_eq!(ninety.vcpus.len(), 8);
        assert_eq!(ninety.pcpus.len(), 2);
        let default = s3.iter().find(|c| c.is_default).unwrap();
        assert_eq!(default.quantum_ns, 30 * aql_sim::time::MS);
        assert_eq!(default.vcpus.len(), 4);
        assert_eq!(default.pcpus.len(), 1);

        // Plan sanity: pools partition the machine.
        let total_pool_pcpus: usize = plan.pools.iter().map(|p| p.pcpus.len()).sum();
        assert_eq!(total_pool_pcpus, machine.total_pcpus());
        // Every vCPU assigned to a valid pool.
        for p in &plan.assignment {
            assert!(p.index() < plan.pools.len());
        }
    }

    #[test]
    fn vcpus_conserved_by_plan() {
        let descs = fig3_descs();
        let (machine, sockets) = xeon3();
        let plan = cluster_machine(&machine, &sockets, &descs, &QuantumTable::paper_defaults());
        let mut seen: Vec<usize> = plan
            .clusters
            .iter()
            .flat_map(|c| c.vcpus.iter().map(|v| v.index()))
            .collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..48).collect::<Vec<_>>(),
            "every vCPU in exactly one cluster"
        );
    }

    #[test]
    fn same_vm_vcpus_stay_on_one_socket_when_possible() {
        // Two 4-vCPU LLCF VMs and 8 single-vCPU LoLCF VMs over 2
        // sockets: each SMP VM must land whole on a socket.
        let mut descs = Vec::new();
        for i in 0..4 {
            descs.push(desc(i, 0, VcpuType::Llcf, false));
        }
        for i in 4..8 {
            descs.push(desc(i, 1, VcpuType::Llcf, false));
        }
        for i in 8..16 {
            descs.push(desc(i, 2 + i, VcpuType::Lolcf, false));
        }
        let sockets = vec![SocketId(0), SocketId(1)];
        let per = first_level(&descs, &sockets);
        for vm in [VmId(0), VmId(1)] {
            let on_s0 = per[0].iter().filter(|d| d.vm == vm).count();
            let on_s1 = per[1].iter().filter(|d| d.vm == vm).count();
            assert!(
                on_s0 == 0 || on_s1 == 0,
                "{vm} split across sockets: {on_s0}/{on_s1}"
            );
        }
    }

    #[test]
    fn all_agnostic_socket_forms_default_cluster() {
        let descs: Vec<VcpuDesc> = (0..8).map(|i| desc(i, i, VcpuType::Llco, true)).collect();
        let machine = MachineSpec::custom("1s", 1, 2, CacheSpec::i7_3770());
        let plan = cluster_machine(
            &machine,
            &[SocketId(0)],
            &descs,
            &QuantumTable::paper_defaults(),
        );
        assert_eq!(plan.clusters.len(), 1);
        assert!(plan.clusters[0].is_default);
        assert_eq!(plan.clusters[0].quantum_ns, 30 * aql_sim::time::MS);
        assert_eq!(plan.clusters[0].vcpus.len(), 8);
    }

    #[test]
    fn fewer_vcpus_than_pcpus_leaves_spares_in_a_pool() {
        let descs = vec![desc(0, 0, VcpuType::IoInt, false)];
        let machine = MachineSpec::custom("1s", 1, 4, CacheSpec::i7_3770());
        let plan = cluster_machine(
            &machine,
            &[SocketId(0)],
            &descs,
            &QuantumTable::paper_defaults(),
        );
        // One 1 ms cluster with one pCPU; three spare pCPUs pooled.
        let total_pcpus: usize = plan.pools.iter().map(|p| p.pcpus.len()).sum();
        assert_eq!(total_pcpus, 4);
        assert_eq!(plan.clusters.len(), 1);
        assert_eq!(plan.clusters[0].pcpus.len(), 1);
        assert_eq!(plan.pools.len(), 2);
    }

    #[test]
    fn excluded_socket_pcpus_go_idle() {
        let descs = vec![desc(0, 0, VcpuType::Llcf, false)];
        let machine = MachineSpec::custom("2s", 2, 2, CacheSpec::i7_3770());
        let plan = cluster_machine(
            &machine,
            &[SocketId(1)],
            &descs,
            &QuantumTable::paper_defaults(),
        );
        // The cluster must live on socket 1.
        assert_eq!(plan.clusters[0].socket, SocketId(1));
        for p in &plan.clusters[0].pcpus {
            assert!(p.index() >= 2, "cluster pCPU on the wrong socket");
        }
        let total_pcpus: usize = plan.pools.iter().map(|p| p.pcpus.len()).sum();
        assert_eq!(total_pcpus, 4);
    }

    #[test]
    fn annotated_labels() {
        assert_eq!(desc(0, 0, VcpuType::IoInt, true).annotated(), "IOInt+");
        assert_eq!(desc(0, 0, VcpuType::ConSpin, false).annotated(), "ConSpin-");
        assert_eq!(desc(0, 0, VcpuType::Llcf, false).annotated(), "LLCF");
    }
}
