//! The AQL_Sched scheduling policy.
//!
//! Ties vTRS, the calibrated quantum table and the two-level clustering
//! to the hypervisor's CPU pools: every monitoring period the PMU
//! samples feed vTRS; every `n` periods (one full recognition window)
//! the vCPU types are re-evaluated and, when they changed, a new
//! [`ClusterPlan`] is applied. Scheduling *within* a pool remains the
//! native Credit scheduler, exactly as in the paper ("scheduling within
//! a cluster is ensured by the native scheduler").

use std::any::Any;

use aql_hv::engine::Hypervisor;
use aql_hv::ids::SocketId;
use aql_hv::policy::SchedPolicy;
use aql_mem::PmuSample;
use aql_sim::time::SimTime;

use crate::calibration::QuantumTable;
use crate::clustering::{cluster_machine, ClusterPlan, VcpuDesc};
use crate::cursors::Cursors;
use crate::vtrs::{Vtrs, VtrsConfig};

/// AQL_Sched configuration.
#[derive(Debug, Clone)]
pub struct AqlSchedConfig {
    /// vTRS window and cursor limits.
    pub vtrs: VtrsConfig,
    /// Calibrated best-quantum table.
    pub table: QuantumTable,
    /// Sockets available for guest vCPUs (`None` = all). The paper
    /// reserves one socket for dom0 on the 4-socket machine (Fig. 3).
    pub usable_sockets: Option<Vec<SocketId>>,
    /// Cursor-history periods to record per vCPU (0 = off); used to
    /// regenerate Fig. 4.
    pub record_history: usize,
    /// Disables the quantum-customisation step: clustering still runs,
    /// but every pool is configured with this uniform quantum. Used by
    /// the Fig. 7 ablation ("the quantum length customization step was
    /// discarded").
    pub uniform_quantum: Option<u64>,
    /// Type SMP VMs by majority vote over their vCPUs: threads of one
    /// parallel application belong together, and a straggler thread
    /// that happened not to spin during a window must not be split
    /// away from its siblings (cross-pool barriers are disastrous).
    pub vm_majority_typing: bool,
    /// Apply a new cluster plan only after the type signature has been
    /// observed this many consecutive decision windows (debounce):
    /// "frequent type variations imply frequent vCPU migrations ...
    /// known to be negative for performance" (§3.3.1).
    pub confirm_windows: u32,
}

impl Default for AqlSchedConfig {
    fn default() -> Self {
        AqlSchedConfig {
            vtrs: VtrsConfig::default(),
            table: QuantumTable::paper_defaults(),
            usable_sockets: None,
            record_history: 0,
            uniform_quantum: None,
            vm_majority_typing: true,
            confirm_windows: 2,
        }
    }
}

/// The Adaptable Quantum Length scheduler.
pub struct AqlSched {
    cfg: AqlSchedConfig,
    vtrs: Option<Vtrs>,
    periods: u64,
    last_signature: Option<Vec<(aql_hv::apptype::VcpuType, bool)>>,
    pending_signature: Option<(Vec<(aql_hv::apptype::VcpuType, bool)>, u32)>,
    last_plan: Option<ClusterPlan>,
    history: Vec<Vec<Cursors>>,
    reclusterings: u64,
    /// Reusable per-monitoring-period sample buffer (the monitor path
    /// runs every 30 ms and must not allocate).
    samples: Vec<PmuSample>,
}

impl AqlSched {
    /// Creates the policy with the given configuration.
    pub fn new(cfg: AqlSchedConfig) -> Self {
        AqlSched {
            cfg,
            vtrs: None,
            periods: 0,
            last_signature: None,
            pending_signature: None,
            last_plan: None,
            history: Vec::new(),
            reclusterings: 0,
            samples: Vec::new(),
        }
    }

    /// Creates the policy with the paper's default configuration.
    pub fn paper_defaults() -> Self {
        AqlSched::new(AqlSchedConfig::default())
    }

    /// The most recent cluster plan, if one was applied.
    pub fn last_plan(&self) -> Option<&ClusterPlan> {
        self.last_plan.as_ref()
    }

    /// Recorded cursor history of a vCPU (empty unless
    /// `record_history > 0`).
    pub fn cursor_history(&self, vcpu: usize) -> &[Cursors] {
        self.history.get(vcpu).map_or(&[], |h| h.as_slice())
    }

    /// Number of times a new cluster plan was applied.
    pub fn reclusterings(&self) -> u64 {
        self.reclusterings
    }

    /// Current vTRS view (available after the first monitoring period).
    pub fn vtrs(&self) -> Option<&Vtrs> {
        self.vtrs.as_ref()
    }

    fn usable_sockets(&self, hv: &Hypervisor) -> Vec<SocketId> {
        self.cfg
            .usable_sockets
            .clone()
            .unwrap_or_else(|| (0..hv.machine.sockets).map(SocketId).collect())
    }
}

impl SchedPolicy for AqlSched {
    fn name(&self) -> &str {
        "aql-sched"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        self.vtrs = Some(Vtrs::new(hv.vcpus.len(), self.cfg.vtrs));
        if self.cfg.record_history > 0 {
            self.history = vec![Vec::new(); hv.vcpus.len()];
        }
        // Until the first recognition window completes, run as native
        // Xen: one machine-wide pool at the default quantum.
        let all = (0..hv.machine.total_pcpus())
            .map(aql_hv::ids::PcpuId)
            .collect();
        let assignment = vec![aql_hv::ids::PoolId(0); hv.vcpus.len()];
        hv.apply_plan(
            vec![aql_hv::pool::PoolSpec::new(
                all,
                self.cfg.table.default_quantum_ns,
            )],
            assignment,
        )
        .expect("machine-wide pool is always valid");
    }

    fn on_monitor(&mut self, hv: &mut Hypervisor, _now: SimTime) {
        let vtrs = self.vtrs.as_mut().expect("init ran");
        self.samples.clear();
        self.samples.extend(hv.vcpus.iter().map(|v| v.last_sample));
        let cursors = vtrs.observe(&self.samples);
        if self.cfg.record_history > 0 {
            for (i, c) in cursors.iter().enumerate() {
                if self.history[i].len() < self.cfg.record_history {
                    self.history[i].push(*c);
                }
            }
        }
        self.periods += 1;
        // Decide after each full window (the paper's n periods).
        if !self.periods.is_multiple_of(self.cfg.vtrs.window as u64) {
            return;
        }
        let mut signature: Vec<(aql_hv::apptype::VcpuType, bool)> = (0..hv.vcpus.len())
            .map(|i| {
                let previous = self.last_signature.as_ref().map(|sig| sig[i].1);
                (vtrs.type_of(i), vtrs.is_trashing_hysteresis(i, previous))
            })
            .collect();
        if self.cfg.vm_majority_typing {
            // Threads of one application belong together: type each VM
            // by the majority of its vCPUs.
            for vm in &hv.vms {
                if vm.vcpus.len() < 2 {
                    continue;
                }
                let mut counts = [0usize; 5];
                for v in &vm.vcpus {
                    let t = signature[v.index()].0;
                    let idx = aql_hv::apptype::VcpuType::ALL
                        .iter()
                        .position(|&x| x == t)
                        .expect("typed");
                    counts[idx] += 1;
                }
                let best = (0..5).max_by_key(|&i| counts[i]).expect("non-empty");
                let majority = aql_hv::apptype::VcpuType::ALL[best];
                let trashing =
                    vm.vcpus.iter().filter(|v| signature[v.index()].1).count() * 2 > vm.vcpus.len();
                for v in &vm.vcpus {
                    signature[v.index()] = (majority, trashing);
                }
            }
        }
        if self.last_signature.as_ref() == Some(&signature) {
            self.pending_signature = None;
            return; // Types unchanged: keep the current clustering.
        }
        // Debounce: a new signature must persist before it migrates
        // vCPUs (the first-ever plan applies immediately).
        if self.last_signature.is_some() && self.cfg.confirm_windows > 1 {
            match &mut self.pending_signature {
                Some((pending, seen)) if *pending == signature => {
                    *seen += 1;
                    if *seen < self.cfg.confirm_windows {
                        return;
                    }
                }
                _ => {
                    self.pending_signature = Some((signature, 1));
                    return;
                }
            }
            self.pending_signature = None;
        }
        let descs: Vec<VcpuDesc> = hv
            .vcpus
            .iter()
            .enumerate()
            .map(|(i, v)| VcpuDesc {
                vcpu: v.id,
                vm: v.vm,
                vtype: signature[i].0,
                trashing: signature[i].1,
            })
            .collect();
        let plan = cluster_machine(
            &hv.machine,
            &self.usable_sockets(hv),
            &descs,
            &self.cfg.table,
        );
        hv.apply_plan(plan.pools.clone(), plan.assignment.clone())
            .expect("cluster plans are valid by construction");
        if let Some(q) = self.cfg.uniform_quantum {
            // Fig. 7 ablation: keep the clustering, drop the
            // per-cluster quantum customisation.
            for i in 0..hv.pools.len() {
                hv.set_pool_quantum(aql_hv::ids::PoolId(i), q);
            }
        }
        self.last_plan = Some(plan);
        self.last_signature = Some(signature);
        self.reclusterings += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_hv::{MachineSpec, SimulationBuilder, VmSpec};
    use aql_mem::CacheSpec;
    use aql_sim::time::{MS, SEC};
    use aql_workloads::{IoServer, IoServerCfg, MemWalk};

    #[test]
    fn aql_types_and_reclusters_a_mixed_machine() {
        let spec = CacheSpec::i7_3770();
        let machine = MachineSpec::custom("4core", 1, 4, spec);
        let mut sim = SimulationBuilder::new(machine)
            .policy(Box::new(AqlSched::paper_defaults()))
            .vm(
                VmSpec::single("web"),
                Box::new(IoServer::new("web", IoServerCfg::heterogeneous(150.0), 3)),
            )
            .vm(
                VmSpec::single("llcf"),
                Box::new(MemWalk::llcf("llcf", &spec)),
            )
            .vm(
                VmSpec::single("lolcf"),
                Box::new(MemWalk::lolcf("lolcf", &spec)),
            )
            .vm(
                VmSpec::single("llco"),
                Box::new(MemWalk::llco("llco", &spec)),
            )
            .build();
        sim.run_for(2 * SEC);
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched policy");
        assert!(policy.reclusterings() >= 1, "must recluster at least once");
        let plan = policy.last_plan().expect("plan applied");
        // The IO vCPU must sit in a 1 ms pool, the LLCF vCPU in a 90 ms
        // pool.
        let vtrs = policy.vtrs().unwrap();
        assert_eq!(vtrs.type_of(0), aql_hv::apptype::VcpuType::IoInt);
        assert_eq!(vtrs.type_of(1), aql_hv::apptype::VcpuType::Llcf);
        assert_eq!(vtrs.type_of(2), aql_hv::apptype::VcpuType::Lolcf);
        assert_eq!(vtrs.type_of(3), aql_hv::apptype::VcpuType::Llco);
        let io_pool = plan.assignment[0];
        assert_eq!(plan.pools[io_pool.index()].quantum_ns, MS);
        let llcf_pool = plan.assignment[1];
        assert_eq!(plan.pools[llcf_pool.index()].quantum_ns, 90 * MS);
    }

    #[test]
    fn stable_types_do_not_rechurn() {
        let spec = CacheSpec::i7_3770();
        let machine = MachineSpec::custom("2core", 1, 2, spec);
        let mut sim = SimulationBuilder::new(machine)
            .policy(Box::new(AqlSched::paper_defaults()))
            .vm(VmSpec::single("a"), Box::new(MemWalk::lolcf("a", &spec)))
            .vm(VmSpec::single("b"), Box::new(MemWalk::lolcf("b", &spec)))
            .build();
        sim.run_for(3 * SEC);
        let policy = sim.policy().as_any().downcast_ref::<AqlSched>().unwrap();
        // Types settle immediately and never change: exactly one
        // reclustering (the first decision).
        assert_eq!(policy.reclusterings(), 1, "no churn for stable types");
        // No vCPU migrated after the initial placement.
        let report = sim.report();
        let migrations: u64 = report
            .vms
            .iter()
            .flat_map(|v| v.vcpu_pool_migrations.iter())
            .sum();
        assert!(migrations <= 2, "excessive migrations: {migrations}");
    }

    #[test]
    fn history_recording_caps() {
        let spec = CacheSpec::i7_3770();
        let machine = MachineSpec::custom("1core", 1, 1, spec);
        let cfg = AqlSchedConfig {
            record_history: 10,
            ..Default::default()
        };
        let mut sim = SimulationBuilder::new(machine)
            .policy(Box::new(AqlSched::new(cfg)))
            .vm(VmSpec::single("a"), Box::new(MemWalk::llco("a", &spec)))
            .build();
        sim.run_for(SEC);
        let policy = sim.policy().as_any().downcast_ref::<AqlSched>().unwrap();
        assert_eq!(policy.cursor_history(0).len(), 10);
        // The trasher's history converges to a dominant LLCO cursor.
        let last = policy.cursor_history(0).last().unwrap();
        assert!(last.llco > 50.0, "LLCO cursor should dominate: {last:?}");
    }
}
