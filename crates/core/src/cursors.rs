//! Cursor computation — equations (1)–(5) of the paper (§3.3.1).
//!
//! Each monitoring period, four low-level metrics are collected per
//! vCPU: IO-event count, spin (PLE) count, LLC reference ratio and LLC
//! miss ratio. They are normalised into five percentage *cursors*, one
//! per application type, "a probability [of how] close the vCPU is to
//! a vCPU type". The three CPU-burn cursors are coupled by equation
//! (2): `LoLCF + LLCF + LLCO = 100`.

use aql_hv::apptype::VcpuType;
use aql_mem::PmuSample;

/// Normalisation thresholds for the cursor equations.
///
/// These are the `*_LIMIT` constants of §3.3.1. Like the paper's, they
/// are platform-dependent; the defaults are calibrated for this
/// simulator's PMU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CursorLimits {
    /// IO events per monitoring period at which a vCPU is 100% IOInt
    /// (`IOInt_LIMIT`).
    pub io_limit: f64,
    /// PLE exits per monitoring period at which a vCPU is 100% ConSpin
    /// (`ConSpin_LIMIT`).
    pub conspin_limit: f64,
    /// LLC references per kilo-instruction below which a vCPU leans
    /// LoLCF (`LLC_RR_LIMIT`): "a LoLCF application makes very few LLC
    /// references".
    pub llc_rr_limit: f64,
    /// Normalisation constant of the LLCF/LLCO miss-ratio ramp
    /// (`LLC_MR_LIMIT`): the LLCF and LLCO cursors balance at half
    /// this value. 120 puts the balance at a 60% miss ratio, well
    /// between a trashed-but-friendly footprint (≤55%) and a
    /// structurally overflowing one (≥80%).
    pub llc_mr_limit: f64,
}

impl Default for CursorLimits {
    fn default() -> Self {
        CursorLimits {
            io_limit: 1.0,
            conspin_limit: 1.0,
            llc_rr_limit: 10.0,
            llc_mr_limit: 120.0,
        }
    }
}

/// The five per-type cursors of one monitoring period, in percent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cursors {
    /// `IOInt_cur` (equation 1).
    pub ioint: f64,
    /// `ConSpin_cur` (equation 1).
    pub conspin: f64,
    /// `LoLCF_cur` (equation 3).
    pub lolcf: f64,
    /// `LLCF_cur` (equation 4).
    pub llcf: f64,
    /// `LLCO_cur` (equation 5).
    pub llco: f64,
}

impl Cursors {
    /// Computes all five cursors from a PMU sample.
    pub fn from_sample(sample: &PmuSample, limits: &CursorLimits) -> Self {
        // Equation (1), for IOInt and ConSpin.
        let ramp = |level: f64, limit: f64| -> f64 {
            if limit <= 0.0 {
                return 0.0;
            }
            if level < limit {
                level * 100.0 / limit
            } else {
                100.0
            }
        };
        let ioint = ramp(sample.io_events as f64, limits.io_limit);
        let conspin = ramp(sample.ple_exits as f64, limits.conspin_limit);

        let rr = sample.llc_rr_per_kilo_instr();
        let mr = sample.llc_miss_ratio_pct();

        // Equation (3): LoLCF leans on the absence of LLC references.
        let lolcf = if rr < limits.llc_rr_limit {
            (limits.llc_rr_limit - rr) * 100.0 / limits.llc_rr_limit
        } else {
            0.0
        };

        // Equation (4): LLCF needs a low LLC miss ratio, bounded so
        // equation (2) can hold.
        let llcf = if mr < limits.llc_mr_limit {
            let by_miss = (limits.llc_mr_limit - mr) * 100.0 / limits.llc_mr_limit;
            (100.0 - lolcf).min(by_miss)
        } else {
            0.0
        };

        // Equation (5): the CPU-burn remainder is trashing.
        let llco = 100.0 - lolcf - llcf;

        Cursors {
            ioint,
            conspin,
            lolcf,
            llcf,
            llco,
        }
    }

    /// Cursor values in [`VcpuType::ALL`] order
    /// (IOInt, ConSpin, LLCF, LoLCF, LLCO).
    pub fn as_array(&self) -> [f64; 5] {
        [self.ioint, self.conspin, self.llcf, self.lolcf, self.llco]
    }

    /// The cursor value for one type.
    pub fn get(&self, t: VcpuType) -> f64 {
        match t {
            VcpuType::IoInt => self.ioint,
            VcpuType::ConSpin => self.conspin,
            VcpuType::Llcf => self.llcf,
            VcpuType::Lolcf => self.lolcf,
            VcpuType::Llco => self.llco,
        }
    }

    /// The type with the highest cursor (ties broken in
    /// [`VcpuType::ALL`] order, which is deterministic).
    pub fn argmax(&self) -> VcpuType {
        let mut best = VcpuType::IoInt;
        let mut best_v = f64::NEG_INFINITY;
        for t in VcpuType::ALL {
            let v = self.get(t);
            if v > best_v {
                best_v = v;
                best = t;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(io: u64, ple: u64, instructions: f64, llc_refs: f64, llc_misses: f64) -> PmuSample {
        PmuSample {
            instructions,
            llc_refs,
            llc_misses,
            io_events: io,
            ple_exits: ple,
            ran_ns: 1,
            period_ns: 30_000_000,
        }
    }

    #[test]
    fn heavy_io_saturates_ioint_cursor() {
        let limits = CursorLimits::default();
        let c = Cursors::from_sample(&sample(50, 0, 1e6, 10.0, 1.0), &limits);
        assert_eq!(c.ioint, 100.0);
        assert_eq!(c.conspin, 0.0);
        assert_eq!(c.argmax(), VcpuType::IoInt);
    }

    #[test]
    fn io_cursor_ramps_linearly() {
        let limits = CursorLimits {
            io_limit: 10.0,
            ..Default::default()
        };
        let c = Cursors::from_sample(&sample(5, 0, 1e6, 0.0, 0.0), &limits);
        assert_eq!(c.ioint, 50.0);
    }

    #[test]
    fn spinner_saturates_conspin_cursor() {
        let limits = CursorLimits::default();
        let c = Cursors::from_sample(&sample(0, 500, 1e6, 1.0, 0.0), &limits);
        assert_eq!(c.conspin, 100.0);
        assert_eq!(c.argmax(), VcpuType::ConSpin);
    }

    #[test]
    fn quiet_cache_reads_lolcf() {
        let limits = CursorLimits::default();
        // 1M instructions, almost no LLC references.
        let c = Cursors::from_sample(&sample(0, 0, 1e6, 100.0, 10.0), &limits);
        assert!(c.lolcf > 90.0, "lolcf = {}", c.lolcf);
        assert_eq!(c.argmax(), VcpuType::Lolcf);
    }

    #[test]
    fn warm_llcf_pattern_reads_llcf() {
        let limits = CursorLimits::default();
        // 75 refs per kilo-instruction, 15% miss ratio.
        let c = Cursors::from_sample(&sample(0, 0, 1e6, 75_000.0, 11_250.0), &limits);
        assert_eq!(c.lolcf, 0.0);
        assert!(c.llcf > 60.0, "llcf = {}", c.llcf);
        assert_eq!(c.argmax(), VcpuType::Llcf);
    }

    #[test]
    fn trashing_pattern_reads_llco() {
        let limits = CursorLimits::default();
        // High reference rate, 95% miss ratio: decisively trashing.
        let c = Cursors::from_sample(&sample(0, 0, 1e6, 100_000.0, 95_000.0), &limits);
        assert_eq!(c.lolcf, 0.0);
        assert!(c.llco > 3.0 * c.llcf, "llco must dominate: {c:?}");
        assert_eq!(c.argmax(), VcpuType::Llco);
    }

    #[test]
    fn contended_llcf_still_reads_llcf() {
        // An LLC-friendly app whose miss ratio is inflated by
        // co-located trashers (the common consolidated case) must
        // still lean LLCF: the LLCF/LLCO balance sits at
        // llc_mr_limit / 2 = 60% misses.
        let limits = CursorLimits::default();
        let c = Cursors::from_sample(&sample(0, 0, 1e6, 75_000.0, 28_000.0), &limits);
        assert!(c.llcf > c.llco, "37% miss ratio should stay LLCF: {c:?}");
        assert_eq!(c.argmax(), VcpuType::Llcf);
    }

    #[test]
    fn idle_vcpu_defaults_to_lolcf() {
        // No instructions at all: RR = 0, MR = 0 → LoLCF 100.
        let c = Cursors::from_sample(&sample(0, 0, 0.0, 0.0, 0.0), &CursorLimits::default());
        assert_eq!(c.lolcf, 100.0);
        assert_eq!(c.llco, 0.0);
    }

    #[test]
    fn equation2_on_hand_picked_samples() {
        let limits = CursorLimits::default();
        for s in [
            sample(3, 7, 1e6, 40_000.0, 12_000.0),
            sample(0, 0, 1e6, 8_000.0, 100.0),
            sample(9, 0, 5e5, 60_000.0, 55_000.0),
        ] {
            let c = Cursors::from_sample(&s, &limits);
            assert!(
                (c.lolcf + c.llcf + c.llco - 100.0).abs() < 1e-9,
                "equation (2) violated: {c:?}"
            );
        }
    }

    proptest! {
        /// Equation (2) plus range invariants for arbitrary inputs.
        #[test]
        fn cursor_invariants(
            io in 0u64..10_000,
            ple in 0u64..10_000,
            instr in 0.0f64..1e9,
            refs in 0.0f64..1e8,
            miss_frac in 0.0f64..1.0,
        ) {
            let s = sample(io, ple, instr, refs, refs * miss_frac);
            let c = Cursors::from_sample(&s, &CursorLimits::default());
            for v in c.as_array() {
                prop_assert!((0.0..=100.0 + 1e-9).contains(&v), "cursor out of range: {c:?}");
            }
            prop_assert!((c.lolcf + c.llcf + c.llco - 100.0).abs() < 1e-6,
                "equation (2) violated: {c:?}");
        }

        /// Monotonicity: more IO events never lower the IOInt cursor.
        #[test]
        fn ioint_monotone(io in 0u64..100, extra in 0u64..100) {
            let limits = CursorLimits::default();
            let a = Cursors::from_sample(&sample(io, 0, 1e6, 0.0, 0.0), &limits);
            let b = Cursors::from_sample(&sample(io + extra, 0, 1e6, 0.0, 0.0), &limits);
            prop_assert!(b.ioint >= a.ioint);
        }
    }
}
