//! Quantum-length calibration (§3.4).
//!
//! AQL_Sched needs to know the best quantum per application type. The
//! paper finds it offline by sweeping quantum lengths over
//! representative micro-benchmarks; [`QuantumTable::paper_defaults`]
//! encodes the published result, and [`Calibrator`] re-derives a table
//! from sweep measurements (the `repro fig2*` experiments use it, so
//! the table AQL runs with is the one this reproduction measures).

use aql_hv::apptype::VcpuType;
use aql_sim::time::MS;

/// The calibrated best quantum per type. `None` marks a
/// quantum-agnostic type (used as cluster filler, §3.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantumTable {
    best: [Option<u64>; 5],
    /// The platform default quantum (Xen: 30 ms), used for the mixed
    /// leftover cluster.
    pub default_quantum_ns: u64,
}

impl QuantumTable {
    /// The paper's §3.4.2 result: `IOInt` → 1 ms, `ConSpin` → 1 ms,
    /// `LLCF` → 90 ms, `LoLCF` and `LLCO` agnostic.
    pub fn paper_defaults() -> Self {
        let mut t = QuantumTable {
            best: [None; 5],
            default_quantum_ns: 30 * MS,
        };
        t.set(VcpuType::IoInt, Some(MS));
        t.set(VcpuType::ConSpin, Some(MS));
        t.set(VcpuType::Llcf, Some(90 * MS));
        t.set(VcpuType::Lolcf, None);
        t.set(VcpuType::Llco, None);
        t
    }

    fn idx(t: VcpuType) -> usize {
        VcpuType::ALL.iter().position(|&x| x == t).expect("in ALL")
    }

    /// Sets the best quantum for a type (`None` = agnostic).
    pub fn set(&mut self, t: VcpuType, q: Option<u64>) {
        self.best[Self::idx(t)] = q;
    }

    /// The best quantum for a type, `None` when agnostic.
    pub fn best_for(&self, t: VcpuType) -> Option<u64> {
        self.best[Self::idx(t)]
    }

    /// The quantum a vCPU of type `t` should be scheduled with: its
    /// best quantum, or the platform default when agnostic.
    pub fn quantum_or_default(&self, t: VcpuType) -> u64 {
        self.best_for(t).unwrap_or(self.default_quantum_ns)
    }

    /// The distinct calibrated quanta, ascending (the cluster set of
    /// Algorithm 2).
    pub fn distinct_quanta(&self) -> Vec<u64> {
        let mut qs: Vec<u64> = self.best.iter().flatten().copied().collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }
}

/// One sweep measurement: a (type, quantum) cell with a time-like cost
/// (lower is better), normalised or raw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The application type measured.
    pub vtype: VcpuType,
    /// The quantum length used (ns).
    pub quantum_ns: u64,
    /// The measured cost (lower is better).
    pub cost: f64,
}

/// Builds a [`QuantumTable`] from sweep measurements.
///
/// A type whose best-to-worst cost spread stays within
/// `agnostic_margin` is declared quantum-agnostic, mirroring the
/// paper's treatment of `LoLCF` and `LLCO`.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Relative spread below which a type is agnostic (e.g. `0.08`
    /// = 8%).
    pub agnostic_margin: f64,
    /// Default quantum for the resulting table (ns).
    pub default_quantum_ns: u64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            agnostic_margin: 0.08,
            default_quantum_ns: 30 * MS,
        }
    }
}

impl Calibrator {
    /// Derives the best-quantum table from sweep points. Types without
    /// any measurement stay agnostic.
    pub fn build_table(&self, points: &[SweepPoint]) -> QuantumTable {
        let mut table = QuantumTable {
            best: [None; 5],
            default_quantum_ns: self.default_quantum_ns,
        };
        for t in VcpuType::ALL {
            let cells: Vec<&SweepPoint> = points.iter().filter(|p| p.vtype == t).collect();
            if cells.is_empty() {
                continue;
            }
            let best = cells
                .iter()
                .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("NaN cost"))
                .expect("non-empty");
            let worst = cells
                .iter()
                .max_by(|a, b| a.cost.partial_cmp(&b.cost).expect("NaN cost"))
                .expect("non-empty");
            let spread = if best.cost > 0.0 {
                worst.cost / best.cost - 1.0
            } else {
                0.0
            };
            if spread <= self.agnostic_margin {
                table.set(t, None);
            } else {
                table.set(t, Some(best.quantum_ns));
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_342() {
        let t = QuantumTable::paper_defaults();
        assert_eq!(t.best_for(VcpuType::IoInt), Some(MS));
        assert_eq!(t.best_for(VcpuType::ConSpin), Some(MS));
        assert_eq!(t.best_for(VcpuType::Llcf), Some(90 * MS));
        assert_eq!(t.best_for(VcpuType::Lolcf), None);
        assert_eq!(t.best_for(VcpuType::Llco), None);
        assert_eq!(t.default_quantum_ns, 30 * MS);
    }

    #[test]
    fn agnostic_types_fall_back_to_default() {
        let t = QuantumTable::paper_defaults();
        assert_eq!(t.quantum_or_default(VcpuType::Llco), 30 * MS);
        assert_eq!(t.quantum_or_default(VcpuType::IoInt), MS);
    }

    #[test]
    fn distinct_quanta_sorted_unique() {
        let t = QuantumTable::paper_defaults();
        assert_eq!(t.distinct_quanta(), vec![MS, 90 * MS]);
    }

    #[test]
    fn calibrator_picks_argmin() {
        let pts = vec![
            SweepPoint {
                vtype: VcpuType::Llcf,
                quantum_ns: MS,
                cost: 1.5,
            },
            SweepPoint {
                vtype: VcpuType::Llcf,
                quantum_ns: 30 * MS,
                cost: 1.0,
            },
            SweepPoint {
                vtype: VcpuType::Llcf,
                quantum_ns: 90 * MS,
                cost: 0.9,
            },
        ];
        let t = Calibrator::default().build_table(&pts);
        assert_eq!(t.best_for(VcpuType::Llcf), Some(90 * MS));
    }

    #[test]
    fn calibrator_detects_agnostic_types() {
        let pts = vec![
            SweepPoint {
                vtype: VcpuType::Llco,
                quantum_ns: MS,
                cost: 1.02,
            },
            SweepPoint {
                vtype: VcpuType::Llco,
                quantum_ns: 90 * MS,
                cost: 1.00,
            },
        ];
        let t = Calibrator::default().build_table(&pts);
        assert_eq!(t.best_for(VcpuType::Llco), None);
    }

    #[test]
    fn unmeasured_types_stay_agnostic() {
        let t = Calibrator::default().build_table(&[]);
        for ty in VcpuType::ALL {
            assert_eq!(t.best_for(ty), None);
        }
    }
}
