//! The vCPU Type Recognition System (§3.3).
//!
//! A matrix of five cursor rows times `n` monitoring-period entries is
//! kept per vCPU, updated as a sliding window. After each period the
//! per-row averages are computed and the vCPU's type is the row with
//! the highest average. `n` trades reactivity (small `n` follows
//! sporadic type changes) against stability (each change can trigger a
//! migration); the paper settles on `n = 4`.

use std::collections::VecDeque;

use aql_hv::apptype::VcpuType;
use aql_mem::PmuSample;

use crate::cursors::{CursorLimits, Cursors};

/// vTRS configuration.
#[derive(Debug, Clone, Copy)]
pub struct VtrsConfig {
    /// Sliding-window length in monitoring periods (the paper's `n`).
    pub window: usize,
    /// Cursor normalisation limits.
    pub limits: CursorLimits,
    /// `LLCO` window-average above which an `IOInt`/`ConSpin` vCPU is
    /// marked *trashing* (the paper's `IOInt⁺`/`ConSpin⁺`, §3.5).
    pub trashing_threshold: f64,
    /// Tie margin for the decision rule: when an `IOInt`/`ConSpin`
    /// average lies within this many points of the best CPU-burn
    /// cursor, the event-based type wins. The paper notes exact cursor
    /// ties are improbable on real hardware; in this noise-free
    /// simulator a saturated CPU-burn cursor is *exactly* 100, so
    /// positive evidence (IO events, PLE traps observed) is preferred
    /// over the absence-of-evidence ramps within the margin.
    pub tie_margin: f64,
    /// Minimum CPU time (ns) a vCPU must have run in a period for its
    /// cache cursors to count as evidence. With 30 ms quanta and four
    /// vCPUs per pCPU, most periods contain *no* slice of a given vCPU
    /// at all; such empty periods carry the previous cursor row
    /// forward instead of polluting the window (IO and PLE events are
    /// always evidence, regardless of run time).
    pub min_run_ns: u64,
}

impl Default for VtrsConfig {
    fn default() -> Self {
        VtrsConfig {
            window: 4,
            limits: CursorLimits::default(),
            trashing_threshold: 50.0,
            tie_margin: 25.0,
            min_run_ns: aql_sim::time::MS,
        }
    }
}

/// Per-vCPU recognition state: the 5×n cursor matrix.
#[derive(Debug, Clone)]
pub struct VcpuMonitor {
    window: usize,
    rows: VecDeque<Cursors>,
}

impl VcpuMonitor {
    /// Creates an empty monitor with the given window.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        VcpuMonitor {
            window,
            rows: VecDeque::with_capacity(window),
        }
    }

    /// Records one period's cursors (sliding out the oldest entry).
    pub fn push(&mut self, c: Cursors) {
        if self.rows.len() == self.window {
            self.rows.pop_front();
        }
        self.rows.push_back(c);
    }

    /// The most recent cursor row, if any.
    pub fn last(&self) -> Option<Cursors> {
        self.rows.back().copied()
    }

    /// Number of periods currently in the window.
    pub fn filled(&self) -> usize {
        self.rows.len()
    }

    /// Window-average cursors (`*_cur_avg`); zero when empty.
    pub fn averages(&self) -> Cursors {
        if self.rows.is_empty() {
            return Cursors::default();
        }
        let n = self.rows.len() as f64;
        let mut avg = Cursors::default();
        for c in &self.rows {
            avg.ioint += c.ioint;
            avg.conspin += c.conspin;
            avg.lolcf += c.lolcf;
            avg.llcf += c.llcf;
            avg.llco += c.llco;
        }
        avg.ioint /= n;
        avg.conspin /= n;
        avg.lolcf /= n;
        avg.llcf /= n;
        avg.llco /= n;
        avg
    }

    /// The recognised type: highest window-average cursor, with the
    /// positive-evidence tie rule (see [`crate::vtrs::VtrsConfig`]).
    pub fn decide(&self, tie_margin: f64) -> VcpuType {
        let avg = self.averages();
        let best = avg.argmax();
        let best_v = avg.get(best);
        if matches!(best, VcpuType::IoInt | VcpuType::ConSpin) {
            return best;
        }
        // Prefer event-based types within the margin.
        let io = avg.get(VcpuType::IoInt);
        let spin = avg.get(VcpuType::ConSpin);
        if io.max(spin) + tie_margin >= best_v && io.max(spin) > 0.0 {
            return if io >= spin {
                VcpuType::IoInt
            } else {
                VcpuType::ConSpin
            };
        }
        best
    }
}

/// The whole recognition system: one monitor per vCPU.
#[derive(Debug, Clone)]
pub struct Vtrs {
    cfg: VtrsConfig,
    monitors: Vec<VcpuMonitor>,
    /// The cursors recorded by the latest `observe` call, one per
    /// vCPU. Kept as a reusable buffer so the per-monitoring-period
    /// hot path performs no heap allocation.
    last_cursors: Vec<Cursors>,
}

impl Vtrs {
    /// Creates the system for `vcpus` vCPUs.
    pub fn new(vcpus: usize, cfg: VtrsConfig) -> Self {
        Vtrs {
            monitors: (0..vcpus).map(|_| VcpuMonitor::new(cfg.window)).collect(),
            cfg,
            last_cursors: Vec::with_capacity(vcpus),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VtrsConfig {
        &self.cfg
    }

    /// Feeds one monitoring period's PMU samples (index = vCPU index).
    /// Returns the effective cursors recorded for each vCPU: a fresh
    /// row when the period carried evidence (enough run time, or IO or
    /// PLE events), else the previous row held forward.
    ///
    /// The returned slice borrows an internal buffer (overwritten by
    /// the next call): `observe` runs every monitoring period and must
    /// not allocate.
    pub fn observe(&mut self, samples: &[PmuSample]) -> &[Cursors] {
        assert_eq!(samples.len(), self.monitors.len(), "sample count mismatch");
        let min_run = self.cfg.min_run_ns;
        let limits = self.cfg.limits;
        self.last_cursors.clear();
        self.last_cursors
            .extend(samples.iter().zip(&mut self.monitors).map(|(s, m)| {
                let has_evidence = s.ran_ns >= min_run || s.io_events > 0 || s.ple_exits > 0;
                let c = if has_evidence {
                    Cursors::from_sample(s, &limits)
                } else {
                    m.last().unwrap_or_else(|| Cursors::from_sample(s, &limits))
                };
                m.push(c);
                c
            }));
        &self.last_cursors
    }

    /// The recognised type of a vCPU.
    pub fn type_of(&self, vcpu: usize) -> VcpuType {
        self.monitors[vcpu].decide(self.cfg.tie_margin)
    }

    /// Window-average cursors of a vCPU.
    pub fn averages_of(&self, vcpu: usize) -> Cursors {
        self.monitors[vcpu].averages()
    }

    /// Whether the vCPU qualifies as *trashing* for clustering: it is
    /// `LLCO`, or `IOInt`/`ConSpin` with an LLCO average above the
    /// threshold (the paper's `⁺` annotation).
    pub fn is_trashing(&self, vcpu: usize) -> bool {
        self.is_trashing_hysteresis(vcpu, None)
    }

    /// Like [`Vtrs::is_trashing`], with a ±10-point hysteresis band
    /// around the threshold when the previous flag is known — a vCPU
    /// hovering at the boundary must not flip the cluster plan every
    /// window.
    pub fn is_trashing_hysteresis(&self, vcpu: usize, previous: Option<bool>) -> bool {
        let t = self.type_of(vcpu);
        match t {
            VcpuType::Llco => true,
            VcpuType::IoInt | VcpuType::ConSpin => {
                let threshold = match previous {
                    Some(true) => self.cfg.trashing_threshold - 10.0,
                    Some(false) => self.cfg.trashing_threshold + 10.0,
                    None => self.cfg.trashing_threshold,
                };
                self.averages_of(vcpu).llco > threshold
            }
            _ => false,
        }
    }

    /// All recognised types, vCPU-index order.
    pub fn all_types(&self) -> Vec<VcpuType> {
        (0..self.monitors.len()).map(|i| self.type_of(i)).collect()
    }

    /// Whether every monitor has a full window.
    pub fn warmed_up(&self) -> bool {
        self.monitors.iter().all(|m| m.filled() >= self.cfg.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_sample(events: u64) -> PmuSample {
        PmuSample {
            instructions: 1e6,
            io_events: events,
            ran_ns: 1,
            period_ns: 30_000_000,
            ..Default::default()
        }
    }

    fn llco_sample() -> PmuSample {
        PmuSample {
            instructions: 1e6,
            llc_refs: 1e5,
            llc_misses: 9e4,
            ran_ns: 7_500_000,
            period_ns: 30_000_000,
            ..Default::default()
        }
    }

    fn empty_sample() -> PmuSample {
        PmuSample {
            period_ns: 30_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn monitor_window_slides() {
        let mut m = VcpuMonitor::new(2);
        m.push(Cursors {
            ioint: 100.0,
            ..Default::default()
        });
        m.push(Cursors {
            ioint: 50.0,
            ..Default::default()
        });
        assert_eq!(m.averages().ioint, 75.0);
        m.push(Cursors {
            ioint: 0.0,
            ..Default::default()
        });
        // The 100.0 entry slid out.
        assert_eq!(m.averages().ioint, 25.0);
        assert_eq!(m.filled(), 2);
    }

    #[test]
    fn steady_io_is_recognised() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        for _ in 0..4 {
            v.observe(&[io_sample(20)]);
        }
        assert_eq!(v.type_of(0), VcpuType::IoInt);
        assert!(v.warmed_up());
        assert!(!v.is_trashing(0));
    }

    #[test]
    fn type_changes_after_window_turnover() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        for _ in 0..4 {
            v.observe(&[io_sample(20)]);
        }
        assert_eq!(v.type_of(0), VcpuType::IoInt);
        // The workload turns into a trasher; after the window refills
        // the decision follows.
        for _ in 0..4 {
            v.observe(&[llco_sample()]);
        }
        assert_eq!(v.type_of(0), VcpuType::Llco);
    }

    #[test]
    fn sporadic_blips_are_absorbed_by_the_window() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        for _ in 0..4 {
            v.observe(&[io_sample(20)]);
        }
        // One noisy trashing period must not flip the decision.
        v.observe(&[llco_sample()]);
        assert_eq!(v.type_of(0), VcpuType::IoInt);
    }

    #[test]
    fn trashing_annotation_for_io_with_llco_pressure() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        // IO events and trashing cache behaviour at once (IOInt⁺).
        let s = PmuSample {
            instructions: 1e6,
            llc_refs: 1e5,
            llc_misses: 9e4,
            io_events: 50,
            ran_ns: 7_500_000,
            period_ns: 30_000_000,
            ..Default::default()
        };
        for _ in 0..4 {
            v.observe(&[s]);
        }
        assert_eq!(v.type_of(0), VcpuType::IoInt);
        assert!(v.is_trashing(0), "IOInt with trashing cache is IOInt+");
    }

    #[test]
    fn decisions_available_before_window_fills() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        v.observe(&[io_sample(20)]);
        // With one period the decision already leans IOInt.
        assert_eq!(v.type_of(0), VcpuType::IoInt);
        assert!(!v.warmed_up());
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn observe_checks_length() {
        let mut v = Vtrs::new(2, VtrsConfig::default());
        v.observe(&[io_sample(1)]);
    }

    #[test]
    fn empty_periods_hold_the_previous_row() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        for _ in 0..4 {
            v.observe(&[llco_sample()]);
        }
        assert_eq!(v.type_of(0), VcpuType::Llco);
        // The vCPU gets no pCPU time for many periods (its slice falls
        // outside the monitoring period): the decision must not decay.
        for _ in 0..8 {
            v.observe(&[empty_sample()]);
        }
        assert_eq!(v.type_of(0), VcpuType::Llco, "held rows keep the type");
    }

    #[test]
    fn io_events_count_as_evidence_without_runtime() {
        let mut v = Vtrs::new(1, VtrsConfig::default());
        for _ in 0..4 {
            v.observe(&[llco_sample()]);
        }
        // A blocked-but-woken IO vCPU barely runs, yet its events are
        // positive evidence and must flip the type.
        let io = PmuSample {
            io_events: 30,
            ran_ns: 100_000,
            period_ns: 30_000_000,
            ..Default::default()
        };
        for _ in 0..4 {
            v.observe(&[io]);
        }
        assert_eq!(v.type_of(0), VcpuType::IoInt);
    }
}
