//! Fig. 8 — comparison with existing systems.
//!
//! Scenario S5 runs under vTurbo, vSlicer, Microsliced and AQL_Sched;
//! per-type costs are normalised over the default Xen scheduler. The
//! comparators have no type recognition, so their IO-VM lists come
//! from the registry's manual tagging (the spec's ground-truth IOInt
//! VMs), as in the paper.

use aql_hv::apptype::VcpuType;

use crate::emit::{fmt_ratio, Table};
use crate::fig6::scenario_spec;
use crate::plan::{class_mean_norm, execute, ExecOpts, PlanCell};

/// The comparator policy tokens, in the paper's row order (after the
/// Xen baseline).
pub const COMPARATORS: [&str; 4] = ["vturbo", "microsliced", "vslicer", "aql-sched"];

/// The S5 IO VM names handed to vTurbo and vSlicer.
pub fn s5_io_vms() -> Vec<String> {
    aql_scenarios::tagged_io_vms(&scenario_spec(5))
}

/// Runs the comparison; rows are policies, columns the three types the
/// paper plots (IOInt, ConSpin, LLCF).
pub fn run(quick: bool, opts: &ExecOpts) -> Table {
    let mut s = scenario_spec(5);
    if quick {
        s = s.quick();
    }
    let mut cells = vec![PlanCell::new(s.clone(), "xen-credit")];
    for token in COMPARATORS {
        cells.push(PlanCell::new(s.clone(), token));
    }
    let results = execute(&cells, opts).expect("fig8 plan is well-formed");
    let xen = results[0].report.as_ref().expect("xen cell ran");
    let classes = aql_scenarios::classes(&s);
    let mut table = Table::new(
        "Fig8 comparison on S5 (normalised cost over Xen; lower is better)",
        &["policy", "IOInt", "ConSpin", "LLCF"],
    );
    for (token, result) in COMPARATORS.iter().zip(&results[1..]) {
        // Row label: the policy's own reported name, as the paper
        // spells its comparators.
        let name = aql_scenarios::policy_for(&s, token)
            .expect("comparator tokens are valid")
            .name()
            .to_string();
        let report = result.report.as_ref().expect("comparator cell ran");
        let mut row = vec![name];
        for class in [VcpuType::IoInt, VcpuType::ConSpin, VcpuType::Llcf] {
            row.push(fmt_ratio(class_mean_norm(
                report,
                xen,
                &classes,
                Some(class),
            )));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_vm_names_match_s5() {
        assert_eq!(
            s5_io_vms(),
            ["SPECweb-0", "SPECweb-1", "SPECweb-2", "SPECweb-3"]
        );
    }
}
