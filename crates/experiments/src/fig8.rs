//! Fig. 8 — comparison with existing systems.
//!
//! Scenario S5 runs under vTurbo, vSlicer, Microsliced and AQL_Sched;
//! per-type costs are normalised over the default Xen scheduler. The
//! comparators have no type recognition, so their IO-VM lists are
//! manual configuration, as in the paper.

use aql_baselines::{xen_credit, Microsliced, VSlicer, VTurbo};
use aql_core::AqlSched;
use aql_hv::apptype::VcpuType;
use aql_hv::SchedPolicy;

use crate::emit::{fmt_ratio, Table};
use crate::fig6::scenario;
use crate::runner::class_normalized;

/// The S5 IO VM names handed to vTurbo and vSlicer.
pub fn s5_io_vms() -> Vec<String> {
    (0..4).map(|i| format!("SPECweb-{i}")).collect()
}

/// Runs the comparison; rows are policies, columns the three types the
/// paper plots (IOInt, ConSpin, LLCF).
pub fn run(quick: bool) -> Table {
    let mut s = scenario(5);
    if quick {
        s = s.quick();
    }
    let xen = s.run(Box::new(xen_credit()));
    let io_names = s5_io_vms();
    let io_refs: Vec<&str> = io_names.iter().map(|s| s.as_str()).collect();
    let policies: Vec<Box<dyn SchedPolicy>> = vec![
        Box::new(VTurbo::new(&io_refs)),
        Box::new(Microsliced::default()),
        Box::new(VSlicer::new(&io_refs)),
        Box::new(AqlSched::paper_defaults()),
    ];
    let mut table = Table::new(
        "Fig8 comparison on S5 (normalised cost over Xen; lower is better)",
        &["policy", "IOInt", "ConSpin", "LLCF"],
    );
    for policy in policies {
        let name = policy.name().to_string();
        let report = s.run(policy);
        let mut row = vec![name];
        for class in [VcpuType::IoInt, VcpuType::ConSpin, VcpuType::Llcf] {
            row.push(fmt_ratio(class_normalized(&s, &report, &xen, class)));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_vm_names_match_s5() {
        let s = scenario(5);
        let names: Vec<String> = s
            .vms
            .iter()
            .enumerate()
            .map(|(i, vm)| (vm.factory)(i as u64).0.name)
            .collect();
        for io in s5_io_vms() {
            assert!(names.contains(&io), "missing {io}");
        }
    }
}
