//! Scenario construction and normalised measurement.
//!
//! A [`Scenario`] is a machine plus a list of VM factories; running it
//! under a policy yields a [`RunReport`] measured after a warm-up
//! phase. Factories (rather than built workloads) let the same
//! scenario run under several policies with identical seeds, which is
//! what every figure's "normalised over the default Xen scheduler"
//! requires.

use aql_hv::apptype::VcpuType;
use aql_hv::workload::GuestWorkload;
use aql_hv::{MachineSpec, RunReport, SchedPolicy, Simulation, SimulationBuilder, VmSpec};
use aql_sim::time::{MS, SEC, US};

/// Builds one VM's spec and workload from a seed.
pub type VmFactory = Box<dyn Fn(u64) -> (VmSpec, Box<dyn GuestWorkload>)>;

/// A VM slot in a scenario, with its ground-truth class for grouping.
pub struct ScenarioVm {
    /// Ground-truth application type (for result grouping).
    pub class: VcpuType,
    /// VM builder, seeded per run.
    pub factory: VmFactory,
}

impl ScenarioVm {
    /// Wraps a factory with its class.
    pub fn new<F>(class: VcpuType, factory: F) -> Self
    where
        F: Fn(u64) -> (VmSpec, Box<dyn GuestWorkload>) + 'static,
    {
        ScenarioVm {
            class,
            factory: Box::new(factory),
        }
    }
}

/// A reproducible colocation experiment.
pub struct Scenario {
    /// Scenario name (used in output).
    pub name: String,
    /// Machine shape.
    pub machine: MachineSpec,
    /// VM population.
    pub vms: Vec<ScenarioVm>,
    /// Warm-up time before measurement (ns).
    pub warmup_ns: u64,
    /// Measured time (ns).
    pub measure_ns: u64,
    /// Base seed; VM `i` gets `seed + i`.
    pub seed: u64,
    /// Engine sub-step (ns).
    pub substep_ns: u64,
}

impl Scenario {
    /// A scenario with the defaults used across the evaluation:
    /// 1 s warm-up, 6 s measurement, 100 µs sub-step.
    pub fn new(name: &str, machine: MachineSpec, vms: Vec<ScenarioVm>) -> Self {
        Scenario {
            name: name.to_string(),
            machine,
            vms,
            warmup_ns: SEC,
            measure_ns: 6 * SEC,
            seed: 42,
            substep_ns: 100 * US,
        }
    }

    /// Shortens the run (for benches and smoke tests).
    pub fn quick(mut self) -> Self {
        self.warmup_ns = 300 * MS;
        self.measure_ns = SEC;
        self
    }

    /// Builds the simulation (without running it).
    pub fn build(&self, policy: Box<dyn SchedPolicy>) -> Simulation {
        let mut b = SimulationBuilder::new(self.machine.clone())
            .seed(self.seed)
            .substep_ns(self.substep_ns)
            .policy(policy);
        for (i, vm) in self.vms.iter().enumerate() {
            let (spec, wl) = (vm.factory)(self.seed + i as u64);
            b = b.vm(spec, wl);
        }
        b.build()
    }

    /// Runs warm-up + measurement under `policy`; returns the
    /// steady-state report.
    pub fn run(&self, policy: Box<dyn SchedPolicy>) -> RunReport {
        let mut sim = self.build(policy);
        sim.run_for(self.warmup_ns);
        sim.reset_measurements();
        sim.run_for(self.measure_ns);
        sim.report()
    }

    /// Like [`Scenario::run`] but returns the simulation for policy
    /// introspection (cluster plans, vTRS traces).
    pub fn run_sim(&self, policy: Box<dyn SchedPolicy>) -> Simulation {
        let mut sim = self.build(policy);
        sim.run_for(self.warmup_ns);
        sim.reset_measurements();
        sim.run_for(self.measure_ns);
        sim
    }

    /// The ground-truth class of VM index `i`.
    pub fn class_of(&self, vm_index: usize) -> VcpuType {
        self.vms[vm_index].class
    }
}

/// The time-like cost of one VM in a report (lower is better); `None`
/// when the workload produced no metric.
pub fn cost_of(report: &RunReport, vm_index: usize) -> Option<f64> {
    report.vms.get(vm_index)?.metrics.time_cost()
}

/// `cost / baseline_cost` — the paper's normalisation: 1.0 matches the
/// default Xen scheduler, lower is better.
pub fn normalized(cost: Option<f64>, baseline: Option<f64>) -> Option<f64> {
    match (cost, baseline) {
        (Some(c), Some(b)) if b > 0.0 => Some(c / b),
        _ => None,
    }
}

/// Mean normalised cost of the scenario's VMs of one class.
pub fn class_normalized(
    scenario: &Scenario,
    report: &RunReport,
    baseline: &RunReport,
    class: VcpuType,
) -> Option<f64> {
    let mut acc = 0.0;
    let mut n = 0;
    for i in 0..scenario.vms.len() {
        if scenario.class_of(i) != class {
            continue;
        }
        if let Some(v) = normalized(cost_of(report, i), cost_of(baseline, i)) {
            acc += v;
            n += 1;
        }
    }
    (n > 0).then(|| acc / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_baselines::xen_credit;
    use aql_mem::CacheSpec;
    use aql_workloads::MemWalk;

    fn tiny_scenario() -> Scenario {
        let spec = CacheSpec::i7_3770();
        Scenario::new(
            "tiny",
            MachineSpec::custom("1core", 1, 1, spec),
            vec![
                ScenarioVm::new(VcpuType::Lolcf, move |_| {
                    let spec = CacheSpec::i7_3770();
                    (
                        VmSpec::single("a"),
                        Box::new(MemWalk::lolcf("a", &spec)) as Box<dyn GuestWorkload>,
                    )
                }),
                ScenarioVm::new(VcpuType::Llco, move |_| {
                    let spec = CacheSpec::i7_3770();
                    (
                        VmSpec::single("b"),
                        Box::new(MemWalk::llco("b", &spec)) as Box<dyn GuestWorkload>,
                    )
                }),
            ],
        )
        .quick()
    }

    #[test]
    fn scenario_runs_and_reports() {
        let s = tiny_scenario();
        let r = s.run(Box::new(xen_credit()));
        assert_eq!(r.vms.len(), 2);
        assert!(cost_of(&r, 0).is_some());
        assert!(cost_of(&r, 1).is_some());
    }

    #[test]
    fn identical_policies_are_deterministic() {
        let s = tiny_scenario();
        let a = s.run(Box::new(xen_credit()));
        let b = s.run(Box::new(xen_credit()));
        assert_eq!(cost_of(&a, 0), cost_of(&b, 0));
        assert_eq!(a.total_cpu_ns(), b.total_cpu_ns());
    }

    #[test]
    fn normalization_behaviour() {
        assert_eq!(normalized(Some(2.0), Some(4.0)), Some(0.5));
        assert_eq!(normalized(None, Some(1.0)), None);
        assert_eq!(normalized(Some(1.0), Some(0.0)), None);
    }

    #[test]
    fn class_grouping() {
        let s = tiny_scenario();
        let r = s.run(Box::new(xen_credit()));
        let norm = class_normalized(&s, &r, &r, VcpuType::Lolcf);
        assert_eq!(norm, Some(1.0), "self-normalisation is 1.0");
        assert_eq!(class_normalized(&s, &r, &r, VcpuType::IoInt), None);
    }
}
