//! Fig. 4 — the online vTRS in action.
//!
//! For five representative applications (one per type: SPECweb2009 →
//! IOInt, fluidanimate → ConSpin, astar → LLCF, gobmk → LoLCF,
//! libquantum → LLCO), 50 monitoring periods of per-type cursor values
//! are recorded while the application runs consolidated. The type
//! whose curve sits on top is the recognised one.
//!
//! Each trace is one plan cell: the Fig. 5 consolidation spec with a
//! zero warm-up overlay (the recognition transient is the point), the
//! `aql-sched/history=50` policy token, and a
//! [`Probe::CursorHistory`] shipping the recorded cursors out of the
//! worker.

use aql_sim::time::{MS, SEC};
use aql_workloads::find_app;

use crate::emit::Table;
use crate::fig5::catalog_spec;
use crate::plan::{execute, ExecOpts, PlanCell, Probe, ProbeOut};

/// The five representative applications of Fig. 4, paper order.
pub const REPRESENTATIVES: [&str; 5] = [
    "SPECweb2009",
    "astar",
    "libquantum",
    "gobmk",
    "fluidanimate",
];

/// Monitoring periods recorded per application.
pub const PERIODS: usize = 50;

fn trace_cell(app: &str, quick: bool) -> PlanCell {
    // Fig. 4 records from run start (including the recognition
    // transient), so no warm-up reset is wanted here.
    let measure_ns = if quick {
        (PERIODS as u64 / 2) * 30 * MS + SEC / 10
    } else {
        (PERIODS as u64 + 2) * 30 * MS
    };
    let spec = catalog_spec(app)
        .with_warmup_ns(0)
        .with_measure_ns(measure_ns);
    PlanCell::new(spec, &format!("aql-sched/history={PERIODS}"))
        .with_probe(Probe::CursorHistory { vcpu: 0 })
}

fn fold_trace(app: &str, probe: Option<&ProbeOut>) -> Table {
    let entry = find_app(app).unwrap_or_else(|| panic!("unknown catalog app '{app}'"));
    let mut table = Table::new(
        &format!("Fig4 vTRS trace {app} (expected {})", entry.class),
        &["period", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"],
    );
    let Some(ProbeOut::Cursors(rows)) = probe else {
        panic!("trace cell must yield a cursor history");
    };
    for (i, c) in rows.iter().enumerate() {
        let [ioint, conspin, llcf, lolcf, llco] = c;
        table.row(vec![
            i.to_string(),
            format!("{ioint:.1}"),
            format!("{conspin:.1}"),
            format!("{llcf:.1}"),
            format!("{lolcf:.1}"),
            format!("{llco:.1}"),
        ]);
    }
    table
}

/// Records the cursor traces of one application's vCPU 0.
pub fn trace_app(app: &str, quick: bool, opts: &ExecOpts) -> Table {
    let results = execute(&[trace_cell(app, quick)], opts).expect("fig4 plan is well-formed");
    fold_trace(app, results[0].probe.as_ref())
}

/// The dominant cursor across a recorded trace — the "curve higher
/// than the others most of the time" of the paper's caption.
pub fn dominant_type(table: &Table) -> Option<&'static str> {
    let names = ["IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"];
    let mut wins = [0usize; 5];
    for row in &table.rows {
        let vals: Vec<f64> = row[1..].iter().map(|v| v.parse().unwrap_or(0.0)).collect();
        let mut best = 0;
        for i in 1..5 {
            if vals[i] > vals[best] {
                best = i;
            }
        }
        wins[best] += 1;
    }
    let best = (0..5).max_by_key(|&i| wins[i])?;
    Some(names[best])
}

/// Runs the full figure: one trace per representative application,
/// all five as one plan.
pub fn run(quick: bool, opts: &ExecOpts) -> Vec<Table> {
    let cells: Vec<PlanCell> = REPRESENTATIVES
        .iter()
        .map(|app| trace_cell(app, quick))
        .collect();
    let results = execute(&cells, opts).expect("fig4 plan is well-formed");
    REPRESENTATIVES
        .iter()
        .zip(&results)
        .map(|(app, r)| fold_trace(app, r.probe.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_periods() {
        let t = trace_app("libquantum", true, &ExecOpts::default());
        assert!(t.rows.len() >= 10, "expected periods, got {}", t.rows.len());
        // The trasher's dominant curve is LLCO.
        assert_eq!(dominant_type(&t), Some("LLCO"));
    }

    #[test]
    fn dominant_type_counts_wins() {
        let mut t = Table::new(
            "x",
            &["period", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"],
        );
        t.row(vec![
            "0".into(),
            "90".into(),
            "0".into(),
            "10".into(),
            "0".into(),
            "0".into(),
        ]);
        t.row(vec![
            "1".into(),
            "80".into(),
            "0".into(),
            "20".into(),
            "0".into(),
            "0".into(),
        ]);
        assert_eq!(dominant_type(&t), Some("IOInt"));
    }
}
