//! Fig. 4 — the online vTRS in action.
//!
//! For five representative applications (one per type: SPECweb2009 →
//! IOInt, fluidanimate → ConSpin, astar → LLCF, gobmk → LoLCF,
//! libquantum → LLCO), 50 monitoring periods of per-type cursor values
//! are recorded while the application runs consolidated. The type
//! whose curve sits on top is the recognised one.

use aql_core::{AqlSched, AqlSchedConfig};
use aql_sim::time::{MS, SEC};
use aql_workloads::find_app;

use crate::emit::Table;
use crate::fig5::catalog_scenario;

/// The five representative applications of Fig. 4, paper order.
pub const REPRESENTATIVES: [&str; 5] = [
    "SPECweb2009",
    "astar",
    "libquantum",
    "gobmk",
    "fluidanimate",
];

/// Monitoring periods recorded per application.
pub const PERIODS: usize = 50;

/// Records the cursor traces of one application's vCPU 0.
pub fn trace_app(app: &str, quick: bool) -> Table {
    let entry = find_app(app).unwrap_or_else(|| panic!("unknown catalog app '{app}'"));
    let mut scenario = catalog_scenario(app);
    // Fig. 4 records from run start (including the recognition
    // transient), so no warm-up reset is wanted here.
    scenario.warmup_ns = 0;
    scenario.measure_ns = if quick {
        (PERIODS as u64 / 2) * 30 * MS + SEC / 10
    } else {
        (PERIODS as u64 + 2) * 30 * MS
    };
    let cfg = AqlSchedConfig {
        record_history: PERIODS,
        ..AqlSchedConfig::default()
    };
    let sim = scenario.run_sim(Box::new(AqlSched::new(cfg)));
    let policy = sim
        .policy()
        .as_any()
        .downcast_ref::<AqlSched>()
        .expect("AqlSched policy");
    let mut table = Table::new(
        &format!("Fig4 vTRS trace {app} (expected {})", entry.class),
        &["period", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"],
    );
    for (i, c) in policy.cursor_history(0).iter().enumerate() {
        table.row(vec![
            i.to_string(),
            format!("{:.1}", c.ioint),
            format!("{:.1}", c.conspin),
            format!("{:.1}", c.llcf),
            format!("{:.1}", c.lolcf),
            format!("{:.1}", c.llco),
        ]);
    }
    table
}

/// The dominant cursor across a recorded trace — the "curve higher
/// than the others most of the time" of the paper's caption.
pub fn dominant_type(table: &Table) -> Option<&'static str> {
    let names = ["IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"];
    let mut wins = [0usize; 5];
    for row in &table.rows {
        let vals: Vec<f64> = row[1..].iter().map(|v| v.parse().unwrap_or(0.0)).collect();
        let mut best = 0;
        for i in 1..5 {
            if vals[i] > vals[best] {
                best = i;
            }
        }
        wins[best] += 1;
    }
    let best = (0..5).max_by_key(|&i| wins[i])?;
    Some(names[best])
}

/// Runs the full figure: one trace per representative application.
pub fn run(quick: bool) -> Vec<Table> {
    REPRESENTATIVES
        .iter()
        .map(|app| trace_app(app, quick))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_periods() {
        let t = trace_app("libquantum", true);
        assert!(t.rows.len() >= 10, "expected periods, got {}", t.rows.len());
        // The trasher's dominant curve is LLCO.
        assert_eq!(dominant_type(&t), Some("LLCO"));
    }

    #[test]
    fn dominant_type_counts_wins() {
        let mut t = Table::new(
            "x",
            &["period", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"],
        );
        t.row(vec![
            "0".into(),
            "90".into(),
            "0".into(),
            "10".into(),
            "0".into(),
            "0".into(),
        ]);
        t.row(vec![
            "1".into(),
            "80".into(),
            "0".into(),
            "20".into(),
            "0".into(),
            "0".into(),
        ]);
        assert_eq!(dominant_type(&t), Some("IOInt"));
    }
}
