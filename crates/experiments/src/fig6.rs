//! Fig. 6 — AQL_Sched effectiveness.
//!
//! Left: the five colocation scenarios of Table 4 (16 vCPUs on 4
//! pCPUs, single socket), AQL_Sched normalised over the default Xen
//! scheduler per application type.
//!
//! Right: the complex 4-socket case of Fig. 3 (48 vCPUs: 12 IOInt⁺,
//! 7 ConSpin⁻, 17 LLCF, 12 LLCO on three usable sockets; one socket is
//! dom0's).

use std::any::Any;

use aql_baselines::xen_credit;
use aql_core::{AqlSched, AqlSchedConfig};
use aql_hv::apptype::VcpuType;
use aql_hv::engine::Hypervisor;
use aql_hv::ids::{PcpuId, PoolId, SocketId};
use aql_hv::policy::SchedPolicy;
use aql_hv::pool::PoolSpec;
use aql_hv::workload::GuestWorkload;
use aql_hv::{MachineSpec, VmSpec};
use aql_mem::{CacheSpec, MemProfile};
use aql_sim::time::MS;
use aql_workloads::{IoServer, IoServerCfg, MemWalk, SpinJob};

use crate::emit::{fmt_ratio, Table};
use crate::fig2::calibration_spin_cfg;
use crate::runner::{class_normalized, Scenario, ScenarioVm};

// ---------------------------------------------------------------------
// Shared VM builders
// ---------------------------------------------------------------------

/// A heterogeneous web-server VM (IOInt).
pub fn io_vm(name: &str) -> ScenarioVm {
    let name = name.to_string();
    ScenarioVm::new(VcpuType::IoInt, move |seed| {
        (
            VmSpec::single(&name),
            Box::new(IoServer::new(
                &name,
                IoServerCfg::heterogeneous(120.0),
                seed,
            )) as Box<dyn GuestWorkload>,
        )
    })
}

/// An IOInt⁺ VM: IO-intensive *and* LLC-trashing (its service and CGI
/// code streams through a working set larger than the LLC).
pub fn io_plus_vm(name: &str) -> ScenarioVm {
    let name = name.to_string();
    ScenarioVm::new(VcpuType::IoInt, move |seed| {
        let trashing_profile = MemProfile {
            wss_bytes: 32 * 1024 * 1024,
            deep_refs_per_instr: 0.08,
            base_ns_per_instr: 0.40,
        };
        let cfg = IoServerCfg {
            profile: trashing_profile,
            background: Some(trashing_profile),
            ..IoServerCfg::exclusive(120.0)
        };
        (
            VmSpec::single(&name),
            Box::new(IoServer::new(&name, cfg, seed)) as Box<dyn GuestWorkload>,
        )
    })
}

/// A spin-lock job VM (ConSpin) with `threads` vCPUs, weighted
/// proportionally to its vCPU count (standard sizing).
pub fn spin_vm(name: &str, threads: usize) -> ScenarioVm {
    let name = name.to_string();
    ScenarioVm::new(VcpuType::ConSpin, move |seed| {
        let spec = VmSpec {
            weight: 256 * threads as u32,
            ..VmSpec::smp(&name, threads)
        };
        (
            spec,
            Box::new(SpinJob::new(&name, calibration_spin_cfg(threads), seed))
                as Box<dyn GuestWorkload>,
        )
    })
}

/// A memory-walker VM of the given CPU-burn class.
pub fn walk_vm(class: VcpuType, name: &str) -> ScenarioVm {
    let name = name.to_string();
    ScenarioVm::new(class, move |_| {
        let spec = CacheSpec::i7_3770();
        let wl = match class {
            VcpuType::Llcf => MemWalk::llcf(&name, &spec),
            VcpuType::Lolcf => MemWalk::lolcf(&name, &spec),
            VcpuType::Llco => MemWalk::llco(&name, &spec),
            _ => panic!("walk_vm is for CPU-burn classes"),
        };
        (
            VmSpec::single(&name),
            Box::new(wl) as Box<dyn GuestWorkload>,
        )
    })
}

// ---------------------------------------------------------------------
// Table 4 scenarios (single socket, 16 vCPUs on 4 pCPUs)
// ---------------------------------------------------------------------

fn single_socket() -> MachineSpec {
    MachineSpec::custom("fig6-4core", 1, 4, CacheSpec::i7_3770())
}

/// Builds scenario `S1`..`S5` of Table 4.
pub fn scenario(id: usize) -> Scenario {
    let mut vms: Vec<ScenarioVm> = Vec::new();
    match id {
        1 => {
            // 5 ConSpin (fluidanimate), 5 LLCF (bzip2), 6 LoLCF (hmmer).
            vms.push(spin_vm("fluidanimate", 5));
            for i in 0..5 {
                vms.push(walk_vm(VcpuType::Llcf, &format!("bzip2-{i}")));
            }
            for i in 0..6 {
                vms.push(walk_vm(VcpuType::Lolcf, &format!("hmmer-{i}")));
            }
        }
        2 => {
            // 5 IOInt (SPECweb), 5 LLCF (bzip2), 6 LLCO (libquantum).
            for i in 0..5 {
                vms.push(io_vm(&format!("SPECweb-{i}")));
            }
            for i in 0..5 {
                vms.push(walk_vm(VcpuType::Llcf, &format!("bzip2-{i}")));
            }
            for i in 0..6 {
                vms.push(walk_vm(VcpuType::Llco, &format!("libquantum-{i}")));
            }
        }
        3 => {
            // 5 LLCF, 5 LLCO, 6 LoLCF.
            for i in 0..5 {
                vms.push(walk_vm(VcpuType::Llcf, &format!("bzip2-{i}")));
            }
            for i in 0..5 {
                vms.push(walk_vm(VcpuType::Llco, &format!("libquantum-{i}")));
            }
            for i in 0..6 {
                vms.push(walk_vm(VcpuType::Lolcf, &format!("hmmer-{i}")));
            }
        }
        4 => {
            // 4 IOInt, 4 ConSpin (facesim), 4 LLCF, 4 LLCO.
            for i in 0..4 {
                vms.push(io_vm(&format!("SPECweb-{i}")));
            }
            vms.push(spin_vm("facesim", 4));
            for i in 0..4 {
                vms.push(walk_vm(VcpuType::Llcf, &format!("bzip2-{i}")));
            }
            for i in 0..4 {
                vms.push(walk_vm(VcpuType::Llco, &format!("libquantum-{i}")));
            }
        }
        5 => {
            // 4 IOInt, 4 ConSpin, 4 LLCF, 2 LLCO, 2 LoLCF.
            for i in 0..4 {
                vms.push(io_vm(&format!("SPECweb-{i}")));
            }
            vms.push(spin_vm("facesim", 4));
            for i in 0..4 {
                vms.push(walk_vm(VcpuType::Llcf, &format!("bzip2-{i}")));
            }
            for i in 0..2 {
                vms.push(walk_vm(VcpuType::Llco, &format!("libquantum-{i}")));
            }
            for i in 0..2 {
                vms.push(walk_vm(VcpuType::Lolcf, &format!("hmmer-{i}")));
            }
        }
        _ => panic!("scenarios are S1..S5"),
    }
    Scenario::new(&format!("S{id}"), single_socket(), vms)
}

/// Classes present in a scenario, deduplicated in type order.
pub fn classes_of(s: &Scenario) -> Vec<VcpuType> {
    VcpuType::ALL
        .into_iter()
        .filter(|c| s.vms.iter().any(|vm| vm.class == *c))
        .collect()
}

/// Runs Fig. 6 left: AQL_Sched vs native Xen per scenario and type.
pub fn run_left(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig6(left) AQL vs Xen on scenarios S1-S5 (normalised cost)",
        &["scenario", "type", "norm (AQL/Xen)"],
    );
    for id in 1..=5 {
        let mut s = scenario(id);
        if quick {
            s = s.quick();
        }
        let xen = s.run(Box::new(xen_credit()));
        let aql = s.run(Box::new(AqlSched::paper_defaults()));
        for class in classes_of(&s) {
            let norm = class_normalized(&s, &aql, &xen, class);
            table.row(vec![format!("S{id}"), class.to_string(), fmt_ratio(norm)]);
        }
    }
    table
}

// ---------------------------------------------------------------------
// The 4-socket complex case (Fig. 3 topology)
// ---------------------------------------------------------------------

/// Guest-usable sockets on the 4-socket machine (socket 0 is dom0's).
pub fn usable_sockets() -> Vec<SocketId> {
    vec![SocketId(1), SocketId(2), SocketId(3)]
}

/// The Fig. 3 population: 12 IOInt⁺, 17 LLCF, 7 ConSpin⁻, 12 LLCO
/// (VM construction order matches the paper's worked example).
pub fn fig3_scenario() -> Scenario {
    let mut vms: Vec<ScenarioVm> = Vec::new();
    for i in 0..12 {
        vms.push(io_plus_vm(&format!("ioplus-{i}")));
    }
    for i in 0..17 {
        vms.push(walk_vm(VcpuType::Llcf, &format!("llcf-{i}")));
    }
    // 7 ConSpin⁻ vCPUs as two jobs (4 + 3); the fairness leftover can
    // then take a whole job into the default cluster instead of
    // splitting one across quanta.
    vms.push(spin_vm("spin-a", 4));
    vms.push(spin_vm("spin-b", 3));
    for i in 0..12 {
        vms.push(walk_vm(VcpuType::Llco, &format!("llco-{i}")));
    }
    Scenario::new("fig3", MachineSpec::xeon_e5_4603(), vms)
}

/// Native Xen restricted to the guest sockets (dom0's cores are
/// dedicated, so guests never run there under either scheduler).
#[derive(Debug, Clone)]
pub struct RestrictedXen {
    quantum_ns: u64,
    sockets: Vec<SocketId>,
}

impl RestrictedXen {
    /// 30 ms quantum over the given sockets.
    pub fn new(sockets: Vec<SocketId>) -> Self {
        RestrictedXen {
            quantum_ns: 30 * MS,
            sockets,
        }
    }

    /// An arbitrary fixed quantum over the given sockets.
    pub fn with_quantum(sockets: Vec<SocketId>, quantum_ns: u64) -> Self {
        RestrictedXen {
            quantum_ns,
            sockets,
        }
    }
}

impl SchedPolicy for RestrictedXen {
    fn name(&self) -> &str {
        "xen-credit-restricted"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        let mut guest: Vec<PcpuId> = Vec::new();
        let mut reserved: Vec<PcpuId> = Vec::new();
        for s in 0..hv.machine.sockets {
            let pcpus = hv.machine.pcpus_of_socket(SocketId(s));
            if self.sockets.contains(&SocketId(s)) {
                guest.extend(pcpus);
            } else {
                reserved.extend(pcpus);
            }
        }
        let mut pools = vec![PoolSpec::new(guest, self.quantum_ns)];
        if !reserved.is_empty() {
            pools.push(PoolSpec::new(reserved, self.quantum_ns));
        }
        let assignment = vec![PoolId(0); hv.vcpus.len()];
        hv.apply_plan(pools, assignment)
            .expect("socket split is always valid");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// AQL_Sched configured for the 4-socket machine (dom0 socket
/// excluded), as in Fig. 3.
pub fn aql_for_fig3() -> AqlSched {
    AqlSched::new(AqlSchedConfig {
        usable_sockets: Some(usable_sockets()),
        ..AqlSchedConfig::default()
    })
}

/// Runs Fig. 6 right: the 4-socket case, AQL vs restricted Xen.
pub fn run_right(quick: bool) -> (Table, Table) {
    let mut s = fig3_scenario();
    if quick {
        s = s.quick();
    }
    let xen = s.run(Box::new(RestrictedXen::new(usable_sockets())));
    let aql_sim = s.run_sim(Box::new(aql_for_fig3()));
    let aql = aql_sim.report();
    let mut table = Table::new(
        "Fig6(right) 4-socket case (normalised cost, AQL/Xen)",
        &["type", "norm (AQL/Xen)"],
    );
    for class in classes_of(&s) {
        table.row(vec![
            class.to_string(),
            fmt_ratio(class_normalized(&s, &aql, &xen, class)),
        ]);
    }
    // The clusters AQL settled on (compare with Fig. 3).
    let mut clusters = Table::new(
        "Fig6(right) clusters formed",
        &[
            "cluster", "socket", "quantum", "#vcpus", "#pcpus", "default",
        ],
    );
    if let Some(plan) = aql_sim
        .policy()
        .as_any()
        .downcast_ref::<AqlSched>()
        .and_then(|p| p.last_plan())
    {
        for c in &plan.clusters {
            clusters.row(vec![
                c.label.clone(),
                c.socket.to_string(),
                aql_sim::time::fmt_dur(c.quantum_ns),
                c.vcpus.len().to_string(),
                c.pcpus.len().to_string(),
                c.is_default.to_string(),
            ]);
        }
    }
    (table, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_16_vcpus() {
        for id in 1..=5 {
            let s = scenario(id);
            let total: usize = s
                .vms
                .iter()
                .enumerate()
                .map(|(i, vm)| (vm.factory)(i as u64).0.vcpus)
                .sum();
            assert_eq!(total, 16, "S{id}");
        }
    }

    #[test]
    fn scenario_type_counts_match_table4() {
        let count = |s: &Scenario, c: VcpuType| -> usize {
            s.vms
                .iter()
                .enumerate()
                .filter(|(_, vm)| vm.class == c)
                .map(|(i, vm)| (vm.factory)(i as u64).0.vcpus)
                .sum()
        };
        let s1 = scenario(1);
        assert_eq!(count(&s1, VcpuType::ConSpin), 5);
        assert_eq!(count(&s1, VcpuType::Llcf), 5);
        assert_eq!(count(&s1, VcpuType::Lolcf), 6);
        let s5 = scenario(5);
        assert_eq!(count(&s5, VcpuType::IoInt), 4);
        assert_eq!(count(&s5, VcpuType::ConSpin), 4);
        assert_eq!(count(&s5, VcpuType::Llcf), 4);
        assert_eq!(count(&s5, VcpuType::Llco), 2);
        assert_eq!(count(&s5, VcpuType::Lolcf), 2);
    }

    #[test]
    fn fig3_population_matches_the_paper() {
        let s = fig3_scenario();
        let total: usize = s
            .vms
            .iter()
            .enumerate()
            .map(|(i, vm)| (vm.factory)(i as u64).0.vcpus)
            .sum();
        assert_eq!(total, 48);
    }

    #[test]
    #[should_panic(expected = "scenarios are S1..S5")]
    fn unknown_scenario_panics() {
        let _ = scenario(9);
    }
}
