//! Fig. 6 — AQL_Sched effectiveness.
//!
//! Left: the five colocation scenarios of Table 4 (16 vCPUs on 4
//! pCPUs, single socket; catalog entries `s1`–`s5`), AQL_Sched
//! normalised over the default Xen scheduler per application type.
//!
//! Right: the complex 4-socket case of Fig. 3 (catalog entry
//! `fig3-complex`: 48 vCPUs — 12 IOInt⁺, 7 ConSpin⁻, 17 LLCF, 12 LLCO
//! on three usable sockets; socket 0 is dom0's), run under the
//! socket-restricted policy tokens.

use aql_scenarios::{catalog, ScenarioSpec};

use crate::emit::{fmt_ratio, Table};
use crate::plan::{class_mean_norm, classes_present, execute, ExecOpts, PlanCell, Probe, ProbeOut};

/// The guest-usable sockets of the 4-socket machine as a policy-token
/// argument (socket 0 is dom0's).
pub const GUEST_SOCKETS: &str = "1-3";

/// Loads scenario `S1`..`S5` of Table 4 from the catalog.
pub fn scenario_spec(id: usize) -> ScenarioSpec {
    assert!((1..=5).contains(&id), "scenarios are S1..S5");
    catalog::load(&format!("s{id}")).expect("catalog carries s1..s5")
}

/// Loads the Fig. 3 population from the catalog.
pub fn fig3_spec() -> ScenarioSpec {
    catalog::load("fig3-complex").expect("catalog carries fig3-complex")
}

/// Runs Fig. 6 left: AQL_Sched vs native Xen per scenario and type,
/// all five scenarios as one plan.
pub fn run_left(quick: bool, opts: &ExecOpts) -> Table {
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    for id in 1..=5 {
        let mut s = scenario_spec(id);
        if quick {
            s = s.quick();
        }
        cells.push(PlanCell::new(s.clone(), "xen-credit"));
        cells.push(PlanCell::new(s.clone(), "aql-sched"));
        specs.push(s);
    }
    let results = execute(&cells, opts).expect("fig6 plan is well-formed");
    let mut table = Table::new(
        "Fig6(left) AQL vs Xen on scenarios S1-S5 (normalised cost)",
        &["scenario", "type", "norm (AQL/Xen)"],
    );
    for (i, spec) in specs.iter().enumerate() {
        let xen = results[2 * i].report.as_ref().expect("xen cell ran");
        let aql = results[2 * i + 1].report.as_ref().expect("aql cell ran");
        let classes = aql_scenarios::classes(spec);
        for class in classes_present(spec) {
            let norm = class_mean_norm(aql, xen, &classes, Some(class));
            table.row(vec![
                format!("S{}", i + 1),
                class.to_string(),
                fmt_ratio(norm),
            ]);
        }
    }
    table
}

/// Runs Fig. 6 right: the 4-socket case, AQL vs socket-restricted Xen
/// (both confined to sockets 1–3; dom0's cores are dedicated, so
/// guests never run there under either scheduler).
pub fn run_right(quick: bool, opts: &ExecOpts) -> (Table, Table) {
    let mut s = fig3_spec();
    if quick {
        s = s.quick();
    }
    let cells = vec![
        PlanCell::new(s.clone(), &format!("xen-credit/sockets={GUEST_SOCKETS}")),
        PlanCell::new(s.clone(), &format!("aql-sched/sockets={GUEST_SOCKETS}"))
            .with_probe(Probe::ClusterPlan),
    ];
    let results = execute(&cells, opts).expect("fig6 plan is well-formed");
    let xen = results[0].report.as_ref().expect("xen cell ran");
    let aql = results[1].report.as_ref().expect("aql cell ran");
    let classes = aql_scenarios::classes(&s);
    let mut table = Table::new(
        "Fig6(right) 4-socket case (normalised cost, AQL/Xen)",
        &["type", "norm (AQL/Xen)"],
    );
    for class in classes_present(&s) {
        table.row(vec![
            class.to_string(),
            fmt_ratio(class_mean_norm(aql, xen, &classes, Some(class))),
        ]);
    }
    // The clusters AQL settled on (compare with Fig. 3).
    let mut clusters = Table::new(
        "Fig6(right) clusters formed",
        &[
            "cluster", "socket", "quantum", "#vcpus", "#pcpus", "default",
        ],
    );
    if let Some(ProbeOut::Clusters(rows)) = &results[1].probe {
        for c in rows {
            clusters.row(vec![
                c.label.clone(),
                c.socket.clone(),
                aql_sim::time::fmt_dur(c.quantum_ns),
                c.vcpus.len().to_string(),
                c.pcpus.to_string(),
                c.is_default.to_string(),
            ]);
        }
    }
    (table, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_hv::apptype::VcpuType;

    fn vcpu_count(spec: &ScenarioSpec, class: VcpuType) -> usize {
        spec.vms
            .iter()
            .flat_map(|vm| (0..vm.count).map(move |i| (vm.class_of(i), vm.workload_of(i).vcpus())))
            .filter(|(c, _)| *c == class)
            .map(|(_, v)| v)
            .sum()
    }

    #[test]
    fn scenarios_have_16_vcpus() {
        for id in 1..=5 {
            assert_eq!(scenario_spec(id).total_vcpus(), 16, "S{id}");
        }
    }

    #[test]
    fn scenario_type_counts_match_table4() {
        let s1 = scenario_spec(1);
        assert_eq!(vcpu_count(&s1, VcpuType::ConSpin), 5);
        assert_eq!(vcpu_count(&s1, VcpuType::Llcf), 5);
        assert_eq!(vcpu_count(&s1, VcpuType::Lolcf), 6);
        let s5 = scenario_spec(5);
        assert_eq!(vcpu_count(&s5, VcpuType::IoInt), 4);
        assert_eq!(vcpu_count(&s5, VcpuType::ConSpin), 4);
        assert_eq!(vcpu_count(&s5, VcpuType::Llcf), 4);
        assert_eq!(vcpu_count(&s5, VcpuType::Llco), 2);
        assert_eq!(vcpu_count(&s5, VcpuType::Lolcf), 2);
    }

    #[test]
    fn fig3_population_matches_the_paper() {
        let s = fig3_spec();
        assert_eq!(s.total_vcpus(), 48);
        assert_eq!(s.machine.sockets, 4);
        assert_eq!(vcpu_count(&s, VcpuType::IoInt), 12);
        assert_eq!(vcpu_count(&s, VcpuType::ConSpin), 7);
        assert_eq!(vcpu_count(&s, VcpuType::Llcf), 17);
        assert_eq!(vcpu_count(&s, VcpuType::Llco), 12);
    }

    #[test]
    #[should_panic(expected = "scenarios are S1..S5")]
    fn unknown_scenario_panics() {
        let _ = scenario_spec(9);
    }
}
