//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each module corresponds to one artifact of the paper; the
//! `repro` binary exposes them as subcommands and writes CSV series
//! under `results/` next to a human-readable table on stdout:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — quantum-length calibration, panels (a)–(f) plus the lock-duration inset |
//! | [`fig4`] | Fig. 4 — vTRS cursor traces for five representative applications |
//! | [`fig5`] | Fig. 5 — validation sweep over the full benchmark catalog |
//! | [`fig6`] | Fig. 6 — AQL_Sched effectiveness: scenarios S1–S5 (left) and the 4-socket case (right) |
//! | [`fig7`] | Fig. 7 — benefit of quantum-length customization |
//! | [`fig8`] | Fig. 8 — comparison with vTurbo, vSlicer and Microsliced |
//! | [`tables`] | Tables 3 (recognition), 5 (clustering per scenario) and 6 (feature matrix) |
//!
//! Beyond the paper, [`ablations`] isolates the design choices
//! DESIGN.md calls out (lock fabric, PLE yield, vTRS window, BOOST,
//! engine sub-step) and measures §4.3 scalability, and [`sweep`] fans
//! an open-ended scenario × policy × seed matrix (from
//! `aql_scenarios`' declarative catalog) across OS threads — the
//! `sweep` binary is its CLI.
//!
//! Every artifact runs on one shared substrate, the experiment-plan
//! layer ([`plan`]): a figure is a matrix of [`plan::PlanCell`]s —
//! declarative scenario × policy-token × seed, with optional
//! in-worker probes for policy-internal state — executed by
//! [`plan::execute`]'s atomic-job-cursor thread pool and folded into
//! [`Table`]s ([`emit`]) through shared, named normalisation
//! reducers. Figure output is byte-identical across thread counts and
//! time-advance modes; `tests/figure_goldens.rs` pins every table
//! against committed goldens.

#![warn(missing_docs)]

pub mod ablations;
pub mod emit;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod journal;
pub mod plan;
pub mod sweep;
pub mod tables;

pub use emit::Table;
pub use plan::{
    execute, CellFailure, CellResult, ExecOpts, FailureKind, PlanCell, Probe, ProbeOut,
};
pub use sweep::{run_sweep, run_sweep_on, SweepConfig, SweepOutcome};
