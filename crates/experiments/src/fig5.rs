//! Fig. 5 — validation of vTRS and calibration robustness.
//!
//! Every application of the catalog runs consolidated (4 vCPUs per
//! pCPU, as the paper observes is the common cloud case) under each
//! quantum length; the reported value is the cost normalised over the
//! default 30 ms run. The paper's claim: each application reaches its
//! best performance at the quantum its vTRS-detected type calibrates
//! to.
//!
//! The per-application consolidation environment is a generated
//! [`ScenarioSpec`] ([`catalog_spec`]); the quantum axis is the
//! `fixed/<dur>` policy token, all applications fanned through one
//! plan.

use aql_scenarios::ScenarioSpec;
use aql_sim::time::fmt_dur;
use aql_workloads::find_app;

use crate::emit::{fmt_ratio, Table};
use crate::fig2::{fold_quanta, quantum_cells, QUANTA};
use crate::plan::{execute, ExecOpts, PlanCell};

/// Builds the consolidated environment for one named application:
/// one pCPU per application vCPU, with three co-runner vCPUs per pCPU
/// (one trasher, one LLC-friendly, one low-level-cache walker per
/// application vCPU — "various workload types").
pub fn catalog_spec(app: &str) -> ScenarioSpec {
    let entry = find_app(app).unwrap_or_else(|| panic!("unknown catalog app '{app}'"));
    let cores = entry.vcpus;
    let mut doc = format!(
        "scenario   = fig5-{app}\n\
         machine    = name=fig5-{cores}core sockets=1 cores={cores} cache=i7-3770\n\
         vm {app} workload=app/{app} seed=42\n"
    );
    for i in 0..cores {
        doc.push_str(&format!("vm co-llco-{i} workload=walk/llco\n"));
        doc.push_str(&format!("vm co-llcf-{i} workload=walk/llcf\n"));
        doc.push_str(&format!("vm co-lolcf-{i} workload=walk/lolcf\n"));
    }
    ScenarioSpec::parse(&doc).expect("generated fig5 spec is well-formed")
}

/// The cells of one application's sweep: one shared
/// [`crate::fig2::quantum_cells`] span over the consolidation spec.
fn app_cells(app: &str, quick: bool) -> Vec<PlanCell> {
    let mut spec = catalog_spec(app);
    if quick {
        spec = spec.quick();
    }
    quantum_cells(&spec)
}

/// Runs the sweep for one application: normalised cost per quantum.
pub fn run_app(app: &str, quick: bool, opts: &ExecOpts) -> Vec<Option<f64>> {
    let results = execute(&app_cells(app, quick), opts).expect("fig5 plan is well-formed");
    fold_quanta(&results)
}

/// Runs the whole figure over `apps` (or the full catalog when empty)
/// as a single plan.
pub fn run(apps: &[&str], quick: bool, opts: &ExecOpts) -> Table {
    let names: Vec<&str> = if apps.is_empty() {
        aql_workloads::all_apps().iter().map(|a| a.name).collect()
    } else {
        apps.to_vec()
    };
    let mut cells = Vec::new();
    let mut spans = Vec::new();
    for app in &names {
        let c = app_cells(app, quick);
        spans.push(c.len());
        cells.extend(c);
    }
    let results = execute(&cells, opts).expect("fig5 plan is well-formed");
    let mut headers: Vec<String> = vec!["application".into(), "class".into()];
    headers.extend(QUANTA.iter().map(|q| fmt_dur(*q)));
    let mut table = Table::new(
        "Fig5 validation sweep (normalised cost, lower is better)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut offset = 0;
    for (app, span) in names.iter().zip(spans) {
        let entry = find_app(app).expect("catalog app");
        let cols = fold_quanta(&results[offset..offset + span]);
        offset += span;
        let mut row = vec![app.to_string(), entry.class.to_string()];
        row.extend(cols.iter().map(|c| fmt_ratio(*c)));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_fully_consolidated() {
        for app in ["bzip2", "fluidanimate", "SPECweb2009"] {
            let s = catalog_spec(app);
            let pcpus = s.machine.sockets * s.machine.cores_per_socket;
            assert_eq!(s.total_vcpus(), 4 * pcpus, "{app}: 4 vCPUs per pCPU");
        }
    }

    #[test]
    #[should_panic(expected = "unknown catalog app")]
    fn unknown_app_panics() {
        let _ = catalog_spec("doom");
    }
}
