//! Fig. 5 — validation of vTRS and calibration robustness.
//!
//! Every application of the catalog runs consolidated (4 vCPUs per
//! pCPU, as the paper observes is the common cloud case) under each
//! quantum length; the reported value is the cost normalised over the
//! default 30 ms run. The paper's claim: each application reaches its
//! best performance at the quantum its vTRS-detected type calibrates
//! to.

use aql_baselines::xen_credit;
use aql_hv::apptype::VcpuType;
use aql_hv::policy::FixedQuantumPolicy;
use aql_hv::workload::GuestWorkload;
use aql_hv::{MachineSpec, VmSpec};
use aql_mem::CacheSpec;
use aql_sim::time::fmt_dur;
use aql_workloads::{build_app_vm, find_app, MemWalk};

use crate::emit::{fmt_ratio, Table};
use crate::fig2::{BASE_QUANTUM, QUANTA};
use crate::runner::{cost_of, normalized, Scenario, ScenarioVm};

/// Builds the consolidated environment for one named application:
/// one pCPU per application vCPU, with three co-runner vCPUs per pCPU
/// (one trasher, one LLC-friendly, one low-level-cache walker per
/// application vCPU — "various workload types").
pub fn catalog_scenario(app: &str) -> Scenario {
    let entry = find_app(app).unwrap_or_else(|| panic!("unknown catalog app '{app}'"));
    let cores = entry.vcpus;
    let machine = MachineSpec::custom(
        &format!("fig5-{}core", cores),
        1,
        cores,
        CacheSpec::i7_3770(),
    );
    let app_name = app.to_string();
    let mut vms = vec![ScenarioVm::new(entry.class, move |seed| {
        build_app_vm(&app_name, &CacheSpec::i7_3770(), seed).expect("catalog app")
    })];
    // Three co-runner vCPUs per application vCPU.
    for i in 0..cores {
        let spec = CacheSpec::i7_3770();
        vms.push(ScenarioVm::new(VcpuType::Llco, move |_| {
            let name = format!("co-llco-{i}");
            (
                VmSpec::single(&name),
                Box::new(MemWalk::llco(&name, &spec)) as Box<dyn GuestWorkload>,
            )
        }));
        vms.push(ScenarioVm::new(VcpuType::Llcf, move |_| {
            let name = format!("co-llcf-{i}");
            (
                VmSpec::single(&name),
                Box::new(MemWalk::llcf(&name, &spec)) as Box<dyn GuestWorkload>,
            )
        }));
        vms.push(ScenarioVm::new(VcpuType::Lolcf, move |_| {
            let name = format!("co-lolcf-{i}");
            (
                VmSpec::single(&name),
                Box::new(MemWalk::lolcf(&name, &spec)) as Box<dyn GuestWorkload>,
            )
        }));
    }
    Scenario::new(&format!("fig5-{app}"), machine, vms)
}

/// Runs the sweep for one application: normalised cost per quantum.
pub fn run_app(app: &str, quick: bool) -> Vec<Option<f64>> {
    let mut scenario = catalog_scenario(app);
    if quick {
        scenario = scenario.quick();
    }
    let baseline = scenario.run(Box::new(xen_credit()));
    let base_cost = cost_of(&baseline, 0);
    QUANTA
        .iter()
        .map(|&q| {
            if q == BASE_QUANTUM {
                return Some(1.0);
            }
            let report = scenario.run(Box::new(FixedQuantumPolicy::new(q)));
            normalized(cost_of(&report, 0), base_cost)
        })
        .collect()
}

/// Runs the whole figure over `apps` (or the full catalog when empty).
pub fn run(apps: &[&str], quick: bool) -> Table {
    let names: Vec<&str> = if apps.is_empty() {
        aql_workloads::all_apps().iter().map(|a| a.name).collect()
    } else {
        apps.to_vec()
    };
    let mut headers: Vec<String> = vec!["application".into(), "class".into()];
    headers.extend(QUANTA.iter().map(|q| fmt_dur(*q)));
    let mut table = Table::new(
        "Fig5 validation sweep (normalised cost, lower is better)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for app in names {
        let entry = find_app(app).expect("catalog app");
        let cols = run_app(app, quick);
        let mut row = vec![app.to_string(), entry.class.to_string()];
        row.extend(cols.iter().map(|c| fmt_ratio(*c)));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_fully_consolidated() {
        for app in ["bzip2", "fluidanimate", "SPECweb2009"] {
            let s = catalog_scenario(app);
            let total_vcpus: usize = s
                .vms
                .iter()
                .enumerate()
                .map(|(i, vm)| (vm.factory)(i as u64).0.vcpus)
                .sum();
            assert_eq!(
                total_vcpus,
                4 * s.machine.total_pcpus(),
                "{app}: 4 vCPUs per pCPU"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown catalog app")]
    fn unknown_app_panics() {
        let _ = catalog_scenario("doom");
    }
}
