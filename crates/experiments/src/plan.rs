//! The experiment-plan layer: every paper artifact as a declarative
//! cell matrix over one shared parallel executor.
//!
//! A figure is a set of [`PlanCell`]s — each names a [`ScenarioSpec`]
//! (usually a catalog entry plus overlays), a policy token (see
//! [`aql_scenarios::parse_policy`]), a base seed and an optional
//! in-worker [`Probe`] — plus a fold that reduces the executed
//! [`CellResult`]s into [`Table`](crate::Table)s with the shared
//! normalisation reducers below. [`execute`] fans the cells across OS threads
//! through the same atomic-job-cursor pool the sweep runner uses, so
//! `repro` and `sweep` share one execution path.
//!
//! # Determinism
//!
//! Cell results land at their *matrix index* regardless of which
//! worker claims them, every simulation is a pure function of
//! `(spec, policy, base_seed, time_mode)`, and folds read results in
//! matrix order — so every emitted table is byte-identical across
//! repeated runs, `--threads` values and time modes.
//!
//! # Probes
//!
//! Policy-internal state (vTRS cursor histories, cluster plans) is
//! only reachable while the simulation is alive, inside the worker.
//! A [`Probe`] names what to extract; the executor downcasts the
//! policy there and ships plain data ([`ProbeOut`]) back, keeping
//! [`CellResult`] `Send` without making simulations so.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use aql_core::AqlSched;
use aql_hv::apptype::VcpuType;
use aql_hv::{RunReport, Simulation, TimeMode};
use aql_scenarios::{build_sim_seeded_full, parse_policy, ScenarioSpec};

/// Policy-internal state to extract from a cell's simulation before
/// it is dropped (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    /// Nothing beyond the [`RunReport`].
    None,
    /// The recorded vTRS cursor history of one vCPU (Fig. 4); the
    /// policy token must enable recording (`aql-sched/history=<n>`).
    CursorHistory {
        /// Engine vCPU index to read.
        vcpu: usize,
    },
    /// The cluster plan AQL_Sched last applied (Fig. 6 right, Table 5).
    ClusterPlan,
    /// Majority vTRS-detected type over one VM's vCPUs (Table 3).
    VtrsMajority {
        /// VM index (placement order).
        vm: usize,
    },
    /// How many times AQL_Sched re-clustered (vTRS-window ablation).
    Reclusterings,
}

/// One cluster of an extracted plan, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRow {
    /// Cluster label.
    pub label: String,
    /// Socket, rendered (`socket1`).
    pub socket: String,
    /// Pool quantum (ns).
    pub quantum_ns: u64,
    /// Engine indices of the member vCPUs.
    pub vcpus: Vec<usize>,
    /// Number of pCPUs backing the cluster.
    pub pcpus: usize,
    /// Whether this is the default (fairness leftover) cluster.
    pub is_default: bool,
}

/// Extracted probe data (see [`Probe`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOut {
    /// Cursor history rows: `[IOInt, ConSpin, LLCF, LoLCF, LLCO]` per
    /// monitoring period.
    Cursors(Vec<[f64; 5]>),
    /// The applied cluster plan (empty when none was applied).
    Clusters(Vec<ClusterRow>),
    /// Majority detected type.
    Majority(VcpuType),
    /// Re-clustering count.
    Reclusterings(u64),
}

/// One cell of an experiment plan.
#[derive(Debug, Clone)]
pub struct PlanCell {
    /// The scenario to run (already carrying any overlays).
    pub spec: ScenarioSpec,
    /// Policy token (see [`aql_scenarios::parse_policy`]).
    pub policy: String,
    /// Base seed; defaults to the spec's own.
    pub base_seed: u64,
    /// What to extract beyond the report.
    pub probe: Probe,
}

impl PlanCell {
    /// A cell at the spec's own seed with no probe.
    pub fn new(spec: ScenarioSpec, policy: &str) -> Self {
        PlanCell {
            base_seed: spec.seed,
            spec,
            policy: policy.to_string(),
            probe: Probe::None,
        }
    }

    /// Attaches a probe.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }
}

/// How to execute a plan. The choice never affects emitted tables —
/// only wall time. The default is every core in the default
/// ([`TimeMode::Adaptive`]) time mode.
#[derive(Debug, Clone, Copy)]
pub struct ExecOpts {
    /// Worker threads; `0` uses the host's available parallelism.
    pub threads: usize,
    /// Time-advance mode every cell runs under.
    pub time_mode: TimeMode,
    /// Whether the adaptive mode may coalesce quiescent-span chunks
    /// (default on). Off pins the grid-replaying fast path that is
    /// bit-identical to `Dense` — the CI bench's perf baseline.
    pub coalesce: bool,
    /// Parallel span-execution lanes *inside* each simulation (see
    /// `SimulationBuilder::span_workers`; default 1 = serial engine).
    /// Orthogonal to `threads`, which fans whole cells: `threads`
    /// scales scenario-level throughput, `span_workers` single-run
    /// latency on multi-socket machines. Results are byte-identical
    /// for every value.
    pub span_workers: usize,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            threads: 0,
            time_mode: TimeMode::default(),
            coalesce: true,
            span_workers: 1,
        }
    }
}

impl ExecOpts {
    /// Single-threaded execution (unit tests, timing baselines).
    pub fn serial() -> Self {
        ExecOpts {
            threads: 1,
            ..ExecOpts::default()
        }
    }
}

/// A completed cell.
#[derive(Debug)]
pub struct CellResult {
    /// The steady-state report; `None` when the policy cannot run on
    /// the scenario's machine (e.g. vTurbo on a single-core host).
    pub report: Option<RunReport>,
    /// Extracted probe data (when the cell asked for one and ran).
    pub probe: Option<ProbeOut>,
    /// Wall-clock time this cell took to simulate (ns; zero for
    /// inapplicable cells). Never enters any table.
    pub wall_ns: u64,
}

fn extract_probe(sim: &Simulation, probe: &Probe) -> Option<ProbeOut> {
    match probe {
        Probe::None => None,
        Probe::CursorHistory { vcpu } => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            Some(ProbeOut::Cursors(
                policy
                    .cursor_history(*vcpu)
                    .iter()
                    .map(|c| [c.ioint, c.conspin, c.llcf, c.lolcf, c.llco])
                    .collect(),
            ))
        }
        Probe::ClusterPlan => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            let rows = policy
                .last_plan()
                .map(|plan| {
                    plan.clusters
                        .iter()
                        .map(|c| ClusterRow {
                            label: c.label.clone(),
                            socket: c.socket.to_string(),
                            quantum_ns: c.quantum_ns,
                            vcpus: c.vcpus.iter().map(|v| v.index()).collect(),
                            pcpus: c.pcpus.len(),
                            is_default: c.is_default,
                        })
                        .collect()
                })
                .unwrap_or_default();
            Some(ProbeOut::Clusters(rows))
        }
        Probe::VtrsMajority { vm } => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            let vtrs = policy.vtrs()?;
            let mut counts = [0usize; 5];
            for v in &sim.hv.vms[*vm].vcpus {
                let t = vtrs.type_of(v.index());
                let idx = VcpuType::ALL.iter().position(|&x| x == t)?;
                counts[idx] += 1;
            }
            let best = (0..5).max_by_key(|&i| counts[i])?;
            Some(ProbeOut::Majority(VcpuType::ALL[best]))
        }
        Probe::Reclusterings => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            Some(ProbeOut::Reclusterings(policy.reclusterings()))
        }
    }
}

/// Runs every cell across the worker pool; results are returned in
/// cell order. Fails fast (before spawning any thread) on a malformed
/// policy token.
pub fn execute(cells: &[PlanCell], opts: &ExecOpts) -> Result<Vec<CellResult>, String> {
    // Validate the whole matrix up front so a typo cannot surface as
    // a mid-plan panic on a worker thread — both token syntax and
    // per-cell fit (e.g. a sockets= list naming a socket the cell's
    // machine does not have).
    let policies = cells
        .iter()
        .map(|c| {
            let p = parse_policy(&c.policy)?;
            p.validate_for(&c.spec)
                .map_err(|e| format!("policy '{}': {e}", c.policy))?;
            Ok::<_, String>(p)
        })
        .collect::<Result<Vec<_>, _>>()?;
    if cells.is_empty() {
        return Err("empty plan".to_string());
    }
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(cells.len());

    // Workers claim cells through an atomic cursor and park each
    // result in the cell's matrix slot: claiming order is racy,
    // result placement is not.
    type Slot = Mutex<Option<(RunReport, Option<ProbeOut>, u64)>>;
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Slot> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let policy = &policies[i];
                if !policy.applicable(&cell.spec) {
                    continue;
                }
                let boxed = policy.build(&cell.spec);
                let t0 = std::time::Instant::now();
                let mut sim = build_sim_seeded_full(
                    &cell.spec,
                    boxed,
                    cell.base_seed,
                    opts.time_mode,
                    opts.coalesce,
                    opts.span_workers,
                );
                let report = sim.run_measured(cell.spec.warmup_ns, cell.spec.measure_ns);
                let wall_ns = t0.elapsed().as_nanos() as u64;
                let probe = extract_probe(&sim, &cell.probe);
                *slots[i].lock().expect("slot poisoned") = Some((report, probe, wall_ns));
            });
        }
    });

    Ok(slots
        .into_iter()
        .map(|slot| {
            let cell = slot.into_inner().expect("slot poisoned");
            match cell {
                Some((report, probe, wall_ns)) => CellResult {
                    report: Some(report),
                    probe,
                    wall_ns,
                },
                None => CellResult {
                    report: None,
                    probe: None,
                    wall_ns: 0,
                },
            }
        })
        .collect())
}

// ---------------------------------------------------------------------
// Shared reducers: the named normalisation folds every figure uses.
// ---------------------------------------------------------------------

/// The time-like cost of one VM in a report (lower is better); `None`
/// when the workload produced no metric.
pub fn cost_of(report: &RunReport, vm_index: usize) -> Option<f64> {
    report.vms.get(vm_index)?.metrics.time_cost()
}

/// `cost / baseline_cost` — the paper's normalisation: 1.0 matches
/// the baseline cell (usually the default Xen scheduler), lower is
/// better.
pub fn normalized(cost: Option<f64>, baseline: Option<f64>) -> Option<f64> {
    match (cost, baseline) {
        (Some(c), Some(b)) if b > 0.0 => Some(c / b),
        _ => None,
    }
}

/// Mean of the per-VM normalised costs for VMs of `class` (`None` =
/// all classes). `vm_classes` is the spec's per-VM ground truth
/// ([`aql_scenarios::classes`]); VMs with missing metrics (idle
/// padding) are skipped on both sides.
pub fn class_mean_norm(
    report: &RunReport,
    baseline: &RunReport,
    vm_classes: &[VcpuType],
    class: Option<VcpuType>,
) -> Option<f64> {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (i, vm) in report.vms.iter().enumerate() {
        if class.is_some_and(|c| vm_classes[i] != c) {
            continue;
        }
        let cost = vm.metrics.time_cost();
        let base = baseline.vms[i].metrics.time_cost();
        if let Some(v) = normalized(cost, base) {
            acc += v;
            n += 1;
        }
    }
    (n > 0).then(|| acc / n as f64)
}

/// Averages an optional statistic over replicates; `None` unless
/// every replicate produced a value.
pub fn seed_mean(values: &[Option<f64>]) -> Option<f64> {
    let mut acc = 0.0;
    for v in values {
        acc += (*v)?;
    }
    Some(acc / values.len() as f64)
}

/// The classes a spec populates, deduplicated in [`VcpuType::ALL`]
/// order — the row order of every per-class figure.
pub fn classes_present(spec: &ScenarioSpec) -> Vec<VcpuType> {
    let classes = aql_scenarios::classes(spec);
    VcpuType::ALL
        .into_iter()
        .filter(|c| classes.contains(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            "scenario = {name}\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             warmup_ms = 100\n\
             measure_ms = 250\n\
             vm web workload=io/heterogeneous/150 seed=42\n\
             vm walk-%i count=2 workload=walk/llcf|walk/llco\n"
        ))
        .unwrap()
    }

    #[test]
    fn results_land_in_cell_order() {
        let cells = vec![
            PlanCell::new(tiny("a"), "xen-credit"),
            PlanCell::new(tiny("b"), "fixed/10ms"),
        ];
        let out = execute(&cells, &ExecOpts::serial()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.report.is_some()));
        assert!(out.iter().all(|r| r.wall_ns > 0));
    }

    #[test]
    fn execution_is_thread_count_invariant() {
        let cells: Vec<PlanCell> = (0..6)
            .map(|i| {
                PlanCell::new(
                    tiny(&format!("t{i}")),
                    if i % 2 == 0 {
                        "xen-credit"
                    } else {
                        "fixed/5ms"
                    },
                )
            })
            .collect();
        let serial = execute(&cells, &ExecOpts::serial()).unwrap();
        let parallel = execute(
            &cells,
            &ExecOpts {
                threads: 4,
                ..ExecOpts::default()
            },
        )
        .unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.report.as_ref().unwrap(), p.report.as_ref().unwrap());
            assert_eq!(s.total_cpu_ns(), p.total_cpu_ns());
            assert_eq!(s.vms[0].metrics.time_cost(), p.vms[0].metrics.time_cost());
        }
    }

    #[test]
    fn inapplicable_cells_yield_no_report() {
        let spec = ScenarioSpec::parse(
            "scenario = solo\n\
             machine = sockets=1 cores=1 cache=i7-3770\n\
             warmup_ms = 50\nmeasure_ms = 100\n\
             vm a workload=walk/lolcf\n",
        )
        .unwrap();
        let out = execute(
            &[
                PlanCell::new(spec.clone(), "vturbo"),
                PlanCell::new(spec, "xen-credit"),
            ],
            &ExecOpts::serial(),
        )
        .unwrap();
        assert!(out[0].report.is_none());
        assert_eq!(out[0].wall_ns, 0);
        assert!(out[1].report.is_some());
    }

    #[test]
    fn malformed_tokens_fail_before_running() {
        let err = execute(
            &[PlanCell::new(tiny("x"), "fixed/oops")],
            &ExecOpts::serial(),
        );
        assert!(err.is_err());
        assert!(execute(&[], &ExecOpts::serial()).is_err());
        // A socket list naming a socket the cell's machine lacks is a
        // fail-fast configuration error, not a worker-thread panic.
        let err = execute(
            &[PlanCell::new(tiny("x"), "xen-credit/sockets=1-3")],
            &ExecOpts::serial(),
        );
        assert!(
            err.as_ref().is_err_and(|e| e.contains("does not exist")),
            "{err:?}"
        );
    }

    #[test]
    fn probes_extract_policy_state() {
        let out = execute(
            &[
                PlanCell::new(tiny("p"), "aql-sched/history=8")
                    .with_probe(Probe::CursorHistory { vcpu: 0 }),
                PlanCell::new(tiny("p"), "aql-sched").with_probe(Probe::Reclusterings),
                PlanCell::new(tiny("p"), "aql-sched").with_probe(Probe::VtrsMajority { vm: 0 }),
                PlanCell::new(tiny("p"), "xen-credit").with_probe(Probe::Reclusterings),
            ],
            &ExecOpts::serial(),
        )
        .unwrap();
        assert!(matches!(&out[0].probe, Some(ProbeOut::Cursors(rows)) if !rows.is_empty()));
        assert!(matches!(out[1].probe, Some(ProbeOut::Reclusterings(_))));
        assert!(matches!(out[2].probe, Some(ProbeOut::Majority(_))));
        // A probe that needs AqlSched yields nothing under Xen.
        assert!(out[3].probe.is_none());
    }

    #[test]
    fn reducer_behaviour() {
        assert_eq!(normalized(Some(2.0), Some(4.0)), Some(0.5));
        assert_eq!(normalized(None, Some(1.0)), None);
        assert_eq!(normalized(Some(1.0), Some(0.0)), None);
        assert_eq!(seed_mean(&[Some(1.0), Some(3.0)]), Some(2.0));
        assert_eq!(seed_mean(&[Some(1.0), None]), None);
        let spec = tiny("c");
        assert_eq!(
            classes_present(&spec),
            [VcpuType::IoInt, VcpuType::Llcf, VcpuType::Llco]
        );
    }
}
