//! The experiment-plan layer: every paper artifact as a declarative
//! cell matrix over one shared parallel executor.
//!
//! A figure is a set of [`PlanCell`]s — each names a [`ScenarioSpec`]
//! (usually a catalog entry plus overlays), a policy token (see
//! [`aql_scenarios::parse_policy`]), a base seed and an optional
//! in-worker [`Probe`] — plus a fold that reduces the executed
//! [`CellResult`]s into [`Table`](crate::Table)s with the shared
//! normalisation reducers below. [`execute`] fans the cells across OS threads
//! through the same atomic-job-cursor pool the sweep runner uses, so
//! `repro` and `sweep` share one execution path.
//!
//! # Determinism
//!
//! Cell results land at their *matrix index* regardless of which
//! worker claims them, every simulation is a pure function of
//! `(spec, policy, base_seed, time_mode)`, and folds read results in
//! matrix order — so every emitted table is byte-identical across
//! repeated runs, `--threads` values and time modes.
//!
//! # Probes
//!
//! Policy-internal state (vTRS cursor histories, cluster plans) is
//! only reachable while the simulation is alive, inside the worker.
//! A [`Probe`] names what to extract; the executor downcasts the
//! policy there and ships plain data ([`ProbeOut`]) back, keeping
//! [`CellResult`] `Send` without making simulations so.
//!
//! # Fault isolation
//!
//! Each cell is a failure domain. A worker wraps the cell's whole
//! build-run-probe body in `catch_unwind` and runs it under a
//! [`RunBudget`] with the livelock and invariant sentinels armed, so
//! a panicking, hanging or account-corrupting cell becomes a
//! classified [`CellFailure`] in its own slot while every sibling
//! cell's report stays bit-identical to a fault-free run (the
//! simulation is already a pure function of its cell, so containment
//! costs nothing). Environmental failures (wall-budget trips) retry
//! with exponential backoff up to [`ExecOpts::retries`]; determinis-
//! tic failures (panic, livelock, invariant violation) never retry —
//! rerunning a pure function cannot change its answer. Setting
//! [`ExecOpts::fail_fast`] restores the old re-raise behaviour for
//! CI gates that prefer an abort to a partial table. With a journal
//! path configured, finished probe-less cells append to a crash-safe
//! JSONL journal ([`crate::journal`]) and `resume` prefills matching
//! slots from it, byte-identical to a clean run.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use aql_core::AqlSched;
use aql_hv::apptype::VcpuType;
use aql_hv::{EngineError, RunBudget, RunReport, Simulation, TimeMode};
use aql_scenarios::{build_sim_seeded_full, parse_policy, ScenarioSpec};

use crate::journal::{self, JournalEntry};

/// Policy-internal state to extract from a cell's simulation before
/// it is dropped (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    /// Nothing beyond the [`RunReport`].
    None,
    /// The recorded vTRS cursor history of one vCPU (Fig. 4); the
    /// policy token must enable recording (`aql-sched/history=<n>`).
    CursorHistory {
        /// Engine vCPU index to read.
        vcpu: usize,
    },
    /// The cluster plan AQL_Sched last applied (Fig. 6 right, Table 5).
    ClusterPlan,
    /// Majority vTRS-detected type over one VM's vCPUs (Table 3).
    VtrsMajority {
        /// VM index (placement order).
        vm: usize,
    },
    /// How many times AQL_Sched re-clustered (vTRS-window ablation).
    Reclusterings,
}

/// One cluster of an extracted plan, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRow {
    /// Cluster label.
    pub label: String,
    /// Socket, rendered (`socket1`).
    pub socket: String,
    /// Pool quantum (ns).
    pub quantum_ns: u64,
    /// Engine indices of the member vCPUs.
    pub vcpus: Vec<usize>,
    /// Number of pCPUs backing the cluster.
    pub pcpus: usize,
    /// Whether this is the default (fairness leftover) cluster.
    pub is_default: bool,
}

/// Extracted probe data (see [`Probe`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOut {
    /// Cursor history rows: `[IOInt, ConSpin, LLCF, LoLCF, LLCO]` per
    /// monitoring period.
    Cursors(Vec<[f64; 5]>),
    /// The applied cluster plan (empty when none was applied).
    Clusters(Vec<ClusterRow>),
    /// Majority detected type.
    Majority(VcpuType),
    /// Re-clustering count.
    Reclusterings(u64),
}

/// One cell of an experiment plan.
#[derive(Debug, Clone)]
pub struct PlanCell {
    /// The scenario to run (already carrying any overlays).
    pub spec: ScenarioSpec,
    /// Policy token (see [`aql_scenarios::parse_policy`]).
    pub policy: String,
    /// Base seed; defaults to the spec's own.
    pub base_seed: u64,
    /// What to extract beyond the report.
    pub probe: Probe,
}

impl PlanCell {
    /// A cell at the spec's own seed with no probe.
    pub fn new(spec: ScenarioSpec, policy: &str) -> Self {
        PlanCell {
            base_seed: spec.seed,
            spec,
            policy: policy.to_string(),
            probe: Probe::None,
        }
    }

    /// Attaches a probe.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }
}

/// How to execute a plan. None of the choices affect what a healthy
/// cell emits — only wall time and what happens to *unhealthy* cells.
/// The default is every core in the default ([`TimeMode::Adaptive`])
/// time mode, failures contained, no wall budget, no retries, no
/// journal.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Worker threads; `0` uses the host's available parallelism.
    pub threads: usize,
    /// Time-advance mode every cell runs under.
    pub time_mode: TimeMode,
    /// Whether the adaptive mode may coalesce quiescent-span chunks
    /// (default on). Off pins the grid-replaying fast path that is
    /// bit-identical to `Dense` — the CI bench's perf baseline.
    pub coalesce: bool,
    /// Parallel span-execution lanes *inside* each simulation (see
    /// `SimulationBuilder::span_workers`; default 1 = serial engine).
    /// Orthogonal to `threads`, which fans whole cells: `threads`
    /// scales scenario-level throughput, `span_workers` single-run
    /// latency on multi-socket machines. Results are byte-identical
    /// for every value.
    pub span_workers: usize,
    /// Re-raise the first cell failure instead of recording it —
    /// the pre-containment behaviour, for CI gates that prefer an
    /// abort to a partial table. A contained panic's original payload
    /// is re-thrown verbatim.
    pub fail_fast: bool,
    /// Wall-clock budget for one cell attempt; `None` (default) means
    /// a cell may take as long as it likes. Trips as
    /// [`FailureKind::WallBudget`], the only *environmental* —
    /// retryable — failure class.
    pub max_cell_wall: Option<Duration>,
    /// How many times to retry a cell after an environmental failure
    /// (exponential backoff between attempts). Deterministic failures
    /// never retry regardless.
    pub retries: u32,
    /// Append finished probe-less cells to this JSONL journal
    /// ([`crate::journal`]); flushed per cell, so a crash loses at
    /// most the line being written.
    pub journal: Option<PathBuf>,
    /// Prefill cells already present in the journal (matched by
    /// identity *and* config fingerprint) instead of re-running them.
    /// Requires `journal`. The resumed table is byte-identical to a
    /// clean run because reports round-trip bit-exactly.
    pub resume: bool,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            threads: 0,
            time_mode: TimeMode::default(),
            coalesce: true,
            span_workers: 1,
            fail_fast: false,
            max_cell_wall: None,
            retries: 0,
            journal: None,
            resume: false,
        }
    }
}

impl ExecOpts {
    /// Single-threaded execution (unit tests, timing baselines).
    pub fn serial() -> Self {
        ExecOpts {
            threads: 1,
            ..ExecOpts::default()
        }
    }
}

/// Why a cell failed, coarsely — the axis the retry policy pivots on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell's thread panicked (workload bug, policy bug).
    Panic,
    /// The livelock sentinel tripped: a vCPU kept demanding CPU
    /// without ever advancing ([`EngineError::Livelock`]).
    Livelock,
    /// The wall-clock budget expired ([`ExecOpts::max_cell_wall`]).
    WallBudget,
    /// The finished report violated an accounting invariant
    /// (drifted sums, non-finite metrics).
    Invariant,
}

impl FailureKind {
    /// Short lower-case label (`panic`, `livelock`, `wall-budget`,
    /// `invariant`) for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Livelock => "livelock",
            FailureKind::WallBudget => "wall-budget",
            FailureKind::Invariant => "invariant",
        }
    }

    /// Whether retrying could plausibly change the outcome. Only the
    /// wall budget depends on the host rather than the (pure,
    /// deterministic) simulation, so only it is environmental.
    pub fn is_environmental(self) -> bool {
        matches!(self, FailureKind::WallBudget)
    }
}

/// One contained cell failure: what went wrong, where, after how many
/// attempts.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Coarse classification.
    pub kind: FailureKind,
    /// Human-readable detail — the panic payload or engine error.
    pub message: String,
    /// Scenario name of the failed cell.
    pub scenario: String,
    /// Policy token of the failed cell.
    pub policy: String,
    /// Base seed of the failed cell.
    pub seed: u64,
    /// Attempts made (> 1 only after environmental retries).
    pub attempts: u32,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} × {} @ seed {}: {}",
            self.kind.label(),
            self.scenario,
            self.policy,
            self.seed,
            self.message
        )?;
        if self.attempts > 1 {
            write!(f, " (after {} attempts)", self.attempts)?;
        }
        Ok(())
    }
}

/// A completed cell.
#[derive(Debug)]
pub struct CellResult {
    /// The steady-state report; `None` when the policy cannot run on
    /// the scenario's machine (e.g. vTurbo on a single-core host) or
    /// when the cell failed (see `failure`).
    pub report: Option<RunReport>,
    /// Extracted probe data (when the cell asked for one and ran).
    pub probe: Option<ProbeOut>,
    /// Wall-clock time this cell took to simulate (ns; zero for
    /// inapplicable cells). Never enters any table.
    pub wall_ns: u64,
    /// The contained failure, when the cell ran and did not finish.
    /// `None` with `report: None` means the cell was inapplicable.
    pub failure: Option<CellFailure>,
}

fn extract_probe(sim: &Simulation, probe: &Probe) -> Option<ProbeOut> {
    match probe {
        Probe::None => None,
        Probe::CursorHistory { vcpu } => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            Some(ProbeOut::Cursors(
                policy
                    .cursor_history(*vcpu)
                    .iter()
                    .map(|c| [c.ioint, c.conspin, c.llcf, c.lolcf, c.llco])
                    .collect(),
            ))
        }
        Probe::ClusterPlan => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            let rows = policy
                .last_plan()
                .map(|plan| {
                    plan.clusters
                        .iter()
                        .map(|c| ClusterRow {
                            label: c.label.clone(),
                            socket: c.socket.to_string(),
                            quantum_ns: c.quantum_ns,
                            vcpus: c.vcpus.iter().map(|v| v.index()).collect(),
                            pcpus: c.pcpus.len(),
                            is_default: c.is_default,
                        })
                        .collect()
                })
                .unwrap_or_default();
            Some(ProbeOut::Clusters(rows))
        }
        Probe::VtrsMajority { vm } => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            let vtrs = policy.vtrs()?;
            let mut counts = [0usize; 5];
            for v in &sim.hv.vms[*vm].vcpus {
                let t = vtrs.type_of(v.index());
                let idx = VcpuType::ALL.iter().position(|&x| x == t)?;
                counts[idx] += 1;
            }
            let best = (0..5).max_by_key(|&i| counts[i])?;
            Some(ProbeOut::Majority(VcpuType::ALL[best]))
        }
        Probe::Reclusterings => {
            let policy = sim.policy().as_any().downcast_ref::<AqlSched>()?;
            Some(ProbeOut::Reclusterings(policy.reclusterings()))
        }
    }
}

/// A worker-side slot value: either a finished cell or its contained
/// failure. Absent (`None` in the slot) means inapplicable or
/// unvisited.
#[derive(Debug)]
enum SlotState {
    Done {
        report: RunReport,
        probe: Option<ProbeOut>,
        wall_ns: u64,
    },
    Failed {
        failure: CellFailure,
        wall_ns: u64,
    },
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn classify(cell: &PlanCell, err: &EngineError, attempts: u32) -> CellFailure {
    let kind = match err {
        EngineError::Livelock { .. } => FailureKind::Livelock,
        EngineError::WallBudgetExceeded { .. } => FailureKind::WallBudget,
        EngineError::InvariantViolation { .. } => FailureKind::Invariant,
    };
    CellFailure {
        kind,
        message: err.to_string(),
        scenario: cell.spec.name.clone(),
        policy: cell.policy.clone(),
        seed: cell.base_seed,
        attempts,
    }
}

fn time_mode_label(mode: TimeMode) -> &'static str {
    match mode {
        TimeMode::Dense => "dense",
        TimeMode::Adaptive => "adaptive",
    }
}

/// Runs every cell across the worker pool; results are returned in
/// cell order. Fails fast (before spawning any thread) on a malformed
/// policy token. Cell failures are contained per slot (see the module
/// docs) unless [`ExecOpts::fail_fast`] re-raises them.
pub fn execute(cells: &[PlanCell], opts: &ExecOpts) -> Result<Vec<CellResult>, String> {
    // Validate the whole matrix up front so a typo cannot surface as
    // a mid-plan panic on a worker thread — both token syntax and
    // per-cell fit (e.g. a sockets= list naming a socket the cell's
    // machine does not have).
    let policies = cells
        .iter()
        .map(|c| {
            let p = parse_policy(&c.policy)?;
            p.validate_for(&c.spec)
                .map_err(|e| format!("policy '{}': {e}", c.policy))?;
            Ok::<_, String>(p)
        })
        .collect::<Result<Vec<_>, _>>()?;
    if cells.is_empty() {
        return Err("empty plan".to_string());
    }
    if opts.resume && opts.journal.is_none() {
        return Err("resume requires a journal path".to_string());
    }
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(cells.len());

    // Fingerprints tie journal lines to the exact cell + executor
    // config that produced them; only computed when a journal is in
    // play (spec.to_text() is not free).
    let fingerprints: Vec<u64> = if opts.journal.is_some() {
        cells
            .iter()
            .map(|c| {
                journal::fingerprint(
                    &c.spec.to_text(),
                    &c.policy,
                    c.base_seed,
                    time_mode_label(opts.time_mode),
                    opts.coalesce,
                )
            })
            .collect()
    } else {
        vec![0; cells.len()]
    };

    // Workers claim cells through an atomic cursor and park each
    // result in the cell's matrix slot: claiming order is racy,
    // result placement is not.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SlotState>>> = cells.iter().map(|_| Mutex::new(None)).collect();

    // Resume: prefill slots whose identity and fingerprint match a
    // journal line. Probe cells never match — probes are not
    // journaled, so they always re-run.
    if opts.resume {
        let path = opts.journal.as_ref().expect("checked above");
        let entries = journal::load(path)?;
        let by_key: HashMap<(&str, &str, u64), &JournalEntry> = entries
            .iter()
            .map(|e| ((e.scenario.as_str(), e.policy.as_str(), e.seed), e))
            .collect();
        for (i, cell) in cells.iter().enumerate() {
            if cell.probe != Probe::None {
                continue;
            }
            let key = (
                cell.spec.name.as_str(),
                cell.policy.as_str(),
                cell.base_seed,
            );
            if let Some(e) = by_key.get(&key) {
                if e.fp == fingerprints[i] {
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(SlotState::Done {
                            report: e.report.clone(),
                            probe: None,
                            wall_ns: e.wall_ns,
                        });
                }
            }
        }
    }

    let journal_file = match opts.journal.as_ref() {
        Some(path) => Some(Mutex::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?,
        )),
        None => None,
    };

    // Fail-fast aborts ride out of the scope in this slot and are
    // re-raised on the caller: `thread::scope` would otherwise replace
    // a worker's panic payload with its own "a scoped thread panicked".
    let abort: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| 'work: loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                if abort
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
                {
                    break; // another worker hit a fail-fast abort
                }
                if slots[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
                {
                    continue; // prefilled from the journal
                }
                let policy = &policies[i];
                if !policy.applicable(&cell.spec) {
                    continue;
                }
                let budget = RunBudget {
                    max_wall: opts.max_cell_wall,
                    ..RunBudget::default()
                };
                let mut attempts = 0u32;
                let outcome = loop {
                    attempts += 1;
                    let t0 = std::time::Instant::now();
                    // The unwind boundary IS the isolation boundary:
                    // everything cell-local (build, run, probe) is
                    // inside; the shared slots and journal are not.
                    // AssertUnwindSafe is sound because a panicking
                    // attempt's simulation is dropped wholesale —
                    // no torn state outlives the catch.
                    let ran = catch_unwind(AssertUnwindSafe(|| {
                        let boxed = policy.build(&cell.spec);
                        let mut sim = build_sim_seeded_full(
                            &cell.spec,
                            boxed,
                            cell.base_seed,
                            opts.time_mode,
                            opts.coalesce,
                            opts.span_workers,
                        );
                        sim.run_measured_budgeted(
                            cell.spec.warmup_ns,
                            cell.spec.measure_ns,
                            &budget,
                        )
                        .map(|report| {
                            let probe = extract_probe(&sim, &cell.probe);
                            (report, probe)
                        })
                    }));
                    let wall_ns = t0.elapsed().as_nanos() as u64;
                    match ran {
                        Ok(Ok((report, probe))) => {
                            break SlotState::Done {
                                report,
                                probe,
                                wall_ns,
                            }
                        }
                        Ok(Err(err)) => {
                            if err.is_environmental() && attempts <= opts.retries {
                                // Transient host pressure: back off
                                // 5, 10, 20, … ms and try again.
                                std::thread::sleep(Duration::from_millis(
                                    5u64 << (attempts - 1).min(6),
                                ));
                                continue;
                            }
                            break SlotState::Failed {
                                failure: classify(cell, &err, attempts),
                                wall_ns,
                            };
                        }
                        Err(payload) => {
                            if opts.fail_fast {
                                *abort.lock().unwrap_or_else(PoisonError::into_inner) =
                                    Some(payload);
                                break 'work;
                            }
                            break SlotState::Failed {
                                failure: CellFailure {
                                    kind: FailureKind::Panic,
                                    message: panic_message(payload.as_ref()),
                                    scenario: cell.spec.name.clone(),
                                    policy: cell.policy.clone(),
                                    seed: cell.base_seed,
                                    attempts,
                                },
                                wall_ns,
                            };
                        }
                    }
                };
                if opts.fail_fast {
                    if let SlotState::Failed { failure, .. } = &outcome {
                        *abort.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(Box::new(format!("cell failed: {failure}")));
                        break 'work;
                    }
                }
                if let (
                    Some(file),
                    SlotState::Done {
                        report, wall_ns, ..
                    },
                ) = (journal_file.as_ref(), &outcome)
                {
                    if cell.probe == Probe::None {
                        let entry = JournalEntry {
                            fp: fingerprints[i],
                            scenario: cell.spec.name.clone(),
                            policy: cell.policy.clone(),
                            seed: cell.base_seed,
                            wall_ns: *wall_ns,
                            report: report.clone(),
                        };
                        let mut f = file.lock().unwrap_or_else(PoisonError::into_inner);
                        // Journal I/O is best-effort: a full disk must
                        // not take the in-memory results down with it.
                        let _ = writeln!(f, "{}", journal::encode(&entry));
                        let _ = f.flush();
                    }
                }
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            });
        }
    });
    if let Some(payload) = abort.into_inner().unwrap_or_else(PoisonError::into_inner) {
        resume_unwind(payload);
    }

    Ok(slots
        .into_iter()
        .map(
            |slot| match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(SlotState::Done {
                    report,
                    probe,
                    wall_ns,
                }) => CellResult {
                    report: Some(report),
                    probe,
                    wall_ns,
                    failure: None,
                },
                Some(SlotState::Failed { failure, wall_ns }) => CellResult {
                    report: None,
                    probe: None,
                    wall_ns,
                    failure: Some(failure),
                },
                None => CellResult {
                    report: None,
                    probe: None,
                    wall_ns: 0,
                    failure: None,
                },
            },
        )
        .collect())
}

// ---------------------------------------------------------------------
// Shared reducers: the named normalisation folds every figure uses.
// ---------------------------------------------------------------------

/// The time-like cost of one VM in a report (lower is better); `None`
/// when the workload produced no metric.
pub fn cost_of(report: &RunReport, vm_index: usize) -> Option<f64> {
    report.vms.get(vm_index)?.metrics.time_cost()
}

/// `cost / baseline_cost` — the paper's normalisation: 1.0 matches
/// the baseline cell (usually the default Xen scheduler), lower is
/// better.
pub fn normalized(cost: Option<f64>, baseline: Option<f64>) -> Option<f64> {
    match (cost, baseline) {
        (Some(c), Some(b)) if b > 0.0 => Some(c / b),
        _ => None,
    }
}

/// Mean of the per-VM normalised costs for VMs of `class` (`None` =
/// all classes). `vm_classes` is the spec's per-VM ground truth
/// ([`aql_scenarios::classes`]); VMs with missing metrics (idle
/// padding) are skipped on both sides.
pub fn class_mean_norm(
    report: &RunReport,
    baseline: &RunReport,
    vm_classes: &[VcpuType],
    class: Option<VcpuType>,
) -> Option<f64> {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (i, vm) in report.vms.iter().enumerate() {
        if class.is_some_and(|c| vm_classes[i] != c) {
            continue;
        }
        let cost = vm.metrics.time_cost();
        let base = baseline.vms[i].metrics.time_cost();
        if let Some(v) = normalized(cost, base) {
            acc += v;
            n += 1;
        }
    }
    (n > 0).then(|| acc / n as f64)
}

/// Averages an optional statistic over replicates; `None` unless
/// every replicate produced a value.
pub fn seed_mean(values: &[Option<f64>]) -> Option<f64> {
    let mut acc = 0.0;
    for v in values {
        acc += (*v)?;
    }
    Some(acc / values.len() as f64)
}

/// The classes a spec populates, deduplicated in [`VcpuType::ALL`]
/// order — the row order of every per-class figure.
pub fn classes_present(spec: &ScenarioSpec) -> Vec<VcpuType> {
    let classes = aql_scenarios::classes(spec);
    VcpuType::ALL
        .into_iter()
        .filter(|c| classes.contains(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            "scenario = {name}\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             warmup_ms = 100\n\
             measure_ms = 250\n\
             vm web workload=io/heterogeneous/150 seed=42\n\
             vm walk-%i count=2 workload=walk/llcf|walk/llco\n"
        ))
        .unwrap()
    }

    #[test]
    fn results_land_in_cell_order() {
        let cells = vec![
            PlanCell::new(tiny("a"), "xen-credit"),
            PlanCell::new(tiny("b"), "fixed/10ms"),
        ];
        let out = execute(&cells, &ExecOpts::serial()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.report.is_some()));
        assert!(out.iter().all(|r| r.wall_ns > 0));
    }

    #[test]
    fn execution_is_thread_count_invariant() {
        let cells: Vec<PlanCell> = (0..6)
            .map(|i| {
                PlanCell::new(
                    tiny(&format!("t{i}")),
                    if i % 2 == 0 {
                        "xen-credit"
                    } else {
                        "fixed/5ms"
                    },
                )
            })
            .collect();
        let serial = execute(&cells, &ExecOpts::serial()).unwrap();
        let parallel = execute(
            &cells,
            &ExecOpts {
                threads: 4,
                ..ExecOpts::default()
            },
        )
        .unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.report.as_ref().unwrap(), p.report.as_ref().unwrap());
            assert_eq!(s.total_cpu_ns(), p.total_cpu_ns());
            assert_eq!(s.vms[0].metrics.time_cost(), p.vms[0].metrics.time_cost());
        }
    }

    #[test]
    fn inapplicable_cells_yield_no_report() {
        let spec = ScenarioSpec::parse(
            "scenario = solo\n\
             machine = sockets=1 cores=1 cache=i7-3770\n\
             warmup_ms = 50\nmeasure_ms = 100\n\
             vm a workload=walk/lolcf\n",
        )
        .unwrap();
        let out = execute(
            &[
                PlanCell::new(spec.clone(), "vturbo"),
                PlanCell::new(spec, "xen-credit"),
            ],
            &ExecOpts::serial(),
        )
        .unwrap();
        assert!(out[0].report.is_none());
        assert_eq!(out[0].wall_ns, 0);
        assert!(out[1].report.is_some());
    }

    #[test]
    fn malformed_tokens_fail_before_running() {
        let err = execute(
            &[PlanCell::new(tiny("x"), "fixed/oops")],
            &ExecOpts::serial(),
        );
        assert!(err.is_err());
        assert!(execute(&[], &ExecOpts::serial()).is_err());
        // A socket list naming a socket the cell's machine lacks is a
        // fail-fast configuration error, not a worker-thread panic.
        let err = execute(
            &[PlanCell::new(tiny("x"), "xen-credit/sockets=1-3")],
            &ExecOpts::serial(),
        );
        assert!(
            err.as_ref().is_err_and(|e| e.contains("does not exist")),
            "{err:?}"
        );
    }

    #[test]
    fn probes_extract_policy_state() {
        let out = execute(
            &[
                PlanCell::new(tiny("p"), "aql-sched/history=8")
                    .with_probe(Probe::CursorHistory { vcpu: 0 }),
                PlanCell::new(tiny("p"), "aql-sched").with_probe(Probe::Reclusterings),
                PlanCell::new(tiny("p"), "aql-sched").with_probe(Probe::VtrsMajority { vm: 0 }),
                PlanCell::new(tiny("p"), "xen-credit").with_probe(Probe::Reclusterings),
            ],
            &ExecOpts::serial(),
        )
        .unwrap();
        assert!(matches!(&out[0].probe, Some(ProbeOut::Cursors(rows)) if !rows.is_empty()));
        assert!(matches!(out[1].probe, Some(ProbeOut::Reclusterings(_))));
        assert!(matches!(out[2].probe, Some(ProbeOut::Majority(_))));
        // A probe that needs AqlSched yields nothing under Xen.
        assert!(out[3].probe.is_none());
    }

    /// `tiny()` with a fault token on the `web` VM.
    fn faulty(name: &str, token: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            "scenario = {name}\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             warmup_ms = 100\n\
             measure_ms = 250\n\
             vm web workload=io/heterogeneous/150 seed=42 fault={token}\n\
             vm walk-%i count=2 workload=walk/llcf|walk/llco\n"
        ))
        .unwrap()
    }

    #[test]
    fn panicking_cell_is_contained_and_siblings_unaffected() {
        let cells = vec![
            PlanCell::new(tiny("a"), "xen-credit"),
            PlanCell::new(faulty("boom", "panic@30ms"), "xen-credit"),
            PlanCell::new(tiny("b"), "fixed/10ms"),
        ];
        let opts = ExecOpts {
            threads: 2,
            ..ExecOpts::default()
        };
        let out = execute(&cells, &opts).unwrap();
        let failure = out[1].failure.as_ref().expect("faulty cell must fail");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("injected fault"), "{failure}");
        assert_eq!(failure.scenario, "boom");
        assert!(out[1].report.is_none());
        // Siblings are bitwise identical to a run with no faulty cell
        // in the matrix at all.
        let clean = execute(
            &[
                PlanCell::new(tiny("a"), "xen-credit"),
                PlanCell::new(tiny("b"), "fixed/10ms"),
            ],
            &ExecOpts::serial(),
        )
        .unwrap();
        assert_eq!(out[0].report, clean[0].report);
        assert_eq!(out[2].report, clean[1].report);
    }

    #[test]
    fn hanging_cell_trips_the_livelock_sentinel() {
        let out = execute(
            &[PlanCell::new(faulty("stuck", "hang"), "xen-credit")],
            &ExecOpts::serial(),
        )
        .unwrap();
        let failure = out[0].failure.as_ref().expect("hung cell must fail");
        assert_eq!(failure.kind, FailureKind::Livelock);
        assert_eq!(failure.attempts, 1, "deterministic failures never retry");
    }

    #[test]
    fn nan_rate_trips_the_invariant_sentinel() {
        let out = execute(
            &[PlanCell::new(faulty("poison", "nan-rate"), "xen-credit")],
            &ExecOpts::serial(),
        )
        .unwrap();
        let failure = out[0].failure.as_ref().expect("poisoned cell must fail");
        assert_eq!(failure.kind, FailureKind::Invariant);
    }

    #[test]
    fn wall_budget_is_environmental_and_retries() {
        let opts = ExecOpts {
            max_cell_wall: Some(Duration::ZERO),
            retries: 2,
            ..ExecOpts::serial()
        };
        let out = execute(&[PlanCell::new(tiny("slow"), "xen-credit")], &opts).unwrap();
        let failure = out[0].failure.as_ref().expect("zero budget must trip");
        assert_eq!(failure.kind, FailureKind::WallBudget);
        assert!(failure.kind.is_environmental());
        assert_eq!(failure.attempts, 3, "initial attempt + 2 retries");
    }

    #[test]
    fn fail_fast_reraises_the_original_panic() {
        let cells = vec![PlanCell::new(faulty("boom", "panic@30ms"), "xen-credit")];
        let opts = ExecOpts {
            fail_fast: true,
            ..ExecOpts::serial()
        };
        let err = catch_unwind(AssertUnwindSafe(|| execute(&cells, &opts)))
            .expect_err("fail-fast must re-raise");
        assert!(panic_message(err.as_ref()).contains("injected fault"));
    }

    #[test]
    fn journal_resume_is_byte_identical_to_a_clean_run() {
        let dir = std::env::temp_dir().join("aql_plan_resume_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cells.jsonl");
        let _ = std::fs::remove_file(&path);

        let partial = vec![PlanCell::new(tiny("a"), "xen-credit")];
        let full = vec![
            PlanCell::new(tiny("a"), "xen-credit"),
            PlanCell::new(tiny("b"), "fixed/10ms"),
        ];
        let journaled = ExecOpts {
            journal: Some(path.clone()),
            ..ExecOpts::serial()
        };
        // Simulate an interrupted sweep: only the first cell is in the
        // journal.
        let first = execute(&partial, &journaled).unwrap();
        assert_eq!(journal::load(&path).unwrap().len(), 1);

        // Resume the full plan: cell a prefills, cell b runs fresh.
        let resumed = execute(
            &full,
            &ExecOpts {
                resume: true,
                ..journaled.clone()
            },
        )
        .unwrap();
        let clean = execute(&full, &ExecOpts::serial()).unwrap();
        assert_eq!(resumed[0].report, first[0].report);
        assert_eq!(resumed[0].report, clean[0].report);
        assert_eq!(resumed[1].report, clean[1].report);
        // The prefilled cell reports the journaled wall time — proof it
        // was not re-simulated is that the journal gained exactly one
        // line (cell b), not two.
        assert_eq!(journal::load(&path).unwrap().len(), 2);

        // A journal written under a different executor config is
        // ignored: the fingerprint mismatches and every cell re-runs.
        let other_mode = ExecOpts {
            resume: true,
            coalesce: false,
            journal: Some(path.clone()),
            ..ExecOpts::serial()
        };
        let rerun = execute(&partial, &other_mode).unwrap();
        assert!(rerun[0].report.is_some());
        assert!(
            journal::load(&path).unwrap().len() > 2,
            "mismatched fingerprint must re-run and re-journal"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_without_journal_is_rejected() {
        let opts = ExecOpts {
            resume: true,
            ..ExecOpts::serial()
        };
        let err = execute(&[PlanCell::new(tiny("x"), "xen-credit")], &opts);
        assert!(err.is_err_and(|e| e.contains("journal")));
    }

    #[test]
    fn reducer_behaviour() {
        assert_eq!(normalized(Some(2.0), Some(4.0)), Some(0.5));
        assert_eq!(normalized(None, Some(1.0)), None);
        assert_eq!(normalized(Some(1.0), Some(0.0)), None);
        assert_eq!(seed_mean(&[Some(1.0), Some(3.0)]), Some(2.0));
        assert_eq!(seed_mean(&[Some(1.0), None]), None);
        let spec = tiny("c");
        assert_eq!(
            classes_present(&spec),
            [VcpuType::IoInt, VcpuType::Llcf, VcpuType::Llco]
        );
    }
}
