//! Tables 3, 5 and 6 of the paper, plus the §4.3 overhead measurement.

use std::time::Instant;

use aql_core::clustering::{cluster_machine, VcpuDesc};
use aql_core::{QuantumTable, Vtrs, VtrsConfig};
use aql_hv::apptype::VcpuType;
use aql_hv::ids::{SocketId, VcpuId, VmId};
use aql_hv::{MachineSpec, RunReport};
use aql_mem::PmuSample;
use aql_scenarios::vcpu_classes;

use crate::emit::Table;
use crate::fig5::catalog_spec;
use crate::fig6::scenario_spec;
use crate::plan::{execute, ExecOpts, PlanCell, Probe, ProbeOut};

/// Table 3 — application type recognition: runs every catalog
/// application consolidated under AQL_Sched (one plan cell per
/// application, majority-vote probe over the application VM's vCPUs)
/// and reports the detected type against the paper's ground truth.
pub fn table3(quick: bool, opts: &ExecOpts) -> Table {
    let apps = aql_workloads::all_apps();
    let cells: Vec<PlanCell> = apps
        .iter()
        .map(|entry| {
            let mut s = catalog_spec(entry.name);
            if quick {
                s = s.quick();
            }
            PlanCell::new(s, "aql-sched").with_probe(Probe::VtrsMajority { vm: 0 })
        })
        .collect();
    let results = execute(&cells, opts).expect("table3 plan is well-formed");
    let mut table = Table::new(
        "Table3 application type recognition",
        &["application", "suite", "expected", "detected", "match"],
    );
    for (entry, result) in apps.iter().zip(&results) {
        let Some(ProbeOut::Majority(detected)) = result.probe else {
            panic!("table3 cell must yield a majority type");
        };
        table.row(vec![
            entry.name.to_string(),
            entry.suite.to_string(),
            entry.class.to_string(),
            detected.to_string(),
            if detected == entry.class { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

/// Table 5 — the clustering AQL_Sched settles on for each scenario of
/// Table 4.
pub fn table5(quick: bool, opts: &ExecOpts) -> Table {
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    for id in 1..=5 {
        let mut s = scenario_spec(id);
        if quick {
            s = s.quick();
        }
        cells.push(PlanCell::new(s.clone(), "aql-sched").with_probe(Probe::ClusterPlan));
        specs.push(s);
    }
    let results = execute(&cells, opts).expect("table5 plan is well-formed");
    let mut table = Table::new(
        "Table5 clustering per scenario",
        &["scenario", "cluster", "quantum", "composition", "#pcpus"],
    );
    for (i, (spec, result)) in specs.iter().zip(&results).enumerate() {
        let id = i + 1;
        let vcpu_class = vcpu_classes(spec);
        let clusters = match &result.probe {
            Some(ProbeOut::Clusters(rows)) if !rows.is_empty() => rows,
            _ => {
                table.row(vec![
                    format!("S{id}"),
                    "-".into(),
                    "-".into(),
                    "no plan applied".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        for c in clusters {
            let mut counts = [0usize; 5];
            for &v in &c.vcpus {
                let idx = VcpuType::ALL
                    .iter()
                    .position(|&x| x == vcpu_class[v])
                    .expect("classed");
                counts[idx] += 1;
            }
            let composition = VcpuType::ALL
                .iter()
                .zip(counts)
                .filter(|(_, n)| *n > 0)
                .map(|(t, n)| format!("{n}{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            table.row(vec![
                format!("S{id}"),
                c.label.clone(),
                aql_sim::time::fmt_dur(c.quantum_ns),
                composition,
                c.pcpus.to_string(),
            ]);
        }
    }
    table
}

/// Table 6 — qualitative comparison of AQL_Sched with existing
/// solutions (static, from §5).
pub fn table6() -> Table {
    let mut table = Table::new(
        "Table6 feature comparison",
        &[
            "solution",
            "dynamic type recognition",
            "handled types",
            "overhead",
            "hardware modification",
        ],
    );
    let rows: [[&str; 5]; 5] = [
        ["vTurbo", "not supported", "IO", "no overhead", "no"],
        ["vSlicer", "not supported", "IO", "no overhead", "no"],
        [
            "Microsliced",
            "not supported",
            "IO, spin-lock",
            "overhead for CPU-burn applications",
            "yes",
        ],
        ["Xen BOOST", "supported", "IO", "no overhead", "no"],
        [
            "AQL_Sched",
            "supported",
            "IO, spin-lock, CPU burn",
            "no overhead",
            "no",
        ],
    ];
    for r in rows {
        table.row(r.iter().map(|s| s.to_string()).collect());
    }
    table
}

/// §4.3 — overhead of the recognition and clustering systems, measured
/// directly: wall-clock per vTRS observation pass and per clustering
/// pass at the Fig. 3 scale (48 vCPUs, 16 pCPUs), amortised over the
/// 30 ms monitoring period.
pub fn overhead() -> Table {
    let vcpus = 48;
    let iters = 2000;

    // vTRS observation pass.
    let mut vtrs = Vtrs::new(vcpus, VtrsConfig::default());
    let samples: Vec<PmuSample> = (0..vcpus)
        .map(|i| PmuSample {
            instructions: 1e7 + i as f64,
            llc_refs: 5e5,
            llc_misses: 2e5,
            io_events: (i % 3) as u64,
            ple_exits: (i % 7) as u64,
            ran_ns: 7_500_000,
            period_ns: 30_000_000,
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = vtrs.observe(&samples);
    }
    let vtrs_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    // Clustering pass (both levels) on the Fig. 3 population.
    let machine = MachineSpec::xeon_e5_4603();
    let sockets = vec![SocketId(1), SocketId(2), SocketId(3)];
    let table_q = QuantumTable::paper_defaults();
    let descs: Vec<VcpuDesc> = (0..vcpus)
        .map(|i| VcpuDesc {
            vcpu: VcpuId(i),
            vm: VmId(i),
            vtype: VcpuType::ALL[i % 5],
            trashing: i % 5 == 4,
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = cluster_machine(&machine, &sockets, &descs, &table_q);
    }
    let cluster_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let period_us = 30_000.0;
    let mut out = Table::new(
        "Overhead of vTRS + clustering (48 vCPUs, 16 pCPUs)",
        &[
            "component",
            "cost per invocation (us)",
            "share of 30ms period",
        ],
    );
    out.row(vec![
        "vTRS observe".into(),
        format!("{vtrs_us:.2}"),
        format!("{:.4}%", vtrs_us / period_us * 100.0),
    ]);
    out.row(vec![
        "two-level clustering".into(),
        format!("{cluster_us:.2}"),
        format!("{:.4}%", cluster_us / period_us * 100.0),
    ]);
    out.row(vec![
        "total".into(),
        format!("{:.2}", vtrs_us + cluster_us),
        format!("{:.4}%", (vtrs_us + cluster_us) / period_us * 100.0),
    ]);
    out
}

/// Supplementary: AQL_Sched fleet-wide fairness on scenario S5 (the
/// paper requires clustering to preserve each VM's booked CPU share).
pub fn fairness(quick: bool, opts: &ExecOpts) -> Table {
    let mut s = scenario_spec(5);
    if quick {
        s = s.quick();
    }
    let cells = vec![
        PlanCell::new(s.clone(), "xen-credit"),
        PlanCell::new(s, "aql-sched"),
    ];
    let results = execute(&cells, opts).expect("fairness plan is well-formed");
    let mut table = Table::new(
        "Fairness (Jain index over per-vCPU CPU time, 1.0 = perfectly fair)",
        &["policy", "jain index", "utilisation"],
    );
    for (name, result) in ["xen-credit", "aql-sched"].iter().zip(&results) {
        let report: &RunReport = result.report.as_ref().expect("fairness cell ran");
        table.row(vec![
            name.to_string(),
            format!("{:.4}", report.jain_fairness()),
            format!("{:.3}", report.utilisation()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_is_static_and_complete() {
        let t = table6();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[4][0], "AQL_Sched");
        assert!(t.rows[4][1].contains("supported"));
    }

    #[test]
    fn overhead_is_negligible() {
        let t = overhead();
        // The total must be far below 1% of the monitoring period,
        // supporting the paper's "negligible overhead" claim.
        let total_pct: f64 = t.rows[2][2].trim_end_matches('%').parse().unwrap();
        assert!(total_pct < 1.0, "overhead {total_pct}% too high");
    }
}
