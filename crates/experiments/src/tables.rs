//! Tables 3, 5 and 6 of the paper, plus the §4.3 overhead measurement.

use std::time::Instant;

use aql_core::clustering::{cluster_machine, VcpuDesc};
use aql_core::{AqlSched, QuantumTable, Vtrs, VtrsConfig};
use aql_hv::apptype::VcpuType;
use aql_hv::ids::{SocketId, VcpuId, VmId};
use aql_hv::MachineSpec;
use aql_mem::PmuSample;

use crate::emit::Table;
use crate::fig5::catalog_scenario;
use crate::fig6::{aql_for_fig3, scenario};

/// Table 3 — application type recognition: runs every catalog
/// application consolidated under AQL_Sched and reports the type vTRS
/// detected against the paper's ground truth.
pub fn table3(quick: bool) -> Table {
    let mut table = Table::new(
        "Table3 application type recognition",
        &["application", "suite", "expected", "detected", "match"],
    );
    for entry in aql_workloads::all_apps() {
        let mut s = catalog_scenario(entry.name);
        if quick {
            s = s.quick();
        }
        let sim = s.run_sim(Box::new(AqlSched::paper_defaults()));
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched policy");
        let vtrs = policy.vtrs().expect("vTRS active");
        // Majority type over the application VM's vCPUs (VM index 0).
        let app_vcpus = &sim.hv.vms[0].vcpus;
        let mut counts = [0usize; 5];
        for v in app_vcpus {
            let t = vtrs.type_of(v.index());
            let idx = VcpuType::ALL.iter().position(|&x| x == t).expect("typed");
            counts[idx] += 1;
        }
        let best = (0..5).max_by_key(|&i| counts[i]).expect("non-empty");
        let detected = VcpuType::ALL[best];
        table.row(vec![
            entry.name.to_string(),
            entry.suite.to_string(),
            entry.class.to_string(),
            detected.to_string(),
            if detected == entry.class { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

/// Table 5 — the clustering AQL_Sched settles on for each scenario of
/// Table 4.
pub fn table5(quick: bool) -> Table {
    let mut table = Table::new(
        "Table5 clustering per scenario",
        &["scenario", "cluster", "quantum", "composition", "#pcpus"],
    );
    for id in 1..=5 {
        let mut s = scenario(id);
        if quick {
            s = s.quick();
        }
        // Map each vCPU to its scenario class for composition strings.
        let mut vcpu_class: Vec<VcpuType> = Vec::new();
        for (i, vm) in s.vms.iter().enumerate() {
            let (spec, _) = (vm.factory)(i as u64);
            for _ in 0..spec.vcpus {
                vcpu_class.push(vm.class);
            }
        }
        let sim = s.run_sim(Box::new(AqlSched::paper_defaults()));
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched policy");
        let Some(plan) = policy.last_plan() else {
            table.row(vec![
                format!("S{id}"),
                "-".into(),
                "-".into(),
                "no plan applied".into(),
                "-".into(),
            ]);
            continue;
        };
        for c in &plan.clusters {
            let mut counts = [0usize; 5];
            for v in &c.vcpus {
                let idx = VcpuType::ALL
                    .iter()
                    .position(|&x| x == vcpu_class[v.index()])
                    .expect("classed");
                counts[idx] += 1;
            }
            let composition = VcpuType::ALL
                .iter()
                .zip(counts)
                .filter(|(_, n)| *n > 0)
                .map(|(t, n)| format!("{n}{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            table.row(vec![
                format!("S{id}"),
                c.label.clone(),
                aql_sim::time::fmt_dur(c.quantum_ns),
                composition,
                c.pcpus.len().to_string(),
            ]);
        }
    }
    table
}

/// Table 6 — qualitative comparison of AQL_Sched with existing
/// solutions (static, from §5).
pub fn table6() -> Table {
    let mut table = Table::new(
        "Table6 feature comparison",
        &[
            "solution",
            "dynamic type recognition",
            "handled types",
            "overhead",
            "hardware modification",
        ],
    );
    let rows: [[&str; 5]; 5] = [
        ["vTurbo", "not supported", "IO", "no overhead", "no"],
        ["vSlicer", "not supported", "IO", "no overhead", "no"],
        [
            "Microsliced",
            "not supported",
            "IO, spin-lock",
            "overhead for CPU-burn applications",
            "yes",
        ],
        ["Xen BOOST", "supported", "IO", "no overhead", "no"],
        [
            "AQL_Sched",
            "supported",
            "IO, spin-lock, CPU burn",
            "no overhead",
            "no",
        ],
    ];
    for r in rows {
        table.row(r.iter().map(|s| s.to_string()).collect());
    }
    table
}

/// §4.3 — overhead of the recognition and clustering systems, measured
/// directly: wall-clock per vTRS observation pass and per clustering
/// pass at the Fig. 3 scale (48 vCPUs, 16 pCPUs), amortised over the
/// 30 ms monitoring period.
pub fn overhead() -> Table {
    let vcpus = 48;
    let iters = 2000;

    // vTRS observation pass.
    let mut vtrs = Vtrs::new(vcpus, VtrsConfig::default());
    let samples: Vec<PmuSample> = (0..vcpus)
        .map(|i| PmuSample {
            instructions: 1e7 + i as f64,
            llc_refs: 5e5,
            llc_misses: 2e5,
            io_events: (i % 3) as u64,
            ple_exits: (i % 7) as u64,
            ran_ns: 7_500_000,
            period_ns: 30_000_000,
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = vtrs.observe(&samples);
    }
    let vtrs_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    // Clustering pass (both levels) on the Fig. 3 population.
    let machine = MachineSpec::xeon_e5_4603();
    let sockets = vec![SocketId(1), SocketId(2), SocketId(3)];
    let table_q = QuantumTable::paper_defaults();
    let descs: Vec<VcpuDesc> = (0..vcpus)
        .map(|i| VcpuDesc {
            vcpu: VcpuId(i),
            vm: VmId(i),
            vtype: VcpuType::ALL[i % 5],
            trashing: i % 5 == 4,
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = cluster_machine(&machine, &sockets, &descs, &table_q);
    }
    let cluster_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let period_us = 30_000.0;
    let mut out = Table::new(
        "Overhead of vTRS + clustering (48 vCPUs, 16 pCPUs)",
        &[
            "component",
            "cost per invocation (us)",
            "share of 30ms period",
        ],
    );
    out.row(vec![
        "vTRS observe".into(),
        format!("{vtrs_us:.2}"),
        format!("{:.4}%", vtrs_us / period_us * 100.0),
    ]);
    out.row(vec![
        "two-level clustering".into(),
        format!("{cluster_us:.2}"),
        format!("{:.4}%", cluster_us / period_us * 100.0),
    ]);
    out.row(vec![
        "total".into(),
        format!("{:.2}", vtrs_us + cluster_us),
        format!("{:.4}%", (vtrs_us + cluster_us) / period_us * 100.0),
    ]);
    out
}

/// Supplementary: AQL_Sched fleet-wide fairness on scenario S5 (the
/// paper requires clustering to preserve each VM's booked CPU share).
pub fn fairness(quick: bool) -> Table {
    let mut s = scenario(5);
    if quick {
        s = s.quick();
    }
    let xen = s.run(Box::new(aql_baselines::xen_credit()));
    let aql = s.run(Box::new(AqlSched::paper_defaults()));
    let mut table = Table::new(
        "Fairness (Jain index over per-vCPU CPU time, 1.0 = perfectly fair)",
        &["policy", "jain index", "utilisation"],
    );
    table.row(vec![
        "xen-credit".into(),
        format!("{:.4}", xen.jain_fairness()),
        format!("{:.3}", xen.utilisation()),
    ]);
    table.row(vec![
        "aql-sched".into(),
        format!("{:.4}", aql.jain_fairness()),
        format!("{:.3}", aql.utilisation()),
    ]);
    let _ = aql_for_fig3; // referenced by other subcommands
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_is_static_and_complete() {
        let t = table6();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[4][0], "AQL_Sched");
        assert!(t.rows[4][1].contains("supported"));
    }

    #[test]
    fn overhead_is_negligible() {
        let t = overhead();
        // The total must be far below 1% of the monitoring period,
        // supporting the paper's "negligible overhead" claim.
        let total_pct: f64 = t.rows[2][2].trim_end_matches('%').parse().unwrap();
        assert!(total_pct < 1.0, "overhead {total_pct}% too high");
    }
}
