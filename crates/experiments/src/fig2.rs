//! Fig. 2 — quantum-length calibration.
//!
//! Six panels measure one application type each, colocated on a single
//! pCPU with 2 and 4 vCPUs sharing it, across quantum lengths
//! {1, 10, 30, 60, 90} ms; values are normalised over the 30 ms run
//! (smaller is better). The rightmost inset measures the average lock
//! duration of the ConSpin benchmark against the quantum length.

use aql_baselines::xen_credit;
use aql_hv::apptype::VcpuType;
use aql_hv::policy::FixedQuantumPolicy;
use aql_hv::workload::{GuestWorkload, WorkloadMetrics};
use aql_hv::{MachineSpec, VmSpec};
use aql_mem::CacheSpec;
use aql_sim::time::{fmt_dur, MS};
use aql_workloads::{IoServer, IoServerCfg, MemWalk, SpinJob, SpinJobCfg};

use crate::emit::{fmt_ratio, Table};
use crate::runner::{cost_of, normalized, Scenario, ScenarioVm};

/// The calibration sweep: {1, 10, 30, 60, 90} ms.
pub const QUANTA: [u64; 5] = [MS, 10 * MS, 30 * MS, 60 * MS, 90 * MS];
/// The normalisation baseline (Xen default).
pub const BASE_QUANTUM: u64 = 30 * MS;

fn one_core() -> MachineSpec {
    MachineSpec::custom("calib-1core", 1, 1, CacheSpec::i7_3770())
}

fn lolcf_filler(i: usize) -> ScenarioVm {
    ScenarioVm::new(VcpuType::Lolcf, move |_| {
        let spec = CacheSpec::i7_3770();
        let name = format!("filler-lolcf-{i}");
        (
            VmSpec::single(&name),
            Box::new(MemWalk::lolcf(&name, &spec)) as Box<dyn GuestWorkload>,
        )
    })
}

fn llco_filler(i: usize) -> ScenarioVm {
    ScenarioVm::new(VcpuType::Llco, move |_| {
        let spec = CacheSpec::i7_3770();
        let name = format!("filler-llco-{i}");
        (
            VmSpec::single(&name),
            Box::new(MemWalk::llco(&name, &spec)) as Box<dyn GuestWorkload>,
        )
    })
}

/// The six calibration panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// (a) Exclusive IO.
    ExclusiveIo,
    /// (b) Heterogeneous IO (web + CGI).
    HeterogeneousIo,
    /// (c) Spin-lock concurrency.
    ConSpin,
    /// (d) LLC-friendly.
    Llcf,
    /// (e) Low-level-cache friendly.
    Lolcf,
    /// (f) Trashing.
    Llco,
}

impl Panel {
    /// Paper panel letter.
    pub fn letter(self) -> &'static str {
        match self {
            Panel::ExclusiveIo => "a",
            Panel::HeterogeneousIo => "b",
            Panel::ConSpin => "c",
            Panel::Llcf => "d",
            Panel::Lolcf => "e",
            Panel::Llco => "f",
        }
    }

    /// Panel title as in Fig. 2.
    pub fn title(self) -> &'static str {
        match self {
            Panel::ExclusiveIo => "Excl. IOInt",
            Panel::HeterogeneousIo => "Hetero. IOInt",
            Panel::ConSpin => "ConSpin",
            Panel::Llcf => "LLCF",
            Panel::Lolcf => "LoLCF",
            Panel::Llco => "LLCO",
        }
    }

    /// All panels in paper order.
    pub const ALL: [Panel; 6] = [
        Panel::ExclusiveIo,
        Panel::HeterogeneousIo,
        Panel::ConSpin,
        Panel::Llcf,
        Panel::Lolcf,
        Panel::Llco,
    ];
}

/// The ConSpin job used for calibration (kernbench-like worker
/// threads with 60 ms barrier phases, as PARSEC kernels are
/// structured).
pub fn calibration_spin_cfg(threads: usize) -> SpinJobCfg {
    SpinJobCfg::kernbench(threads)
}

/// Builds the panel's scenario for `k` vCPUs sharing the pCPU.
pub fn panel_scenario(panel: Panel, k: usize) -> Scenario {
    assert!(k >= 2, "calibration shares a pCPU between at least 2 vCPUs");
    let mut vms: Vec<ScenarioVm> = Vec::new();
    let fillers_needed: usize = match panel {
        Panel::ExclusiveIo => {
            vms.push(ScenarioVm::new(VcpuType::IoInt, |seed| {
                (
                    VmSpec::single("baseline"),
                    Box::new(IoServer::new(
                        "baseline",
                        IoServerCfg::exclusive(150.0),
                        seed,
                    )) as Box<dyn GuestWorkload>,
                )
            }));
            k - 1
        }
        Panel::HeterogeneousIo => {
            vms.push(ScenarioVm::new(VcpuType::IoInt, |seed| {
                (
                    VmSpec::single("baseline"),
                    Box::new(IoServer::new(
                        "baseline",
                        IoServerCfg::heterogeneous(120.0),
                        seed,
                    )) as Box<dyn GuestWorkload>,
                )
            }));
            k - 1
        }
        Panel::ConSpin => {
            vms.push(ScenarioVm::new(VcpuType::ConSpin, |seed| {
                // Weight proportional to vCPU count, the standard
                // sizing, so each vCPU earns a full single-VM share.
                let spec = VmSpec {
                    weight: 512,
                    ..VmSpec::smp("baseline", 2)
                };
                (
                    spec,
                    Box::new(SpinJob::new("baseline", calibration_spin_cfg(2), seed))
                        as Box<dyn GuestWorkload>,
                )
            }));
            k - 2
        }
        Panel::Llcf => {
            vms.push(ScenarioVm::new(VcpuType::Llcf, |_| {
                let spec = CacheSpec::i7_3770();
                (
                    VmSpec::single("baseline"),
                    Box::new(MemWalk::llcf("baseline", &spec)) as Box<dyn GuestWorkload>,
                )
            }));
            k - 1
        }
        Panel::Lolcf => {
            vms.push(ScenarioVm::new(VcpuType::Lolcf, |_| {
                let spec = CacheSpec::i7_3770();
                (
                    VmSpec::single("baseline"),
                    Box::new(MemWalk::lolcf("baseline", &spec)) as Box<dyn GuestWorkload>,
                )
            }));
            k - 1
        }
        Panel::Llco => {
            vms.push(ScenarioVm::new(VcpuType::Llco, |_| {
                let spec = CacheSpec::i7_3770();
                (
                    VmSpec::single("baseline"),
                    Box::new(MemWalk::llco("baseline", &spec)) as Box<dyn GuestWorkload>,
                )
            }));
            k - 1
        }
    };
    for i in 0..fillers_needed {
        // LLCF needs disturbers (the paper's trashing co-runners);
        // everyone else shares with neutral low-level-cache fillers.
        let filler = match panel {
            Panel::Llcf | Panel::Llco => llco_filler(i),
            _ => lolcf_filler(i),
        };
        vms.push(filler);
    }
    Scenario::new(&format!("fig2{}-k{k}", panel.letter()), one_core(), vms)
}

/// Measures one panel: normalised cost per quantum for each sharing
/// level `k ∈ {2, 4}`.
pub fn run_panel(panel: Panel, quick: bool) -> Table {
    let mut table = Table::new(
        &format!("Fig2({}) {}", panel.letter(), panel.title()),
        &["quantum", "norm k=2", "norm k=4"],
    );
    let mut cols: Vec<Vec<Option<f64>>> = Vec::new();
    for k in [2usize, 4] {
        let mut scenario = panel_scenario(panel, k);
        if quick {
            scenario = scenario.quick();
        }
        let baseline = scenario.run(Box::new(xen_credit()));
        let base_cost = cost_of(&baseline, 0);
        let mut col = Vec::new();
        for q in QUANTA {
            if q == BASE_QUANTUM {
                col.push(Some(1.0));
                continue;
            }
            let report = scenario.run(Box::new(FixedQuantumPolicy::new(q)));
            col.push(normalized(cost_of(&report, 0), base_cost));
        }
        cols.push(col);
    }
    for (i, q) in QUANTA.iter().enumerate() {
        table.row(vec![
            fmt_dur(*q),
            fmt_ratio(cols[0][i]),
            fmt_ratio(cols[1][i]),
        ]);
    }
    table
}

/// The lock-duration inset: average observed lock duration (µs) of the
/// ConSpin benchmark versus quantum length, 4 vCPUs sharing the pCPU.
pub fn run_lock_inset(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig2(inset) lock duration vs quantum",
        &[
            "quantum",
            "mean hold (us)",
            "max hold (us)",
            "mean wait (us)",
        ],
    );
    for q in [20 * MS, 40 * MS, 60 * MS, 80 * MS] {
        let mut scenario = panel_scenario(Panel::ConSpin, 4);
        if quick {
            scenario = scenario.quick();
        } else {
            // Holder-preemption events are sparse at large quanta;
            // a long window gives the hold statistics enough of them.
            scenario.measure_ns = 24 * aql_sim::time::SEC;
        }
        let report = scenario.run(Box::new(FixedQuantumPolicy::new(q)));
        let WorkloadMetrics::Spin {
            lock_hold_mean_ns,
            lock_hold_max_ns,
            lock_wait_mean_ns,
            ..
        } = report.vms[0].metrics
        else {
            panic!("ConSpin panel must produce Spin metrics");
        };
        table.row(vec![
            fmt_dur(q),
            format!("{:.1}", lock_hold_mean_ns / 1e3),
            format!("{:.1}", lock_hold_max_ns / 1e3),
            format!("{:.1}", lock_wait_mean_ns / 1e3),
        ]);
    }
    table
}

/// Runs the full figure: all six panels plus the inset.
pub fn run_all(quick: bool) -> Vec<Table> {
    let mut out: Vec<Table> = Panel::ALL
        .into_iter()
        .map(|p| run_panel(p, quick))
        .collect();
    out.push(run_lock_inset(quick));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_scenarios_have_k_vcpus() {
        for panel in Panel::ALL {
            for k in [2usize, 4] {
                let s = panel_scenario(panel, k);
                let total: usize = s
                    .vms
                    .iter()
                    .enumerate()
                    .map(|(i, vm)| (vm.factory)(i as u64).0.vcpus)
                    .sum();
                assert_eq!(total, k, "panel {panel:?} k={k}");
            }
        }
    }

    #[test]
    fn panel_letters_unique() {
        let letters: Vec<&str> = Panel::ALL.iter().map(|p| p.letter()).collect();
        let mut dedup = letters.clone();
        dedup.dedup();
        assert_eq!(letters.len(), dedup.len());
    }

    #[test]
    fn quick_llcf_panel_prefers_long_quanta() {
        // Shape check on the smallest panel run: normalised LLCF cost
        // at 1 ms must exceed the cost at 90 ms.
        let t = run_panel(Panel::Llcf, true);
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let at_1ms = parse(&t.rows[0][2]);
        let at_90ms = parse(&t.rows[4][2]);
        assert!(
            at_1ms > at_90ms,
            "LLCF should prefer long quanta: 1ms={at_1ms}, 90ms={at_90ms}"
        );
    }
}
