//! Fig. 2 — quantum-length calibration.
//!
//! Six panels measure one application type each, colocated on a single
//! pCPU with 2 and 4 vCPUs sharing it, across quantum lengths
//! {1, 10, 30, 60, 90} ms; values are normalised over the 30 ms run
//! (smaller is better). The rightmost inset measures the average lock
//! duration of the ConSpin benchmark against the quantum length.
//!
//! Each panel is an experiment plan: the scenario is a generated
//! [`ScenarioSpec`] (the measured VM plus its fillers on a one-core
//! machine), the quantum axis is the `fixed/<dur>` policy token, and
//! the fold normalises over the panel's `xen-credit` baseline cell.

use aql_hv::workload::WorkloadMetrics;
use aql_scenarios::ScenarioSpec;
use aql_sim::time::{fmt_dur, MS};

use crate::emit::{fmt_ratio, Table};
use crate::plan::{cost_of, execute, normalized, CellResult, ExecOpts, PlanCell};

/// The calibration sweep: {1, 10, 30, 60, 90} ms.
pub const QUANTA: [u64; 5] = [MS, 10 * MS, 30 * MS, 60 * MS, 90 * MS];
/// The normalisation baseline (Xen default).
pub const BASE_QUANTUM: u64 = 30 * MS;

/// The six calibration panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// (a) Exclusive IO.
    ExclusiveIo,
    /// (b) Heterogeneous IO (web + CGI).
    HeterogeneousIo,
    /// (c) Spin-lock concurrency.
    ConSpin,
    /// (d) LLC-friendly.
    Llcf,
    /// (e) Low-level-cache friendly.
    Lolcf,
    /// (f) Trashing.
    Llco,
}

impl Panel {
    /// Paper panel letter.
    pub fn letter(self) -> &'static str {
        match self {
            Panel::ExclusiveIo => "a",
            Panel::HeterogeneousIo => "b",
            Panel::ConSpin => "c",
            Panel::Llcf => "d",
            Panel::Lolcf => "e",
            Panel::Llco => "f",
        }
    }

    /// Panel title as in Fig. 2.
    pub fn title(self) -> &'static str {
        match self {
            Panel::ExclusiveIo => "Excl. IOInt",
            Panel::HeterogeneousIo => "Hetero. IOInt",
            Panel::ConSpin => "ConSpin",
            Panel::Llcf => "LLCF",
            Panel::Lolcf => "LoLCF",
            Panel::Llco => "LLCO",
        }
    }

    /// The measured VM's workload token.
    fn baseline_workload(self) -> &'static str {
        match self {
            Panel::ExclusiveIo => "io/exclusive/150",
            Panel::HeterogeneousIo => "io/heterogeneous/120",
            Panel::ConSpin => "spin/kernbench/2",
            Panel::Llcf => "walk/llcf",
            Panel::Lolcf => "walk/lolcf",
            Panel::Llco => "walk/llco",
        }
    }

    /// All panels in paper order.
    pub const ALL: [Panel; 6] = [
        Panel::ExclusiveIo,
        Panel::HeterogeneousIo,
        Panel::ConSpin,
        Panel::Llcf,
        Panel::Lolcf,
        Panel::Llco,
    ];
}

/// Builds the panel's scenario for `k` vCPUs sharing the pCPU: the
/// measured VM (explicit seed 42, the historic base) plus neutral
/// fillers — trashing (`walk/llco`) disturbers for the cache-friendly
/// panels, low-level-cache walkers for everyone else.
pub fn panel_spec(panel: Panel, k: usize) -> ScenarioSpec {
    assert!(k >= 2, "calibration shares a pCPU between at least 2 vCPUs");
    let fillers = match panel {
        Panel::ConSpin => k - 2,
        _ => k - 1,
    };
    let filler_class = match panel {
        Panel::Llcf | Panel::Llco => "llco",
        _ => "lolcf",
    };
    let mut doc = format!(
        "scenario   = fig2{}-k{k}\n\
         machine    = name=calib-1core sockets=1 cores=1 cache=i7-3770\n\
         vm baseline workload={} seed=42\n",
        panel.letter(),
        panel.baseline_workload(),
    );
    // The grammar requires %i iff count > 1, so a single filler gets
    // its expanded name spelled out.
    match fillers {
        0 => {}
        1 => doc.push_str(&format!(
            "vm filler-{filler_class}-0 workload=walk/{filler_class}\n"
        )),
        n => doc.push_str(&format!(
            "vm filler-{filler_class}-%i count={n} workload=walk/{filler_class}\n"
        )),
    }
    ScenarioSpec::parse(&doc).expect("generated panel spec is well-formed")
}

/// The shared calibration cell layout (used by fig2 and fig5): the
/// `xen-credit` baseline followed by every non-baseline quantum as a
/// `fixed/<dur>` cell — [`QUANTUM_CELLS`] cells per spec.
pub(crate) fn quantum_cells(spec: &ScenarioSpec) -> Vec<PlanCell> {
    let mut cells = vec![PlanCell::new(spec.clone(), "xen-credit")];
    for q in QUANTA {
        if q != BASE_QUANTUM {
            cells.push(PlanCell::new(
                spec.clone(),
                &format!("fixed/{}", fmt_dur(q)),
            ));
        }
    }
    cells
}

/// Cells per [`quantum_cells`] span: the baseline replaces the
/// [`BASE_QUANTUM`] run, so the span is exactly one cell per quantum.
pub(crate) const QUANTUM_CELLS: usize = QUANTA.len();

/// Folds one executed [`quantum_cells`] span into the measured VM's
/// normalised cost per quantum ([`QUANTA`] order; exactly 1.0 at the
/// baseline quantum).
pub(crate) fn fold_quanta(results: &[CellResult]) -> Vec<Option<f64>> {
    let base_cost = results[0].report.as_ref().and_then(|r| cost_of(r, 0));
    let mut next = 1;
    QUANTA
        .iter()
        .map(|&q| {
            if q == BASE_QUANTUM {
                return Some(1.0);
            }
            let cost = results[next].report.as_ref().and_then(|r| cost_of(r, 0));
            next += 1;
            normalized(cost, base_cost)
        })
        .collect()
}

/// The cells of one panel: one [`quantum_cells`] span per sharing
/// level `k ∈ {2, 4}`.
fn panel_cells(panel: Panel, quick: bool) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for k in [2usize, 4] {
        let mut spec = panel_spec(panel, k);
        if quick {
            spec = spec.quick();
        }
        cells.extend(quantum_cells(&spec));
    }
    cells
}

/// Folds one panel's executed cells (layout of [`panel_cells`]) into
/// its table: normalised cost per quantum for each sharing level.
fn fold_panel(panel: Panel, results: &[CellResult]) -> Table {
    let mut table = Table::new(
        &format!("Fig2({}) {}", panel.letter(), panel.title()),
        &["quantum", "norm k=2", "norm k=4"],
    );
    let cols: Vec<Vec<Option<f64>>> = (0..2)
        .map(|k_idx| fold_quanta(&results[k_idx * QUANTUM_CELLS..][..QUANTUM_CELLS]))
        .collect();
    for (i, q) in QUANTA.iter().enumerate() {
        table.row(vec![
            fmt_dur(*q),
            fmt_ratio(cols[0][i]),
            fmt_ratio(cols[1][i]),
        ]);
    }
    table
}

/// Measures one panel: normalised cost per quantum for each sharing
/// level `k ∈ {2, 4}`.
pub fn run_panel(panel: Panel, quick: bool, opts: &ExecOpts) -> Table {
    let results = execute(&panel_cells(panel, quick), opts).expect("panel plan is well-formed");
    fold_panel(panel, &results)
}

/// The inset's quantum axis.
const INSET_QUANTA: [u64; 4] = [20 * MS, 40 * MS, 60 * MS, 80 * MS];

fn inset_cells(quick: bool) -> Vec<PlanCell> {
    INSET_QUANTA
        .iter()
        .map(|&q| {
            let spec = panel_spec(Panel::ConSpin, 4);
            let spec = if quick {
                spec.quick()
            } else {
                // Holder-preemption events are sparse at large quanta;
                // a long window gives the hold statistics enough of
                // them.
                spec.with_measure_ns(24 * aql_sim::time::SEC)
            };
            PlanCell::new(spec, &format!("fixed/{}", fmt_dur(q)))
        })
        .collect()
}

fn fold_inset(results: &[CellResult]) -> Table {
    let mut table = Table::new(
        "Fig2(inset) lock duration vs quantum",
        &[
            "quantum",
            "mean hold (us)",
            "max hold (us)",
            "mean wait (us)",
        ],
    );
    for (q, result) in INSET_QUANTA.iter().zip(results) {
        let report = result.report.as_ref().expect("inset cell ran");
        let WorkloadMetrics::Spin {
            lock_hold_mean_ns,
            lock_hold_max_ns,
            lock_wait_mean_ns,
            ..
        } = report.vms[0].metrics
        else {
            panic!("ConSpin panel must produce Spin metrics");
        };
        table.row(vec![
            fmt_dur(*q),
            format!("{:.1}", lock_hold_mean_ns / 1e3),
            format!("{:.1}", lock_hold_max_ns / 1e3),
            format!("{:.1}", lock_wait_mean_ns / 1e3),
        ]);
    }
    table
}

/// The lock-duration inset: average observed lock duration (µs) of the
/// ConSpin benchmark versus quantum length, 4 vCPUs sharing the pCPU.
pub fn run_lock_inset(quick: bool, opts: &ExecOpts) -> Table {
    let results = execute(&inset_cells(quick), opts).expect("inset plan is well-formed");
    fold_inset(&results)
}

/// Runs the full figure — all six panels plus the inset — as one plan
/// so every cell shares the worker pool.
pub fn run_all(quick: bool, opts: &ExecOpts) -> Vec<Table> {
    let mut cells = Vec::new();
    let mut spans: Vec<usize> = Vec::new();
    for panel in Panel::ALL {
        let c = panel_cells(panel, quick);
        spans.push(c.len());
        cells.extend(c);
    }
    let inset = inset_cells(quick);
    spans.push(inset.len());
    cells.extend(inset);
    let results = execute(&cells, opts).expect("fig2 plan is well-formed");
    let mut out = Vec::new();
    let mut offset = 0;
    for (panel, span) in Panel::ALL.into_iter().zip(&spans) {
        out.push(fold_panel(panel, &results[offset..offset + span]));
        offset += span;
    }
    out.push(fold_inset(&results[offset..]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_specs_have_k_vcpus() {
        for panel in Panel::ALL {
            for k in [2usize, 4] {
                let s = panel_spec(panel, k);
                assert_eq!(s.total_vcpus(), k, "panel {panel:?} k={k}");
                assert_eq!(s.machine.cores_per_socket, 1);
            }
        }
    }

    #[test]
    fn panel_letters_unique() {
        let letters: Vec<&str> = Panel::ALL.iter().map(|p| p.letter()).collect();
        let mut dedup = letters.clone();
        dedup.dedup();
        assert_eq!(letters.len(), dedup.len());
    }

    #[test]
    fn quick_llcf_panel_prefers_long_quanta() {
        // Shape check on the smallest panel run: normalised LLCF cost
        // at 1 ms must exceed the cost at 90 ms.
        let t = run_panel(Panel::Llcf, true, &ExecOpts::default());
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let at_1ms = parse(&t.rows[0][2]);
        let at_90ms = parse(&t.rows[4][2]);
        assert!(
            at_1ms > at_90ms,
            "LLCF should prefer long quanta: 1ms={at_1ms}, 90ms={at_90ms}"
        );
    }
}
