//! `sweep` — fans a scenario × policy × seed matrix across cores and
//! prints one aggregated comparison table.
//!
//! Usage:
//!
//! ```text
//! sweep [options]
//!
//! options:
//!   --scenarios a,b,c   catalog entries to sweep (default: all)
//!   --policies a,b      policies to compare (default: all five)
//!   --seeds N           replicates per scenario (default: 1)
//!   --threads N         worker threads (default: all cores)
//!   --quick             shorten warm-up/measurement (CI smoke)
//!   --list              print the catalog and exit
//!   --show NAME         print a scenario document and exit
//! ```
//!
//! The emitted table is byte-identical across repeated same-seed runs
//! and across `--threads` values; per-replicate seeds derive from the
//! scenario names alone. The table is also saved as CSV under
//! `results/`.

use std::process::ExitCode;

use aql_experiments::emit::results_dir;
use aql_experiments::sweep::{run_sweep, SweepConfig};
use aql_scenarios::catalog;

fn usage() -> String {
    format!(
        "usage: sweep [--scenarios a,b,c] [--policies a,b] [--seeds N] \
         [--threads N] [--quick] [--list] [--show NAME]\n\
         scenarios: {}\n\
         policies:  {}",
        catalog::names().join(", "),
        aql_scenarios::POLICY_NAMES.join(", ")
    )
}

fn parse_args(args: &[String]) -> Result<(Vec<String>, SweepConfig, bool), String> {
    let mut cfg = SweepConfig::default();
    let mut names: Vec<String> = catalog::names().iter().map(|s| s.to_string()).collect();
    let mut it = args.iter();
    let mut ran_meta = false;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenarios" => {
                names = value("--scenarios")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--policies" => {
                cfg.policies = value("--policies")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--seeds" => {
                cfg.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "--seeds needs a number".to_string())?;
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--quick" => cfg.quick = true,
            "--list" => {
                for spec in catalog::load_all().map_err(|e| e.to_string())? {
                    println!(
                        "{:<16} {:>2} VM lines, {:>2} vCPUs on {:>2} pCPUs ({:.1}:1)",
                        spec.name,
                        spec.vms.len(),
                        spec.total_vcpus(),
                        spec.machine.sockets * spec.machine.cores_per_socket,
                        spec.consolidation(),
                    );
                }
                ran_meta = true;
            }
            "--show" => {
                let name = value("--show")?;
                let doc =
                    catalog::document(&name).ok_or_else(|| format!("unknown scenario '{name}'"))?;
                print!("{doc}");
                ran_meta = true;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                ran_meta = true;
            }
            other => return Err(format!("unknown option '{other}'\n{}", usage())),
        }
    }
    Ok((names, cfg, ran_meta))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (names, cfg, ran_meta) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if ran_meta {
        return ExitCode::SUCCESS;
    }
    match run_sweep(&names, &cfg) {
        Ok(outcome) => {
            outcome.table.print();
            match outcome.table.save_csv(&results_dir()) {
                Ok(path) => println!("(saved {})", path.display()),
                Err(e) => eprintln!("warning: could not save CSV: {e}"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
