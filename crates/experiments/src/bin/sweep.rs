//! `sweep` — fans a scenario × policy × seed matrix across cores and
//! prints one aggregated comparison table.
//!
//! Usage:
//!
//! ```text
//! sweep [options]
//!
//! options:
//!   --scenarios a,b,c   catalog entries to sweep (default: all)
//!   --policies a,b      policies to compare (default: all five)
//!   --seeds N           replicates per scenario (default: 1)
//!   --threads N         worker threads (default: all cores)
//!   --span-workers N    per-simulation socket lanes for coalesced
//!                       spans (default: 1; never changes the table)
//!   --quick             shorten warm-up/measurement (CI smoke)
//!   --time-mode M       adaptive (default), dense, or both: `both`
//!                       runs the matrix under each mode, asserts the
//!                       aggregate tables are byte-identical, and
//!                       reports the wall-clock speedup
//!   --oracle-sample N   with `both`, run the comparison on a seeded
//!                       rotation of N scenarios instead of the full
//!                       list (the CI dense-oracle sampling knob)
//!   --oracle-seed S     rotation seed for `--oracle-sample`
//!                       (default: 0; CI derives it from the commit
//!                       count so the subset advances PR over PR)
//!   --bench-json PATH   with `both`, write the timing comparison as
//!                       JSON (the CI perf-smoke writes
//!                       BENCH_sweep.json); otherwise record this
//!                       run's wall time (and failure count) under a
//!                       `sweep[_quick]_span_workersN` key
//!   --scenario-file F   sweep scenario documents parsed from the
//!                       given files (comma-separated) instead of the
//!                       catalog; combine with --scenarios to add
//!                       catalog entries too
//!   --max-cell-wall D   wall-clock budget per cell attempt
//!                       (`250ms`, `30s`, …; default: unlimited)
//!   --retries N         retry environmental (wall-budget) cell
//!                       failures up to N times (default: 0)
//!   --journal PATH      append finished cells to a crash-safe JSONL
//!                       journal
//!   --resume            skip cells already in the journal; the table
//!                       is byte-identical to a clean run
//!   --fail-fast         abort on the first cell failure instead of
//!                       rendering FAIL
//!   --list              print the catalog and exit
//!   --show NAME         print a scenario document and exit
//! ```
//!
//! A failed cell (injected fault, livelock, blown budget) never takes
//! the sweep down: it renders as `FAIL`, its classification is printed
//! after the table, and every surviving row is byte-identical to a
//! sweep without the broken cell. Exit code stays 0 — containment is
//! the contract; use `--fail-fast` to turn failures back into aborts.
//!
//! The emitted table is byte-identical across repeated same-seed runs
//! and across `--threads` values; per-replicate seeds derive from the
//! scenario names alone. The table is also saved as CSV under
//! `results/`.

use std::process::ExitCode;

use aql_experiments::emit::{save_and_print, update_bench_json};
use aql_experiments::sweep::{run_sweep, run_sweep_on, SweepConfig, SweepOutcome};
use aql_scenarios::{catalog, ScenarioSpec, TimeMode};

fn usage() -> String {
    format!(
        "usage: sweep [--scenarios a,b,c] [--scenario-file f.scn,g.scn] \
         [--policies a,b] [--seeds N] \
         [--threads N] [--span-workers N] [--quick] \
         [--time-mode adaptive|dense|both] [--oracle-sample N] \
         [--oracle-seed S] [--bench-json PATH] [--max-cell-wall DUR] \
         [--retries N] [--journal PATH] [--resume] [--fail-fast] \
         [--list] [--show NAME]\n\
         scenarios: {}\n\
         policies:  {}",
        catalog::names().join(", "),
        aql_scenarios::POLICY_NAMES.join(", ")
    )
}

/// JSON-escapes a scenario name (the catalog only uses identifier-safe
/// characters, but hand-written specs may not).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders the three-way timing comparison (dense oracle, uncoalesced
/// adaptive, coalesced adaptive) as a JSON document. The headline
/// `speedup` is dense over *coalesced* — the default execution mode —
/// with `speedup_flat` recording the grid-replaying fast path next to
/// it so the coalescing contribution stays visible PR over PR.
fn bench_json(
    names: &[String],
    cfg: &SweepConfig,
    dense: &SweepOutcome,
    flat: &SweepOutcome,
    coalesced: &SweepOutcome,
) -> String {
    let dense_by_scenario = dense.wall_ns_by_scenario();
    let flat_by_scenario = flat.wall_ns_by_scenario();
    let coalesced_by_scenario = coalesced.wall_ns_by_scenario();
    let ms = |ns: u64| ns as f64 / 1e6;
    let ratio = |d: u64, a: u64| if a > 0 { d as f64 / a as f64 } else { 0.0 };
    let mut per_scenario = String::new();
    for (i, name) in names.iter().enumerate() {
        let d = dense_by_scenario.get(i).copied().unwrap_or(0);
        let f = flat_by_scenario.get(i).copied().unwrap_or(0);
        let c = coalesced_by_scenario.get(i).copied().unwrap_or(0);
        if i > 0 {
            per_scenario.push(',');
        }
        per_scenario.push_str(&format!(
            "\n    {{\"scenario\": \"{}\", \"dense_ms\": {:.3}, \"adaptive_ms\": {:.3}, \
             \"coalesced_ms\": {:.3}, \"speedup\": {:.3}}}",
            json_escape(name),
            ms(d),
            ms(f),
            ms(c),
            ratio(d, c)
        ));
    }
    let d = dense.total_wall_ns();
    let f = flat.total_wall_ns();
    let c = coalesced.total_wall_ns();
    format!(
        "{{\n  \"scenarios\": {},\n  \"policies\": {},\n  \"seeds\": {},\n  \
         \"quick\": {},\n  \"dense_ms\": {:.3},\n  \"adaptive_ms\": {:.3},\n  \
         \"coalesced_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"speedup_flat\": {:.3},\n  \
         \"per_scenario\": [{}\n  ]\n}}\n",
        names.len(),
        cfg.policies.len(),
        cfg.seeds,
        cfg.quick,
        ms(d),
        ms(f),
        ms(c),
        ratio(d, c),
        ratio(d, f),
        per_scenario
    )
}

/// Parsed command line: scenario names, sweep config, whether a
/// metadata action already ran, and the mode-comparison request
/// (`--time-mode both` + optional JSON output path).
struct Cli {
    names: Vec<String>,
    /// `--scenarios` was given explicitly (vs. the full-catalog
    /// default); decides whether catalog entries join `file_specs`.
    names_explicit: bool,
    /// Scenario documents loaded from `--scenario-file`.
    file_specs: Vec<ScenarioSpec>,
    cfg: SweepConfig,
    ran_meta: bool,
    compare_modes: bool,
    bench_json: Option<String>,
    /// `--oracle-sample N`: cap the mode-comparison matrix at `N`
    /// scenarios, chosen by a seeded rotation (`0` = full list).
    oracle_sample: usize,
    /// Rotation seed for `--oracle-sample`.
    oracle_seed: u64,
}

/// Picks `sample` scenario names by rotating a window of that length
/// through the list, starting at `seed % len`. Deterministic, keeps
/// the original order inside the window, and sweeps every scenario
/// into the window as the seed advances (CI derives the seed from the
/// commit count).
fn sample_rotation(names: &[String], sample: usize, seed: u64) -> Vec<String> {
    if sample == 0 || sample >= names.len() {
        return names.to_vec();
    }
    let start = (seed % names.len() as u64) as usize;
    let mut picked: Vec<usize> = (0..sample).map(|i| (start + i) % names.len()).collect();
    picked.sort_unstable();
    picked.into_iter().map(|i| names[i].clone()).collect()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cfg = SweepConfig::default();
    let mut names: Vec<String> = catalog::names().iter().map(|s| s.to_string()).collect();
    let mut names_explicit = false;
    let mut file_specs: Vec<ScenarioSpec> = Vec::new();
    let mut it = args.iter();
    let mut ran_meta = false;
    let mut compare_modes = false;
    let mut bench_json = None;
    let mut oracle_sample = 0usize;
    let mut oracle_seed = 0u64;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenarios" => {
                names = value("--scenarios")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
                names_explicit = true;
            }
            "--scenario-file" => {
                for path in value("--scenario-file")?.split(',') {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read scenario file {path}: {e}"))?;
                    file_specs
                        .push(ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?);
                }
            }
            "--policies" => {
                cfg.policies = value("--policies")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--seeds" => {
                cfg.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "--seeds needs a number".to_string())?;
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--span-workers" => {
                cfg.span_workers = value("--span-workers")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--span-workers needs a positive number".to_string())?;
            }
            "--quick" => cfg.quick = true,
            "--time-mode" => match value("--time-mode")?.as_str() {
                "adaptive" => cfg.time_mode = TimeMode::Adaptive,
                "dense" => cfg.time_mode = TimeMode::Dense,
                "both" => compare_modes = true,
                other => {
                    return Err(format!(
                        "--time-mode must be adaptive, dense or both, got '{other}'"
                    ))
                }
            },
            "--bench-json" => bench_json = Some(value("--bench-json")?),
            "--max-cell-wall" => {
                let v = value("--max-cell-wall")?;
                let ns = aql_sim::time::parse_dur(&v)
                    .ok_or_else(|| format!("--max-cell-wall: bad duration '{v}'"))?;
                cfg.max_cell_wall = Some(std::time::Duration::from_nanos(ns));
            }
            "--retries" => {
                cfg.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries needs a number".to_string())?;
            }
            "--journal" => cfg.journal = Some(value("--journal")?.into()),
            "--resume" => cfg.resume = true,
            "--fail-fast" => cfg.fail_fast = true,
            "--oracle-sample" => {
                oracle_sample = value("--oracle-sample")?
                    .parse()
                    .map_err(|_| "--oracle-sample needs a number".to_string())?;
            }
            "--oracle-seed" => {
                oracle_seed = value("--oracle-seed")?
                    .parse()
                    .map_err(|_| "--oracle-seed needs a number".to_string())?;
            }
            "--list" => {
                for spec in catalog::load_all().map_err(|e| e.to_string())? {
                    println!(
                        "{:<16} {:>2} VM lines, {:>2} vCPUs on {:>2} pCPUs ({:.1}:1)",
                        spec.name,
                        spec.vms.len(),
                        spec.total_vcpus(),
                        spec.machine.sockets * spec.machine.cores_per_socket,
                        spec.consolidation(),
                    );
                }
                ran_meta = true;
            }
            "--show" => {
                let name = value("--show")?;
                let doc =
                    catalog::document(&name).ok_or_else(|| format!("unknown scenario '{name}'"))?;
                print!("{doc}");
                ran_meta = true;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                ran_meta = true;
            }
            other => return Err(format!("unknown option '{other}'\n{}", usage())),
        }
    }
    if oracle_sample > 0 && !compare_modes {
        return Err("--oracle-sample requires --time-mode both (it samples the \
                    dense-oracle comparison matrix)"
            .to_string());
    }
    if compare_modes && !file_specs.is_empty() {
        return Err("--scenario-file cannot combine with --time-mode both".to_string());
    }
    if cfg.resume && cfg.journal.is_none() {
        return Err("--resume requires --journal".to_string());
    }
    Ok(Cli {
        names,
        names_explicit,
        file_specs,
        cfg,
        ran_meta,
        compare_modes,
        bench_json,
        oracle_sample,
        oracle_seed,
    })
}

/// `--time-mode both`: sweep the matrix under the dense oracle, the
/// uncoalesced adaptive path and the coalesced default; assert every
/// aggregate table is byte-identical (the rendered-precision
/// conformance gate — the uncoalesced path is bitwise, the coalesced
/// one within the tolerance rounding absorbs), report the wall-clock
/// comparison and optionally write it as JSON.
fn run_mode_comparison(cli: &Cli) -> Result<(), String> {
    let names = sample_rotation(&cli.names, cli.oracle_sample, cli.oracle_seed);
    if names.len() < cli.names.len() {
        println!(
            "dense-oracle sampling: {} of {} scenarios (rotation seed {}): {}",
            names.len(),
            cli.names.len(),
            cli.oracle_seed,
            names.join(", ")
        );
    }
    let dense_cfg = SweepConfig {
        time_mode: TimeMode::Dense,
        ..cli.cfg.clone()
    };
    let flat_cfg = SweepConfig {
        time_mode: TimeMode::Adaptive,
        coalesce: false,
        ..cli.cfg.clone()
    };
    let coalesced_cfg = SweepConfig {
        time_mode: TimeMode::Adaptive,
        coalesce: true,
        ..cli.cfg.clone()
    };
    println!(
        "sweeping {} scenarios under TimeMode::Dense ...",
        names.len()
    );
    let dense = run_sweep(&names, &dense_cfg)?;
    println!(
        "sweeping {} scenarios under TimeMode::Adaptive (coalescing off) ...",
        names.len()
    );
    let flat = run_sweep(&names, &flat_cfg)?;
    println!(
        "sweeping {} scenarios under TimeMode::Adaptive (coalescing on) ...",
        names.len()
    );
    let coalesced = run_sweep(&names, &coalesced_cfg)?;
    if dense.table.render() != flat.table.render() {
        return Err(
            "conformance violation: dense and uncoalesced-adaptive tables differ".to_string(),
        );
    }
    if dense.table.render() != coalesced.table.render() {
        return Err("conformance violation: coalescing drifted a rendered table byte".to_string());
    }
    coalesced.table.print();
    let d_ms = dense.total_wall_ns() as f64 / 1e6;
    let f_ms = flat.total_wall_ns() as f64 / 1e6;
    let c_ms = coalesced.total_wall_ns() as f64 / 1e6;
    let x = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    println!(
        "\ntables byte-identical across time modes; simulation wall time \
         dense {d_ms:.0} ms, adaptive {f_ms:.0} ms ({:.2}x), coalesced {c_ms:.0} ms ({:.2}x)",
        x(d_ms, f_ms),
        x(d_ms, c_ms)
    );
    if let Some(path) = &cli.bench_json {
        let doc = bench_json(&names, &cli.cfg, &dense, &flat, &coalesced);
        std::fs::write(path, doc).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("(saved {path})");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.ran_meta {
        return ExitCode::SUCCESS;
    }
    if cli.compare_modes {
        return match run_mode_comparison(&cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let ran = if cli.file_specs.is_empty() {
        run_sweep(&cli.names, &cli.cfg)
    } else {
        // File-provided documents replace the catalog default; an
        // explicit --scenarios list joins them.
        let mut specs = cli.file_specs.clone();
        if cli.names_explicit {
            match cli
                .names
                .iter()
                .map(|n| catalog::load(n).ok_or_else(|| format!("unknown scenario '{n}'")))
                .collect::<Result<Vec<_>, _>>()
            {
                Ok(named) => specs.extend(named),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        run_sweep_on(&specs, &cli.cfg)
    };
    match ran {
        Ok(outcome) => {
            save_and_print(std::slice::from_ref(&outcome.table));
            let failures = outcome.failures();
            if !failures.is_empty() {
                println!("\n{} cell(s) failed (contained):", failures.len());
                for f in &failures {
                    println!("  {f}");
                }
            }
            if let Some(path) = &cli.bench_json {
                // Plain-mode benchmark record: one key per
                // (quick, scenario-files, span-workers, time-mode)
                // shape, so the CI span-scaling smoke can log
                // `span_workers` 1 and 4 side by side and the
                // fault-injection smoke (file-driven) cannot clobber
                // either record.
                let key = format!(
                    "sweep_{}{}span_workers{}{}",
                    if cli.cfg.quick { "quick_" } else { "" },
                    if cli.file_specs.is_empty() {
                        String::new()
                    } else {
                        format!("files{}_", cli.file_specs.len())
                    },
                    cli.cfg.span_workers,
                    if cli.cfg.time_mode == TimeMode::Dense {
                        "_dense"
                    } else {
                        ""
                    }
                );
                let scenario_count = if cli.file_specs.is_empty() {
                    cli.names.len()
                } else if cli.names_explicit {
                    cli.file_specs.len() + cli.names.len()
                } else {
                    cli.file_specs.len()
                };
                let value = format!(
                    "{{\"scenarios\": {}, \"wall_ms\": {:.3}, \"failed_cells\": {}}}",
                    scenario_count,
                    outcome.total_wall_ns() as f64 / 1e6,
                    outcome.failures().len()
                );
                if let Err(e) = update_bench_json(std::path::Path::new(path), &key, &value) {
                    eprintln!("warning: could not update {path}: {e}");
                } else {
                    println!("(recorded {key} in {path})");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
