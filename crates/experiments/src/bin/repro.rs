//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] <command>
//!
//! commands:
//!   fig2            calibration panels (a)-(f) + lock-duration inset
//!   fig2a .. fig2f  one calibration panel
//!   fig2lock        the lock-duration inset only
//!   fig4            vTRS cursor traces (5 representative apps)
//!   fig5            validation sweep over the whole catalog
//!   fig6left        scenarios S1-S5, AQL vs Xen
//!   fig6right       the 4-socket complex case
//!   fig7            quantum-customisation ablation
//!   fig8            comparison with vTurbo / vSlicer / Microsliced
//!   table3          application type recognition
//!   table5          clustering per scenario
//!   table6          qualitative feature matrix
//!   overhead        vTRS + clustering cost (§4.3)
//!   fairness        Jain fairness under AQL vs Xen
//!   all             everything above
//! ```
//!
//! Each table is printed to stdout and saved as CSV under `results/`.

use std::process::ExitCode;

use aql_experiments::emit::results_dir;
use aql_experiments::{ablations, fig2, fig4, fig5, fig6, fig7, fig8, tables, Table};

fn save_and_print(tables: &[Table]) {
    let dir = results_dir();
    for t in tables {
        t.print();
        match t.save_csv(&dir) {
            Ok(path) => println!("(saved {})", path.display()),
            Err(e) => eprintln!("warning: could not save CSV: {e}"),
        }
        println!();
    }
}

fn run(cmd: &str, quick: bool) -> Result<Vec<Table>, String> {
    Ok(match cmd {
        "fig2" => fig2::run_all(quick),
        "fig2a" => vec![fig2::run_panel(fig2::Panel::ExclusiveIo, quick)],
        "fig2b" => vec![fig2::run_panel(fig2::Panel::HeterogeneousIo, quick)],
        "fig2c" => vec![fig2::run_panel(fig2::Panel::ConSpin, quick)],
        "fig2d" => vec![fig2::run_panel(fig2::Panel::Llcf, quick)],
        "fig2e" => vec![fig2::run_panel(fig2::Panel::Lolcf, quick)],
        "fig2f" => vec![fig2::run_panel(fig2::Panel::Llco, quick)],
        "fig2lock" => vec![fig2::run_lock_inset(quick)],
        "fig4" => fig4::run(quick),
        "fig5" => vec![fig5::run(&[], quick)],
        "fig6left" => vec![fig6::run_left(quick)],
        "fig6right" => {
            let (norm, clusters) = fig6::run_right(quick);
            vec![norm, clusters]
        }
        "fig7" => vec![fig7::run(quick)],
        "fig8" => vec![fig8::run(quick)],
        "table3" => vec![tables::table3(quick)],
        "table5" => vec![tables::table5(quick)],
        "table6" => vec![tables::table6()],
        "overhead" => vec![tables::overhead()],
        "fairness" => vec![tables::fairness(quick)],
        "ablations" => ablations::run_all(quick),
        "scalability" => vec![ablations::scalability()],
        other => return Err(format!("unknown command '{other}'")),
    })
}

const ALL: [&str; 14] = [
    "fig2",
    "fig4",
    "fig5",
    "fig6left",
    "fig6right",
    "fig7",
    "fig8",
    "table3",
    "table5",
    "table6",
    "overhead",
    "fairness",
    "ablations",
    "scalability",
];

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = if let Some(pos) = args.iter().position(|a| a == "--quick") {
        args.remove(pos);
        true
    } else {
        false
    };
    if args.is_empty() {
        eprintln!("usage: repro [--quick] <command>...");
        eprintln!("commands: {} | all", ALL.join(" | "));
        eprintln!("          fig2a..fig2f fig2lock (individual panels)");
        return ExitCode::FAILURE;
    }
    let cmds: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for c in cmds {
        eprintln!(">> {c}{}", if quick { " (quick)" } else { "" });
        match run(c, quick) {
            Ok(tables) => save_and_print(&tables),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
