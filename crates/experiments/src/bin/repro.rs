//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--threads N] [--time-mode M] [--bench-json PATH] <command>...
//!
//! commands:
//!   fig2            calibration panels (a)-(f) + lock-duration inset
//!   fig2a .. fig2f  one calibration panel
//!   fig2lock        the lock-duration inset only
//!   fig4            vTRS cursor traces (5 representative apps)
//!   fig5            validation sweep over the whole catalog
//!   fig6left        scenarios S1-S5, AQL vs Xen
//!   fig6right       the 4-socket complex case
//!   fig7            quantum-customisation ablation
//!   fig8            comparison with vTurbo / vSlicer / Microsliced
//!   table3          application type recognition
//!   table5          clustering per scenario
//!   table6          qualitative feature matrix
//!   overhead        vTRS + clustering cost (§4.3)
//!   fairness        Jain fairness under AQL vs Xen
//!   ablations       design-choice ablations + scalability
//!   scalability     §4.3 scalability only
//!   all             everything above
//!
//! options:
//!   --quick           shorten warm-up/measurement (CI smoke)
//!   --threads N       worker threads for the experiment plans
//!                     (default: all cores; output is byte-identical
//!                     across thread counts)
//!   --time-mode M     adaptive (default) or dense time advance;
//!                     output is byte-identical across modes
//!   --bench-json PATH record this invocation's wall time under a
//!                     "repro_…" key in the given JSON file (the CI
//!                     smoke tracks BENCH_sweep.json)
//!   --max-cell-wall D wall-clock budget per experiment cell
//!                     (`30s`, `500ms`, …; default: unlimited)
//!   --retries N       retry environmental (wall-budget) cell
//!                     failures up to N times (default: 0)
//!   --journal PATH    append finished cells to a crash-safe JSONL
//!                     journal
//!   --resume          skip cells already in the journal (probe cells
//!                     always re-run); output is byte-identical to a
//!                     clean run
//! ```
//!
//! Each table is printed to stdout and saved as CSV under `results/`.

use std::process::ExitCode;

use aql_experiments::emit::{save_and_print, update_bench_json};
use aql_experiments::{ablations, fig2, fig4, fig5, fig6, fig7, fig8, tables, ExecOpts, Table};
use aql_scenarios::TimeMode;

fn run(cmd: &str, quick: bool, opts: &ExecOpts) -> Result<Vec<Table>, String> {
    Ok(match cmd {
        "fig2" => fig2::run_all(quick, opts),
        "fig2a" => vec![fig2::run_panel(fig2::Panel::ExclusiveIo, quick, opts)],
        "fig2b" => vec![fig2::run_panel(fig2::Panel::HeterogeneousIo, quick, opts)],
        "fig2c" => vec![fig2::run_panel(fig2::Panel::ConSpin, quick, opts)],
        "fig2d" => vec![fig2::run_panel(fig2::Panel::Llcf, quick, opts)],
        "fig2e" => vec![fig2::run_panel(fig2::Panel::Lolcf, quick, opts)],
        "fig2f" => vec![fig2::run_panel(fig2::Panel::Llco, quick, opts)],
        "fig2lock" => vec![fig2::run_lock_inset(quick, opts)],
        "fig4" => fig4::run(quick, opts),
        "fig5" => vec![fig5::run(&[], quick, opts)],
        "fig6left" => vec![fig6::run_left(quick, opts)],
        "fig6right" => {
            let (norm, clusters) = fig6::run_right(quick, opts);
            vec![norm, clusters]
        }
        "fig7" => vec![fig7::run(quick, opts)],
        "fig8" => vec![fig8::run(quick, opts)],
        "table3" => vec![tables::table3(quick, opts)],
        "table5" => vec![tables::table5(quick, opts)],
        "table6" => vec![tables::table6()],
        "overhead" => vec![tables::overhead()],
        "fairness" => vec![tables::fairness(quick, opts)],
        "ablations" => ablations::run_all(quick, opts),
        "scalability" => vec![ablations::scalability()],
        other => return Err(format!("unknown command '{other}'")),
    })
}

const ALL: [&str; 14] = [
    "fig2",
    "fig4",
    "fig5",
    "fig6left",
    "fig6right",
    "fig7",
    "fig8",
    "table3",
    "table5",
    "table6",
    "overhead",
    "fairness",
    "ablations",
    "scalability",
];

fn usage() {
    eprintln!(
        "usage: repro [--quick] [--threads N] [--span-workers N] \
         [--time-mode adaptive|dense] [--bench-json PATH] \
         [--max-cell-wall DUR] [--retries N] [--journal PATH] [--resume] \
         <command>..."
    );
    eprintln!("commands: {} | all", ALL.join(" | "));
    eprintln!("          fig2a..fig2f fig2lock (individual panels)");
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut opts = ExecOpts::default();
    let mut bench_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take_value = |args: &mut Vec<String>, i: usize, flag: &str| -> Option<String> {
            if i + 1 < args.len() {
                args.remove(i); // the flag
                Some(args.remove(i)) // its value
            } else {
                eprintln!("error: {flag} needs a value");
                None
            }
        };
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                args.remove(i);
            }
            "--threads" => {
                let Some(v) = take_value(&mut args, i, "--threads") else {
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(n) => opts.threads = n,
                    Err(_) => {
                        eprintln!("error: --threads needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--span-workers" => {
                let Some(v) = take_value(&mut args, i, "--span-workers") else {
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(n) if n > 0 => opts.span_workers = n,
                    _ => {
                        eprintln!("error: --span-workers needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--time-mode" => {
                let Some(v) = take_value(&mut args, i, "--time-mode") else {
                    return ExitCode::FAILURE;
                };
                match v.as_str() {
                    "adaptive" => opts.time_mode = TimeMode::Adaptive,
                    "dense" => opts.time_mode = TimeMode::Dense,
                    other => {
                        eprintln!("error: --time-mode must be adaptive or dense, got '{other}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--bench-json" => {
                let Some(v) = take_value(&mut args, i, "--bench-json") else {
                    return ExitCode::FAILURE;
                };
                bench_json = Some(v);
            }
            "--max-cell-wall" => {
                let Some(v) = take_value(&mut args, i, "--max-cell-wall") else {
                    return ExitCode::FAILURE;
                };
                match aql_sim::time::parse_dur(&v) {
                    Some(ns) => opts.max_cell_wall = Some(std::time::Duration::from_nanos(ns)),
                    None => {
                        eprintln!("error: --max-cell-wall: bad duration '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--retries" => {
                let Some(v) = take_value(&mut args, i, "--retries") else {
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(n) => opts.retries = n,
                    Err(_) => {
                        eprintln!("error: --retries needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--journal" => {
                let Some(v) = take_value(&mut args, i, "--journal") else {
                    return ExitCode::FAILURE;
                };
                opts.journal = Some(v.into());
            }
            "--resume" => {
                opts.resume = true;
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    if opts.resume && opts.journal.is_none() {
        eprintln!("error: --resume requires --journal");
        return ExitCode::FAILURE;
    }
    // A figure fold needs every applicable cell's report — there is no
    // `FAIL` rendering here like the sweep table has — so a failed
    // cell (blown wall budget, livelock, panic) aborts the artifact
    // with its classification instead of panicking mid-fold.
    opts.fail_fast = true;
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let cmds: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let t0 = std::time::Instant::now();
    for c in &cmds {
        eprintln!(">> {c}{}", if quick { " (quick)" } else { "" });
        // `fail_fast` surfaces a failed cell by re-raising it out of
        // the plan executor; catch it here and report the classified
        // failure (`resume_unwind` payloads bypass the panic hook, so
        // without this the process would die silently).
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(c, quick, &opts)));
        match ran {
            Ok(Ok(tables)) => save_and_print(&tables),
            Ok(Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("cell panicked");
                eprintln!("error: {c}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = bench_json {
        // One key per (quick, threads, time-mode) shape so the CI
        // smoke can record the 1-thread and N-thread runs side by
        // side, and a dense-oracle run cannot overwrite an adaptive
        // timing.
        let key = format!(
            "repro_{}threads{}{}{}",
            if quick { "quick_" } else { "" },
            if opts.threads == 0 {
                "auto".to_string()
            } else {
                opts.threads.to_string()
            },
            if opts.time_mode == TimeMode::Dense {
                "_dense"
            } else {
                ""
            },
            if opts.span_workers > 1 {
                format!("_span{}", opts.span_workers)
            } else {
                String::new()
            }
        );
        let value = format!(
            "{{\"commands\": {}, \"wall_ms\": {:.3}}}",
            cmds.len(),
            t0.elapsed().as_secs_f64() * 1e3
        );
        if let Err(e) = update_bench_json(std::path::Path::new(&path), &key, &value) {
            eprintln!("warning: could not update {path}: {e}");
        } else {
            eprintln!("(recorded {key} in {path})");
        }
    }
    ExitCode::SUCCESS
}
