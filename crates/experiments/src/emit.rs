//! Result emission: aligned stdout tables and CSV files.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple aligned table with a title, headers and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above, used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each must match `headers` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as a CSV document (headers first, RFC-4180
    /// quoting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&csv_line(r));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV under `dir` (created if missing); the
    /// file name is derived from the title. Returns the path.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let stem: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{stem}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') || c.contains('\r') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats an optional ratio with two decimals (`-` when missing).
pub fn fmt_ratio(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"))
}

/// Formats a float with the given precision.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// The default output directory for CSV series.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// The shared binary-output path: prints each table to stdout and
/// saves it as CSV under [`results_dir`], announcing the file (both
/// `repro` and `sweep` emit through this helper).
pub fn save_and_print(tables: &[Table]) {
    let dir = results_dir();
    for t in tables {
        t.print();
        match t.save_csv(&dir) {
            Ok(path) => println!("(saved {})", path.display()),
            Err(e) => eprintln!("warning: could not save CSV: {e}"),
        }
        println!();
    }
}

/// Inserts or replaces one top-level key in a JSON document on disk,
/// keeping the rest of the file byte-for-byte intact. `value` must be
/// a serialised JSON value. The file must hold a JSON object (or not
/// exist yet — it is then created as `{key: value}`). This string-level
/// editor exists so the `sweep` and `repro` binaries can share
/// `BENCH_sweep.json` without a JSON parser dependency.
pub fn update_bench_json(path: &Path, key: &str, value: &str) -> std::io::Result<()> {
    let doc = match fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::from("{\n}\n"),
        Err(e) => return Err(e),
    };
    let entry = format!("\"{key}\": {value}");
    let open = doc.find('{').ok_or(std::io::ErrorKind::InvalidData)?;
    let close = doc.rfind('}').ok_or(std::io::ErrorKind::InvalidData)?;
    let body = &doc[open + 1..close];
    // Drop an existing entry for the key (top-level only: entries are
    // split at top-level commas by brace/bracket/quote depth).
    let mut parts: Vec<String> = Vec::new();
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    let mut cur = String::new();
    for c in body.chars() {
        if in_str {
            cur.push(c);
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.push(c);
            }
            '{' | '[' => {
                depth += 1;
                cur.push(c);
            }
            '}' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    let needle = format!("\"{key}\"");
    parts.retain(|p| !p.trim_start().starts_with(&needle));
    parts.push(format!("\n  {entry}"));
    let rebuilt = format!(
        "{}{{{}\n}}\n",
        &doc[..open],
        parts
            .iter()
            .map(|p| p.trim_end().to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    fs::write(path, rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.00".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_line(&["a,b".to_string()]), "\"a,b\"");
        assert_eq!(
            csv_line(&["he said \"hi\"".to_string()]),
            "\"he said \"\"hi\"\"\""
        );
        assert_eq!(csv_line(&["plain".to_string(), "x".to_string()]), "plain,x");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("aql_emit_test");
        let mut t = Table::new("Fig X demo", &["k", "v"]);
        t.row(vec!["q".into(), "1".into()]);
        let path = t.save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("k,v\n"));
        assert!(content.contains("q,1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(Some(1.234)), "1.23");
        assert_eq!(fmt_ratio(None), "-");
        assert_eq!(fmt_f(0.5, 3), "0.500");
    }

    #[test]
    fn csv_quotes_embedded_newlines() {
        assert_eq!(csv_line(&["a\nb".to_string()]), "\"a\nb\"");
        assert_eq!(csv_line(&["a\rb".to_string()]), "\"a\rb\"");
        let mut t = Table::new("nl", &["v"]);
        t.row(vec!["two\nlines".into()]);
        assert_eq!(t.to_csv(), "v\n\"two\nlines\"\n");
    }

    #[test]
    fn bench_json_inserts_and_replaces_keys() {
        let dir = std::env::temp_dir().join("aql_bench_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        // Creates the file when missing.
        update_bench_json(&path, "alpha", "{\"wall_ms\": 1.5}").unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"alpha\": {\"wall_ms\": 1.5}"), "{doc}");
        // Adds a second key next to an existing one with nested
        // arrays/objects left intact.
        std::fs::write(
            &path,
            "{\n  \"speedup\": 1.2,\n  \"per_scenario\": [\n    {\"a\": 1}\n  ]\n}\n",
        )
        .unwrap();
        update_bench_json(&path, "repro", "{\"wall_ms\": 3.25}").unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"speedup\": 1.2"), "{doc}");
        assert!(doc.contains("{\"a\": 1}"), "{doc}");
        assert!(doc.contains("\"repro\": {\"wall_ms\": 3.25}"), "{doc}");
        // Replaces on re-record instead of duplicating.
        update_bench_json(&path, "repro", "{\"wall_ms\": 4.0}").unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert_eq!(doc.matches("\"repro\"").count(), 1, "{doc}");
        assert!(doc.contains("{\"wall_ms\": 4.0}"), "{doc}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
