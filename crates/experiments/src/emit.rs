//! Result emission: aligned stdout tables and CSV files.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple aligned table with a title, headers and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above, used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each must match `headers` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the table as CSV under `dir` (created if missing); the
    /// file name is derived from the title. Returns the path.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let stem: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{stem}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", csv_line(&self.headers))?;
        for r in &self.rows {
            writeln!(f, "{}", csv_line(r))?;
        }
        Ok(path)
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats an optional ratio with two decimals (`-` when missing).
pub fn fmt_ratio(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"))
}

/// Formats a float with the given precision.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// The default output directory for CSV series.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.00".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_line(&["a,b".to_string()]), "\"a,b\"");
        assert_eq!(
            csv_line(&["he said \"hi\"".to_string()]),
            "\"he said \"\"hi\"\"\""
        );
        assert_eq!(csv_line(&["plain".to_string(), "x".to_string()]), "plain,x");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("aql_emit_test");
        let mut t = Table::new("Fig X demo", &["k", "v"]);
        t.row(vec!["q".into(), "1".into()]);
        let path = t.save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("k,v\n"));
        assert!(content.contains("q,1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(Some(1.234)), "1.23");
        assert_eq!(fmt_ratio(None), "-");
        assert_eq!(fmt_f(0.5, 3), "0.500");
    }
}
