//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's own evaluation and isolate one
//! mechanism each:
//!
//! * [`lock_fabric`] — FIFO ticket lock vs test-and-set: the
//!   lock-waiter-preemption pathology (\[39\] in the paper) that strict
//!   FIFO hand-off adds under consolidation (`spin/…/fifo` token).
//! * [`ple_yield`] — PLE directed yield on/off: how much of the spin
//!   waste a hypervisor-side yield recovers at each quantum
//!   (`spin/…/ple` token).
//! * [`vtrs_window`] — the recognition window `n`: reactivity versus
//!   stability (the paper settles on n = 4, §3.3.1;
//!   `aql-sched/window=<n>` token).
//! * [`boost`] — Xen's BOOST: exclusive-IO latency with wake-up
//!   boosting disabled (the paper's §3.4.2 discussion of Fig. 2(a);
//!   `io/noboost` token).
//! * [`substep`] — engine fidelity: key metrics under coarser/finer
//!   co-simulation sub-steps (a model-validity check, not a paper
//!   artifact; `with_substep_ns` overlay).

use aql_hv::apptype::VcpuType;
use aql_hv::workload::WorkloadMetrics;
use aql_scenarios::ScenarioSpec;
use aql_sim::time::{fmt_dur, MS, US};
use aql_workloads::WorkloadSpec;

use crate::emit::{fmt_ratio, Table};
use crate::fig2::{panel_spec, Panel};
use crate::fig6::scenario_spec;
use crate::plan::{class_mean_norm, execute, ExecOpts, PlanCell, Probe, ProbeOut};

/// The ConSpin calibration cell with the baseline VM's lock fabric
/// overridden: the spec is data, so the ablation just swaps the
/// workload token.
fn spin_spec(fifo: bool, yield_on_ple: bool) -> ScenarioSpec {
    let mut s = panel_spec(Panel::ConSpin, 4);
    let flags = match (fifo, yield_on_ple) {
        (false, false) => String::new(),
        (true, false) => "/fifo".into(),
        (false, true) => "/ple".into(),
        (true, true) => "/fifo+ple".into(),
    };
    s.vms[0].workloads =
        vec![WorkloadSpec::parse(&format!("spin/kernbench/2{flags}")).expect("valid spin token")];
    s
}

/// Shared shape of the two lock ablations: quantum rows × two workload
/// variants, reporting ConSpin throughput and the variant ratio.
fn spin_ablation(
    title: &str,
    columns: [&str; 3],
    variant: impl Fn(bool) -> ScenarioSpec,
    quick: bool,
    opts: &ExecOpts,
) -> Table {
    let quanta = [MS, 30 * MS, 90 * MS];
    let mut cells = Vec::new();
    for q in quanta {
        for on in [false, true] {
            let mut s = variant(on);
            if quick {
                s = s.quick();
            }
            cells.push(PlanCell::new(s, &format!("fixed/{}", fmt_dur(q))));
        }
    }
    let results = execute(&cells, opts).expect("spin ablation plan is well-formed");
    let mut table = Table::new(title, &["quantum", columns[0], columns[1], columns[2]]);
    for (row, q) in quanta.iter().enumerate() {
        let items: Vec<u64> = (0..2)
            .map(|i| {
                let report = results[row * 2 + i].report.as_ref().expect("cell ran");
                let WorkloadMetrics::Spin { work_items, .. } = report.vms[0].metrics else {
                    panic!("expected Spin metrics");
                };
                work_items
            })
            .collect();
        table.row(vec![
            fmt_dur(*q),
            items[0].to_string(),
            items[1].to_string(),
            format!("{:.2}", items[1] as f64 / items[0].max(1) as f64),
        ]);
    }
    table
}

/// FIFO ticket lock vs test-and-set under consolidation.
pub fn lock_fabric(quick: bool, opts: &ExecOpts) -> Table {
    spin_ablation(
        "Ablation: lock fabric (ConSpin items, higher is better)",
        ["test-and-set", "fifo ticket", "fifo/tas"],
        |fifo| spin_spec(fifo, false),
        quick,
        opts,
    )
}

/// PLE directed yield on/off.
pub fn ple_yield(quick: bool, opts: &ExecOpts) -> Table {
    spin_ablation(
        "Ablation: PLE directed yield (ConSpin items, higher is better)",
        ["no yield", "directed yield", "yield/no-yield"],
        |ple| spin_spec(false, ple),
        quick,
        opts,
    )
}

/// The vTRS window `n`: migrations and IO latency on scenario S5.
pub fn vtrs_window(quick: bool, opts: &ExecOpts) -> Table {
    let windows = [1usize, 2, 4, 8];
    let mut base = scenario_spec(5);
    if quick {
        base = base.quick();
    }
    let mut cells = vec![PlanCell::new(base.clone(), "xen-credit")];
    for n in windows {
        cells.push(
            PlanCell::new(base.clone(), &format!("aql-sched/window={n}"))
                .with_probe(Probe::Reclusterings),
        );
    }
    let results = execute(&cells, opts).expect("vtrs-window plan is well-formed");
    let xen = results[0].report.as_ref().expect("xen cell ran");
    let classes = aql_scenarios::classes(&base);
    let mut table = Table::new(
        "Ablation: vTRS window n (scenario S5)",
        &["n", "reclusterings", "pool migrations", "IOInt norm vs Xen"],
    );
    for (n, result) in windows.iter().zip(&results[1..]) {
        let report = result.report.as_ref().expect("aql cell ran");
        let Some(ProbeOut::Reclusterings(reclusterings)) = result.probe else {
            panic!("window cell must yield a recluster count");
        };
        let migrations: u64 = report
            .vms
            .iter()
            .flat_map(|v| v.vcpu_pool_migrations.iter())
            .sum();
        let io_norm = class_mean_norm(report, xen, &classes, Some(VcpuType::IoInt));
        table.row(vec![
            n.to_string(),
            reclusterings.to_string(),
            migrations.to_string(),
            fmt_ratio(io_norm),
        ]);
    }
    table
}

/// BOOST's contribution: exclusive IO latency with and without wake-up
/// boosting. Without BOOST the wake waits a round-robin turn, so the
/// latency approaches (co-runners × quantum). "Boost off" is the
/// `io/noboost` workload token: a server that never blocks (its wakes
/// never qualify for BOOST), with identical arrivals and service.
pub fn boost(quick: bool, opts: &ExecOpts) -> Table {
    let quanta = [MS, 30 * MS, 90 * MS];
    let mut cells = Vec::new();
    for q in quanta {
        for boosted in [true, false] {
            let mut s = panel_spec(Panel::ExclusiveIo, 4);
            if !boosted {
                s.vms[0].workloads =
                    vec![WorkloadSpec::parse("io/noboost/150").expect("valid io token")];
            }
            if quick {
                s = s.quick();
            }
            cells.push(PlanCell::new(s, &format!("fixed/{}", fmt_dur(q))));
        }
    }
    let results = execute(&cells, opts).expect("boost plan is well-formed");
    let mut table = Table::new(
        "Ablation: BOOST (exclusive-IO mean latency, ms)",
        &[
            "quantum",
            "boost on",
            "boost off (never-blocked co-runner wakes)",
        ],
    );
    for (row, q) in quanta.iter().enumerate() {
        let mut out = vec![fmt_dur(*q)];
        for i in 0..2 {
            let report = results[row * 2 + i].report.as_ref().expect("cell ran");
            let WorkloadMetrics::Io { latency, .. } = &report.vms[0].metrics else {
                panic!("expected Io metrics");
            };
            out.push(format!("{:.2}", latency.mean_ns / 1e6));
        }
        table.row(out);
    }
    table
}

/// Engine fidelity: key directional metrics under different
/// co-simulation sub-steps.
pub fn substep(quick: bool, opts: &ExecOpts) -> Table {
    let substeps = [50 * US, 100 * US, 250 * US, 500 * US];
    let cells: Vec<PlanCell> = substeps
        .iter()
        .map(|&sub| {
            let mut s = scenario_spec(5).with_substep_ns(sub);
            if quick {
                s = s.quick();
            }
            PlanCell::new(s, "aql-sched")
        })
        .collect();
    let results = execute(&cells, opts).expect("substep plan is well-formed");
    let mut table = Table::new(
        "Ablation: engine sub-step (S5 under AQL, key metrics)",
        &[
            "substep",
            "IOInt latency (ms)",
            "ConSpin items",
            "utilisation",
        ],
    );
    for (sub, result) in substeps.iter().zip(&results) {
        let report = result.report.as_ref().expect("substep cell ran");
        let mut lat = 0.0;
        let mut n = 0.0;
        let mut items = 0u64;
        for vm in &report.vms {
            match &vm.metrics {
                WorkloadMetrics::Io { latency, .. } => {
                    lat += latency.mean_ns;
                    n += 1.0;
                }
                WorkloadMetrics::Spin { work_items, .. } => items += work_items,
                _ => {}
            }
        }
        table.row(vec![
            fmt_dur(*sub),
            format!("{:.2}", lat / n / 1e6),
            items.to_string(),
            format!("{:.3}", report.utilisation()),
        ]);
    }
    table
}

/// §4.3 scalability: simulation cost and policy cost as the machine
/// and population grow; the policy side must scale as O(max(m, n)).
/// Runs sequentially (it *measures* wall-clock, so it must not share
/// workers) over generated specs.
pub fn scalability() -> Table {
    use std::time::Instant;
    let mut table = Table::new(
        "Scalability: wall-clock per simulated second vs machine size",
        &[
            "sockets",
            "pcpus",
            "vcpus",
            "wall ms / sim s",
            "reclusterings",
        ],
    );
    for sockets in [1usize, 2, 4, 8] {
        let cores = 4;
        let vcpus = sockets * cores * 4;
        let mut doc = format!(
            "scenario   = scale-{sockets}\n\
             machine    = name=scale-{sockets}s sockets={sockets} cores={cores} cache=xeon-e5-4603\n\
             warmup_ms  = 200\n\
             measure_ms = 1000\n"
        );
        for i in 0..vcpus {
            match i % 4 {
                0 => doc.push_str(&format!(
                    "vm web-{i} workload=io/heterogeneous/120 seed={}\n",
                    42 + i
                )),
                1 => doc.push_str(&format!("vm llcf-{i} workload=walk/llcf cache=i7-3770\n")),
                2 => doc.push_str(&format!("vm lolcf-{i} workload=walk/lolcf cache=i7-3770\n")),
                _ => doc.push_str(&format!("vm llco-{i} workload=walk/llco cache=i7-3770\n")),
            }
        }
        let spec = ScenarioSpec::parse(&doc).expect("generated scale spec is well-formed");
        let t0 = Instant::now();
        let results = execute(
            &[PlanCell::new(spec.clone(), "aql-sched").with_probe(Probe::Reclusterings)],
            &ExecOpts::serial(),
        )
        .expect("scalability plan is well-formed");
        let wall = t0.elapsed().as_secs_f64();
        let sim_s = (spec.warmup_ns + spec.measure_ns) as f64 / 1e9;
        let Some(ProbeOut::Reclusterings(reclusterings)) = results[0].probe else {
            panic!("scalability cell must yield a recluster count");
        };
        table.row(vec![
            sockets.to_string(),
            (sockets * cores).to_string(),
            vcpus.to_string(),
            format!("{:.0}", wall / sim_s * 1e3),
            reclusterings.to_string(),
        ]);
    }
    table
}

/// Runs every ablation.
pub fn run_all(quick: bool, opts: &ExecOpts) -> Vec<Table> {
    vec![
        lock_fabric(quick, opts),
        ple_yield(quick, opts),
        vtrs_window(quick, opts),
        boost(quick, opts),
        substep(quick, opts),
        scalability(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fabric_table_shape() {
        let t = lock_fabric(true, &ExecOpts::default());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.headers.len(), 4);
    }

    #[test]
    fn scalability_reports_all_sizes() {
        let t = scalability();
        assert_eq!(t.rows.len(), 4);
        // vCPU counts grow with the machine.
        let v: Vec<usize> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
