//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's own evaluation and isolate one
//! mechanism each:
//!
//! * [`lock_fabric`] — FIFO ticket lock vs test-and-set: the
//!   lock-waiter-preemption pathology (\[39\] in the paper) that strict
//!   FIFO hand-off adds under consolidation.
//! * [`ple_yield`] — PLE directed yield on/off: how much of the spin
//!   waste a hypervisor-side yield recovers at each quantum.
//! * [`vtrs_window`] — the recognition window `n`: reactivity versus
//!   stability (the paper settles on n = 4, §3.3.1).
//! * [`boost`] — Xen's BOOST: exclusive-IO latency with wake-up
//!   boosting disabled (the paper's §3.4.2 discussion of Fig. 2(a)).
//! * [`substep`] — engine fidelity: key metrics under coarser/finer
//!   co-simulation sub-steps (a model-validity check, not a paper
//!   artifact).

use aql_baselines::xen_credit;
use aql_core::{AqlSched, AqlSchedConfig, VtrsConfig};
use aql_hv::apptype::VcpuType;
use aql_hv::policy::FixedQuantumPolicy;
use aql_hv::workload::{GuestWorkload, WorkloadMetrics};
use aql_hv::VmSpec;
use aql_mem::CacheSpec;
use aql_sim::time::{fmt_dur, MS, US};
use aql_workloads::{IoServer, IoServerCfg, SpinJob, SpinJobCfg};

use crate::emit::Table;
use crate::fig2::{panel_scenario, Panel};
use crate::fig6::scenario;
use crate::runner::{Scenario, ScenarioVm};

fn spin_scenario(fifo: bool, yield_on_ple: bool) -> Scenario {
    let mut s = panel_scenario(Panel::ConSpin, 4);
    // Replace the baseline VM with one using the requested lock fabric.
    s.vms[0] = ScenarioVm::new(VcpuType::ConSpin, move |seed| {
        let cfg = SpinJobCfg {
            fifo_lock: fifo,
            yield_on_ple,
            ..SpinJobCfg::kernbench(2)
        };
        let spec = VmSpec {
            weight: 512,
            ..VmSpec::smp("baseline", 2)
        };
        (
            spec,
            Box::new(SpinJob::new("baseline", cfg, seed)) as Box<dyn GuestWorkload>,
        )
    });
    s
}

/// FIFO ticket lock vs test-and-set under consolidation.
pub fn lock_fabric(quick: bool) -> Table {
    let mut table = Table::new(
        "Ablation: lock fabric (ConSpin items, higher is better)",
        &["quantum", "test-and-set", "fifo ticket", "fifo/tas"],
    );
    for q in [MS, 30 * MS, 90 * MS] {
        let mut items = Vec::new();
        for fifo in [false, true] {
            let mut s = spin_scenario(fifo, false);
            if quick {
                s = s.quick();
            }
            let report = s.run(Box::new(FixedQuantumPolicy::new(q)));
            let WorkloadMetrics::Spin { work_items, .. } = report.vms[0].metrics else {
                panic!("expected Spin metrics");
            };
            items.push(work_items);
        }
        table.row(vec![
            fmt_dur(q),
            items[0].to_string(),
            items[1].to_string(),
            format!("{:.2}", items[1] as f64 / items[0].max(1) as f64),
        ]);
    }
    table
}

/// PLE directed yield on/off.
pub fn ple_yield(quick: bool) -> Table {
    let mut table = Table::new(
        "Ablation: PLE directed yield (ConSpin items, higher is better)",
        &["quantum", "no yield", "directed yield", "yield/no-yield"],
    );
    for q in [MS, 30 * MS, 90 * MS] {
        let mut items = Vec::new();
        for yield_on_ple in [false, true] {
            let mut s = spin_scenario(false, yield_on_ple);
            if quick {
                s = s.quick();
            }
            let report = s.run(Box::new(FixedQuantumPolicy::new(q)));
            let WorkloadMetrics::Spin { work_items, .. } = report.vms[0].metrics else {
                panic!("expected Spin metrics");
            };
            items.push(work_items);
        }
        table.row(vec![
            fmt_dur(q),
            items[0].to_string(),
            items[1].to_string(),
            format!("{:.2}", items[1] as f64 / items[0].max(1) as f64),
        ]);
    }
    table
}

/// The vTRS window `n`: migrations and IO latency on scenario S5.
pub fn vtrs_window(quick: bool) -> Table {
    let mut table = Table::new(
        "Ablation: vTRS window n (scenario S5)",
        &["n", "reclusterings", "pool migrations", "IOInt norm vs Xen"],
    );
    let mut base = scenario(5);
    if quick {
        base = base.quick();
    }
    let xen = base.run(Box::new(xen_credit()));
    for n in [1usize, 2, 4, 8] {
        let cfg = AqlSchedConfig {
            vtrs: VtrsConfig {
                window: n,
                ..VtrsConfig::default()
            },
            ..AqlSchedConfig::default()
        };
        let sim = base.run_sim(Box::new(AqlSched::new(cfg)));
        let report = sim.report();
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched");
        let migrations: u64 = report
            .vms
            .iter()
            .flat_map(|v| v.vcpu_pool_migrations.iter())
            .sum();
        let io_norm = crate::runner::class_normalized(&base, &report, &xen, VcpuType::IoInt);
        table.row(vec![
            n.to_string(),
            policy.reclusterings().to_string(),
            migrations.to_string(),
            crate::emit::fmt_ratio(io_norm),
        ]);
    }
    table
}

/// BOOST's contribution: exclusive IO latency with and without wake-up
/// boosting. Without BOOST the wake waits a round-robin turn, so the
/// latency approaches (co-runners × quantum).
pub fn boost(quick: bool) -> Table {
    let mut table = Table::new(
        "Ablation: BOOST (exclusive-IO mean latency, ms)",
        &[
            "quantum",
            "boost on",
            "boost off (never-blocked co-runner wakes)",
        ],
    );
    // "Boost off" is emulated by a server that never blocks (its wakes
    // never qualify for BOOST), with identical arrivals and service.
    for q in [MS, 30 * MS, 90 * MS] {
        let mut row = vec![fmt_dur(q)];
        for boosted in [true, false] {
            let mut s = panel_scenario(Panel::ExclusiveIo, 4);
            if !boosted {
                s.vms[0] = ScenarioVm::new(VcpuType::IoInt, |seed| {
                    let base = IoServerCfg::exclusive(150.0);
                    let cfg = IoServerCfg {
                        background: Some(aql_mem::MemProfile {
                            wss_bytes: 16 * 1024,
                            deep_refs_per_instr: 0.001,
                            base_ns_per_instr: 0.40,
                        }),
                        ..base
                    };
                    (
                        VmSpec::single("baseline"),
                        Box::new(IoServer::new("baseline", cfg, seed)) as Box<dyn GuestWorkload>,
                    )
                });
            }
            if quick {
                s = s.quick();
            }
            let report = s.run(Box::new(FixedQuantumPolicy::new(q)));
            let WorkloadMetrics::Io { latency, .. } = &report.vms[0].metrics else {
                panic!("expected Io metrics");
            };
            row.push(format!("{:.2}", latency.mean_ns / 1e6));
        }
        table.row(row);
    }
    table
}

/// Engine fidelity: key directional metrics under different
/// co-simulation sub-steps.
pub fn substep(quick: bool) -> Table {
    let mut table = Table::new(
        "Ablation: engine sub-step (S5 under AQL, key metrics)",
        &[
            "substep",
            "IOInt latency (ms)",
            "ConSpin items",
            "utilisation",
        ],
    );
    for sub in [50 * US, 100 * US, 250 * US, 500 * US] {
        let mut s = scenario(5);
        s.substep_ns = sub;
        if quick {
            s = s.quick();
        }
        let report = s.run(Box::new(AqlSched::paper_defaults()));
        let mut lat = 0.0;
        let mut n = 0.0;
        let mut items = 0u64;
        for (i, vm) in report.vms.iter().enumerate() {
            match &vm.metrics {
                WorkloadMetrics::Io { latency, .. } => {
                    lat += latency.mean_ns;
                    n += 1.0;
                }
                WorkloadMetrics::Spin { work_items, .. } => items += work_items,
                _ => {
                    let _ = i;
                }
            }
        }
        table.row(vec![
            fmt_dur(sub),
            format!("{:.2}", lat / n / 1e6),
            items.to_string(),
            format!("{:.3}", report.utilisation()),
        ]);
    }
    table
}

/// §4.3 scalability: simulation cost and policy cost as the machine
/// and population grow; the policy side must scale as O(max(m, n)).
pub fn scalability() -> Table {
    use std::time::Instant;
    let mut table = Table::new(
        "Scalability: wall-clock per simulated second vs machine size",
        &[
            "sockets",
            "pcpus",
            "vcpus",
            "wall ms / sim s",
            "reclusterings",
        ],
    );
    for sockets in [1usize, 2, 4, 8] {
        let cores = 4;
        let machine = aql_hv::MachineSpec::custom(
            &format!("scale-{sockets}s"),
            sockets,
            cores,
            CacheSpec::xeon_e5_4603(),
        );
        let vcpus = sockets * cores * 4;
        let mut vms: Vec<ScenarioVm> = Vec::new();
        for i in 0..vcpus {
            match i % 4 {
                0 => vms.push(crate::fig6::io_vm(&format!("web-{i}"))),
                1 => vms.push(crate::fig6::walk_vm(VcpuType::Llcf, &format!("llcf-{i}"))),
                2 => vms.push(crate::fig6::walk_vm(VcpuType::Lolcf, &format!("lolcf-{i}"))),
                _ => vms.push(crate::fig6::walk_vm(VcpuType::Llco, &format!("llco-{i}"))),
            }
        }
        let mut s = Scenario::new(&format!("scale-{sockets}"), machine, vms);
        s.warmup_ns = 200 * MS;
        s.measure_ns = aql_sim::time::SEC;
        let t0 = Instant::now();
        let sim = s.run_sim(Box::new(AqlSched::paper_defaults()));
        let wall = t0.elapsed().as_secs_f64();
        let sim_s = (s.warmup_ns + s.measure_ns) as f64 / 1e9;
        let policy = sim
            .policy()
            .as_any()
            .downcast_ref::<AqlSched>()
            .expect("AqlSched");
        table.row(vec![
            sockets.to_string(),
            (sockets * cores).to_string(),
            vcpus.to_string(),
            format!("{:.0}", wall / sim_s * 1e3),
            policy.reclusterings().to_string(),
        ]);
    }
    table
}

/// Runs every ablation.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        lock_fabric(quick),
        ple_yield(quick),
        vtrs_window(quick),
        boost(quick),
        substep(quick),
        scalability(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fabric_table_shape() {
        let t = lock_fabric(true);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.headers.len(), 4);
    }

    #[test]
    fn scalability_reports_all_sizes() {
        let t = scalability();
        assert_eq!(t.rows.len(), 4);
        // vCPU counts grow with the machine.
        let v: Vec<usize> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
