//! Crash-safe sweep journal: append-only JSONL of completed cells.
//!
//! Each line records one finished cell — its identity `(scenario,
//! policy, seed)`, a config fingerprint, and the full [`RunReport`] —
//! so an interrupted sweep can resume without re-running finished
//! work ([`crate::plan::execute`] with `resume`). Two properties make
//! the resume *byte-identical* to a clean run:
//!
//! 1. **Bit-exact round-trip.** Every `f64` is stored as its IEEE-754
//!    bit pattern (a `u64`), never as decimal text: the report read
//!    back is the report written, to the last bit, so tables rendered
//!    from journaled cells cannot drift from freshly computed ones.
//! 2. **Fingerprinted identity.** A line only matches a cell if its
//!    FNV-1a fingerprint over `(scenario text, policy token, base
//!    seed, time mode, coalesce)` matches too — a journal written
//!    under different settings (or an edited scenario) is silently
//!    ignored for the changed cells rather than poisoning the run.
//!
//! Appends are line-buffered and flushed per cell; a crash mid-write
//! can only tear the *final* line, which [`load`] tolerates (the torn
//! cell simply re-runs). There is no serde in this offline
//! environment, so the module carries its own minimal JSON codec —
//! objects, arrays, strings and unsigned integers are all the format
//! needs.

use std::fs;
use std::path::Path;

use aql_hv::{LatencySummary, RunReport, VmId, VmReport, WorkloadMetrics};

/// One journaled cell.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Config fingerprint (see [`fingerprint`]).
    pub fp: u64,
    /// Scenario name.
    pub scenario: String,
    /// Policy token.
    pub policy: String,
    /// Base seed the cell ran at.
    pub seed: u64,
    /// Wall time the original run took (ns); informational.
    pub wall_ns: u64,
    /// The cell's full report.
    pub report: RunReport,
}

/// FNV-1a over everything that determines a cell's result: the
/// scenario's canonical text, the policy token, the base seed, and the
/// executor's time-mode/coalesce configuration. Two cells with equal
/// fingerprints (and equal identity keys) would produce bit-identical
/// reports, which is what licenses the resume skip.
pub fn fingerprint(
    spec_text: &str,
    policy: &str,
    base_seed: u64,
    time_mode_label: &str,
    coalesce: bool,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(spec_text.as_bytes());
    eat(&[0]);
    eat(policy.as_bytes());
    eat(&[0]);
    eat(&base_seed.to_le_bytes());
    eat(time_mode_label.as_bytes());
    eat(&[coalesce as u8]);
    h
}

// ---------------------------------------------------------------------
// Minimal JSON value + codec.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_str(s, out),
            Json::Num(n) => out.push_str(&n.to_string()),
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("journal JSON: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            _ => self.fail("expected a value"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.fail("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.fail("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.fail("bad \\u escape"),
                            }
                        }
                        _ => return self.fail("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact:
                    // consume the whole char, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| format!("journal JSON: bad number '{text}'"))
    }
}

// ---------------------------------------------------------------------
// Report <-> JSON mapping. f64 fields travel as IEEE-754 bit patterns.
// ---------------------------------------------------------------------

fn f64_bits(x: f64) -> Json {
    Json::Num(x.to_bits())
}

fn bits_f64(j: Option<&Json>, what: &str) -> Result<f64, String> {
    j.and_then(Json::num)
        .map(f64::from_bits)
        .ok_or_else(|| format!("journal: missing or malformed '{what}'"))
}

fn need_num(j: Option<&Json>, what: &str) -> Result<u64, String> {
    j.and_then(Json::num)
        .ok_or_else(|| format!("journal: missing or malformed '{what}'"))
}

fn need_str(j: Option<&Json>, what: &str) -> Result<String, String> {
    j.and_then(Json::str)
        .map(str::to_string)
        .ok_or_else(|| format!("journal: missing or malformed '{what}'"))
}

fn num_arr(j: Option<&Json>, what: &str) -> Result<Vec<u64>, String> {
    j.and_then(Json::arr)
        .and_then(|items| items.iter().map(|v| v.num()).collect::<Option<Vec<_>>>())
        .ok_or_else(|| format!("journal: missing or malformed '{what}'"))
}

fn metrics_to_json(m: &WorkloadMetrics) -> Json {
    let f = |k: &str| k.to_string();
    match m {
        WorkloadMetrics::Io {
            latency,
            completed,
            offered,
        } => Json::Obj(vec![
            (f("kind"), Json::Str("io".into())),
            (f("count"), Json::Num(latency.count)),
            (f("mean"), f64_bits(latency.mean_ns)),
            (f("p95"), f64_bits(latency.p95_ns)),
            (f("p99"), f64_bits(latency.p99_ns)),
            (f("max"), f64_bits(latency.max_ns)),
            (f("nan"), Json::Num(latency.nan_samples)),
            (f("completed"), Json::Num(*completed)),
            (f("offered"), Json::Num(*offered)),
        ]),
        WorkloadMetrics::Spin {
            work_items,
            lock_hold_mean_ns,
            lock_hold_max_ns,
            lock_wait_mean_ns,
            spin_ns,
        } => Json::Obj(vec![
            (f("kind"), Json::Str("spin".into())),
            (f("work_items"), Json::Num(*work_items)),
            (f("hold_mean"), f64_bits(*lock_hold_mean_ns)),
            (f("hold_max"), f64_bits(*lock_hold_max_ns)),
            (f("wait_mean"), f64_bits(*lock_wait_mean_ns)),
            (f("spin_ns"), Json::Num(*spin_ns)),
        ]),
        WorkloadMetrics::Mem { instructions } => Json::Obj(vec![
            (f("kind"), Json::Str("mem".into())),
            (f("instructions"), f64_bits(*instructions)),
        ]),
        WorkloadMetrics::None => Json::Obj(vec![(f("kind"), Json::Str("none".into()))]),
    }
}

fn metrics_from_json(j: &Json) -> Result<WorkloadMetrics, String> {
    let kind = need_str(j.get("kind"), "metrics.kind")?;
    match kind.as_str() {
        "io" => Ok(WorkloadMetrics::Io {
            latency: LatencySummary {
                count: need_num(j.get("count"), "io.count")?,
                mean_ns: bits_f64(j.get("mean"), "io.mean")?,
                p95_ns: bits_f64(j.get("p95"), "io.p95")?,
                p99_ns: bits_f64(j.get("p99"), "io.p99")?,
                max_ns: bits_f64(j.get("max"), "io.max")?,
                nan_samples: need_num(j.get("nan"), "io.nan")?,
            },
            completed: need_num(j.get("completed"), "io.completed")?,
            offered: need_num(j.get("offered"), "io.offered")?,
        }),
        "spin" => Ok(WorkloadMetrics::Spin {
            work_items: need_num(j.get("work_items"), "spin.work_items")?,
            lock_hold_mean_ns: bits_f64(j.get("hold_mean"), "spin.hold_mean")?,
            lock_hold_max_ns: bits_f64(j.get("hold_max"), "spin.hold_max")?,
            lock_wait_mean_ns: bits_f64(j.get("wait_mean"), "spin.wait_mean")?,
            spin_ns: need_num(j.get("spin_ns"), "spin.spin_ns")?,
        }),
        "mem" => Ok(WorkloadMetrics::Mem {
            instructions: bits_f64(j.get("instructions"), "mem.instructions")?,
        }),
        "none" => Ok(WorkloadMetrics::None),
        other => Err(format!("journal: unknown metrics kind '{other}'")),
    }
}

fn report_to_json(r: &RunReport) -> Json {
    Json::Obj(vec![
        ("sim_ns".into(), Json::Num(r.sim_ns)),
        ("policy".into(), Json::Str(r.policy.clone())),
        (
            "pcpu_busy_ns".into(),
            Json::Arr(r.pcpu_busy_ns.iter().map(|&n| Json::Num(n)).collect()),
        ),
        (
            "vms".into(),
            Json::Arr(
                r.vms
                    .iter()
                    .map(|vm| {
                        Json::Obj(vec![
                            ("vm".into(), Json::Num(vm.vm.index() as u64)),
                            ("name".into(), Json::Str(vm.name.clone())),
                            (
                                "cpu".into(),
                                Json::Arr(vm.vcpu_cpu_ns.iter().map(|&n| Json::Num(n)).collect()),
                            ),
                            (
                                "mig".into(),
                                Json::Arr(
                                    vm.vcpu_pool_migrations
                                        .iter()
                                        .map(|&n| Json::Num(n))
                                        .collect(),
                                ),
                            ),
                            ("metrics".into(), metrics_to_json(&vm.metrics)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn report_from_json(j: &Json) -> Result<RunReport, String> {
    let vms = j
        .get("vms")
        .and_then(Json::arr)
        .ok_or("journal: missing 'vms'")?
        .iter()
        .map(|vj| {
            Ok(VmReport {
                vm: VmId(need_num(vj.get("vm"), "vm.vm")? as usize),
                name: need_str(vj.get("name"), "vm.name")?,
                vcpu_cpu_ns: num_arr(vj.get("cpu"), "vm.cpu")?,
                vcpu_pool_migrations: num_arr(vj.get("mig"), "vm.mig")?,
                metrics: metrics_from_json(vj.get("metrics").ok_or("journal: missing 'metrics'")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RunReport {
        sim_ns: need_num(j.get("sim_ns"), "report.sim_ns")?,
        policy: need_str(j.get("policy"), "report.policy")?,
        vms,
        pcpu_busy_ns: num_arr(j.get("pcpu_busy_ns"), "report.pcpu_busy_ns")?,
    })
}

/// Encodes one entry as a single JSONL line (no trailing newline).
pub fn encode(e: &JournalEntry) -> String {
    let doc = Json::Obj(vec![
        ("v".into(), Json::Num(1)),
        ("fp".into(), Json::Num(e.fp)),
        ("scenario".into(), Json::Str(e.scenario.clone())),
        ("policy".into(), Json::Str(e.policy.clone())),
        ("seed".into(), Json::Num(e.seed)),
        ("wall_ns".into(), Json::Num(e.wall_ns)),
        ("report".into(), report_to_json(&e.report)),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out
}

/// Decodes one JSONL line.
pub fn decode(line: &str) -> Result<JournalEntry, String> {
    let mut p = Parser::new(line);
    let doc = p.value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err("journal: trailing garbage after JSON value".to_string());
    }
    if need_num(doc.get("v"), "v")? != 1 {
        return Err("journal: unsupported version".to_string());
    }
    Ok(JournalEntry {
        fp: need_num(doc.get("fp"), "fp")?,
        scenario: need_str(doc.get("scenario"), "scenario")?,
        policy: need_str(doc.get("policy"), "policy")?,
        seed: need_num(doc.get("seed"), "seed")?,
        wall_ns: need_num(doc.get("wall_ns"), "wall_ns")?,
        report: report_from_json(doc.get("report").ok_or("journal: missing 'report'")?)?,
    })
}

/// Loads a journal file. A missing file is an empty journal. A
/// malformed **final** line is tolerated (a crash can tear the last
/// append); a malformed line anywhere else is corruption and errors.
pub fn load(path: &Path) -> Result<Vec<JournalEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match decode(line) {
            Ok(entry) => out.push(entry),
            Err(_) if i + 1 == lines.len() => break, // torn final append
            Err(e) => {
                return Err(format!(
                    "corrupt journal {} line {}: {e}",
                    path.display(),
                    i + 1
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> JournalEntry {
        JournalEntry {
            fp: 0xdead_beef_cafe_f00d,
            scenario: "smoke \"quoted\"".to_string(),
            policy: "aql-sched".to_string(),
            seed: 7,
            wall_ns: 123_456,
            report: RunReport {
                sim_ns: 1_000_000,
                policy: "aql-sched".to_string(),
                vms: vec![
                    VmReport {
                        vm: VmId(0),
                        name: "web-0".to_string(),
                        vcpu_cpu_ns: vec![400, 600],
                        vcpu_pool_migrations: vec![1, 0],
                        metrics: WorkloadMetrics::Io {
                            latency: LatencySummary {
                                count: 42,
                                mean_ns: 0.1 + 0.2, // not exactly representable
                                p95_ns: 1e9,
                                p99_ns: f64::MAX,
                                max_ns: 5.5e9,
                                nan_samples: 0,
                            },
                            completed: 42,
                            offered: 45,
                        },
                    },
                    VmReport {
                        vm: VmId(1),
                        name: "walk".to_string(),
                        vcpu_cpu_ns: vec![999],
                        vcpu_pool_migrations: vec![0],
                        metrics: WorkloadMetrics::Mem {
                            instructions: 1.234567890123e12,
                        },
                    },
                ],
                pcpu_busy_ns: vec![1999, 0],
            },
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let e = entry();
        let line = encode(&e);
        assert!(!line.contains('\n'));
        let back = decode(&line).unwrap();
        assert_eq!(back, e);
        // f64s travel as bit patterns: compare the bits explicitly too.
        let (a, b) = (&e.report.vms[0].metrics, &back.report.vms[0].metrics);
        match (a, b) {
            (WorkloadMetrics::Io { latency: la, .. }, WorkloadMetrics::Io { latency: lb, .. }) => {
                assert_eq!(la.mean_ns.to_bits(), lb.mean_ns.to_bits());
                assert_eq!(la.p99_ns.to_bits(), lb.p99_ns.to_bits());
            }
            _ => panic!("metrics kind changed in round-trip"),
        }
    }

    #[test]
    fn nan_metrics_round_trip() {
        let mut e = entry();
        e.report.vms[1].metrics = WorkloadMetrics::Mem {
            instructions: f64::NAN,
        };
        let back = decode(&encode(&e)).unwrap();
        match back.report.vms[1].metrics {
            WorkloadMetrics::Mem { instructions } => assert!(instructions.is_nan()),
            _ => panic!("kind changed"),
        }
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let dir = std::env::temp_dir().join("aql_journal_test_torn");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("j.jsonl");
        let e = entry();
        let mut text = encode(&e);
        text.push('\n');
        text.push_str(&encode(&e)[..40]); // torn mid-append
        fs::write(&path, &text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], e);
        // Corruption before the final line is an error, not a skip.
        let mut bad = String::from("{\"v\":1,broken}\n");
        bad.push_str(&encode(&e));
        bad.push('\n');
        fs::write(&path, &bad).unwrap();
        assert!(load(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty() {
        let path = Path::new("/nonexistent/definitely/absent.jsonl");
        assert_eq!(load(path).unwrap(), Vec::new());
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = fingerprint("spec", "xen-credit", 1, "adaptive", true);
        assert_eq!(a, fingerprint("spec", "xen-credit", 1, "adaptive", true));
        assert_ne!(a, fingerprint("spec", "xen-credit", 2, "adaptive", true));
        assert_ne!(a, fingerprint("spec", "xen-credit", 1, "dense", true));
        assert_ne!(a, fingerprint("spec", "xen-credit", 1, "adaptive", false));
        assert_ne!(a, fingerprint("spec2", "xen-credit", 1, "adaptive", true));
        assert_ne!(a, fingerprint("spec", "vturbo", 1, "adaptive", true));
    }
}
