//! The parallel sweep runner.
//!
//! Fans a scenario × policy × seed matrix across OS threads and
//! aggregates every [`RunReport`] into one comparison table. This is
//! the open-ended counterpart to the fixed figure modules: any
//! catalog entry (or hand-written [`ScenarioSpec`]) joins the matrix
//! without new code.
//!
//! # Determinism
//!
//! The emitted table is **byte-identical** across repeated runs and
//! across thread counts:
//!
//! * every job's base seed is [`derive_seed`]`(scenario_name,
//!   seed_index)` — a pure function of the matrix, never of time,
//!   thread id or host;
//! * workers claim jobs from an atomic cursor but store each result
//!   at the job's *matrix index*; aggregation then reads the results
//!   in matrix order, so floating-point reduction order is fixed;
//! * the table contains no wall-clock, host or thread-count
//!   information.
//!
//! # Fault containment
//!
//! Each cell is its own failure domain (see [`crate::plan`]): a
//! panicking, livelocked or invariant-breaking cell becomes a
//! [`CellFailure`] rendered as an explicit `FAIL` in the table, and
//! every surviving row is byte-identical to a sweep that never
//! contained the broken cell. [`SweepConfig::journal`] and
//! [`SweepConfig::resume`] make an interrupted sweep restartable
//! without re-running finished cells.
//!
//! The `sweep` binary (`cargo run --release -p aql_experiments --bin
//! sweep`) is the CLI over this module.

use std::path::PathBuf;
use std::time::Duration;

use aql_hv::apptype::VcpuType;
use aql_hv::{RunReport, TimeMode};
use aql_scenarios::{catalog, classes, parse_policy, ScenarioSpec};
use aql_sim::rng::derive_seed;

use crate::emit::{fmt_ratio, Table};
use crate::plan::{class_mean_norm, execute, seed_mean, CellFailure, ExecOpts, PlanCell};

/// What to sweep and how to run it.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Policy names (see [`aql_scenarios::POLICY_NAMES`]). The first
    /// occurrence of `xen-credit` is the normalisation baseline.
    pub policies: Vec<String>,
    /// Replicates per scenario; replicate `k` runs at base seed
    /// `derive_seed(scenario_name, k)`.
    pub seeds: usize,
    /// Worker threads; `0` uses the host's available parallelism.
    /// The choice never affects the emitted table.
    pub threads: usize,
    /// Shorten warm-up/measurement (smoke tests, CI).
    pub quick: bool,
    /// Time-advance mode every cell runs under. The table is
    /// byte-identical across modes; only the recorded wall times
    /// differ. Defaults to [`TimeMode::Adaptive`].
    pub time_mode: TimeMode,
    /// Whether the adaptive mode may coalesce quiescent-span chunks
    /// (default on; see `aql_hv::engine::horizon`). The rendered table
    /// stays byte-identical either way — coalescing drift vanishes at
    /// rendering precision.
    pub coalesce: bool,
    /// Worker lanes for a coalesced span *inside* each simulation
    /// (see [`aql_hv::SimulationBuilder::span_workers`]). Orthogonal
    /// to [`threads`](Self::threads): `threads` parallelises across
    /// matrix cells, `span_workers` across sockets within one cell.
    /// Results are byte-identical for every value.
    pub span_workers: usize,
    /// Wall-clock budget per cell attempt (see
    /// [`ExecOpts::max_cell_wall`]); `None` = unlimited.
    pub max_cell_wall: Option<Duration>,
    /// Retries for environmental (wall-budget) cell failures.
    pub retries: u32,
    /// Append-only JSONL journal of completed cells (see
    /// [`crate::journal`]).
    pub journal: Option<PathBuf>,
    /// Skip cells already journaled instead of re-running them;
    /// requires `journal`.
    pub resume: bool,
    /// Re-raise the first cell failure instead of rendering `FAIL`.
    pub fail_fast: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            policies: aql_scenarios::POLICY_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            seeds: 1,
            threads: 0,
            quick: false,
            time_mode: TimeMode::default(),
            coalesce: true,
            span_workers: 1,
            max_cell_wall: None,
            retries: 0,
            journal: None,
            resume: false,
            fail_fast: false,
        }
    }
}

/// One cell of the matrix: a scenario replicate under one policy.
#[derive(Debug)]
pub struct SweepJob {
    /// Index of the scenario in the swept spec list.
    pub scenario_index: usize,
    /// Policy name.
    pub policy: String,
    /// Replicate index.
    pub seed_index: usize,
    /// Derived base seed for this replicate.
    pub base_seed: u64,
}

/// A completed job with its measured report.
#[derive(Debug)]
pub struct SweepResult {
    /// The matrix cell that produced this report.
    pub job: SweepJob,
    /// The steady-state report; `None` when the policy cannot run on
    /// the scenario's machine (e.g. vTurbo on a single-core host) —
    /// the table renders such cells as `-` — or when the cell failed
    /// (rendered `FAIL`; see `failure`).
    pub report: Option<RunReport>,
    /// The contained failure, when the cell ran but did not finish
    /// (panic, livelock, wall budget, invariant violation).
    pub failure: Option<CellFailure>,
    /// Wall-clock time this cell took to simulate, in nanoseconds
    /// (zero for inapplicable cells). Wall time never enters the
    /// aggregated table — it would break byte-stability — but perf
    /// tooling (`sweep --time-mode both`, `BENCH_sweep.json`) sums it
    /// per scenario to track the engine's speed.
    pub wall_ns: u64,
}

/// The full outcome: per-job reports (matrix order) plus the
/// aggregated comparison table.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every job's result, in matrix order (scenario-major, then
    /// seed, then policy).
    pub results: Vec<SweepResult>,
    /// The aggregated comparison table.
    pub table: Table,
}

impl SweepOutcome {
    /// Total simulation wall time across all cells, in nanoseconds.
    /// (Not elapsed time: cells running on parallel workers overlap.)
    pub fn total_wall_ns(&self) -> u64 {
        self.results.iter().map(|r| r.wall_ns).sum()
    }

    /// Per-scenario simulation wall time in matrix (scenario) order:
    /// element `i` is scenario `i`'s wall-time sum over its seeds and
    /// policies.
    pub fn wall_ns_by_scenario(&self) -> Vec<u64> {
        let n = self
            .results
            .iter()
            .map(|r| r.job.scenario_index + 1)
            .max()
            .unwrap_or(0);
        let mut acc = vec![0u64; n];
        for r in &self.results {
            acc[r.job.scenario_index] += r.wall_ns;
        }
        acc
    }

    /// Every contained cell failure, in matrix order.
    pub fn failures(&self) -> Vec<&CellFailure> {
        self.results
            .iter()
            .filter_map(|r| r.failure.as_ref())
            .collect()
    }
}

/// Expands the matrix for a spec list: scenario-major, then seed,
/// then policy — the fixed order aggregation relies on.
pub fn plan(specs: &[ScenarioSpec], cfg: &SweepConfig) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(specs.len() * cfg.seeds * cfg.policies.len());
    for (scenario_index, spec) in specs.iter().enumerate() {
        for seed_index in 0..cfg.seeds {
            let base_seed = derive_seed(&spec.name, seed_index as u64);
            for policy in &cfg.policies {
                jobs.push(SweepJob {
                    scenario_index,
                    policy: policy.clone(),
                    seed_index,
                    base_seed,
                });
            }
        }
    }
    jobs
}

/// Runs the matrix over the given specs — by expanding it into
/// [`PlanCell`]s and fanning them through the shared plan executor
/// ([`crate::plan::execute`]). Fails fast (before spawning any
/// thread) on an unknown policy token.
pub fn run_sweep_on(specs: &[ScenarioSpec], cfg: &SweepConfig) -> Result<SweepOutcome, String> {
    let specs: Vec<ScenarioSpec> = specs
        .iter()
        .cloned()
        .map(|s| if cfg.quick { s.quick() } else { s })
        .collect();
    for p in &cfg.policies {
        parse_policy(p)?;
    }
    if specs.is_empty() || cfg.seeds == 0 || cfg.policies.is_empty() {
        return Err("empty sweep matrix".to_string());
    }
    let jobs = plan(&specs, cfg);
    let cells: Vec<PlanCell> = jobs
        .iter()
        .map(|job| {
            PlanCell::new(specs[job.scenario_index].clone(), &job.policy).with_seed(job.base_seed)
        })
        .collect();
    let opts = ExecOpts {
        threads: cfg.threads,
        time_mode: cfg.time_mode,
        coalesce: cfg.coalesce,
        span_workers: cfg.span_workers,
        fail_fast: cfg.fail_fast,
        max_cell_wall: cfg.max_cell_wall,
        retries: cfg.retries,
        journal: cfg.journal.clone(),
        resume: cfg.resume,
    };
    let results: Vec<SweepResult> = jobs
        .into_iter()
        .zip(execute(&cells, &opts)?)
        .map(|(job, cell)| SweepResult {
            job,
            report: cell.report,
            failure: cell.failure,
            wall_ns: cell.wall_ns,
        })
        .collect();
    let table = aggregate(&specs, cfg, &results);
    Ok(SweepOutcome { results, table })
}

/// Resolves catalog names and runs the matrix over them.
pub fn run_sweep(names: &[String], cfg: &SweepConfig) -> Result<SweepOutcome, String> {
    let mut specs = Vec::with_capacity(names.len());
    for name in names {
        let spec = catalog::load(name).ok_or_else(|| {
            format!(
                "unknown scenario '{name}' (known: {})",
                catalog::names().join(", ")
            )
        })?;
        specs.push(spec);
    }
    run_sweep_on(&specs, cfg)
}

/// Builds the aggregated comparison table: one row per scenario ×
/// policy, normalised over that scenario's `xen-credit` replicate of
/// the same seed (the paper's normalisation), averaged across seeds.
fn aggregate(specs: &[ScenarioSpec], cfg: &SweepConfig, results: &[SweepResult]) -> Table {
    let n_pol = cfg.policies.len();
    let baseline_col = cfg.policies.iter().position(|p| p == "xen-credit");
    let mut table = Table::new(
        &format!(
            "Sweep {} scenarios x {} policies ({} seed{})",
            specs.len(),
            n_pol,
            cfg.seeds,
            if cfg.seeds == 1 { "" } else { "s" }
        ),
        &[
            "scenario", "policy", "norm", "IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO", "util",
            "jain",
        ],
    );
    // results is matrix-ordered: scenario-major, then seed, then
    // policy; index arithmetic recovers any cell.
    let cell = |s: usize, k: usize, p: usize| &results[(s * cfg.seeds + k) * n_pol + p];
    for (s, spec) in specs.iter().enumerate() {
        let vm_classes = classes(spec);
        for (p, policy) in cfg.policies.iter().enumerate() {
            let per_seed = |class: Option<VcpuType>| -> Option<f64> {
                let baseline_col = baseline_col?;
                let vals: Vec<Option<f64>> = (0..cfg.seeds)
                    .map(|k| {
                        class_mean_norm(
                            cell(s, k, p).report.as_ref()?,
                            cell(s, k, baseline_col).report.as_ref()?,
                            &vm_classes,
                            class,
                        )
                    })
                    .collect();
                seed_mean(&vals)
            };
            // A failed replicate is rendered explicitly, not folded
            // into a silent `-`: a partial table must say which cells
            // are missing because something *broke*.
            let any_failed = (0..cfg.seeds).any(|k| cell(s, k, p).failure.is_some());
            let norm = if any_failed {
                "FAIL".to_string()
            } else {
                fmt_ratio(per_seed(None))
            };
            let mut row = vec![spec.name.clone(), policy.clone(), norm];
            for class in VcpuType::ALL {
                // Only normalise classes the scenario populates.
                let present = vm_classes.contains(&class);
                row.push(if present {
                    fmt_ratio(per_seed(Some(class)))
                } else {
                    "-".to_string()
                });
            }
            let stat = |f: &dyn Fn(&RunReport) -> f64| -> Option<f64> {
                seed_mean(
                    &(0..cfg.seeds)
                        .map(|k| cell(s, k, p).report.as_ref().map(f))
                        .collect::<Vec<_>>(),
                )
            };
            let fmt3 = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.3}"));
            row.push(fmt3(stat(&RunReport::utilisation)));
            row.push(fmt3(stat(&RunReport::jain_fairness)));
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            "scenario = {name}\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             warmup_ms = 100\n\
             measure_ms = 250\n\
             vm web workload=io/heterogeneous/150\n\
             vm walk-%i count=3 workload=walk/llcf|walk/llco|walk/lolcf\n"
        ))
        .unwrap()
    }

    fn tiny_cfg(threads: usize) -> SweepConfig {
        SweepConfig {
            policies: vec!["xen-credit".into(), "aql-sched".into()],
            seeds: 2,
            threads,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn matrix_order_is_scenario_seed_policy() {
        let specs = [tiny("a"), tiny("b")];
        let jobs = plan(&specs, &tiny_cfg(1));
        assert_eq!(jobs.len(), 2 * 2 * 2);
        assert_eq!(jobs[0].scenario_index, 0);
        assert_eq!(jobs[0].policy, "xen-credit");
        assert_eq!(jobs[1].policy, "aql-sched");
        assert_eq!(jobs[2].seed_index, 1);
        assert_eq!(jobs[4].scenario_index, 1);
        // Seeds derive from the scenario name alone.
        assert_eq!(jobs[0].base_seed, derive_seed("a", 0));
        assert_eq!(jobs[4].base_seed, derive_seed("b", 0));
        assert_ne!(jobs[0].base_seed, jobs[2].base_seed);
    }

    #[test]
    fn sweep_is_byte_identical_across_thread_counts() {
        let specs = [tiny("det-a"), tiny("det-b")];
        let serial = run_sweep_on(&specs, &tiny_cfg(1)).unwrap();
        let parallel = run_sweep_on(&specs, &tiny_cfg(4)).unwrap();
        let auto = run_sweep_on(&specs, &tiny_cfg(0)).unwrap();
        assert_eq!(serial.table.render(), parallel.table.render());
        assert_eq!(serial.table.render(), auto.table.render());
        // And across repeated runs at the same thread count.
        let again = run_sweep_on(&specs, &tiny_cfg(4)).unwrap();
        assert_eq!(parallel.table.render(), again.table.render());
    }

    #[test]
    fn baseline_normalisation_is_exactly_one() {
        let specs = [tiny("norm")];
        let out = run_sweep_on(&specs, &tiny_cfg(2)).unwrap();
        let xen_row = &out.table.rows[0];
        assert_eq!(xen_row[1], "xen-credit");
        assert_eq!(xen_row[2], "1.00", "self-normalisation");
        // Classes absent from the scenario stay unpopulated.
        assert_eq!(xen_row[4], "-", "no ConSpin VM in the tiny scenario");
    }

    #[test]
    fn unknown_names_fail_fast() {
        assert!(run_sweep(&["doom".to_string()], &SweepConfig::default()).is_err());
        let bad = SweepConfig {
            policies: vec!["cfs".into()],
            ..SweepConfig::default()
        };
        assert!(run_sweep_on(&[tiny("x")], &bad).is_err());
        let empty = SweepConfig {
            seeds: 0,
            ..SweepConfig::default()
        };
        assert!(run_sweep_on(&[tiny("x")], &empty).is_err());
    }

    #[test]
    fn failed_cells_render_fail_and_spare_siblings() {
        let faulty = ScenarioSpec::parse(
            "scenario = boom\n\
             machine = sockets=1 cores=2 cache=i7-3770\n\
             warmup_ms = 100\n\
             measure_ms = 250\n\
             vm web workload=io/heterogeneous/150 fault=panic@30ms\n\
             vm walk workload=walk/llcf\n",
        )
        .unwrap();
        let specs = [tiny("ok"), faulty];
        let out = run_sweep_on(&specs, &tiny_cfg(2)).unwrap();
        assert!(!out.failures().is_empty());
        assert!(
            out.table.render().contains("FAIL"),
            "{}",
            out.table.render()
        );
        // Rows of the healthy scenario are byte-identical to a sweep
        // that never contained the broken one.
        let clean = run_sweep_on(&[tiny("ok")], &tiny_cfg(1)).unwrap();
        let ok_rows: Vec<_> = out.table.rows.iter().filter(|r| r[0] == "ok").collect();
        assert_eq!(ok_rows.len(), clean.table.rows.len());
        for (a, b) in ok_rows.iter().zip(&clean.table.rows) {
            assert_eq!(**a, *b);
        }
    }

    #[test]
    fn quick_mode_shortens_runs() {
        let specs = [tiny("q")];
        let cfg = SweepConfig {
            policies: vec!["xen-credit".into()],
            seeds: 1,
            threads: 1,
            quick: true,
            ..SweepConfig::default()
        };
        let out = run_sweep_on(&specs, &cfg).unwrap();
        // quick() pins the window to 300 ms warm-up + 1 s measured;
        // the report must reflect the overridden window.
        let report = out.results[0].report.as_ref().unwrap();
        assert_eq!(report.sim_ns, 1000 * aql_sim::time::MS);
    }
}
