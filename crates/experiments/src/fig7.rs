//! Fig. 7 — the benefit of quantum-length customisation.
//!
//! The Fig. 3 experiment is replayed with the quantum-customisation
//! step discarded: clustering still runs, but every pool is configured
//! with a uniform small (1 ms), medium (30 ms) or large (90 ms)
//! quantum. Values are normalised over the full AQL_Sched run (both
//! steps active); a value above 1.0 means customisation helped.

use aql_core::{AqlSched, AqlSchedConfig};
use aql_sim::time::MS;

use crate::emit::{fmt_ratio, Table};
use crate::fig6::{classes_of, fig3_scenario, usable_sockets};
use crate::runner::class_normalized;

/// The three uniform quanta of the ablation.
pub const UNIFORM: [(u64, &str); 3] = [(MS, "small"), (30 * MS, "medium"), (90 * MS, "large")];

fn aql_variant(uniform_quantum: Option<u64>) -> AqlSched {
    AqlSched::new(AqlSchedConfig {
        usable_sockets: Some(usable_sockets()),
        uniform_quantum,
        ..AqlSchedConfig::default()
    })
}

/// Runs the ablation: per type, cost under clustering-only (uniform
/// quantum) normalised over cost under full AQL_Sched.
pub fn run(quick: bool) -> Table {
    let mut s = fig3_scenario();
    if quick {
        s = s.quick();
    }
    let full = s.run(Box::new(aql_variant(None)));
    let mut table = Table::new(
        "Fig7 quantum customisation benefit (cost vs full AQL; >1 = customisation helped)",
        &["type", "small (1ms)", "medium (30ms)", "large (90ms)"],
    );
    let mut per_quantum = Vec::new();
    for (q, _) in UNIFORM {
        per_quantum.push(s.run(Box::new(aql_variant(Some(q)))));
    }
    for class in classes_of(&s) {
        let mut row = vec![class.to_string()];
        for report in &per_quantum {
            row.push(fmt_ratio(class_normalized(&s, report, &full, class)));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_set_matches_paper() {
        assert_eq!(UNIFORM[0].0, MS);
        assert_eq!(UNIFORM[1].0, 30 * MS);
        assert_eq!(UNIFORM[2].0, 90 * MS);
    }

    #[test]
    fn variants_differ_only_in_quantum_config() {
        let a = aql_variant(None);
        let b = aql_variant(Some(MS));
        assert_eq!(
            aql_hv::policy::SchedPolicy::name(&a),
            aql_hv::policy::SchedPolicy::name(&b)
        );
    }
}
