//! Fig. 7 — the benefit of quantum-length customisation.
//!
//! The Fig. 3 experiment is replayed with the quantum-customisation
//! step discarded: clustering still runs, but every pool is configured
//! with a uniform small (1 ms), medium (30 ms) or large (90 ms)
//! quantum — the `aql-sched/…,uniform=<dur>` policy token. Values are
//! normalised over the full AQL_Sched run (both steps active); a value
//! above 1.0 means customisation helped.

use aql_sim::time::{fmt_dur, MS};

use crate::emit::{fmt_ratio, Table};
use crate::fig6::{fig3_spec, GUEST_SOCKETS};
use crate::plan::{class_mean_norm, classes_present, execute, ExecOpts, PlanCell};

/// The three uniform quanta of the ablation.
pub const UNIFORM: [(u64, &str); 3] = [(MS, "small"), (30 * MS, "medium"), (90 * MS, "large")];

/// Runs the ablation: per type, cost under clustering-only (uniform
/// quantum) normalised over cost under full AQL_Sched.
pub fn run(quick: bool, opts: &ExecOpts) -> Table {
    let mut s = fig3_spec();
    if quick {
        s = s.quick();
    }
    let mut cells = vec![PlanCell::new(
        s.clone(),
        &format!("aql-sched/sockets={GUEST_SOCKETS}"),
    )];
    for (q, _) in UNIFORM {
        cells.push(PlanCell::new(
            s.clone(),
            &format!("aql-sched/sockets={GUEST_SOCKETS},uniform={}", fmt_dur(q)),
        ));
    }
    let results = execute(&cells, opts).expect("fig7 plan is well-formed");
    let full = results[0].report.as_ref().expect("full-AQL cell ran");
    let classes = aql_scenarios::classes(&s);
    let mut table = Table::new(
        "Fig7 quantum customisation benefit (cost vs full AQL; >1 = customisation helped)",
        &["type", "small (1ms)", "medium (30ms)", "large (90ms)"],
    );
    for class in classes_present(&s) {
        let mut row = vec![class.to_string()];
        for result in &results[1..] {
            let report = result.report.as_ref().expect("uniform cell ran");
            row.push(fmt_ratio(class_mean_norm(
                report,
                full,
                &classes,
                Some(class),
            )));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_set_matches_paper() {
        assert_eq!(UNIFORM[0].0, MS);
        assert_eq!(UNIFORM[1].0, 30 * MS);
        assert_eq!(UNIFORM[2].0, 90 * MS);
    }

    #[test]
    fn uniform_tokens_parse() {
        for (q, _) in UNIFORM {
            let token = format!("aql-sched/sockets={GUEST_SOCKETS},uniform={}", fmt_dur(q));
            assert!(aql_scenarios::parse_policy(&token).is_ok(), "{token}");
        }
    }
}
