//! Steady-state rate detection and caching.
//!
//! `exec_step` integrates the execution-speed law in sub-steps because
//! the LLC footprint and L2 warmth *move* while a workload runs. Once
//! both have converged — occupancy covers the working set (or the
//! profile generates no deep traffic) and the private L2 is saturated
//! — the law degenerates to a straight line: a constant ns/instr and
//! no measurable cache traffic. At that **fixpoint** a whole span of
//! any length is answered in O(1).
//!
//! The fixpoint is *snapped*, not exact: the fill asymptotes never
//! terminate in f64 (occupancy approaches the working-set size
//! geometrically, so the miss rate decays toward zero but freezes at a
//! sub-ulp remnant — the integrator would keep inserting immeasurable
//! slivers forever; L2 warmth freezes just below saturation the same
//! way when the working set fits the L2). [`steady_rate`] therefore
//! declares the fixpoint once the miss rate falls below
//! [`NEGLIGIBLE_MISS_RATE`] — the same threshold below which the
//! integrator itself stops sizing chunks by miss traffic — and the
//! fast path then *omits* that sub-epsilon traffic: occupancies stop
//! creeping and the snapped state is a true fixpoint of the fast path.
//! The divergence from the dense oracle is bounded by the threshold
//! (≲1e-13 relative on rates, absolute bytes per span on occupancy) —
//! orders of magnitude inside the 1e-6 tolerance the conformance
//! oracle grants (`cached_matches_dense_at_fixpoint` pins the bound).
//!
//! [`RateCache`] memoizes the answer per owner. Because the rate is a
//! *pure function* of the profile, the owner's own occupancy and its
//! L2 warmth, the entry is keyed on those exact input bits — a finer
//! (and cheaper) validity condition than the LLC-wide mutation epoch
//! ([`LlcState::epoch`]): an unrelated owner's insertion that leaves
//! this owner's occupancy bits intact keeps the entry valid, while
//! anything that moves the rate necessarily moves a key bit.
//! Scheduling events therefore invalidate entries for free: contention
//! erodes the occupancy bits, a migration (or a same-pCPU context
//! switch) resets the warmth bits, and a phase shift changes the
//! profile bits. A stale hit is impossible by construction.

use crate::exec::{ExecOutcome, MAX_SUBSTEPS};
use crate::llc::LlcState;
use crate::profile::MemProfile;
use crate::spec::CacheSpec;

use crate::exec::MAX_FILL_FRACTION;

/// The linear execution rate at a zero-traffic fixpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyRate {
    /// Nanoseconds per retired instruction.
    pub ns_per_instr: f64,
    /// LLC references per instruction (all of them hits).
    pub llc_ref_per_instr: f64,
}

/// Miss traffic below this rate (misses per instruction) is *snapped*
/// to zero by the steady-state fast path. It matches the integrator's
/// own chunk-sizing guard: below it `exec_step` no longer lets miss
/// traffic bound a sub-step, so the fast path merely completes the
/// approximation the integrator already makes.
pub const NEGLIGIBLE_MISS_RATE: f64 = 1e-12;

/// Returns the linear rate if `(profile, llc occupancy, l2_warmth)` is
/// at the (snapped) zero-traffic fixpoint, i.e. an `exec_step` from
/// this state
///
/// * generates negligible LLC miss traffic (at most
///   [`NEGLIGIBLE_MISS_RATE`] misses per instruction: the resident
///   footprint covers the working set up to the f64 fill asymptote, or
///   the profile produces no LLC references at all), and
/// * cannot change the L2 warmth (warmth is saturated at `1.0`, where
///   the fill update is the identity, or the fill rate is negligible
///   and skipped).
///
/// Under those conditions the only state effect of an `exec_step` is a
/// freshness touch plus sub-epsilon footprint creep; the fast path
/// performs the touch, omits the creep, and the rate stays valid for
/// as long as the occupancy and warmth bits stand still.
pub fn steady_rate(
    profile: &MemProfile,
    spec: &CacheSpec,
    llc: &LlcState,
    owner: usize,
    l2_warmth: f64,
) -> Option<SteadyRate> {
    let wss = profile.wss_bytes as f64;
    // Exactly the expressions of `exec_step`, so a cached rate carries
    // the same bits the integrator would derive.
    let h2_cap = profile.l2_hit_warm(spec);
    let h2 = h2_cap * l2_warmth.clamp(0.0, 1.0);
    let deep = profile.deep_refs_per_instr;
    let resident = llc.occupancy(owner);
    let h3 = if wss <= 0.0 {
        1.0
    } else {
        (resident / wss).clamp(0.0, 1.0)
    };
    let llc_ref_per_instr = deep * (1.0 - h2);
    let llc_miss_per_instr = llc_ref_per_instr * (1.0 - h3);
    let l2_fill_per_instr = deep * (1.0 - h2);
    let warmth_inert = l2_warmth >= 1.0 || l2_fill_per_instr <= 1e-12;
    if llc_miss_per_instr > NEGLIGIBLE_MISS_RATE || !warmth_inert {
        return None;
    }
    let ns_per_instr = profile.base_ns_per_instr
        + deep
            * (h2 * spec.l2_hit_ns
                + (1.0 - h2) * (h3 * spec.llc_hit_ns + (1.0 - h3) * spec.mem_ns));
    Some(SteadyRate {
        ns_per_instr,
        llc_ref_per_instr,
    })
}

/// The exact state bits a steady rate was derived from.
type RateKey = (u64, u64, u64, u64, u64);

fn rate_key(profile: &MemProfile, l2_warmth: f64, resident: f64) -> RateKey {
    (
        profile.wss_bytes,
        profile.deep_refs_per_instr.to_bits(),
        profile.base_ns_per_instr.to_bits(),
        l2_warmth.to_bits(),
        resident.to_bits(),
    )
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: RateKey,
    rate: SteadyRate,
}

/// Per-owner memo of positive [`steady_rate`] answers, keyed on the
/// exact input bits (profile, warmth, own occupancy). Each owner holds
/// **two** ways so the workloads that alternate between two profiles
/// (an [`IoServer`]-style service/background pair probes and executes
/// both within one span) do not evict their own entry on every lookup.
///
/// The cache never invalidates eagerly — validity is re-derived from
/// the key on every lookup, so any event that can move a rate
/// (contention eroding the occupancy, a migration's warmth reset, a
/// phase shift's new profile) simply stops the key from matching and
/// forces a recomputation. [`RateCache::stats`] exposes hit/recompute
/// counters so tests can assert exactly that.
///
/// [`IoServer`]: ../../aql_workloads/struct.IoServer.html
#[derive(Debug, Default)]
pub struct RateCache {
    entries: Vec<[Option<Entry>; 2]>,
    /// Fingerprint of the [`CacheSpec`] the entries were derived from.
    /// Rates also depend on the spec; a simulation has exactly one, so
    /// instead of widening every key the cache records the spec it
    /// serves and flushes wholesale if a caller switches (making a
    /// stale cross-spec hit impossible for any API user).
    spec_print: u64,
    hits: u64,
    recomputes: u64,
}

fn spec_print(spec: &CacheSpec) -> u64 {
    // FNV-1a over every field the rate law reads.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bits in [
        spec.l2_bytes,
        spec.llc_bytes,
        spec.line_bytes,
        spec.l2_hit_ns.to_bits(),
        spec.llc_hit_ns.to_bits(),
        spec.mem_ns.to_bits(),
    ] {
        h = (h ^ bits).wrapping_mul(0x0000_0100_0000_01b3);
    }
    // 0 marks "no spec recorded yet".
    h.max(1)
}

impl RateCache {
    /// An empty cache for `owners` owners (grows on demand).
    pub fn new(owners: usize) -> Self {
        RateCache {
            entries: vec![[None, None]; owners],
            spec_print: 0,
            hits: 0,
            recomputes: 0,
        }
    }

    /// `(hits, recomputes)` since construction. A recompute is any
    /// lookup whose key did not match — the cache-invalidation events
    /// (contention, migration, phase shift) show up here.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.recomputes)
    }

    fn ways(&mut self, owner: usize, spec: &CacheSpec) -> &mut [Option<Entry>; 2] {
        let print = spec_print(spec);
        if self.spec_print != print {
            // A different cache geometry: every cached rate is void.
            self.entries.clear();
            self.spec_print = print;
        }
        if owner >= self.entries.len() {
            self.entries.resize(owner + 1, [None, None]);
        }
        &mut self.entries[owner]
    }

    /// Looks `key` up in the owner's ways, promoting a hit to way 0.
    fn probe(&mut self, owner: usize, spec: &CacheSpec, key: RateKey) -> Option<SteadyRate> {
        let ways = self.ways(owner, spec);
        for w in 0..2 {
            if let Some(e) = ways[w] {
                if e.key == key {
                    if w == 1 {
                        ways.swap(0, 1);
                    }
                    self.hits += 1;
                    return Some(e.rate);
                }
            }
        }
        self.recomputes += 1;
        None
    }

    /// Stores a freshly computed rate, displacing the colder way.
    fn store(&mut self, owner: usize, spec: &CacheSpec, key: RateKey, rate: SteadyRate) {
        let ways = self.ways(owner, spec);
        ways[1] = ways[0];
        ways[0] = Some(Entry { key, rate });
    }

    /// The owner's steady rate at the current state, or `None` if the
    /// owner is not at the (snapped) fixpoint; positive answers are
    /// memoized.
    pub fn linear_rate(
        &mut self,
        profile: &MemProfile,
        spec: &CacheSpec,
        llc: &LlcState,
        owner: usize,
        l2_warmth: f64,
    ) -> Option<SteadyRate> {
        let key = rate_key(profile, l2_warmth, llc.occupancy(owner));
        if let Some(rate) = self.probe(owner, spec, key) {
            return Some(rate);
        }
        let rate = steady_rate(profile, spec, llc, owner, l2_warmth)?;
        self.store(owner, spec, key, rate);
        Some(rate)
    }
}

/// [`crate::exec_step_lean`] with a steady-rate fast path.
///
/// A memo hit answers the whole budget in O(1): one chunk at the
/// cached fixpoint rate, the same freshness touch the integrator would
/// make, no insertion (sub-epsilon miss traffic is reported and
/// inserted as exactly zero) and no warmth write (saturated warmth is
/// a fixed point of the fill update). On a miss the integration runs
/// with the lean loop's exact operation order, detecting the fixpoint
/// from the rates it computes anyway — so non-steady execution pays
/// only the memo probe, and the first steady sub-step snaps the rest
/// of the budget and fills the memo for the next call.
pub fn exec_step_cached(
    profile: &MemProfile,
    spec: &CacheSpec,
    llc: &mut LlcState,
    owner: usize,
    l2_warmth: &mut f64,
    dt_ns: u64,
    cache: &mut RateCache,
) -> ExecOutcome {
    let mut out = ExecOutcome::default();
    if dt_ns == 0 {
        return out;
    }
    let wss = profile.wss_bytes as f64;
    let line = spec.line_bytes as f64;
    // Memo probe: pure-function key, so a hit cannot be stale.
    {
        let key = rate_key(profile, *l2_warmth, llc.occupancy(owner));
        if let Some(rate) = cache.probe(owner, spec, key) {
            let instr = dt_ns as f64 / rate.ns_per_instr;
            let refs = instr * rate.llc_ref_per_instr;
            if refs > 0.0 && wss > 0.0 {
                llc.touch_frac(owner, refs * line / wss);
            }
            out.instructions = instr;
            out.llc_refs = refs;
            return out;
        }
    }
    // The lean integration loop (identical operation order to
    // `exec_step_lean`), plus the fixpoint snap: the moment a sub-step
    // derives negligible traffic, the remainder of the budget is
    // answered linearly and the rate is memoized.
    let h2_cap = profile.l2_hit_warm(spec);
    let deep = profile.deep_refs_per_instr;
    let l2_target = (wss.min(spec.l2_bytes as f64)).max(1.0);
    let mut remaining = dt_ns as f64;
    let mut guard: u32 = 0;
    while remaining > 0.0 {
        guard += 1;
        let h2 = h2_cap * l2_warmth.clamp(0.0, 1.0);
        let resident = llc.occupancy(owner);
        let h3 = if wss <= 0.0 {
            1.0
        } else {
            (resident / wss).clamp(0.0, 1.0)
        };
        let llc_ref_per_instr = deep * (1.0 - h2);
        let llc_miss_per_instr = llc_ref_per_instr * (1.0 - h3);
        let ns_per_instr = profile.base_ns_per_instr
            + deep
                * (h2 * spec.l2_hit_ns
                    + (1.0 - h2) * (h3 * spec.llc_hit_ns + (1.0 - h3) * spec.mem_ns));
        let l2_fill_per_instr = deep * (1.0 - h2);

        if llc_miss_per_instr <= NEGLIGIBLE_MISS_RATE
            && (*l2_warmth >= 1.0 || l2_fill_per_instr <= 1e-12)
        {
            // Fixpoint reached: snap the rest of the budget.
            let rate = SteadyRate {
                ns_per_instr,
                llc_ref_per_instr,
            };
            cache.store(owner, spec, rate_key(profile, *l2_warmth, resident), rate);
            let instr = remaining / ns_per_instr;
            let refs = instr * llc_ref_per_instr;
            out.instructions += instr;
            out.llc_refs += refs;
            if refs > 0.0 && wss > 0.0 {
                llc.touch_frac(owner, refs * line / wss);
            }
            return out;
        }

        let mut chunk = remaining;
        if guard < MAX_SUBSTEPS {
            if llc_miss_per_instr > 1e-12 && wss > 0.0 {
                let instr_cap = (wss * MAX_FILL_FRACTION / line) / llc_miss_per_instr;
                chunk = chunk.min(instr_cap * ns_per_instr);
            }
            if l2_fill_per_instr > 1e-12 && *l2_warmth < 1.0 {
                let instr_cap = (l2_target * MAX_FILL_FRACTION / line) / l2_fill_per_instr;
                chunk = chunk.min(instr_cap * ns_per_instr);
            }
        }
        chunk = chunk.max(remaining.min(1.0)).min(remaining);

        let instr = chunk / ns_per_instr;
        let refs = instr * llc_ref_per_instr;
        let misses = instr * llc_miss_per_instr;
        out.instructions += instr;
        out.llc_refs += refs;
        out.llc_misses += misses;

        if refs > 0.0 && wss > 0.0 {
            llc.touch_frac(owner, refs * line / wss);
        }
        if misses > 0.0 {
            llc.insert_lean(owner, misses * line, wss);
        }
        if l2_fill_per_instr > 1e-12 {
            let fill = instr * l2_fill_per_instr * line;
            *l2_warmth = (*l2_warmth + fill / l2_target).min(1.0);
        }
        remaining -= chunk;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{exec_step, exec_step_lean};
    use aql_sim::time::MS;

    fn spec() -> CacheSpec {
        CacheSpec::i7_3770()
    }

    /// Drives an owner to the fixpoint: fill the footprint and warm L2.
    fn warm_up(p: &MemProfile, spec: &CacheSpec, llc: &mut LlcState, owner: usize) -> f64 {
        let mut w = 0.0;
        for _ in 0..200 {
            let _ = exec_step(p, spec, llc, owner, &mut w, MS);
        }
        w
    }

    #[test]
    fn llcf_reaches_the_fixpoint_and_llco_does_not() {
        let spec = spec();
        let mut llc = LlcState::new(spec.llc_bytes as f64, 2);
        let p = MemProfile::llcf(&spec);
        assert!(
            steady_rate(&p, &spec, &llc, 0, 0.0).is_none(),
            "cold LLCF must not be linear"
        );
        let w = warm_up(&p, &spec, &mut llc, 0);
        let r = steady_rate(&p, &spec, &llc, 0, w).expect("warm solo LLCF is linear");
        assert!(r.ns_per_instr > 0.0 && r.llc_ref_per_instr > 0.0);
        // A trasher's working set cannot fit: never at the fixpoint.
        let t = MemProfile::llco(&spec);
        let wt = warm_up(&t, &spec, &mut llc, 1);
        assert!(steady_rate(&t, &spec, &llc, 1, wt).is_none());
    }

    #[test]
    fn lolcf_snaps_despite_the_warmth_asymptote() {
        // A working set that fits the L2 has h2_cap == 1, so warmth
        // converges to 1 asymptotically and can freeze *below* it —
        // the snap must still declare the fixpoint once the residual
        // fill rate is negligible.
        let spec = spec();
        let p = MemProfile::lolcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let w = warm_up(&p, &spec, &mut llc, 0);
        assert!(
            steady_rate(&p, &spec, &llc, 0, w).is_some(),
            "warm LoLCF must be linear (warmth settled at {w})"
        );
    }

    #[test]
    fn cached_matches_dense_at_fixpoint() {
        // Wherever the rate cache answers, the answer must agree with
        // the integrator far inside the 1e-6 conformance tolerance:
        // the only divergence allowed is the snapped sub-epsilon miss
        // traffic (see NEGLIGIBLE_MISS_RATE).
        let close = |a: f64, b: f64, what: &str| {
            let denom = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
            assert!(
                (a - b).abs() / denom <= 1e-9,
                "{what} drifted past 1e-9: {a} vs {b}"
            );
        };
        let spec = spec();
        let profiles = [
            MemProfile::llcf(&spec),
            MemProfile::lolcf(&spec),
            MemProfile::light(),
        ];
        for p in &profiles {
            let mut llc_a = LlcState::new(spec.llc_bytes as f64, 1);
            let mut llc_b;
            let mut wa = warm_up(p, &spec, &mut llc_a, 0);
            llc_b = llc_a.clone();
            let mut wb = wa;
            let mut cache = RateCache::new(1);
            let mut rng = aql_sim::rng::SimRng::seed_from(11);
            let (mut ia, mut ib) = (0.0f64, 0.0f64);
            for _ in 0..200 {
                let dt = rng.uniform_u64(1, 20 * MS);
                let a = exec_step(p, &spec, &mut llc_a, 0, &mut wa, dt);
                let b = exec_step_cached(p, &spec, &mut llc_b, 0, &mut wb, dt, &mut cache);
                ia += a.instructions;
                ib += b.instructions;
                close(a.instructions, b.instructions, "chunk instructions");
                close(a.llc_refs, b.llc_refs, "chunk refs");
                assert!(b.llc_misses == 0.0 || b.llc_misses.to_bits() == a.llc_misses.to_bits());
                close(wa, wb, "warmth");
                close(llc_a.occupancy(0), llc_b.occupancy(0), "occupancy");
                close(llc_a.freshness(0), llc_b.freshness(0), "freshness");
            }
            close(ia, ib, "cumulative instructions");
            let (hits, recomputes) = cache.stats();
            assert!(
                hits > 150,
                "fixpoint lookups should hit ({}): {hits} hits / {recomputes} recomputes",
                p.wss_bytes
            );
        }
    }

    #[test]
    fn cached_is_bitwise_lean_when_not_at_fixpoint() {
        // The cached integrator's loop must stay operation-for-
        // operation identical to exec_step_lean off the fixpoint:
        // exercise both non-linear regimes — a trasher (miss caps,
        // eviction) and a cold LLCF fill (both fill caps, L2 warm-up).
        let spec = spec();
        for p in [MemProfile::llco(&spec), MemProfile::llcf(&spec)] {
            let mut llc_a = LlcState::new(spec.llc_bytes as f64, 1);
            let mut llc_b = LlcState::new(spec.llc_bytes as f64, 1);
            let mut wa = 0.0;
            let mut wb = 0.0;
            let mut cache = RateCache::new(1);
            let trasher = p.wss_bytes > spec.llc_bytes;
            for step in 0..200 {
                if !trasher && steady_rate(&p, &spec, &llc_a, 0, wa).is_some() {
                    break; // the LLCF fill reached the fixpoint
                }
                let a = exec_step_lean(&p, &spec, &mut llc_a, 0, &mut wa, MS);
                let b = exec_step_cached(&p, &spec, &mut llc_b, 0, &mut wb, MS, &mut cache);
                assert_eq!(
                    a.instructions.to_bits(),
                    b.instructions.to_bits(),
                    "step {step}"
                );
                assert_eq!(a.llc_misses.to_bits(), b.llc_misses.to_bits());
                assert_eq!(wa.to_bits(), wb.to_bits());
                assert_eq!(llc_a.occupancy(0).to_bits(), llc_b.occupancy(0).to_bits());
                assert_eq!(llc_a.freshness(0).to_bits(), llc_b.freshness(0).to_bits());
            }
            if trasher {
                let (hits, _) = cache.stats();
                assert_eq!(hits, 0, "a trasher must never hit the rate memo");
            }
        }
    }

    #[test]
    fn switching_cache_spec_flushes_the_memo() {
        // Rates depend on the CacheSpec; the cache records the spec it
        // serves and a different one must void every entry rather than
        // deliver a cross-spec rate.
        let a = CacheSpec::i7_3770();
        let b = CacheSpec::xeon_e5_4603();
        let p = MemProfile::lolcf(&a);
        let mut llc = LlcState::new(a.llc_bytes as f64, 1);
        let w = warm_up(&p, &a, &mut llc, 0);
        let mut cache = RateCache::new(1);
        let ra = cache.linear_rate(&p, &a, &llc, 0, w).expect("linear on a");
        assert!(cache.linear_rate(&p, &a, &llc, 0, w).is_some());
        let (_, rec) = cache.stats();
        let rb = cache.linear_rate(&p, &b, &llc, 0, w);
        assert_eq!(cache.stats().1, rec + 1, "spec switch must recompute");
        // The recomputed answer must be b's own steady_rate, never a's
        // cached one (for this profile the two can legitimately agree).
        assert_eq!(rb, steady_rate(&p, &b, &llc, 0, w));
        let _ = ra;
    }

    #[test]
    fn contention_invalidates_cached_rates() {
        let spec = spec();
        let p = MemProfile::llcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 2);
        let mut w = warm_up(&p, &spec, &mut llc, 0);
        let mut cache = RateCache::new(2);
        assert!(cache.linear_rate(&p, &spec, &llc, 0, w).is_some());
        let (_, rec0) = cache.stats();
        // Cache hit while nothing moves.
        assert!(cache.linear_rate(&p, &spec, &llc, 0, w).is_some());
        assert_eq!(cache.stats().1, rec0, "stable state must hit the cache");
        // A contender's insertion erodes the owner's occupancy: the
        // next lookup must recompute (and stop being linear).
        llc.insert_lean(1, spec.llc_bytes as f64, 1e18);
        let relinear = cache.linear_rate(&p, &spec, &llc, 0, w);
        assert_eq!(cache.stats().1, rec0 + 1, "occupancy change must recompute");
        assert!(
            relinear.is_none(),
            "eroded footprint can no longer be linear"
        );
        // A warmth reset (cross-socket migration, or a same-pCPU
        // context switch cooling the private cache) also recomputes.
        let rec1 = cache.stats().1;
        w = 0.0;
        let _ = cache.linear_rate(&p, &spec, &llc, 0, w);
        assert_eq!(cache.stats().1, rec1 + 1, "warmth reset must recompute");
    }

    #[test]
    fn phase_shift_invalidates_cached_rates() {
        let spec = spec();
        let a = MemProfile::lolcf(&spec);
        let b = MemProfile::llcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let w = warm_up(&a, &spec, &mut llc, 0);
        let mut cache = RateCache::new(1);
        assert!(cache.linear_rate(&a, &spec, &llc, 0, w).is_some());
        let rec = cache.stats().1;
        // Same owner, new profile: the profile bits differ, so the
        // cache must recompute rather than serve the LoLCF rate.
        let shifted = cache.linear_rate(&b, &spec, &llc, 0, w);
        assert_eq!(cache.stats().1, rec + 1, "phase shift must recompute");
        assert!(
            shifted.is_none(),
            "the LLCF phase starts with an unfilled footprint"
        );
    }
}
