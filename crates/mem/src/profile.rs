//! Per-phase memory behaviour.

use crate::spec::CacheSpec;

/// The memory behaviour of one workload phase.
///
/// A phase is characterised by its working-set size (WSS), how often an
/// instruction references memory beyond the private L1 ("deep"
/// references), and the base cost of an instruction when every access
/// hits close to the core. These three numbers plus the live LLC/L2
/// state fully determine execution speed (see [`crate::exec`]).
///
/// The paper's §3.2 taxonomy maps onto WSS directly: `LoLCF` fits in
/// L2, `LLCF` fits in the LLC, `LLCO` overflows it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Working-set size in bytes (uniform re-reference over this set).
    pub wss_bytes: u64,
    /// References per instruction that miss the private L1.
    pub deep_refs_per_instr: f64,
    /// Nanoseconds per instruction when all accesses hit L1/L2.
    pub base_ns_per_instr: f64,
}

impl MemProfile {
    /// A compute-only phase: negligible working set, no deep traffic.
    /// Used for IO service bursts and spin-lock guest code.
    pub fn light() -> Self {
        MemProfile {
            wss_bytes: 16 * 1024,
            deep_refs_per_instr: 0.001,
            base_ns_per_instr: 0.40,
        }
    }

    /// An LLC-friendly phase (paper: WSS = half the LLC).
    pub fn llcf(spec: &CacheSpec) -> Self {
        MemProfile {
            wss_bytes: spec.llc_bytes / 2,
            deep_refs_per_instr: 0.08,
            base_ns_per_instr: 0.40,
        }
    }

    /// A low-level-cache-friendly phase (paper: WSS = 90% of L2).
    pub fn lolcf(spec: &CacheSpec) -> Self {
        MemProfile {
            wss_bytes: spec.l2_bytes * 9 / 10,
            deep_refs_per_instr: 0.08,
            base_ns_per_instr: 0.40,
        }
    }

    /// A trashing phase (paper: WSS larger than the LLC).
    pub fn llco(spec: &CacheSpec) -> Self {
        MemProfile {
            wss_bytes: spec.llc_bytes * 4,
            deep_refs_per_instr: 0.08,
            base_ns_per_instr: 0.40,
        }
    }

    /// Probability that a deep reference hits a fully-warm L2.
    ///
    /// Uniform re-reference over the WSS gives a capacity law: a cache
    /// of `c` bytes holds at most `c / wss` of the set.
    pub fn l2_hit_warm(&self, spec: &CacheSpec) -> f64 {
        if self.wss_bytes == 0 {
            return 1.0;
        }
        (spec.l2_bytes as f64 / self.wss_bytes as f64).min(1.0)
    }

    /// Whether the working set fits in the private L2 (LoLCF-like).
    pub fn fits_l2(&self, spec: &CacheSpec) -> bool {
        self.wss_bytes <= spec.l2_bytes
    }

    /// Whether the working set fits in the LLC (LLCF-like).
    pub fn fits_llc(&self, spec: &CacheSpec) -> bool {
        self.wss_bytes <= spec.llc_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_map_to_cache_levels() {
        let spec = CacheSpec::i7_3770();
        assert!(MemProfile::lolcf(&spec).fits_l2(&spec));
        let llcf = MemProfile::llcf(&spec);
        assert!(!llcf.fits_l2(&spec));
        assert!(llcf.fits_llc(&spec));
        let llco = MemProfile::llco(&spec);
        assert!(!llco.fits_llc(&spec));
    }

    #[test]
    fn l2_hit_law() {
        let spec = CacheSpec::i7_3770();
        assert_eq!(MemProfile::lolcf(&spec).l2_hit_warm(&spec), 1.0);
        let llcf = MemProfile::llcf(&spec);
        let h = llcf.l2_hit_warm(&spec);
        assert!(h > 0.0 && h < 0.1, "LLCF should mostly miss L2, got {h}");
    }

    #[test]
    fn light_profile_is_cheap() {
        let spec = CacheSpec::i7_3770();
        let p = MemProfile::light();
        assert!(p.fits_l2(&spec));
        assert!(p.deep_refs_per_instr < 0.01);
    }

    #[test]
    fn zero_wss_hits_everything() {
        let spec = CacheSpec::i7_3770();
        let p = MemProfile {
            wss_bytes: 0,
            deep_refs_per_instr: 0.0,
            base_ns_per_instr: 0.5,
        };
        assert_eq!(p.l2_hit_warm(&spec), 1.0);
    }
}
