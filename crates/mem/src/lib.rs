//! Cache-hierarchy and PMU model for the AQL_Sched reproduction.
//!
//! The paper's mechanisms are cache-driven: LLC-friendly applications
//! (`LLCF`) suffer when short quanta force them to refill the shared
//! last-level cache after every context switch; trashing applications
//! (`LLCO`) erode co-runners' footprints; low-level-cache applications
//! (`LoLCF`) only care about their private L2 and are quantum-agnostic.
//!
//! This crate models exactly that and nothing more:
//!
//! * [`spec::CacheSpec`] — cache sizes and access latencies, with the
//!   paper's two machines as presets (Table 2; §4.2).
//! * [`profile::MemProfile`] — a workload phase's memory behaviour:
//!   working-set size and deep-reference rate.
//! * [`llc::LlcState`] — the shared per-socket LLC: per-owner resident
//!   footprints with proportional eviction under pressure.
//! * [`exec`] — the execution-speed law: given a profile, the current
//!   LLC/L2 state and a time budget, how many instructions retire and
//!   how many LLC references/misses the PMU counts.
//! * [`pmu::PmuCounters`] — the per-vCPU counters vTRS samples every
//!   monitoring period.

#![warn(missing_docs)]

pub mod exec;
pub mod llc;
pub mod pmu;
pub mod profile;
pub mod rate;
pub mod spec;

pub use exec::{exec_step, exec_step_lean, ExecOutcome};
pub use llc::LlcState;
pub use pmu::{PmuCounters, PmuSample};
pub use profile::MemProfile;
pub use rate::{exec_step_cached, steady_rate, RateCache, SteadyRate};
pub use spec::CacheSpec;
