//! Cache geometry and timing.

/// Sizes and latencies of the simulated cache hierarchy.
///
/// Latencies are *effective serialized penalties* per access at that
/// level, folding in memory-level parallelism; they are deliberately
/// coarse (the reproduction targets figure shapes, not cycle accuracy).
///
/// # Examples
///
/// ```
/// use aql_mem::CacheSpec;
///
/// let spec = CacheSpec::i7_3770();
/// assert_eq!(spec.llc_bytes, 8 * 1024 * 1024);
/// assert_eq!(spec.lines(spec.llc_bytes), 131072);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// L1 data cache capacity in bytes (per core).
    pub l1d_bytes: u64,
    /// L2 unified cache capacity in bytes (per core).
    pub l2_bytes: u64,
    /// Last-level cache capacity in bytes (shared per socket).
    pub llc_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Effective L2 hit penalty (ns) for a reference missing L1.
    pub l2_hit_ns: f64,
    /// Effective LLC hit penalty (ns) for a reference missing L2.
    pub llc_hit_ns: f64,
    /// Effective memory penalty (ns) for a reference missing the LLC.
    pub mem_ns: f64,
}

impl CacheSpec {
    /// The paper's calibration host (Table 2): Intel Core i7-3770 —
    /// 32 KB L1-D, 256 KB L2, 8 MB LLC.
    pub fn i7_3770() -> Self {
        CacheSpec {
            l1d_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            llc_bytes: 8 * 1024 * 1024,
            line_bytes: 64,
            l2_hit_ns: 3.0,
            llc_hit_ns: 14.0,
            mem_ns: 90.0,
        }
    }

    /// The paper's 4-socket host (§4.2): Intel Xeon E5-4603 —
    /// 32 KB L1-D, 256 KB L2, 10 MB LLC per socket.
    pub fn xeon_e5_4603() -> Self {
        CacheSpec {
            llc_bytes: 10 * 1024 * 1024,
            ..CacheSpec::i7_3770()
        }
    }

    /// Number of whole cache lines in `bytes`.
    pub fn lines(&self, bytes: u64) -> u64 {
        bytes / self.line_bytes
    }
}

impl Default for CacheSpec {
    fn default() -> Self {
        CacheSpec::i7_3770()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i7_matches_table2() {
        let s = CacheSpec::i7_3770();
        assert_eq!(s.l1d_bytes, 32 * 1024);
        assert_eq!(s.l2_bytes, 256 * 1024);
        assert_eq!(s.llc_bytes, 8 * 1024 * 1024);
        assert_eq!(s.line_bytes, 64);
    }

    #[test]
    fn xeon_has_bigger_llc() {
        let a = CacheSpec::i7_3770();
        let b = CacheSpec::xeon_e5_4603();
        assert!(b.llc_bytes > a.llc_bytes);
        assert_eq!(a.l2_bytes, b.l2_bytes);
    }

    #[test]
    fn latencies_increase_down_the_hierarchy() {
        let s = CacheSpec::default();
        assert!(s.l2_hit_ns < s.llc_hit_ns);
        assert!(s.llc_hit_ns < s.mem_ns);
    }

    #[test]
    fn line_counts() {
        let s = CacheSpec::i7_3770();
        assert_eq!(s.lines(64), 1);
        assert_eq!(s.lines(128), 2);
        assert_eq!(s.lines(s.l2_bytes), 4096);
    }
}
