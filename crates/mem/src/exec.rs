//! The execution-speed law.
//!
//! Given a [`MemProfile`], the live LLC state and the vCPU's private-L2
//! warmth, [`exec_step`] advances a workload by a time budget and
//! reports retired instructions and LLC traffic. Speed follows a
//! straightforward additive latency model:
//!
//! ```text
//! ns/instr = base
//!          + deep_refs * [ h2 * t_l2
//!                        + (1 - h2) * ( h3 * t_llc + (1 - h3) * t_mem ) ]
//! ```
//!
//! where `h2` is the private-L2 hit probability (capacity law times
//! warmth) and `h3` the LLC hit probability (resident footprint over
//! working set, uniform re-reference). Misses fetch lines, growing the
//! footprint — so a cold LLCF phase starts slow and accelerates as it
//! refills, which is exactly the cost short quanta keep re-paying.

use crate::llc::LlcState;
use crate::profile::MemProfile;
use crate::spec::CacheSpec;

/// What happened during one execution step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecOutcome {
    /// Instructions retired (fractional).
    pub instructions: f64,
    /// References that reached the LLC (PMU "LLC references").
    pub llc_refs: f64,
    /// References that missed the LLC (PMU "LLC misses").
    pub llc_misses: f64,
}

impl ExecOutcome {
    /// Accumulates another outcome into this one.
    pub fn merge(&mut self, other: &ExecOutcome) {
        self.instructions += other.instructions;
        self.llc_refs += other.llc_refs;
        self.llc_misses += other.llc_misses;
    }
}

/// Maximum fraction of the working set fetched per internal sub-step;
/// bounds the discretization error of the frozen-rate integration.
/// Shared with the cached integrator (`crate::rate`), whose loop must
/// stay operation-for-operation identical to [`exec_step_lean`].
pub(crate) const MAX_FILL_FRACTION: f64 = 0.125;

/// Hard bound on internal sub-steps per `exec_step` call.
///
/// The fill-fraction caps can pin the internal chunk near the 1 ns
/// floor for degenerate profiles (tiny working sets with heavy deep
/// traffic), making the loop count proportional to the budget — up to
/// `dt_ns` iterations. The old code only `debug_assert`ed a bound, so
/// a release build would grind through the pathology at 1 ns per
/// iteration. Both integrators now take one *saturating* final step
/// (the whole remainder at the current frozen rates) once this many
/// sub-steps have run; the discretization guarantee is forfeited for
/// that tail, boundedness is not.
pub const MAX_SUBSTEPS: u32 = 100_000;

/// Advances a workload phase by `dt_ns` nanoseconds of CPU time.
///
/// `owner` indexes the vCPU's footprint in `llc`; `l2_warmth` is the
/// fraction of the (capacity-limited) working set resident in the
/// private L2 and is updated in place. Returns the retired instruction
/// count and LLC traffic for PMU accounting.
pub fn exec_step(
    profile: &MemProfile,
    spec: &CacheSpec,
    llc: &mut LlcState,
    owner: usize,
    l2_warmth: &mut f64,
    dt_ns: u64,
) -> ExecOutcome {
    let mut out = ExecOutcome::default();
    if dt_ns == 0 {
        return out;
    }
    let wss = profile.wss_bytes as f64;
    let mut remaining = dt_ns as f64;
    // Internal sub-steps keep rate-freezing honest while footprints move.
    let mut guard: u32 = 0;
    while remaining > 0.0 {
        guard += 1;
        let h2_cap = profile.l2_hit_warm(spec);
        let h2 = h2_cap * l2_warmth.clamp(0.0, 1.0);
        let deep = profile.deep_refs_per_instr;
        let resident = llc.occupancy(owner);
        let h3 = if wss <= 0.0 {
            1.0
        } else {
            (resident / wss).clamp(0.0, 1.0)
        };
        let llc_ref_per_instr = deep * (1.0 - h2);
        let llc_miss_per_instr = llc_ref_per_instr * (1.0 - h3);
        let ns_per_instr = profile.base_ns_per_instr
            + deep
                * (h2 * spec.l2_hit_ns
                    + (1.0 - h2) * (h3 * spec.llc_hit_ns + (1.0 - h3) * spec.mem_ns));

        // Cap the chunk so neither footprint moves more than
        // MAX_FILL_FRACTION of its target within frozen rates. Once the
        // iteration budget is exhausted the final step saturates: the
        // whole remainder runs at the current frozen rates.
        let mut chunk = remaining;
        let l2_fill_per_instr = deep * (1.0 - h2);
        let l2_target = (wss.min(spec.l2_bytes as f64)).max(1.0);
        if guard < MAX_SUBSTEPS {
            if llc_miss_per_instr > 1e-12 && wss > 0.0 {
                let instr_cap =
                    (wss * MAX_FILL_FRACTION / spec.line_bytes as f64) / llc_miss_per_instr;
                chunk = chunk.min(instr_cap * ns_per_instr);
            }
            if l2_fill_per_instr > 1e-12 && *l2_warmth < 1.0 {
                let instr_cap =
                    (l2_target * MAX_FILL_FRACTION / spec.line_bytes as f64) / l2_fill_per_instr;
                chunk = chunk.min(instr_cap * ns_per_instr);
            }
        }
        chunk = chunk.max(remaining.min(1.0)).min(remaining);

        let instr = chunk / ns_per_instr;
        let refs = instr * llc_ref_per_instr;
        let misses = instr * llc_miss_per_instr;
        out.instructions += instr;
        out.llc_refs += refs;
        out.llc_misses += misses;

        if refs > 0.0 && wss > 0.0 {
            // Re-referencing protects the resident footprint (LRU
            // recency): the protection is proportional to how much of
            // the set was re-touched, so streaming owners (one pass
            // over a huge set) stay stale.
            llc.touch_frac(owner, refs * spec.line_bytes as f64 / wss);
        }
        if misses > 0.0 {
            llc.insert(owner, misses * spec.line_bytes as f64, wss);
        }
        if l2_fill_per_instr > 1e-12 {
            let fill = instr * l2_fill_per_instr * spec.line_bytes as f64;
            *l2_warmth = (*l2_warmth + fill / l2_target).min(1.0);
        }
        remaining -= chunk;
    }
    out
}

/// Bit-identical fast variant of [`exec_step`].
///
/// Performs the same frozen-rate integration with the same internal
/// chunk boundaries and the same floating-point operation order, but
/// hoists the loop-invariant profile constants and routes LLC
/// insertions through the allocation-free [`LlcState::insert_lean`].
/// The engine's adaptive time-advance uses this path; the dense
/// conformance oracle keeps using [`exec_step`]. The
/// `lean_exec_matches_dense` property test asserts bitwise equality of
/// outcomes and of the resulting LLC/warmth state.
pub fn exec_step_lean(
    profile: &MemProfile,
    spec: &CacheSpec,
    llc: &mut LlcState,
    owner: usize,
    l2_warmth: &mut f64,
    dt_ns: u64,
) -> ExecOutcome {
    let mut out = ExecOutcome::default();
    if dt_ns == 0 {
        return out;
    }
    let wss = profile.wss_bytes as f64;
    // Loop-invariant constants (pure functions of profile and spec).
    let h2_cap = profile.l2_hit_warm(spec);
    let deep = profile.deep_refs_per_instr;
    let l2_target = (wss.min(spec.l2_bytes as f64)).max(1.0);
    let line = spec.line_bytes as f64;
    let mut remaining = dt_ns as f64;
    let mut guard: u32 = 0;
    while remaining > 0.0 {
        guard += 1;
        let h2 = h2_cap * l2_warmth.clamp(0.0, 1.0);
        let resident = llc.occupancy(owner);
        let h3 = if wss <= 0.0 {
            1.0
        } else {
            (resident / wss).clamp(0.0, 1.0)
        };
        let llc_ref_per_instr = deep * (1.0 - h2);
        let llc_miss_per_instr = llc_ref_per_instr * (1.0 - h3);
        let ns_per_instr = profile.base_ns_per_instr
            + deep
                * (h2 * spec.l2_hit_ns
                    + (1.0 - h2) * (h3 * spec.llc_hit_ns + (1.0 - h3) * spec.mem_ns));

        let mut chunk = remaining;
        let l2_fill_per_instr = deep * (1.0 - h2);
        if guard < MAX_SUBSTEPS {
            if llc_miss_per_instr > 1e-12 && wss > 0.0 {
                let instr_cap = (wss * MAX_FILL_FRACTION / line) / llc_miss_per_instr;
                chunk = chunk.min(instr_cap * ns_per_instr);
            }
            if l2_fill_per_instr > 1e-12 && *l2_warmth < 1.0 {
                let instr_cap = (l2_target * MAX_FILL_FRACTION / line) / l2_fill_per_instr;
                chunk = chunk.min(instr_cap * ns_per_instr);
            }
        }
        chunk = chunk.max(remaining.min(1.0)).min(remaining);

        let instr = chunk / ns_per_instr;
        let refs = instr * llc_ref_per_instr;
        let misses = instr * llc_miss_per_instr;
        out.instructions += instr;
        out.llc_refs += refs;
        out.llc_misses += misses;

        if refs > 0.0 && wss > 0.0 {
            llc.touch_frac(owner, refs * line / wss);
        }
        if misses > 0.0 {
            llc.insert_lean(owner, misses * line, wss);
        }
        if l2_fill_per_instr > 1e-12 {
            let fill = instr * l2_fill_per_instr * line;
            *l2_warmth = (*l2_warmth + fill / l2_target).min(1.0);
        }
        remaining -= chunk;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_sim::time::MS;

    fn spec() -> CacheSpec {
        CacheSpec::i7_3770()
    }

    #[test]
    fn light_profile_runs_near_base_speed() {
        let spec = spec();
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 1.0;
        let p = MemProfile::light();
        let out = exec_step(&p, &spec, &mut llc, 0, &mut w2, MS);
        let ips = out.instructions / MS as f64;
        let base_ips = 1.0 / p.base_ns_per_instr;
        assert!(
            (ips - base_ips).abs() / base_ips < 0.05,
            "light profile should run near base speed: {ips} vs {base_ips}"
        );
    }

    #[test]
    fn warm_llcf_faster_than_cold() {
        let spec = spec();
        let p = MemProfile::llcf(&spec);
        // Cold run.
        let mut llc_cold = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 0.0;
        let cold = exec_step(&p, &spec, &mut llc_cold, 0, &mut w2, MS);
        // Warm run: footprint pre-loaded.
        let mut llc_warm = LlcState::new(spec.llc_bytes as f64, 1);
        llc_warm.insert(0, p.wss_bytes as f64, p.wss_bytes as f64);
        let mut w2 = 1.0;
        let warm = exec_step(&p, &spec, &mut llc_warm, 0, &mut w2, MS);
        assert!(
            warm.instructions > 2.0 * cold.instructions,
            "warm {} should far exceed cold {}",
            warm.instructions,
            cold.instructions
        );
    }

    #[test]
    fn cold_run_warms_the_cache() {
        let spec = spec();
        let p = MemProfile::llcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 0.0;
        let mut last_instr = 0.0;
        // Successive 2ms steps must speed up as the footprint grows.
        for step in 0..5 {
            let out = exec_step(&p, &spec, &mut llc, 0, &mut w2, 2 * MS);
            assert!(
                out.instructions >= last_instr,
                "step {step} slowed down: {} < {last_instr}",
                out.instructions
            );
            last_instr = out.instructions;
        }
        assert!(llc.occupancy(0) > 0.9 * p.wss_bytes as f64);
    }

    #[test]
    fn llco_always_misses() {
        let spec = spec();
        let p = MemProfile::llco(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 0.0;
        // Run long enough to reach steady state.
        let _ = exec_step(&p, &spec, &mut llc, 0, &mut w2, 50 * MS);
        let out = exec_step(&p, &spec, &mut llc, 0, &mut w2, 10 * MS);
        let miss_ratio = out.llc_misses / out.llc_refs;
        assert!(
            miss_ratio > 0.6,
            "trasher steady-state miss ratio should stay high, got {miss_ratio}"
        );
    }

    #[test]
    fn lolcf_generates_negligible_llc_traffic_when_warm() {
        let spec = spec();
        let p = MemProfile::lolcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 1.0;
        let out = exec_step(&p, &spec, &mut llc, 0, &mut w2, 10 * MS);
        let rr_per_kilo = out.llc_refs / out.instructions * 1000.0;
        assert!(
            rr_per_kilo < 1.0,
            "warm LoLCF should barely reference the LLC, got {rr_per_kilo}/k-instr"
        );
    }

    #[test]
    fn lolcf_l2_refill_is_cheap_and_bounded() {
        let spec = spec();
        let p = MemProfile::lolcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 0.0;
        let cold = exec_step(&p, &spec, &mut llc, 0, &mut w2, MS);
        assert!(
            w2 > 0.99,
            "1ms should fully rewarm a 230KB L2 set, got {w2}"
        );
        let warm = exec_step(&p, &spec, &mut llc, 0, &mut w2, MS);
        let ratio = warm.instructions / cold.instructions;
        assert!(
            ratio > 1.0 && ratio < 1.6,
            "L2 refill should cost a little, not a lot: warm/cold = {ratio}"
        );
    }

    #[test]
    fn lean_exec_matches_dense() {
        // exec_step_lean must be bit-identical to exec_step: same
        // outcomes, same LLC trajectory, same warmth — across profiles,
        // owner mixes and chunk sizes.
        let spec = spec();
        let profiles = [
            MemProfile::llcf(&spec),
            MemProfile::lolcf(&spec),
            MemProfile::llco(&spec),
            MemProfile::light(),
        ];
        let mut rng = aql_sim::rng::SimRng::seed_from(7);
        let owners = profiles.len();
        let mut llc_a = LlcState::new(spec.llc_bytes as f64, owners);
        let mut llc_b = LlcState::new(spec.llc_bytes as f64, owners);
        let mut warm_a = vec![0.0f64; owners];
        let mut warm_b = vec![0.0f64; owners];
        for step in 0..600 {
            let owner = rng.uniform_u64(0, owners as u64) as usize;
            let dt = rng.uniform_u64(1, 2_000_000);
            let a = exec_step(
                &profiles[owner],
                &spec,
                &mut llc_a,
                owner,
                &mut warm_a[owner],
                dt,
            );
            let b = exec_step_lean(
                &profiles[owner],
                &spec,
                &mut llc_b,
                owner,
                &mut warm_b[owner],
                dt,
            );
            assert_eq!(
                a.instructions.to_bits(),
                b.instructions.to_bits(),
                "instructions diverged at step {step}"
            );
            assert_eq!(a.llc_refs.to_bits(), b.llc_refs.to_bits(), "step {step}");
            assert_eq!(
                a.llc_misses.to_bits(),
                b.llc_misses.to_bits(),
                "step {step}"
            );
            assert_eq!(
                warm_a[owner].to_bits(),
                warm_b[owner].to_bits(),
                "warmth diverged at step {step}"
            );
            for i in 0..owners {
                assert_eq!(
                    llc_a.occupancy(i).to_bits(),
                    llc_b.occupancy(i).to_bits(),
                    "occ[{i}] diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn degenerate_profile_saturates_instead_of_spinning() {
        // A pathological profile (tiny working set, heavy deep traffic)
        // pins the fill-fraction caps near the 1 ns chunk floor, making
        // the sub-step count proportional to the budget. The hard cap
        // must bound the loop and still consume the whole budget — in
        // release builds too, where the old guard was compiled out.
        let spec = spec();
        let p = MemProfile {
            wss_bytes: 64,
            deep_refs_per_instr: 50.0,
            base_ns_per_instr: 0.1,
        };
        for exec in [
            exec_step
                as fn(&MemProfile, &CacheSpec, &mut LlcState, usize, &mut f64, u64) -> ExecOutcome,
            exec_step_lean,
        ] {
            let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
            let mut w2 = 0.0;
            let start = std::time::Instant::now();
            let out = exec(&p, &spec, &mut llc, 0, &mut w2, 50 * MS);
            assert!(
                start.elapsed() < std::time::Duration::from_secs(30),
                "cap failed to bound the loop"
            );
            assert!(out.instructions.is_finite() && out.instructions > 0.0);
            assert!(out.llc_refs.is_finite() && out.llc_misses.is_finite());
            // The budget is fully consumed: the final saturating step
            // swallows whatever the capped sub-steps left over.
            assert!(llc.occupancy(0) <= 64.0 + 1e-9);
        }
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let spec = spec();
        let p = MemProfile::llcf(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
        let mut w2 = 0.5;
        let out = exec_step(&p, &spec, &mut llc, 0, &mut w2, 0);
        assert_eq!(out, ExecOutcome::default());
        assert_eq!(w2, 0.5);
    }

    #[test]
    fn outcome_merge_adds_fields() {
        let mut a = ExecOutcome {
            instructions: 1.0,
            llc_refs: 2.0,
            llc_misses: 3.0,
        };
        a.merge(&ExecOutcome {
            instructions: 10.0,
            llc_refs: 20.0,
            llc_misses: 30.0,
        });
        assert_eq!(a.instructions, 11.0);
        assert_eq!(a.llc_refs, 22.0);
        assert_eq!(a.llc_misses, 33.0);
    }

    #[test]
    fn shared_llc_contention_slows_the_victim() {
        let spec = spec();
        let victim = MemProfile::llcf(&spec);
        let trasher = MemProfile::llco(&spec);
        let mut llc = LlcState::new(spec.llc_bytes as f64, 2);
        let mut w2v = 1.0;
        let mut w2t = 0.0;
        // Warm the victim fully.
        let _ = exec_step(&victim, &spec, &mut llc, 0, &mut w2v, 30 * MS);
        let alone = exec_step(&victim, &spec, &mut llc, 0, &mut w2v, 5 * MS);
        // Let the trasher stream for a while (victim descheduled).
        let _ = exec_step(&trasher, &spec, &mut llc, 1, &mut w2t, 90 * MS);
        let after = exec_step(&victim, &spec, &mut llc, 0, &mut w2v, 5 * MS);
        assert!(
            after.instructions < 0.8 * alone.instructions,
            "trasher must erode the victim footprint: {} vs {}",
            after.instructions,
            alone.instructions
        );
    }
}
