//! Performance-monitoring-unit counters.
//!
//! The paper's vTRS (§3.3.2) reads four per-vCPU signals each 30 ms
//! monitoring period: IO-event count (event-channel analysis), spin
//! count (Pause-Loop-Exiting traps), LLC references and LLC misses
//! (hardware counters via perfctr-xen). [`PmuCounters`] accumulates all
//! of them plus retired instructions and actual run time;
//! [`PmuCounters::snapshot_and_reset`] produces the per-period
//! [`PmuSample`] the recognition system consumes.

use crate::exec::ExecOutcome;

/// Accumulating per-vCPU counters for the current monitoring period.
#[derive(Debug, Clone, Default)]
pub struct PmuCounters {
    instructions: f64,
    llc_refs: f64,
    llc_misses: f64,
    io_events: u64,
    ple_exits: u64,
    ran_ns: u64,
}

impl PmuCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds an execution step's retirement and LLC traffic in.
    pub fn add_exec(&mut self, out: &ExecOutcome) {
        self.instructions += out.instructions;
        self.llc_refs += out.llc_refs;
        self.llc_misses += out.llc_misses;
    }

    /// Counts IO events delivered to the vCPU (event-channel analysis).
    pub fn add_io_events(&mut self, n: u64) {
        self.io_events += n;
    }

    /// Counts Pause-Loop-Exiting traps (spinning detection).
    pub fn add_ple_exits(&mut self, n: u64) {
        self.ple_exits += n;
    }

    /// Accounts CPU time actually consumed on a pCPU.
    pub fn add_ran_ns(&mut self, ns: u64) {
        self.ran_ns += ns;
    }

    /// Returns the period's sample and clears the counters.
    pub fn snapshot_and_reset(&mut self, period_ns: u64) -> PmuSample {
        let s = PmuSample {
            instructions: self.instructions,
            llc_refs: self.llc_refs,
            llc_misses: self.llc_misses,
            io_events: self.io_events,
            ple_exits: self.ple_exits,
            ran_ns: self.ran_ns,
            period_ns,
        };
        *self = PmuCounters::default();
        s
    }
}

/// One monitoring period's worth of per-vCPU metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PmuSample {
    /// Instructions retired during the period.
    pub instructions: f64,
    /// LLC references during the period.
    pub llc_refs: f64,
    /// LLC misses during the period.
    pub llc_misses: f64,
    /// IO events delivered to the vCPU during the period.
    pub io_events: u64,
    /// Pause-Loop-Exiting traps raised during the period.
    pub ple_exits: u64,
    /// CPU time the vCPU actually ran (ns).
    pub ran_ns: u64,
    /// Length of the monitoring period (ns).
    pub period_ns: u64,
}

impl PmuSample {
    /// LLC references per thousand retired instructions — the paper's
    /// `LLC_RR_level` signal. Zero when no instruction retired.
    pub fn llc_rr_per_kilo_instr(&self) -> f64 {
        if self.instructions <= 0.0 {
            0.0
        } else {
            self.llc_refs / self.instructions * 1000.0
        }
    }

    /// LLC miss ratio in percent — the paper's `LLC_MR_level` signal.
    /// Zero when the period produced no LLC references.
    pub fn llc_miss_ratio_pct(&self) -> f64 {
        if self.llc_refs <= 0.0 {
            0.0
        } else {
            (self.llc_misses / self.llc_refs * 100.0).clamp(0.0, 100.0)
        }
    }

    /// Fraction of the period the vCPU spent on a pCPU, in `[0, 1]`.
    pub fn run_fraction(&self) -> f64 {
        if self.period_ns == 0 {
            0.0
        } else {
            (self.ran_ns as f64 / self.period_ns as f64).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_reset() {
        let mut c = PmuCounters::new();
        c.add_exec(&ExecOutcome {
            instructions: 1000.0,
            llc_refs: 50.0,
            llc_misses: 10.0,
        });
        c.add_io_events(3);
        c.add_ple_exits(7);
        c.add_ran_ns(123);
        let s = c.snapshot_and_reset(1000);
        assert_eq!(s.instructions, 1000.0);
        assert_eq!(s.io_events, 3);
        assert_eq!(s.ple_exits, 7);
        assert_eq!(s.ran_ns, 123);
        assert_eq!(s.period_ns, 1000);
        // Counters cleared.
        let s2 = c.snapshot_and_reset(1000);
        assert_eq!(s2.instructions, 0.0);
        assert_eq!(s2.io_events, 0);
    }

    #[test]
    fn rr_metric() {
        let s = PmuSample {
            instructions: 10_000.0,
            llc_refs: 500.0,
            ..Default::default()
        };
        assert_eq!(s.llc_rr_per_kilo_instr(), 50.0);
        let empty = PmuSample::default();
        assert_eq!(empty.llc_rr_per_kilo_instr(), 0.0);
    }

    #[test]
    fn miss_ratio_metric() {
        let s = PmuSample {
            llc_refs: 200.0,
            llc_misses: 50.0,
            ..Default::default()
        };
        assert_eq!(s.llc_miss_ratio_pct(), 25.0);
        let empty = PmuSample::default();
        assert_eq!(empty.llc_miss_ratio_pct(), 0.0);
    }

    #[test]
    fn run_fraction_clamped() {
        let s = PmuSample {
            ran_ns: 500,
            period_ns: 1000,
            ..Default::default()
        };
        assert_eq!(s.run_fraction(), 0.5);
        let odd = PmuSample {
            ran_ns: 2000,
            period_ns: 1000,
            ..Default::default()
        };
        assert_eq!(odd.run_fraction(), 1.0);
        let zero = PmuSample::default();
        assert_eq!(zero.run_fraction(), 0.0);
    }
}
