//! Shared last-level cache occupancy model.
//!
//! The LLC is modelled as a capacity shared by *owners* (vCPUs): each
//! owner has a resident footprint in bytes. Misses fetch lines and grow
//! the owner's footprint; when the sum exceeds capacity every footprint
//! is scaled down proportionally — a smooth approximation of random
//! replacement that reproduces the paper's contention effects:
//! trashing owners (`LLCO`) with huge fetch rates erode the footprint
//! of cache-friendly owners (`LLCF`) while those are descheduled.

/// Freshness decay constant: after `FRESH_TAU × capacity` bytes of new
/// insertions, an owner's freshness drops by `1/e` unless it keeps
/// re-referencing its set.
const FRESH_TAU: f64 = 0.5;
/// How much more evictable a fully-stale byte is than a fresh one.
const STALE_BOOST: f64 = 20.0;

/// Freshness below this is flushed to exactly `0.0` by the decay loop.
/// Multiplicative decay alone never reaches zero, so without the flush
/// every owner that ever touched a socket stays "active" forever. The
/// threshold sits far below the half-ulp of `1.0` (`2^-53`), where
/// `1.0 - f` already rounds to exactly `1.0`, so a flushed owner's
/// eviction weight is bit-identical either way; the only observable
/// difference is a sub-1e-18 perturbation if the owner later re-touches
/// — deep inside the conformance tolerance. Applied identically by
/// [`LlcState::insert`] and [`LlcState::insert_lean`], so the two stay
/// bit-equal to each other.
const FRESHNESS_FLUSH: f64 = 1e-18;

/// Occupancies below this many bytes are flushed to exactly `0.0` by
/// the eviction loops. Proportional eviction shrinks a footprint
/// geometrically and never reaches zero; a micro-byte footprint is
/// physically meaningless but keeps its owner in every scan. The h3
/// perturbation is at most `1e-6 / wss` — immeasurable. Applied
/// identically by both insert paths.
const OCC_FLUSH_BYTES: f64 = 1e-6;

/// Insertions between opportunistic compactions of the active-owner
/// index (lean path bookkeeping only).
const PRUNE_PERIOD: u32 = 4096;

/// Per-socket shared LLC state.
///
/// Owner indices are dense (global vCPU indices); occupancy is tracked
/// in fractional bytes. Eviction approximates LRU through per-owner
/// *freshness* — the fraction of the owner's resident set recently
/// re-referenced ([`LlcState::touch_frac`]): victims are chosen in
/// proportion to `occupancy × (1 + STALE_BOOST × (1 − freshness))`.
/// A cache-friendly owner that re-touches its whole set every
/// millisecond stays fresh and protected; a streaming trasher touches
/// each of its lines only once per long pass, stays stale, and its own
/// dead lines absorb most of the eviction pressure — exactly how
/// set-recency behaves on real hardware.
///
/// # Examples
///
/// ```
/// use aql_mem::LlcState;
///
/// let mut llc = LlcState::new(1024.0, 2);
/// llc.insert(0, 800.0, 4096.0);
/// llc.insert(1, 800.0, 4096.0);
/// // Capacity pressure scaled both footprints down to fit.
/// assert!(llc.total() <= 1024.0 + 1e-9);
/// assert!(llc.occupancy(0) > 0.0 && llc.occupancy(1) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LlcState {
    capacity: f64,
    occ: Vec<f64>,
    total: f64,
    freshness: Vec<f64>,
    /// Reused eviction-weight buffer for [`LlcState::insert_lean`], so
    /// the lean path performs no allocation in steady state.
    scratch: Vec<f64>,
    /// Mutation epoch: bumped whenever an insertion or owner eviction
    /// can change any occupancy. An unchanged epoch proves every
    /// occupancy-derived quantity is still exact; the steady-rate cache
    /// ([`crate::rate::RateCache`]) uses the finer per-owner occupancy
    /// bits instead, but the epoch remains the cheap socket-wide
    /// contention signal (diagnostics, tests, future consumers). Pure
    /// re-reference touches do **not** bump it — they alter only this
    /// owner's freshness, which no execution rate reads.
    epoch: u64,
    /// Owners that may hold state (occupancy or freshness > 0), in
    /// ascending order. The lean mutation paths scan only this set:
    /// every skipped owner holds exactly `0.0` in both fields, and
    /// `x + 0.0` / `0.0 × d` are exact, so the results are bit-identical
    /// to the dense full scans. On a multi-socket machine owner indices
    /// are global, so this keeps each socket's passes proportional to
    /// the owners that ever ran there, not to the whole machine.
    active: Vec<u32>,
    /// Membership mirror of `active` for O(1) insertion checks.
    is_active: Vec<bool>,
    /// One-entry memo for the freshness decay exponential, keyed by the
    /// exact bit pattern of `bytes`. Steady workloads insert identical
    /// byte counts chunk after chunk; reusing the previous `exp` result
    /// for the identical input is bit-transparent.
    exp_memo: (u64, f64),
    /// Lean insertions since the last active-set compaction.
    prune_tick: u32,
    /// Concurrency-contract auditor (debug builds only). While armed
    /// ([`LlcState::audit_arm`]), every mutating entry point panics
    /// unless its owner is in the allowed set — the engine arms each
    /// socket's LLC with the owners of that socket's lane for the
    /// duration of a parallel span, so a cross-socket mutation (a
    /// coalesce-contract break that would race under parallel
    /// execution) fails loudly instead of silently drifting.
    #[cfg(debug_assertions)]
    audit: Option<Vec<bool>>,
}

impl LlcState {
    /// Creates an empty LLC of `capacity` bytes for `owners` owners.
    pub fn new(capacity: f64, owners: usize) -> Self {
        assert!(capacity > 0.0, "LLC capacity must be positive");
        LlcState {
            capacity,
            occ: vec![0.0; owners],
            total: 0.0,
            freshness: vec![0.0; owners],
            scratch: Vec::new(),
            epoch: 0,
            active: Vec::new(),
            is_active: vec![false; owners],
            exp_memo: (u64::MAX, 1.0),
            prune_tick: 0,
            #[cfg(debug_assertions)]
            audit: None,
        }
    }

    /// Arms the per-socket access auditor: until
    /// [`LlcState::audit_disarm`], any mutating call whose owner is not
    /// in `allowed` panics. Debug builds only — in release both methods
    /// are no-ops and the auditor costs nothing.
    pub fn audit_arm(&mut self, _allowed: &[usize]) {
        #[cfg(debug_assertions)]
        {
            let mut mask = vec![false; self.occ.len()];
            for &o in _allowed {
                if o >= mask.len() {
                    mask.resize(o + 1, false);
                }
                mask[o] = true;
            }
            self.audit = Some(mask);
        }
    }

    /// Disarms the access auditor (see [`LlcState::audit_arm`]).
    pub fn audit_disarm(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.audit = None;
        }
    }

    /// The auditor's gate, called by every mutating entry point.
    #[inline]
    fn audit_check(&self, _owner: usize) {
        #[cfg(debug_assertions)]
        if let Some(allowed) = &self.audit {
            assert!(
                allowed.get(_owner).copied().unwrap_or(false),
                "LLC access audit: owner {_owner} mutated a socket's LLC outside \
                 its parallel-span lane (allowed owners: {:?})",
                allowed
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &a)| a.then_some(i))
                    .collect::<Vec<_>>()
            );
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Resident footprint of `owner` in bytes.
    pub fn occupancy(&self, owner: usize) -> f64 {
        self.occ.get(owner).copied().unwrap_or(0.0)
    }

    /// Sum of all footprints.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Current mutation epoch (see the field docs). Any change to any
    /// occupancy bumps this; cached occupancy-derived rates are valid
    /// exactly as long as the epoch stands still.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Grows the index space to hold at least `owners` owners.
    pub fn ensure_owners(&mut self, owners: usize) {
        if self.occ.len() < owners {
            self.occ.resize(owners, 0.0);
            self.freshness.resize(owners, 0.0);
            self.is_active.resize(owners, false);
        }
    }

    /// Marks an owner as possibly holding state, keeping `active`
    /// sorted ascending so lean scans visit owners in dense index
    /// order (the order the dense loops use).
    fn activate(&mut self, owner: usize) {
        if !self.is_active[owner] {
            self.is_active[owner] = true;
            let pos = self.active.partition_point(|&i| (i as usize) < owner);
            self.active.insert(pos, owner as u32);
        }
    }

    /// Records that `owner` re-referenced `frac` of its working set
    /// (`frac` may exceed 1; freshness saturates at 1).
    pub fn touch_frac(&mut self, owner: usize, frac: f64) {
        self.audit_check(owner);
        self.ensure_owners(owner + 1);
        let f = &mut self.freshness[owner];
        *f = (*f + frac.max(0.0)).min(1.0);
        if *f > 0.0 {
            self.activate(owner);
        }
    }

    /// Marks the owner's whole resident set as recently used.
    pub fn touch(&mut self, owner: usize) {
        self.touch_frac(owner, 1.0);
    }

    /// Current freshness of an owner, in `[0, 1]`.
    pub fn freshness(&self, owner: usize) -> f64 {
        self.freshness.get(owner).copied().unwrap_or(0.0)
    }

    /// Fetches `bytes` for `owner` (footprint capped at `max_bytes`,
    /// normally the owner's working-set size), then resolves capacity
    /// pressure by evicting in proportion to occupancy × staleness
    /// (LRU approximation via freshness).
    pub fn insert(&mut self, owner: usize, bytes: f64, max_bytes: f64) {
        debug_assert!(bytes >= 0.0 && max_bytes >= 0.0);
        self.audit_check(owner);
        self.ensure_owners(owner + 1);
        let cur = self.occ[owner];
        let grown = (cur + bytes).min(max_bytes.max(cur));
        self.total += grown - cur;
        self.occ[owner] = grown;
        if bytes > 0.0 {
            self.epoch = self.epoch.wrapping_add(1);
        }
        if grown > 0.0 {
            self.activate(owner);
        }
        // New insertions age everyone else's lines.
        if bytes > 0.0 {
            let decay = (-bytes / (self.capacity * FRESH_TAU)).exp();
            for (i, f) in self.freshness.iter_mut().enumerate() {
                if i != owner {
                    *f *= decay;
                    if *f < FRESHNESS_FLUSH {
                        *f = 0.0;
                    }
                }
            }
        }
        let mut overflow = self.total - self.capacity;
        if overflow <= 0.0 {
            return;
        }
        // Weighted eviction with clamping; a few passes suffice, then
        // fall back to plain proportional scaling.
        for _ in 0..4 {
            if overflow <= 1e-9 {
                break;
            }
            let weights: Vec<f64> = (0..self.occ.len())
                .map(|i| {
                    if self.occ[i] > 0.0 {
                        self.occ[i] * (1.0 + STALE_BOOST * (1.0 - self.freshness[i]))
                    } else {
                        0.0
                    }
                })
                .collect();
            let wsum: f64 = weights.iter().sum();
            if wsum <= 0.0 {
                break;
            }
            let mut evicted = 0.0;
            for (occ, w) in self.occ.iter_mut().zip(&weights) {
                let want = overflow * w / wsum;
                let take = want.min(*occ);
                *occ -= take;
                if *occ < OCC_FLUSH_BYTES {
                    *occ = 0.0;
                }
                evicted += take;
            }
            overflow -= evicted;
            if evicted <= 1e-12 {
                break;
            }
        }
        if overflow > 1e-9 {
            // Degenerate weights: plain proportional fallback.
            let sum: f64 = self.occ.iter().sum();
            if sum > 0.0 {
                let scale = (sum - overflow).max(0.0) / sum;
                for o in &mut self.occ {
                    *o *= scale;
                    if *o < OCC_FLUSH_BYTES {
                        *o = 0.0;
                    }
                }
            }
        }
        self.total = self.occ.iter().sum();
    }

    /// Bit-identical fast variant of [`LlcState::insert`].
    ///
    /// Performs exactly the same floating-point operations in exactly
    /// the same order, but touches only the *active* owner set (owners
    /// whose occupancy and freshness are not both exactly zero — the
    /// skipped terms are exact identities: `x + 0.0`, `0.0 × d`,
    /// `0.0`-weight takes), reuses a scratch buffer for the eviction
    /// weights (no allocation) and memoizes the freshness-decay
    /// exponential for repeated identical insert sizes. The engine's
    /// adaptive time-advance routes execution through this path; the
    /// dense conformance oracle keeps calling [`LlcState::insert`].
    /// `llc_lean_matches_insert` (property test) asserts the bitwise
    /// equivalence.
    pub fn insert_lean(&mut self, owner: usize, bytes: f64, max_bytes: f64) {
        debug_assert!(bytes >= 0.0 && max_bytes >= 0.0);
        self.audit_check(owner);
        self.prune_tick += 1;
        if self.prune_tick >= PRUNE_PERIOD {
            self.prune_tick = 0;
            self.prune_active();
        }
        self.ensure_owners(owner + 1);
        let cur = self.occ[owner];
        let grown = (cur + bytes).min(max_bytes.max(cur));
        self.total += grown - cur;
        self.occ[owner] = grown;
        if bytes > 0.0 {
            self.epoch = self.epoch.wrapping_add(1);
        }
        if grown > 0.0 {
            self.activate(owner);
        }
        // Layout choice, not semantics: when most owners are active
        // (single-socket machines), indexed gathers lose to contiguous
        // scans, so fall through to the dense-layout loops; the sparse
        // path pays off on multi-socket machines where each socket only
        // ever hosts a fraction of the global owner space.
        if self.active.len() * 4 >= self.occ.len() * 3 {
            self.insert_lean_contiguous(owner, bytes);
        } else {
            self.insert_lean_sparse(owner, bytes);
        }
    }

    /// The lean tail for a mostly-active owner space: the dense loop
    /// shapes (contiguous scans, no indirection) with the lean-only
    /// extras — scratch-buffer reuse and the memoized decay `exp`.
    fn insert_lean_contiguous(&mut self, owner: usize, bytes: f64) {
        if bytes > 0.0 {
            let decay = self.decay_for(bytes);
            for (i, f) in self.freshness.iter_mut().enumerate() {
                if i != owner && *f != 0.0 {
                    *f *= decay;
                    if *f < FRESHNESS_FLUSH {
                        *f = 0.0;
                    }
                }
            }
        }
        let mut overflow = self.total - self.capacity;
        if overflow <= 0.0 {
            return;
        }
        let mut weights = std::mem::take(&mut self.scratch);
        for _ in 0..4 {
            if overflow <= 1e-9 {
                break;
            }
            weights.clear();
            weights.extend((0..self.occ.len()).map(|i| {
                if self.occ[i] > 0.0 {
                    self.occ[i] * (1.0 + STALE_BOOST * (1.0 - self.freshness[i]))
                } else {
                    0.0
                }
            }));
            let wsum: f64 = weights.iter().sum();
            if wsum <= 0.0 {
                break;
            }
            let mut evicted = 0.0;
            for (occ, w) in self.occ.iter_mut().zip(&weights) {
                // Zero-weight owners contribute an exact 0.0 take.
                if *w == 0.0 {
                    continue;
                }
                let want = overflow * w / wsum;
                let take = want.min(*occ);
                *occ -= take;
                if *occ < OCC_FLUSH_BYTES {
                    *occ = 0.0;
                }
                evicted += take;
            }
            overflow -= evicted;
            if evicted <= 1e-12 {
                break;
            }
        }
        self.scratch = weights;
        if overflow > 1e-9 {
            // Degenerate weights: plain proportional fallback.
            let sum: f64 = self.occ.iter().sum();
            if sum > 0.0 {
                let scale = (sum - overflow).max(0.0) / sum;
                for o in &mut self.occ {
                    *o *= scale;
                    if *o < OCC_FLUSH_BYTES {
                        *o = 0.0;
                    }
                }
            }
        }
        self.total = self.occ.iter().sum();
    }

    /// The lean tail for a sparsely-active owner space: every scan
    /// visits only the active owners. Inactive owners hold exactly
    /// `0.0` occupancy and freshness, so the skipped terms are exact
    /// identities (`x + 0.0`, `0.0 × d`, zero-weight takes) and the
    /// results match the contiguous scans bit for bit.
    fn insert_lean_sparse(&mut self, owner: usize, bytes: f64) {
        if bytes > 0.0 {
            let decay = self.decay_for(bytes);
            for k in 0..self.active.len() {
                let i = self.active[k] as usize;
                if i != owner && self.freshness[i] != 0.0 {
                    self.freshness[i] *= decay;
                    if self.freshness[i] < FRESHNESS_FLUSH {
                        self.freshness[i] = 0.0;
                    }
                }
            }
        }
        let mut overflow = self.total - self.capacity;
        if overflow <= 0.0 {
            return;
        }
        let mut weights = std::mem::take(&mut self.scratch);
        for _ in 0..4 {
            if overflow <= 1e-9 {
                break;
            }
            weights.clear();
            let mut wsum = 0.0;
            for &iu in &self.active {
                let i = iu as usize;
                let w = if self.occ[i] > 0.0 {
                    self.occ[i] * (1.0 + STALE_BOOST * (1.0 - self.freshness[i]))
                } else {
                    0.0
                };
                weights.push(w);
                wsum += w;
            }
            if wsum <= 0.0 {
                break;
            }
            let mut evicted = 0.0;
            for (k, &w) in weights.iter().enumerate() {
                // Zero-weight owners contribute an exact 0.0 take.
                if w == 0.0 {
                    continue;
                }
                let occ = &mut self.occ[self.active[k] as usize];
                let want = overflow * w / wsum;
                let take = want.min(*occ);
                *occ -= take;
                if *occ < OCC_FLUSH_BYTES {
                    *occ = 0.0;
                }
                evicted += take;
            }
            overflow -= evicted;
            if evicted <= 1e-12 {
                break;
            }
        }
        self.scratch = weights;
        if overflow > 1e-9 {
            // Degenerate weights: plain proportional fallback.
            let sum: f64 = self.active.iter().map(|&i| self.occ[i as usize]).sum();
            if sum > 0.0 {
                let scale = (sum - overflow).max(0.0) / sum;
                for &iu in &self.active {
                    let o = &mut self.occ[iu as usize];
                    *o *= scale;
                    if *o < OCC_FLUSH_BYTES {
                        *o = 0.0;
                    }
                }
            }
        }
        self.total = self.active.iter().map(|&i| self.occ[i as usize]).sum();
    }

    /// Drops owners whose occupancy and freshness have both been
    /// flushed to exactly zero from the active index (pure
    /// bookkeeping: a skipped all-zero owner contributes nothing to
    /// any scan).
    fn prune_active(&mut self) {
        let occ = &self.occ;
        let fresh = &self.freshness;
        let is_active = &mut self.is_active;
        self.active.retain(|&iu| {
            let i = iu as usize;
            let live = occ[i] != 0.0 || fresh[i] != 0.0;
            if !live {
                is_active[i] = false;
            }
            live
        });
    }

    /// The freshness decay factor for an insertion of `bytes`, with a
    /// one-entry bitwise memo (same input bits → same output bits, so
    /// the memo is invisible in the results).
    fn decay_for(&mut self, bytes: f64) -> f64 {
        let key = bytes.to_bits();
        if self.exp_memo.0 != key {
            self.exp_memo = (key, (-bytes / (self.capacity * FRESH_TAU)).exp());
        }
        self.exp_memo.1
    }

    /// Removes the owner's footprint entirely (socket migration or VM
    /// teardown).
    pub fn evict_owner(&mut self, owner: usize) {
        self.audit_check(owner);
        if let Some(o) = self.occ.get_mut(owner) {
            if *o != 0.0 {
                self.epoch = self.epoch.wrapping_add(1);
            }
            self.total -= *o;
            *o = 0.0;
            if self.total < 0.0 {
                self.total = 0.0;
            }
        }
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        (self.total / self.capacity).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_matches(llc: &LlcState) -> bool {
        let sum: f64 = (0..llc.occ.len()).map(|i| llc.occupancy(i)).sum();
        (sum - llc.total()).abs() < 1e-6
    }

    #[test]
    fn insert_grows_footprint() {
        let mut llc = LlcState::new(1000.0, 1);
        llc.insert(0, 100.0, 500.0);
        assert_eq!(llc.occupancy(0), 100.0);
        llc.insert(0, 100.0, 500.0);
        assert_eq!(llc.occupancy(0), 200.0);
        assert!(total_matches(&llc));
    }

    #[test]
    fn footprint_capped_at_wss() {
        let mut llc = LlcState::new(1000.0, 1);
        llc.insert(0, 900.0, 300.0);
        assert_eq!(llc.occupancy(0), 300.0);
    }

    #[test]
    fn capacity_pressure_scales_everyone() {
        let mut llc = LlcState::new(1000.0, 2);
        llc.insert(0, 600.0, 1e9);
        llc.insert(1, 600.0, 1e9);
        assert!((llc.total() - 1000.0).abs() < 1e-9);
        // Owner 1 inserted later, so owner 0 lost some share; both hold
        // a nonzero piece.
        assert!(llc.occupancy(0) > 400.0 && llc.occupancy(0) < 600.0);
        assert!(llc.occupancy(1) > 400.0);
        assert!(total_matches(&llc));
    }

    #[test]
    fn trasher_erodes_victim() {
        let mut llc = LlcState::new(1000.0, 2);
        llc.insert(0, 500.0, 500.0); // victim warm
        let before = llc.occupancy(0);
        for _ in 0..50 {
            llc.insert(1, 100.0, 1e9); // trasher streams through
        }
        assert!(
            llc.occupancy(0) < before / 2.0,
            "victim should lose most of its footprint, kept {}",
            llc.occupancy(0)
        );
        assert!(total_matches(&llc));
    }

    #[test]
    fn evict_owner_clears() {
        let mut llc = LlcState::new(1000.0, 2);
        llc.insert(0, 400.0, 1e9);
        llc.insert(1, 300.0, 1e9);
        llc.evict_owner(0);
        assert_eq!(llc.occupancy(0), 0.0);
        assert!((llc.total() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn ensure_owners_extends() {
        let mut llc = LlcState::new(100.0, 0);
        llc.insert(5, 10.0, 100.0);
        assert_eq!(llc.occupancy(5), 10.0);
        assert_eq!(llc.occupancy(3), 0.0);
    }

    #[test]
    fn pressure_range() {
        let mut llc = LlcState::new(100.0, 1);
        assert_eq!(llc.pressure(), 0.0);
        llc.insert(0, 250.0, 1e9);
        assert_eq!(llc.pressure(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LlcState::new(0.0, 1);
    }

    #[test]
    fn recency_protects_an_active_victim() {
        // A victim that keeps referencing its lines must survive a
        // streaming trasher far better than a stale one.
        let mut active = LlcState::new(1000.0, 2);
        active.insert(0, 500.0, 500.0);
        let mut stale = active.clone();
        for _ in 0..100 {
            active.touch(0); // victim keeps hitting
            active.insert(1, 50.0, 1e9);
            stale.insert(1, 50.0, 1e9); // victim never referenced
        }
        assert!(
            active.occupancy(0) > 2.0 * stale.occupancy(0),
            "recency must protect: active={} stale={}",
            active.occupancy(0),
            stale.occupancy(0)
        );
    }

    #[test]
    fn llc_lean_matches_insert() {
        // insert_lean must be bit-identical to insert over arbitrary
        // operation sequences: same occupancies, totals and freshness.
        let mut rng = aql_sim::rng::SimRng::seed_from(42);
        for owners in [1usize, 2, 7, 32] {
            let mut a = LlcState::new(8_388_608.0, owners);
            let mut b = LlcState::new(8_388_608.0, owners);
            for step in 0..2_000 {
                let owner = rng.uniform_u64(0, owners as u64) as usize;
                match rng.uniform_u64(0, 4) {
                    0 => {
                        let frac = rng.unit_f64() * 1.5;
                        a.touch_frac(owner, frac);
                        b.touch_frac(owner, frac);
                    }
                    _ => {
                        let bytes = rng.unit_f64() * 2_000_000.0;
                        let max = if rng.chance(0.3) {
                            1e9
                        } else {
                            rng.unit_f64() * 9_000_000.0
                        };
                        a.insert(owner, bytes, max);
                        b.insert_lean(owner, bytes, max);
                    }
                }
                assert_eq!(a.total().to_bits(), b.total().to_bits(), "step {step}");
                assert_eq!(a.epoch(), b.epoch(), "epoch diverged at step {step}");
                for i in 0..owners {
                    assert_eq!(
                        a.occupancy(i).to_bits(),
                        b.occupancy(i).to_bits(),
                        "occ[{i}] diverged at step {step}"
                    );
                    assert_eq!(
                        a.freshness(i).to_bits(),
                        b.freshness(i).to_bits(),
                        "freshness[{i}] diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn epoch_tracks_mutations_only() {
        let mut llc = LlcState::new(1000.0, 2);
        let e0 = llc.epoch();
        llc.touch_frac(0, 0.5); // pure re-reference: no occupancy change
        assert_eq!(llc.epoch(), e0, "touches must not bump the epoch");
        llc.insert(0, 10.0, 1e9);
        assert_ne!(llc.epoch(), e0, "insertions must bump the epoch");
        let e1 = llc.epoch();
        llc.insert(0, 0.0, 1e9); // zero-byte insert changes nothing
        assert_eq!(llc.epoch(), e1);
        llc.evict_owner(0);
        assert_ne!(llc.epoch(), e1, "owner eviction must bump the epoch");
        let e2 = llc.epoch();
        llc.evict_owner(1); // owner 1 holds nothing
        assert_eq!(llc.epoch(), e2);
    }

    #[test]
    fn eviction_conserves_capacity() {
        let mut llc = LlcState::new(1000.0, 3);
        for i in 0..3 {
            llc.insert(i, 900.0, 1e9);
        }
        assert!(llc.total() <= 1000.0 + 1e-6);
        let sum: f64 = (0..3).map(|i| llc.occupancy(i)).sum();
        assert!((sum - llc.total()).abs() < 1e-6);
        for i in 0..3 {
            assert!(llc.occupancy(i) >= 0.0);
        }
    }

    #[test]
    fn armed_auditor_admits_allowed_owners() {
        let mut llc = LlcState::new(1000.0, 4);
        llc.audit_arm(&[1, 2]);
        llc.insert(1, 100.0, 1e9);
        llc.insert_lean(2, 100.0, 1e9);
        llc.touch_frac(1, 0.5);
        llc.evict_owner(2);
        llc.audit_disarm();
        // Disarmed: every owner is fair game again.
        llc.insert(0, 50.0, 1e9);
        llc.touch_frac(3, 1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "LLC access audit")]
    fn armed_auditor_rejects_cross_lane_mutation() {
        let mut llc = LlcState::new(1000.0, 4);
        llc.audit_arm(&[0, 1]);
        llc.insert_lean(3, 100.0, 1e9);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "LLC access audit")]
    fn armed_auditor_rejects_cross_lane_touch() {
        let mut llc = LlcState::new(1000.0, 4);
        llc.audit_arm(&[2]);
        llc.touch_frac(0, 0.1);
    }
}
