//! Shared last-level cache occupancy model.
//!
//! The LLC is modelled as a capacity shared by *owners* (vCPUs): each
//! owner has a resident footprint in bytes. Misses fetch lines and grow
//! the owner's footprint; when the sum exceeds capacity every footprint
//! is scaled down proportionally — a smooth approximation of random
//! replacement that reproduces the paper's contention effects:
//! trashing owners (`LLCO`) with huge fetch rates erode the footprint
//! of cache-friendly owners (`LLCF`) while those are descheduled.

/// Freshness decay constant: after `FRESH_TAU × capacity` bytes of new
/// insertions, an owner's freshness drops by `1/e` unless it keeps
/// re-referencing its set.
const FRESH_TAU: f64 = 0.5;
/// How much more evictable a fully-stale byte is than a fresh one.
const STALE_BOOST: f64 = 20.0;

/// Per-socket shared LLC state.
///
/// Owner indices are dense (global vCPU indices); occupancy is tracked
/// in fractional bytes. Eviction approximates LRU through per-owner
/// *freshness* — the fraction of the owner's resident set recently
/// re-referenced ([`LlcState::touch_frac`]): victims are chosen in
/// proportion to `occupancy × (1 + STALE_BOOST × (1 − freshness))`.
/// A cache-friendly owner that re-touches its whole set every
/// millisecond stays fresh and protected; a streaming trasher touches
/// each of its lines only once per long pass, stays stale, and its own
/// dead lines absorb most of the eviction pressure — exactly how
/// set-recency behaves on real hardware.
///
/// # Examples
///
/// ```
/// use aql_mem::LlcState;
///
/// let mut llc = LlcState::new(1024.0, 2);
/// llc.insert(0, 800.0, 4096.0);
/// llc.insert(1, 800.0, 4096.0);
/// // Capacity pressure scaled both footprints down to fit.
/// assert!(llc.total() <= 1024.0 + 1e-9);
/// assert!(llc.occupancy(0) > 0.0 && llc.occupancy(1) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LlcState {
    capacity: f64,
    occ: Vec<f64>,
    total: f64,
    freshness: Vec<f64>,
    /// Reused eviction-weight buffer for [`LlcState::insert_lean`], so
    /// the lean path performs no allocation in steady state.
    scratch: Vec<f64>,
}

impl LlcState {
    /// Creates an empty LLC of `capacity` bytes for `owners` owners.
    pub fn new(capacity: f64, owners: usize) -> Self {
        assert!(capacity > 0.0, "LLC capacity must be positive");
        LlcState {
            capacity,
            occ: vec![0.0; owners],
            total: 0.0,
            freshness: vec![0.0; owners],
            scratch: Vec::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Resident footprint of `owner` in bytes.
    pub fn occupancy(&self, owner: usize) -> f64 {
        self.occ.get(owner).copied().unwrap_or(0.0)
    }

    /// Sum of all footprints.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Grows the index space to hold at least `owners` owners.
    pub fn ensure_owners(&mut self, owners: usize) {
        if self.occ.len() < owners {
            self.occ.resize(owners, 0.0);
            self.freshness.resize(owners, 0.0);
        }
    }

    /// Records that `owner` re-referenced `frac` of its working set
    /// (`frac` may exceed 1; freshness saturates at 1).
    pub fn touch_frac(&mut self, owner: usize, frac: f64) {
        self.ensure_owners(owner + 1);
        let f = &mut self.freshness[owner];
        *f = (*f + frac.max(0.0)).min(1.0);
    }

    /// Marks the owner's whole resident set as recently used.
    pub fn touch(&mut self, owner: usize) {
        self.touch_frac(owner, 1.0);
    }

    /// Current freshness of an owner, in `[0, 1]`.
    pub fn freshness(&self, owner: usize) -> f64 {
        self.freshness.get(owner).copied().unwrap_or(0.0)
    }

    /// Fetches `bytes` for `owner` (footprint capped at `max_bytes`,
    /// normally the owner's working-set size), then resolves capacity
    /// pressure by evicting in proportion to occupancy × staleness
    /// (LRU approximation via freshness).
    pub fn insert(&mut self, owner: usize, bytes: f64, max_bytes: f64) {
        debug_assert!(bytes >= 0.0 && max_bytes >= 0.0);
        self.ensure_owners(owner + 1);
        let cur = self.occ[owner];
        let grown = (cur + bytes).min(max_bytes.max(cur));
        self.total += grown - cur;
        self.occ[owner] = grown;
        // New insertions age everyone else's lines.
        if bytes > 0.0 {
            let decay = (-bytes / (self.capacity * FRESH_TAU)).exp();
            for (i, f) in self.freshness.iter_mut().enumerate() {
                if i != owner {
                    *f *= decay;
                }
            }
        }
        let mut overflow = self.total - self.capacity;
        if overflow <= 0.0 {
            return;
        }
        // Weighted eviction with clamping; a few passes suffice, then
        // fall back to plain proportional scaling.
        for _ in 0..4 {
            if overflow <= 1e-9 {
                break;
            }
            let weights: Vec<f64> = (0..self.occ.len())
                .map(|i| {
                    if self.occ[i] > 0.0 {
                        self.occ[i] * (1.0 + STALE_BOOST * (1.0 - self.freshness[i]))
                    } else {
                        0.0
                    }
                })
                .collect();
            let wsum: f64 = weights.iter().sum();
            if wsum <= 0.0 {
                break;
            }
            let mut evicted = 0.0;
            for (occ, w) in self.occ.iter_mut().zip(&weights) {
                let want = overflow * w / wsum;
                let take = want.min(*occ);
                *occ -= take;
                evicted += take;
            }
            overflow -= evicted;
            if evicted <= 1e-12 {
                break;
            }
        }
        if overflow > 1e-9 {
            // Degenerate weights: plain proportional fallback.
            let sum: f64 = self.occ.iter().sum();
            if sum > 0.0 {
                let scale = (sum - overflow).max(0.0) / sum;
                for o in &mut self.occ {
                    *o *= scale;
                }
            }
        }
        self.total = self.occ.iter().sum();
    }

    /// Bit-identical fast variant of [`LlcState::insert`].
    ///
    /// Performs exactly the same floating-point operations in exactly
    /// the same order, but reuses a scratch buffer for the eviction
    /// weights (no allocation) and skips terms that are exactly zero
    /// (`x + 0.0` and `0.0 × d` are exact, so skipping them cannot
    /// change any bit of the result). The engine's adaptive time-advance
    /// routes execution through this path; the dense conformance oracle
    /// keeps calling [`LlcState::insert`]. `llc_lean_matches_insert`
    /// (property test) asserts the bitwise equivalence.
    pub fn insert_lean(&mut self, owner: usize, bytes: f64, max_bytes: f64) {
        debug_assert!(bytes >= 0.0 && max_bytes >= 0.0);
        self.ensure_owners(owner + 1);
        let cur = self.occ[owner];
        let grown = (cur + bytes).min(max_bytes.max(cur));
        self.total += grown - cur;
        self.occ[owner] = grown;
        // New insertions age everyone else's lines. Fully-stale owners
        // (freshness exactly 0) stay at 0 under any decay, so skip them.
        if bytes > 0.0 {
            let decay = (-bytes / (self.capacity * FRESH_TAU)).exp();
            for (i, f) in self.freshness.iter_mut().enumerate() {
                if i != owner && *f != 0.0 {
                    *f *= decay;
                }
            }
        }
        let mut overflow = self.total - self.capacity;
        if overflow <= 0.0 {
            return;
        }
        let mut weights = std::mem::take(&mut self.scratch);
        for _ in 0..4 {
            if overflow <= 1e-9 {
                break;
            }
            weights.clear();
            weights.extend((0..self.occ.len()).map(|i| {
                if self.occ[i] > 0.0 {
                    self.occ[i] * (1.0 + STALE_BOOST * (1.0 - self.freshness[i]))
                } else {
                    0.0
                }
            }));
            let wsum: f64 = weights.iter().sum();
            if wsum <= 0.0 {
                break;
            }
            let mut evicted = 0.0;
            for (occ, w) in self.occ.iter_mut().zip(&weights) {
                // Zero-weight owners contribute an exact 0.0 take.
                if *w == 0.0 {
                    continue;
                }
                let want = overflow * w / wsum;
                let take = want.min(*occ);
                *occ -= take;
                evicted += take;
            }
            overflow -= evicted;
            if evicted <= 1e-12 {
                break;
            }
        }
        self.scratch = weights;
        if overflow > 1e-9 {
            // Degenerate weights: plain proportional fallback.
            let sum: f64 = self.occ.iter().sum();
            if sum > 0.0 {
                let scale = (sum - overflow).max(0.0) / sum;
                for o in &mut self.occ {
                    *o *= scale;
                }
            }
        }
        self.total = self.occ.iter().sum();
    }

    /// Removes the owner's footprint entirely (socket migration or VM
    /// teardown).
    pub fn evict_owner(&mut self, owner: usize) {
        if let Some(o) = self.occ.get_mut(owner) {
            self.total -= *o;
            *o = 0.0;
            if self.total < 0.0 {
                self.total = 0.0;
            }
        }
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        (self.total / self.capacity).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_matches(llc: &LlcState) -> bool {
        let sum: f64 = (0..llc.occ.len()).map(|i| llc.occupancy(i)).sum();
        (sum - llc.total()).abs() < 1e-6
    }

    #[test]
    fn insert_grows_footprint() {
        let mut llc = LlcState::new(1000.0, 1);
        llc.insert(0, 100.0, 500.0);
        assert_eq!(llc.occupancy(0), 100.0);
        llc.insert(0, 100.0, 500.0);
        assert_eq!(llc.occupancy(0), 200.0);
        assert!(total_matches(&llc));
    }

    #[test]
    fn footprint_capped_at_wss() {
        let mut llc = LlcState::new(1000.0, 1);
        llc.insert(0, 900.0, 300.0);
        assert_eq!(llc.occupancy(0), 300.0);
    }

    #[test]
    fn capacity_pressure_scales_everyone() {
        let mut llc = LlcState::new(1000.0, 2);
        llc.insert(0, 600.0, 1e9);
        llc.insert(1, 600.0, 1e9);
        assert!((llc.total() - 1000.0).abs() < 1e-9);
        // Owner 1 inserted later, so owner 0 lost some share; both hold
        // a nonzero piece.
        assert!(llc.occupancy(0) > 400.0 && llc.occupancy(0) < 600.0);
        assert!(llc.occupancy(1) > 400.0);
        assert!(total_matches(&llc));
    }

    #[test]
    fn trasher_erodes_victim() {
        let mut llc = LlcState::new(1000.0, 2);
        llc.insert(0, 500.0, 500.0); // victim warm
        let before = llc.occupancy(0);
        for _ in 0..50 {
            llc.insert(1, 100.0, 1e9); // trasher streams through
        }
        assert!(
            llc.occupancy(0) < before / 2.0,
            "victim should lose most of its footprint, kept {}",
            llc.occupancy(0)
        );
        assert!(total_matches(&llc));
    }

    #[test]
    fn evict_owner_clears() {
        let mut llc = LlcState::new(1000.0, 2);
        llc.insert(0, 400.0, 1e9);
        llc.insert(1, 300.0, 1e9);
        llc.evict_owner(0);
        assert_eq!(llc.occupancy(0), 0.0);
        assert!((llc.total() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn ensure_owners_extends() {
        let mut llc = LlcState::new(100.0, 0);
        llc.insert(5, 10.0, 100.0);
        assert_eq!(llc.occupancy(5), 10.0);
        assert_eq!(llc.occupancy(3), 0.0);
    }

    #[test]
    fn pressure_range() {
        let mut llc = LlcState::new(100.0, 1);
        assert_eq!(llc.pressure(), 0.0);
        llc.insert(0, 250.0, 1e9);
        assert_eq!(llc.pressure(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LlcState::new(0.0, 1);
    }

    #[test]
    fn recency_protects_an_active_victim() {
        // A victim that keeps referencing its lines must survive a
        // streaming trasher far better than a stale one.
        let mut active = LlcState::new(1000.0, 2);
        active.insert(0, 500.0, 500.0);
        let mut stale = active.clone();
        for _ in 0..100 {
            active.touch(0); // victim keeps hitting
            active.insert(1, 50.0, 1e9);
            stale.insert(1, 50.0, 1e9); // victim never referenced
        }
        assert!(
            active.occupancy(0) > 2.0 * stale.occupancy(0),
            "recency must protect: active={} stale={}",
            active.occupancy(0),
            stale.occupancy(0)
        );
    }

    #[test]
    fn llc_lean_matches_insert() {
        // insert_lean must be bit-identical to insert over arbitrary
        // operation sequences: same occupancies, totals and freshness.
        let mut rng = aql_sim::rng::SimRng::seed_from(42);
        for owners in [1usize, 2, 7, 32] {
            let mut a = LlcState::new(8_388_608.0, owners);
            let mut b = LlcState::new(8_388_608.0, owners);
            for step in 0..2_000 {
                let owner = rng.uniform_u64(0, owners as u64) as usize;
                match rng.uniform_u64(0, 4) {
                    0 => {
                        let frac = rng.unit_f64() * 1.5;
                        a.touch_frac(owner, frac);
                        b.touch_frac(owner, frac);
                    }
                    _ => {
                        let bytes = rng.unit_f64() * 2_000_000.0;
                        let max = if rng.chance(0.3) {
                            1e9
                        } else {
                            rng.unit_f64() * 9_000_000.0
                        };
                        a.insert(owner, bytes, max);
                        b.insert_lean(owner, bytes, max);
                    }
                }
                assert_eq!(a.total().to_bits(), b.total().to_bits(), "step {step}");
                for i in 0..owners {
                    assert_eq!(
                        a.occupancy(i).to_bits(),
                        b.occupancy(i).to_bits(),
                        "occ[{i}] diverged at step {step}"
                    );
                    assert_eq!(
                        a.freshness(i).to_bits(),
                        b.freshness(i).to_bits(),
                        "freshness[{i}] diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn eviction_conserves_capacity() {
        let mut llc = LlcState::new(1000.0, 3);
        for i in 0..3 {
            llc.insert(i, 900.0, 1e9);
        }
        assert!(llc.total() <= 1000.0 + 1e-6);
        let sum: f64 = (0..3).map(|i| llc.occupancy(i)).sum();
        assert!((sum - llc.total()).abs() < 1e-6);
        for i in 0..3 {
            assert!(llc.occupancy(i) >= 0.0);
        }
    }
}
