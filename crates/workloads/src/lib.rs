//! Synthetic guest workloads.
//!
//! One workload model per application class the paper identifies
//! (§3.2), each reproducing the mechanism that makes its class
//! quantum-sensitive (or agnostic):
//!
//! * [`memwalk`] — CPU-burn workloads parameterised by working-set
//!   size: `LLCF` (fits LLC), `LoLCF` (fits L2), `LLCO` (overflows),
//!   standing in for the linked-list walker of \[27\] and the SPEC
//!   CPU2006 programs.
//! * [`ioserver`] — an open-loop request server (SPECweb2009 /
//!   SPECmail2009 / Wordpress): Poisson arrivals, per-request service
//!   bursts, optional CGI-style heavy bursts that defeat Xen's BOOST.
//! * [`spinjob`] — a multi-threaded job synchronising over a ticket
//!   spin-lock (kernbench / PARSEC), exhibiting lock-holder and
//!   lock-waiter preemption.
//! * [`phased`] — a workload that changes class over time, exercising
//!   the dynamic part of vTRS.
//! * [`idle`] — a permanently blocked VM, for padding scenarios.
//! * [`catalog`] — named SPEC CPU2006 / PARSEC / SPECweb / SPECmail
//!   models with the ground-truth types of the paper's Table 3.
//! * [`spec`] — declarative [`WorkloadSpec`] tokens
//!   (`io/heterogeneous/120`, `walk/llcf`, `app/mcf`, …): the
//!   vocabulary scenario files use to name any of the above.
//! * [`fault`] — [`FaultyWorkload`], a wrapper injecting one
//!   deterministic failure mode (`panic@<t>`, `hang`, `nan-rate`,
//!   `horizon-lie`, `coalesce-break`) to prove the harness's
//!   degradation paths end to end.

#![warn(missing_docs)]

pub mod catalog;
pub mod fault;
pub mod idle;
pub mod ioserver;
pub mod memwalk;
pub mod phased;
pub mod spec;
pub mod spinjob;

pub use catalog::{all_apps, build_app_vm, find_app, AppEntry};
pub use fault::{FaultSpec, FaultyWorkload};
pub use idle::IdleWorkload;
pub use ioserver::{IoServer, IoServerCfg};
pub use memwalk::MemWalk;
pub use phased::PhasedMemWalk;
pub use spec::{IoRegime, WorkloadSpec};
pub use spinjob::{SpinJob, SpinJobCfg};
