//! A permanently idle VM.

use aql_hv::workload::{
    ExecContext, GuestWorkload, Horizon, RunOutcome, StopReason, TimerFire, WorkloadMetrics,
};
use aql_sim::time::SimTime;

/// A VM that never wants the CPU; useful as scenario padding and in
/// scheduler tests.
#[derive(Debug, Clone)]
pub struct IdleWorkload {
    name: String,
    slots: usize,
}

impl IdleWorkload {
    /// Creates an idle workload driving `slots` vCPUs.
    pub fn new(name: &str, slots: usize) -> Self {
        IdleWorkload {
            name: name.to_string(),
            slots,
        }
    }
}

impl GuestWorkload for IdleWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn vcpu_slots(&self) -> usize {
        self.slots
    }

    fn run(&mut self, _slot: usize, _budget_ns: u64, _ctx: &mut ExecContext<'_>) -> RunOutcome {
        RunOutcome {
            used_ns: 0,
            stop: StopReason::Blocked,
        }
    }

    fn runnable(&self, _slot: usize) -> bool {
        false
    }

    fn horizon(&self, _slot: usize, _now: SimTime) -> Horizon {
        // Never runnable, so the question should not arise — but if a
        // slot were ever dispatched it would block immediately, which
        // is exactly what Unknown tells the engine to expect.
        Horizon::Unknown
    }

    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        None
    }

    fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
        TimerFire::default()
    }

    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_hv::{MachineSpec, SimulationBuilder, VmSpec};
    use aql_mem::CacheSpec;
    use aql_sim::time::SEC;

    #[test]
    fn idle_vm_consumes_nothing() {
        let mut sim =
            SimulationBuilder::new(MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770()))
                .vm(
                    VmSpec::smp("idle", 2),
                    Box::new(IdleWorkload::new("idle", 2)),
                )
                .build();
        sim.run_for(SEC);
        let report = sim.report();
        assert_eq!(report.vms[0].cpu_ns(), 0);
        assert_eq!(report.utilisation(), 0.0);
    }
}
