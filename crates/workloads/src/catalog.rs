//! The named application catalog.
//!
//! The paper evaluates with SPECweb2009, SPECmail2009, SPEC CPU2006 and
//! PARSEC; Table 3 records the type vTRS detects for each program. This
//! catalog maps every one of those names to a synthetic model whose
//! memory/IO/synchronisation behaviour matches the program's known
//! class, with per-program parameter diversity so no two models are
//! identical. The `class` field is the ground truth the recognition
//! experiments (Fig. 4, Fig. 5, Table 3) validate against.

use aql_hv::apptype::VcpuType;
use aql_hv::workload::GuestWorkload;
use aql_hv::VmSpec;
use aql_mem::{CacheSpec, MemProfile};
use aql_sim::time::US;

use crate::ioserver::{IoServer, IoServerCfg};
use crate::memwalk::MemWalk;
use crate::spinjob::{SpinJob, SpinJobCfg};

/// A named application with its ground-truth class (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppEntry {
    /// Program name as the paper spells it.
    pub name: &'static str,
    /// Ground-truth type (Table 3).
    pub class: VcpuType,
    /// vCPUs of the VM hosting the program.
    pub vcpus: usize,
    /// Benchmark suite the program belongs to.
    pub suite: &'static str,
}

const fn app(name: &'static str, class: VcpuType, vcpus: usize, suite: &'static str) -> AppEntry {
    AppEntry {
        name,
        class,
        vcpus,
        suite,
    }
}

/// Every application of the paper's Table 3 plus the calibration
/// micro-benchmarks, in presentation order.
pub const APPS: &[AppEntry] = &[
    // IO-intensive reference benchmarks.
    app("SPECweb2009", VcpuType::IoInt, 1, "SPECweb"),
    app("SPECmail2009", VcpuType::IoInt, 1, "SPECmail"),
    app("wordpress", VcpuType::IoInt, 1, "micro"),
    // ConSpin: PARSEC plus the kernbench calibration benchmark.
    app("kernbench", VcpuType::ConSpin, 4, "micro"),
    app("bodytrack", VcpuType::ConSpin, 4, "PARSEC"),
    app("blackscholes", VcpuType::ConSpin, 4, "PARSEC"),
    app("canneal", VcpuType::ConSpin, 4, "PARSEC"),
    app("dedup", VcpuType::ConSpin, 4, "PARSEC"),
    app("facesim", VcpuType::ConSpin, 4, "PARSEC"),
    app("ferret", VcpuType::ConSpin, 4, "PARSEC"),
    app("fluidanimate", VcpuType::ConSpin, 4, "PARSEC"),
    app("freqmine", VcpuType::ConSpin, 4, "PARSEC"),
    app("raytrace", VcpuType::ConSpin, 4, "PARSEC"),
    app("streamcluster", VcpuType::ConSpin, 4, "PARSEC"),
    app("vips", VcpuType::ConSpin, 4, "PARSEC"),
    app("x264", VcpuType::ConSpin, 4, "PARSEC"),
    // LLCF: SPEC CPU2006 programs whose WSS fits the LLC.
    app("astar", VcpuType::Llcf, 1, "SPEC CPU2006"),
    app("xalancbmk", VcpuType::Llcf, 1, "SPEC CPU2006"),
    app("bzip2", VcpuType::Llcf, 1, "SPEC CPU2006"),
    app("gcc", VcpuType::Llcf, 1, "SPEC CPU2006"),
    app("omnetpp", VcpuType::Llcf, 1, "SPEC CPU2006"),
    // LoLCF: WSS fits the private caches.
    app("hmmer", VcpuType::Lolcf, 1, "SPEC CPU2006"),
    app("gobmk", VcpuType::Lolcf, 1, "SPEC CPU2006"),
    app("perlbench", VcpuType::Lolcf, 1, "SPEC CPU2006"),
    app("sjeng", VcpuType::Lolcf, 1, "SPEC CPU2006"),
    app("h264ref", VcpuType::Lolcf, 1, "SPEC CPU2006"),
    // LLCO: WSS overflows the LLC.
    app("mcf", VcpuType::Llco, 1, "SPEC CPU2006"),
    app("libquantum", VcpuType::Llco, 1, "SPEC CPU2006"),
];

/// All catalog entries.
pub fn all_apps() -> &'static [AppEntry] {
    APPS
}

/// Looks an entry up by name.
pub fn find_app(name: &str) -> Option<&'static AppEntry> {
    APPS.iter().find(|a| a.name == name)
}

fn llcf_profile(cache: &CacheSpec, wss_frac_of_llc: f64, refs: f64) -> MemProfile {
    MemProfile {
        wss_bytes: (cache.llc_bytes as f64 * wss_frac_of_llc) as u64,
        deep_refs_per_instr: refs,
        base_ns_per_instr: 0.40,
    }
}

fn lolcf_profile(cache: &CacheSpec, wss_frac_of_l2: f64, refs: f64) -> MemProfile {
    MemProfile {
        wss_bytes: (cache.l2_bytes as f64 * wss_frac_of_l2) as u64,
        deep_refs_per_instr: refs,
        base_ns_per_instr: 0.40,
    }
}

fn llco_profile(cache: &CacheSpec, wss_mult_of_llc: f64, refs: f64) -> MemProfile {
    MemProfile {
        wss_bytes: (cache.llc_bytes as f64 * wss_mult_of_llc) as u64,
        deep_refs_per_instr: refs,
        base_ns_per_instr: 0.40,
    }
}

fn spin_cfg(threads: usize, work_us: u64, cs_us: u64) -> SpinJobCfg {
    SpinJobCfg {
        threads,
        work_ns: work_us * US,
        cs_ns: cs_us * US,
        ..SpinJobCfg::kernbench(threads)
    }
}

/// Builds the VM spec and workload for a named application.
///
/// Returns `None` for unknown names. The `seed` feeds the workload's
/// private random stream so co-located instances de-correlate.
pub fn build_app_vm(
    name: &str,
    cache: &CacheSpec,
    seed: u64,
) -> Option<(VmSpec, Box<dyn GuestWorkload>)> {
    let entry = find_app(name)?;
    // Weight scales with vCPU count (standard sizing), so SMP jobs get
    // a full per-vCPU share next to single-vCPU neighbours.
    let vm = VmSpec {
        weight: 256 * entry.vcpus as u32,
        ..VmSpec::smp(name, entry.vcpus)
    };
    let wl: Box<dyn GuestWorkload> = match name {
        // --- IO ---
        "SPECweb2009" => Box::new(IoServer::new(name, IoServerCfg::heterogeneous(120.0), seed)),
        "SPECmail2009" => Box::new(IoServer::new(name, IoServerCfg::mail(200.0), seed)),
        "wordpress" => Box::new(IoServer::new(name, IoServerCfg::heterogeneous(80.0), seed)),
        // --- ConSpin ---
        "kernbench" => Box::new(SpinJob::new(name, spin_cfg(4, 40, 6), seed)),
        "bodytrack" => Box::new(SpinJob::new(name, spin_cfg(4, 45, 5), seed)),
        // blackscholes and freqmine are the least lock-intensive
        // PARSEC kernels; their ConSpin signature comes from
        // fine-grained per-timestep barriers.
        "blackscholes" => Box::new(SpinJob::new(
            name,
            SpinJobCfg {
                phase_work_ns: 6 * aql_sim::time::MS,
                ..spin_cfg(4, 60, 4)
            },
            seed,
        )),
        "canneal" => Box::new(SpinJob::new(name, spin_cfg(4, 40, 6), seed)),
        "dedup" => Box::new(SpinJob::new(name, spin_cfg(4, 35, 5), seed)),
        "facesim" => Box::new(SpinJob::new(name, spin_cfg(4, 50, 7), seed)),
        "ferret" => Box::new(SpinJob::new(name, spin_cfg(4, 45, 6), seed)),
        "fluidanimate" => Box::new(SpinJob::new(name, spin_cfg(4, 30, 6), seed)),
        "freqmine" => Box::new(SpinJob::new(
            name,
            SpinJobCfg {
                phase_work_ns: 6 * aql_sim::time::MS,
                ..spin_cfg(4, 55, 5)
            },
            seed,
        )),
        "raytrace" => Box::new(SpinJob::new(name, spin_cfg(4, 65, 4), seed)),
        "streamcluster" => Box::new(SpinJob::new(name, spin_cfg(4, 40, 8), seed)),
        "vips" => Box::new(SpinJob::new(name, spin_cfg(4, 50, 5), seed)),
        "x264" => Box::new(SpinJob::new(name, spin_cfg(4, 45, 4), seed)),
        // --- LLCF ---
        "astar" => Box::new(MemWalk::new(name, llcf_profile(cache, 0.45, 0.07))),
        "xalancbmk" => Box::new(MemWalk::new(name, llcf_profile(cache, 0.50, 0.09))),
        "bzip2" => Box::new(MemWalk::new(name, llcf_profile(cache, 0.40, 0.06))),
        "gcc" => Box::new(MemWalk::new(name, llcf_profile(cache, 0.55, 0.08))),
        "omnetpp" => Box::new(MemWalk::new(name, llcf_profile(cache, 0.60, 0.09))),
        // --- LoLCF ---
        "hmmer" => Box::new(MemWalk::new(name, lolcf_profile(cache, 0.80, 0.05))),
        "gobmk" => Box::new(MemWalk::new(name, lolcf_profile(cache, 0.60, 0.04))),
        "perlbench" => Box::new(MemWalk::new(name, lolcf_profile(cache, 0.70, 0.05))),
        "sjeng" => Box::new(MemWalk::new(name, lolcf_profile(cache, 0.50, 0.03))),
        "h264ref" => Box::new(MemWalk::new(name, lolcf_profile(cache, 0.90, 0.06))),
        // --- LLCO ---
        "mcf" => Box::new(MemWalk::new(name, llco_profile(cache, 3.0, 0.10))),
        "libquantum" => Box::new(MemWalk::new(name, llco_profile(cache, 4.0, 0.12))),
        _ => return None,
    };
    Some((vm, wl))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_entry_builds() {
        let cache = CacheSpec::i7_3770();
        for entry in all_apps() {
            let (vm, wl) = build_app_vm(entry.name, &cache, 42)
                .unwrap_or_else(|| panic!("{} must build", entry.name));
            assert_eq!(vm.vcpus, entry.vcpus, "{}", entry.name);
            assert_eq!(wl.vcpu_slots(), entry.vcpus, "{}", entry.name);
            assert_eq!(wl.name(), entry.name);
        }
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(build_app_vm("doom", &CacheSpec::i7_3770(), 1).is_none());
        assert!(find_app("doom").is_none());
    }

    #[test]
    fn table3_composition() {
        // The counts per class as reported in Table 3 plus the three
        // calibration micro-benchmarks.
        let count = |c: VcpuType| all_apps().iter().filter(|a| a.class == c).count();
        assert_eq!(count(VcpuType::IoInt), 3);
        assert_eq!(count(VcpuType::ConSpin), 13);
        assert_eq!(count(VcpuType::Llcf), 5);
        assert_eq!(count(VcpuType::Lolcf), 5);
        assert_eq!(count(VcpuType::Llco), 2);
    }

    #[test]
    fn llcf_models_fit_llc_but_not_l2() {
        let cache = CacheSpec::i7_3770();
        for entry in all_apps().iter().filter(|a| a.class == VcpuType::Llcf) {
            let (_, wl) = build_app_vm(entry.name, &cache, 1).unwrap();
            // All LLCF programs are MemWalk models; re-derive the
            // profile from the same constructor to check geometry.
            drop(wl);
        }
        let p = llcf_profile(&cache, 0.5, 0.08);
        assert!(p.wss_bytes > cache.l2_bytes);
        assert!(p.wss_bytes <= cache.llc_bytes);
        let q = lolcf_profile(&cache, 0.8, 0.05);
        assert!(q.wss_bytes <= cache.l2_bytes);
        let r = llco_profile(&cache, 3.0, 0.1);
        assert!(r.wss_bytes > cache.llc_bytes);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate catalog names");
    }
}
