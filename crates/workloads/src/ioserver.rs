//! An open-loop IO request server.
//!
//! Models the paper's `IOInt` class (SPECweb2009, SPECmail2009,
//! Wordpress): requests arrive as a Poisson process over the event
//! channel, each costing a short CPU service burst. Two regimes matter
//! for Fig. 2(a)/(b):
//!
//! * **Exclusive IO** — tiny service bursts, low CPU utilisation. The
//!   vCPU is almost always blocked when a request arrives, so Xen's
//!   BOOST wakes it immediately: latency is quantum-agnostic.
//! * **Heterogeneous** — the server also executes CGI-style background
//!   computation, so its vCPU always has CPU work pending and "consumes
//!   its entire quantum" (§3.4.2). It is never blocked when a request
//!   arrives, BOOST never applies, and each request waits for the
//!   vCPU's round-robin turn — a delay proportional to the co-runners'
//!   quantum length.
//!
//! The latency of every completed request (arrival → completion,
//! including queueing across scheduling delays) is recorded.

use std::collections::VecDeque;

use aql_hv::workload::{
    CoalesceHint, CoalesceProbe, ExecContext, GuestWorkload, Horizon, LatencySummary, RunOutcome,
    StopReason, TimerFire, WorkloadMetrics,
};
use aql_mem::MemProfile;
use aql_sim::rng::SimRng;
use aql_sim::stats::SampleSet;
use aql_sim::time::{SimTime, US};

/// Configuration of an [`IoServer`].
#[derive(Debug, Clone)]
pub struct IoServerCfg {
    /// Mean request arrival rate (requests per second, Poisson).
    pub arrival_rate_hz: f64,
    /// CPU service burst per light request (ns).
    pub service_ns: u64,
    /// Uniform jitter applied to service bursts, `[0, 1]`.
    pub service_jitter: f64,
    /// Every `heavy_every`-th request is heavy (CGI-style); `None`
    /// disables heavy requests (exclusive-IO regime).
    pub heavy_every: Option<u64>,
    /// CPU burst of a heavy request (ns).
    pub heavy_service_ns: u64,
    /// Memory profile of the service code.
    pub profile: MemProfile,
    /// Background (CGI-style) computation run whenever the request
    /// queue is empty; `Some` makes the vCPU permanently runnable,
    /// defeating BOOST — the heterogeneous regime of Fig. 2(b).
    pub background: Option<MemProfile>,
    /// Bound on the pending-request queue; beyond it requests are
    /// dropped (counted in `offered` but never completed).
    pub queue_cap: usize,
}

impl IoServerCfg {
    /// The exclusive-IO regime of Fig. 2(a): light requests only.
    pub fn exclusive(arrival_rate_hz: f64) -> Self {
        IoServerCfg {
            arrival_rate_hz,
            service_ns: 60 * US,
            service_jitter: 0.3,
            heavy_every: None,
            heavy_service_ns: 0,
            // Web/mail service code touches buffers and socket state:
            // a multi-megabyte working set with real LLC traffic (so
            // vTRS sees LLC references, as on the paper's hardware).
            profile: MemProfile {
                wss_bytes: 3 * 1024 * 1024,
                deep_refs_per_instr: 0.04,
                base_ns_per_instr: 0.40,
            },
            background: None,
            queue_cap: 4096,
        }
    }

    /// The heterogeneous regime of Fig. 2(b): the server also runs
    /// CGI scripts that consume significant CPU, so the vCPU always
    /// exhausts its quantum and never benefits from BOOST.
    pub fn heterogeneous(arrival_rate_hz: f64) -> Self {
        let base = IoServerCfg::exclusive(arrival_rate_hz);
        IoServerCfg {
            background: Some(base.profile),
            ..base
        }
    }

    /// The SPECmail2009-style regime: exclusive IO with a heavy
    /// (12 ms) delivery burst every 15th request. Shared by the
    /// catalog's `SPECmail2009` model and the `io/mail/<rate>`
    /// workload token.
    pub fn mail(arrival_rate_hz: f64) -> Self {
        IoServerCfg {
            heavy_every: Some(15),
            heavy_service_ns: 12_000 * US,
            ..IoServerCfg::exclusive(arrival_rate_hz)
        }
    }

    /// The IOInt⁺ regime of the Fig. 3 worked example: IO-intensive
    /// *and* LLC-trashing — both the request service code and the
    /// background compute stream through a working set larger than
    /// the LLC. The `io/plus/<rate>` workload token.
    pub fn plus(arrival_rate_hz: f64) -> Self {
        let trashing = MemProfile {
            wss_bytes: 32 * 1024 * 1024,
            deep_refs_per_instr: 0.08,
            base_ns_per_instr: 0.40,
        };
        IoServerCfg {
            profile: trashing,
            background: Some(trashing),
            ..IoServerCfg::exclusive(arrival_rate_hz)
        }
    }

    /// The BOOST-ablation co-runner: identical arrivals and service to
    /// [`IoServerCfg::exclusive`], but a vanishingly light background
    /// loop keeps the vCPU permanently runnable, so its wakes never
    /// qualify for BOOST ("boost off" with everything else equal).
    /// The `io/noboost/<rate>` workload token.
    pub fn noboost(arrival_rate_hz: f64) -> Self {
        IoServerCfg {
            background: Some(MemProfile {
                wss_bytes: 16 * 1024,
                deep_refs_per_instr: 0.001,
                base_ns_per_instr: 0.40,
            }),
            ..IoServerCfg::exclusive(arrival_rate_hz)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    arrival: SimTime,
    remaining_ns: u64,
}

/// A single-vCPU open-loop request server.
#[derive(Debug)]
pub struct IoServer {
    name: String,
    cfg: IoServerCfg,
    rng: SimRng,
    next_arrival: SimTime,
    queue: VecDeque<Request>,
    current: Option<Request>,
    latencies_ns: SampleSet,
    completed: u64,
    offered: u64,
    dropped: u64,
    seq: u64,
    background_ns: u64,
    /// Outstanding service demand: `current.remaining_ns` plus the
    /// queued requests' remaining service. Maintained incrementally so
    /// [`GuestWorkload::horizon`] is O(1) — the engine calls it on
    /// every quiescent-span computation.
    pending_service_ns: u64,
}

impl IoServer {
    /// Creates a server with its own deterministic arrival stream.
    pub fn new(name: &str, cfg: IoServerCfg, seed: u64) -> Self {
        assert!(cfg.arrival_rate_hz > 0.0, "arrival rate must be positive");
        let mut rng = SimRng::seed_from(seed);
        let first = SimTime(rng.exp_ns(1e9 / cfg.arrival_rate_hz).max(1));
        IoServer {
            name: name.to_string(),
            cfg,
            rng,
            next_arrival: first,
            queue: VecDeque::new(),
            current: None,
            latencies_ns: SampleSet::new(),
            completed: 0,
            offered: 0,
            dropped: 0,
            seq: 0,
            background_ns: 0,
            pending_service_ns: 0,
        }
    }

    /// Requests dropped at the queue cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// CPU time spent in background (CGI) computation.
    pub fn background_ns(&self) -> u64 {
        self.background_ns
    }

    fn service_cost(&mut self) -> u64 {
        self.seq += 1;
        let heavy = self
            .cfg
            .heavy_every
            .is_some_and(|n| n > 0 && self.seq.is_multiple_of(n));
        if heavy {
            self.rng
                .jitter_ns(self.cfg.heavy_service_ns, self.cfg.service_jitter)
        } else {
            self.rng
                .jitter_ns(self.cfg.service_ns, self.cfg.service_jitter)
        }
    }
}

impl GuestWorkload for IoServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn vcpu_slots(&self) -> usize {
        1
    }

    fn run(&mut self, slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        debug_assert_eq!(slot, 0);
        let mut used: u64 = 0;
        loop {
            if self.current.is_none() {
                self.current = self.queue.pop_front();
            }
            let Some(mut req) = self.current.take() else {
                // Queue drained: run CGI background work if configured
                // (the vCPU then never blocks), else block.
                if let Some(bg) = self.cfg.background {
                    let dt = budget_ns - used;
                    let _ = ctx.exec_mem(&bg, dt);
                    self.background_ns += dt;
                    return RunOutcome::ran_all(budget_ns);
                }
                return RunOutcome {
                    used_ns: used,
                    stop: StopReason::Blocked,
                };
            };
            if used >= budget_ns {
                self.current = Some(req);
                return RunOutcome::ran_all(budget_ns);
            }
            // Service-time batching: sweep every request that fits the
            // remaining budget into one service-profile chunk — one
            // `exec_mem` per batch instead of one per request. The
            // per-request latency stamps are untouched: each is integer
            // arithmetic on the cumulative used time (`ctx.now + used`),
            // exactly what the request-at-a-time path appended.
            let mut batch_dt: u64 = 0;
            loop {
                let dt = (budget_ns - used).min(req.remaining_ns);
                batch_dt += dt;
                used += dt;
                req.remaining_ns -= dt;
                self.pending_service_ns -= dt;
                if req.remaining_ns > 0 {
                    // Partial tail: the budget ran out mid-request.
                    self.current = Some(req);
                    break;
                }
                let done_at = ctx.now + used;
                self.latencies_ns
                    .add(done_at.saturating_since(req.arrival) as f64);
                self.completed += 1;
                match self.queue.pop_front() {
                    Some(next) if used < budget_ns => req = next,
                    Some(next) => {
                        self.current = Some(next);
                        break;
                    }
                    None => break,
                }
            }
            let profile = self.cfg.profile;
            let _ = ctx.exec_mem(&profile, batch_dt);
        }
    }

    fn runnable(&self, _slot: usize) -> bool {
        self.cfg.background.is_some() || self.current.is_some() || !self.queue.is_empty()
    }

    fn horizon(&self, _slot: usize, now: SimTime) -> Horizon {
        // With CGI background work the vCPU always has CPU to burn and
        // never blocks (the heterogeneous regime that defeats BOOST).
        if self.cfg.background.is_some() {
            return Horizon::Never;
        }
        // Exclusive IO blocks once the pending service demand is
        // consumed; until then the server is pure CPU. New arrivals
        // only extend the demand, so the bound stays sound.
        debug_assert_eq!(
            self.pending_service_ns,
            self.current.map_or(0, |r| r.remaining_ns)
                + self.queue.iter().map(|r| r.remaining_ns).sum::<u64>(),
            "pending-service accounting drifted"
        );
        if self.pending_service_ns == 0 {
            Horizon::Unknown
        } else {
            Horizon::At(now + self.pending_service_ns)
        }
    }

    fn coalesce(&self, _slot: usize, probe: &mut CoalesceProbe<'_>) -> CoalesceHint {
        // Service bursts are pure-rate when the service profile is at
        // the fixpoint: requests arrive only via timers (span
        // boundaries), the server draws from its own RNG only in
        // `on_timer`, and completion stamps are integer CPU-time
        // arithmetic — so execution is chunk-size invariant and
        // latency samples are bit-exact under coalescing. The linear
        // window must not contain the queue-drain transition unless the
        // background profile is equally linear: stopping 1 ns short of
        // the drain instant guarantees a coalesced budget can never hit
        // the Blocked (or profile-switch) boundary inside a span.
        let service_linear = self.pending_service_ns == 0 || probe.linear_rate(&self.cfg.profile);
        if !service_linear {
            return CoalesceHint::No;
        }
        let background_linear = self.cfg.background.is_some_and(|bg| probe.linear_rate(&bg));
        if background_linear {
            // Both sides of the drain are linear; the window is open.
            CoalesceHint::LinearFor(u64::MAX)
        } else if self.pending_service_ns > 1 {
            CoalesceHint::LinearFor(self.pending_service_ns - 1)
        } else {
            // Nothing to run linearly: drained (or about to), and the
            // continuation (background or block) is not coalescible.
            CoalesceHint::No
        }
    }

    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        Some(self.next_arrival)
    }

    fn on_timer(&mut self, _slot: usize, now: SimTime) -> TimerFire {
        if now < self.next_arrival {
            return TimerFire::default();
        }
        self.offered += 1;
        let cost = self.service_cost();
        if self.queue.len() >= self.cfg.queue_cap {
            self.dropped += 1;
        } else {
            self.queue.push_back(Request {
                arrival: self.next_arrival,
                remaining_ns: cost,
            });
            self.pending_service_ns += cost;
        }
        let gap = self.rng.exp_ns(1e9 / self.cfg.arrival_rate_hz).max(1);
        self.next_arrival = SimTime(self.next_arrival.as_ns() + gap);
        TimerFire {
            io_events: 1,
            wake: true,
        }
    }

    fn metrics(&self) -> WorkloadMetrics {
        let mut lat = self.latencies_ns.clone();
        let latency = LatencySummary {
            count: lat.len() as u64,
            mean_ns: lat.mean(),
            p95_ns: lat.p95().unwrap_or(0.0),
            p99_ns: lat.p99().unwrap_or(0.0),
            max_ns: lat.quantile(1.0).unwrap_or(0.0),
            nan_samples: lat.nan_count(),
        };
        WorkloadMetrics::Io {
            latency,
            completed: self.completed,
            offered: self.offered,
        }
    }

    fn reset_metrics(&mut self) {
        self.latencies_ns = SampleSet::new();
        self.completed = 0;
        self.offered = 0;
        self.dropped = 0;
        self.background_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memwalk::MemWalk;
    use aql_hv::{FixedQuantumPolicy, MachineSpec, SimulationBuilder, VmSpec};
    use aql_mem::CacheSpec;
    use aql_sim::time::{MS, SEC};

    fn one_core() -> MachineSpec {
        MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770())
    }

    fn mean_latency_ms(report: &aql_hv::RunReport, name: &str) -> f64 {
        let WorkloadMetrics::Io { latency, .. } = &report.vm_by_name(name).unwrap().metrics else {
            panic!("expected Io metrics");
        };
        latency.mean_ns / MS as f64
    }

    fn completed(report: &aql_hv::RunReport, name: &str) -> u64 {
        let WorkloadMetrics::Io { completed, .. } = &report.vm_by_name(name).unwrap().metrics
        else {
            panic!("expected Io metrics");
        };
        *completed
    }

    #[test]
    fn solo_server_has_microsecond_latency() {
        let mut sim = SimulationBuilder::new(one_core())
            .vm(
                VmSpec::single("web"),
                Box::new(IoServer::new("web", IoServerCfg::exclusive(200.0), 7)),
            )
            .build();
        sim.run_for(5 * SEC);
        let report = sim.report();
        assert!(completed(&report, "web") > 800, "requests should complete");
        let lat = mean_latency_ms(&report, "web");
        assert!(
            lat < 0.5,
            "solo latency should be sub-half-millisecond, got {lat}ms"
        );
    }

    #[test]
    fn boost_keeps_exclusive_io_latency_flat_across_quanta() {
        // Fig. 2(a): with co-runners, an exclusive-IO vCPU wakes with
        // BOOST and its latency barely depends on the quantum.
        let run = |quantum: u64| {
            let spec = CacheSpec::i7_3770();
            let mut sim = SimulationBuilder::new(one_core())
                .policy(Box::new(FixedQuantumPolicy::new(quantum)))
                .vm(
                    VmSpec::single("web"),
                    Box::new(IoServer::new("web", IoServerCfg::exclusive(150.0), 7)),
                )
                .vm(VmSpec::single("b1"), Box::new(MemWalk::lolcf("b1", &spec)))
                .vm(VmSpec::single("b2"), Box::new(MemWalk::lolcf("b2", &spec)))
                .vm(VmSpec::single("b3"), Box::new(MemWalk::lolcf("b3", &spec)))
                .build();
            sim.run_for(SEC);
            sim.reset_measurements();
            sim.run_for(5 * SEC);
            mean_latency_ms(&sim.report(), "web")
        };
        let at_1ms = run(MS);
        let at_30ms = run(30 * MS);
        assert!(
            at_30ms < 3.0 * at_1ms.max(0.2),
            "exclusive IO should stay low-latency under BOOST: 1ms={at_1ms}ms 30ms={at_30ms}ms"
        );
    }

    #[test]
    fn heterogeneous_io_latency_grows_with_quantum() {
        // Fig. 2(b): CGI bursts exhaust quanta, BOOST is lost, and
        // latency scales with the quantum.
        let run = |quantum: u64| {
            let spec = CacheSpec::i7_3770();
            let mut sim = SimulationBuilder::new(one_core())
                .policy(Box::new(FixedQuantumPolicy::new(quantum)))
                .vm(
                    VmSpec::single("web"),
                    Box::new(IoServer::new("web", IoServerCfg::heterogeneous(120.0), 7)),
                )
                .vm(VmSpec::single("b1"), Box::new(MemWalk::lolcf("b1", &spec)))
                .vm(VmSpec::single("b2"), Box::new(MemWalk::lolcf("b2", &spec)))
                .vm(VmSpec::single("b3"), Box::new(MemWalk::lolcf("b3", &spec)))
                .build();
            sim.run_for(SEC);
            sim.reset_measurements();
            sim.run_for(5 * SEC);
            mean_latency_ms(&sim.report(), "web")
        };
        let at_1ms = run(MS);
        let at_90ms = run(90 * MS);
        assert!(
            at_90ms > 2.0 * at_1ms,
            "heterogeneous latency should grow with quantum: 1ms={at_1ms}ms 90ms={at_90ms}ms"
        );
    }

    #[test]
    fn offered_counts_arrivals() {
        let mut sim = SimulationBuilder::new(one_core())
            .vm(
                VmSpec::single("web"),
                Box::new(IoServer::new("web", IoServerCfg::exclusive(1000.0), 11)),
            )
            .build();
        sim.run_for(2 * SEC);
        let report = sim.report();
        let WorkloadMetrics::Io {
            offered, completed, ..
        } = report.vm_by_name("web").unwrap().metrics
        else {
            panic!("expected Io metrics");
        };
        // Poisson(1000/s) over 2s ≈ 2000 arrivals.
        assert!(
            (1700..=2300).contains(&offered),
            "offered {offered} far from expectation"
        );
        assert!(completed <= offered);
        assert!(completed > 1500);
    }

    #[test]
    fn batched_latency_samples_match_request_at_a_time_execution() {
        // Two identical servers carrying the same queued burst; one
        // serves it in a single span-sized call (the batched path: one
        // `exec_mem` for all whole requests), the other in
        // per-request budget slices with the clock advanced between
        // calls — the request-at-a-time reference. Latency stamps are
        // integer arithmetic on cumulative used time, so the sample
        // sets must agree bit for bit.
        use aql_mem::{LlcState, PmuCounters};

        let cfg = IoServerCfg::mail(500.0); // mixed light/heavy bursts
        let mut batched = IoServer::new("a", cfg.clone(), 99);
        let mut reference = IoServer::new("b", cfg, 99);
        let mut t = SimTime(0);
        for _ in 0..32 {
            t = batched.next_timer(0).unwrap();
            assert_eq!(Some(t), reference.next_timer(0));
            batched.on_timer(0, t);
            reference.on_timer(0, t);
        }
        assert_eq!(batched.pending_service_ns, reference.pending_service_ns);
        let total = batched.pending_service_ns;
        let start = t + 1;

        let spec = CacheSpec::i7_3770();
        let run_slice = |srv: &mut IoServer, now: SimTime, budget: u64| {
            let mut llc = LlcState::new(spec.llc_bytes as f64, 1);
            let mut pmu = PmuCounters::default();
            let mut warmth = 1.0;
            let mut rng = aql_sim::rng::SimRng::seed_from(5);
            let mut ctx = ExecContext {
                now,
                spec: &spec,
                llc: &mut llc,
                pmu: &mut pmu,
                l2_warmth: &mut warmth,
                rng: &mut rng,
                owner: 0,
                running_slots: &[true],
                lean: false,
                rate_cache: None,
            };
            srv.run(0, budget, &mut ctx)
        };

        // One call serves the whole burst (and batches internally).
        let out = run_slice(&mut batched, start, total);
        assert_eq!(out.used_ns, total, "burst should consume its demand");

        // The reference serves one request per call, clock advanced.
        let mut now = start;
        while reference.pending_service_ns > 0 {
            let next_cost = reference
                .current
                .map(|r| r.remaining_ns)
                .unwrap_or_else(|| reference.queue.front().unwrap().remaining_ns);
            let out = run_slice(&mut reference, now, next_cost);
            assert_eq!(out.used_ns, next_cost);
            now += next_cost;
        }

        assert_eq!(batched.completed, reference.completed);
        let (WorkloadMetrics::Io { latency: bl, .. }, WorkloadMetrics::Io { latency: rl, .. }) =
            (batched.metrics(), reference.metrics())
        else {
            panic!("expected Io metrics");
        };
        assert_eq!(bl.count, rl.count);
        assert_eq!(bl.mean_ns.to_bits(), rl.mean_ns.to_bits(), "mean");
        assert_eq!(bl.p95_ns.to_bits(), rl.p95_ns.to_bits(), "p95");
        assert_eq!(bl.p99_ns.to_bits(), rl.p99_ns.to_bits(), "p99");
        assert_eq!(bl.max_ns.to_bits(), rl.max_ns.to_bits(), "max");
    }

    #[test]
    fn io_events_are_counted_for_vtrs() {
        let mut sim = SimulationBuilder::new(one_core())
            .vm(
                VmSpec::single("web"),
                Box::new(IoServer::new("web", IoServerCfg::exclusive(500.0), 3)),
            )
            .build();
        // Run a few monitoring periods and check the last sample saw IO.
        sim.run_for(95 * MS);
        let sample = sim.hv.vcpus[0].last_sample;
        assert!(
            sample.io_events > 5,
            "vTRS should observe IO events, got {}",
            sample.io_events
        );
    }
}
