//! Fault injection: a wrapper that makes any workload misbehave on
//! purpose.
//!
//! [`FaultyWorkload`] wraps a [`GuestWorkload`] and drives exactly one
//! failure mode, selected by a [`FaultSpec`] token (the scenario
//! layer's `fault=` attribute):
//!
//! | Token | Injected behaviour | Degradation path it proves |
//! |---|---|---|
//! | `panic@<dur>` | panics after consuming `<dur>` of CPU | per-cell `catch_unwind` isolation |
//! | `hang[@<dur>]` | demands CPU forever but consumes none (after `<dur>`) | zero-progress bails → livelock sentinel |
//! | `nan-rate` | reports NaN-poisoned metrics | invariant sentinel / NaN-tolerant stats |
//! | `horizon-lie` | claims [`Horizon::Never`], then blocks anyway | broken-promise dense recovery (exact) |
//! | `coalesce-break` | signs the linear contract, then underruns coalesced chunks | contract-break dense recovery (tolerance) |
//!
//! The faults are deterministic: they key on *consumed CPU time*, a
//! pure function of the seeded simulation, never on wall time. A
//! directed test per row proves the path end to end; sibling cells of
//! a faulty cell must stay bitwise identical to a fault-free run —
//! that is the whole point of the isolation layer this vocabulary
//! exists to exercise.

use core::fmt;

use aql_hv::workload::{
    CoalesceHint, CoalesceProbe, ExecContext, GuestWorkload, Horizon, LatencySummary, RunOutcome,
    StopReason, TimerFire, WorkloadMetrics,
};
use aql_sim::time::{fmt_dur, parse_dur, SimTime};

/// One injected failure mode (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic once the workload has consumed this much CPU time.
    Panic {
        /// Total consumed CPU (ns, summed over the VM's slots) at
        /// which the next `run` call panics.
        at_cpu_ns: u64,
    },
    /// After consuming this much CPU, demand CPU forever while
    /// consuming none: every dispatch makes zero progress.
    Hang {
        /// Consumed CPU (ns) at which the hang sets in; 0 hangs from
        /// the first dispatch.
        after_cpu_ns: u64,
    },
    /// Execute normally but poison the reported metrics with NaN.
    NanRate,
    /// Claim [`Horizon::Never`] while delegating execution — a lie for
    /// any workload that blocks or yields.
    HorizonLie,
    /// Sign the linear coalesce contract unconditionally, then consume
    /// only half of any coalesced chunk.
    CoalesceBreak,
}

impl FaultSpec {
    /// Parses a fault token (`panic@30ms`, `hang`, `hang@10ms`,
    /// `nan-rate`, `horizon-lie`, `coalesce-break`). Returns a
    /// human-readable error for malformed input.
    pub fn parse(token: &str) -> Result<Self, String> {
        if let Some(dur) = token.strip_prefix("panic@") {
            let at_cpu_ns = parse_dur(dur)
                .ok_or_else(|| format!("malformed duration in fault token '{token}'"))?;
            return Ok(FaultSpec::Panic { at_cpu_ns });
        }
        if token == "hang" {
            return Ok(FaultSpec::Hang { after_cpu_ns: 0 });
        }
        if let Some(dur) = token.strip_prefix("hang@") {
            let after_cpu_ns = parse_dur(dur)
                .ok_or_else(|| format!("malformed duration in fault token '{token}'"))?;
            return Ok(FaultSpec::Hang { after_cpu_ns });
        }
        match token {
            "nan-rate" => Ok(FaultSpec::NanRate),
            "horizon-lie" => Ok(FaultSpec::HorizonLie),
            "coalesce-break" => Ok(FaultSpec::CoalesceBreak),
            _ => Err(format!("unknown fault token '{token}'")),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::Panic { at_cpu_ns } => write!(f, "panic@{}", fmt_dur(*at_cpu_ns)),
            FaultSpec::Hang { after_cpu_ns: 0 } => f.write_str("hang"),
            FaultSpec::Hang { after_cpu_ns } => write!(f, "hang@{}", fmt_dur(*after_cpu_ns)),
            FaultSpec::NanRate => f.write_str("nan-rate"),
            FaultSpec::HorizonLie => f.write_str("horizon-lie"),
            FaultSpec::CoalesceBreak => f.write_str("coalesce-break"),
        }
    }
}

/// A [`GuestWorkload`] wrapper injecting one [`FaultSpec`].
///
/// Delegates everything it does not deliberately corrupt, so a
/// `FaultyWorkload` with a fault that never triggers behaves exactly
/// like its inner workload (modulo the conservative
/// [`Horizon::Unknown`]/[`CoalesceHint::No`] answers the pre-trigger
/// faults give, which are always sound).
pub struct FaultyWorkload {
    inner: Box<dyn GuestWorkload>,
    fault: FaultSpec,
    /// Total CPU consumed across all slots, the deterministic clock
    /// the CPU-keyed faults trigger on. Not reset by `reset_metrics` —
    /// fault onsets are positions in the whole run, not the measured
    /// window.
    consumed_ns: u64,
}

impl FaultyWorkload {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: Box<dyn GuestWorkload>, fault: FaultSpec) -> Self {
        FaultyWorkload {
            inner,
            fault,
            consumed_ns: 0,
        }
    }
}

impl GuestWorkload for FaultyWorkload {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn vcpu_slots(&self) -> usize {
        self.inner.vcpu_slots()
    }

    fn run(&mut self, slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        match self.fault {
            FaultSpec::Panic { at_cpu_ns } => {
                let left = at_cpu_ns.saturating_sub(self.consumed_ns);
                if left == 0 {
                    panic!(
                        "injected fault: panic@{} in workload '{}'",
                        fmt_dur(at_cpu_ns),
                        self.inner.name()
                    );
                }
                let out = self.inner.run(slot, budget_ns.min(left), ctx);
                self.consumed_ns += out.used_ns;
                out
            }
            FaultSpec::Hang { after_cpu_ns } => {
                let left = after_cpu_ns.saturating_sub(self.consumed_ns);
                if left == 0 {
                    // Infinite demand, zero progress: the engine's
                    // zero-progress bail fires every dispatch, which
                    // an armed budget promotes to a livelock sentinel.
                    return RunOutcome {
                        used_ns: 0,
                        stop: StopReason::BudgetExhausted,
                    };
                }
                let out = self.inner.run(slot, budget_ns.min(left), ctx);
                self.consumed_ns += out.used_ns;
                out
            }
            FaultSpec::CoalesceBreak => {
                // A coalesced chunk is recognisable from inside `run`:
                // only those route through the steady-rate cache.
                // Underrunning one is precisely a broken linear
                // contract, which the engine must recover from
                // densely.
                let coalesced = ctx.rate_cache.is_some();
                let budget = if coalesced { budget_ns / 2 } else { budget_ns };
                let out = self.inner.run(slot, budget, ctx);
                self.consumed_ns += out.used_ns;
                out
            }
            FaultSpec::NanRate | FaultSpec::HorizonLie => {
                let out = self.inner.run(slot, budget_ns, ctx);
                self.consumed_ns += out.used_ns;
                out
            }
        }
    }

    fn runnable(&self, slot: usize) -> bool {
        match self.fault {
            // A hung slot always demands the CPU.
            FaultSpec::Hang { after_cpu_ns } if self.consumed_ns >= after_cpu_ns => true,
            _ => self.inner.runnable(slot),
        }
    }

    fn horizon(&self, slot: usize, now: SimTime) -> Horizon {
        match self.fault {
            // The lie: promise the scheduler this slot never blocks.
            FaultSpec::HorizonLie => Horizon::Never,
            // Sound but pessimistic: keep the CPU-keyed faults on the
            // dense path so the trigger instant is grid-exact.
            FaultSpec::Panic { .. } | FaultSpec::Hang { .. } => Horizon::Unknown,
            FaultSpec::NanRate | FaultSpec::CoalesceBreak => self.inner.horizon(slot, now),
        }
    }

    fn coalesce(&self, slot: usize, probe: &mut CoalesceProbe<'_>) -> CoalesceHint {
        match self.fault {
            // The lie: sign the linear contract unconditionally.
            FaultSpec::CoalesceBreak => CoalesceHint::LinearFor(u64::MAX),
            // Keep the horizon-lie on the grid path so the broken
            // promise exercises the per-chunk recovery, not the
            // coalesced one.
            FaultSpec::HorizonLie | FaultSpec::Panic { .. } | FaultSpec::Hang { .. } => {
                CoalesceHint::No
            }
            FaultSpec::NanRate => self.inner.coalesce(slot, probe),
        }
    }

    fn next_timer(&self, slot: usize) -> Option<SimTime> {
        self.inner.next_timer(slot)
    }

    fn on_timer(&mut self, slot: usize, now: SimTime) -> TimerFire {
        self.inner.on_timer(slot, now)
    }

    fn metrics(&self) -> WorkloadMetrics {
        let m = self.inner.metrics();
        if self.fault != FaultSpec::NanRate {
            return m;
        }
        // Poison whatever summary the inner workload reports: a NaN
        // must surface as a flagged, classified failure downstream,
        // never as a panic or a silent NaN in a normalised table.
        match m {
            WorkloadMetrics::Io {
                latency,
                completed,
                offered,
            } => WorkloadMetrics::Io {
                latency: LatencySummary {
                    mean_ns: f64::NAN,
                    nan_samples: latency.nan_samples + 1,
                    ..latency
                },
                completed,
                offered,
            },
            WorkloadMetrics::Spin {
                work_items,
                lock_hold_max_ns,
                lock_wait_mean_ns,
                spin_ns,
                ..
            } => WorkloadMetrics::Spin {
                work_items,
                lock_hold_mean_ns: f64::NAN,
                lock_hold_max_ns,
                lock_wait_mean_ns,
                spin_ns,
            },
            WorkloadMetrics::Mem { .. } | WorkloadMetrics::None => WorkloadMetrics::Mem {
                instructions: f64::NAN,
            },
        }
    }

    fn reset_metrics(&mut self) {
        self.inner.reset_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memwalk::MemWalk;
    use aql_mem::CacheSpec;
    use aql_sim::time::MS;

    #[test]
    fn fault_tokens_round_trip() {
        for spec in [
            FaultSpec::Panic { at_cpu_ns: 30 * MS },
            FaultSpec::Hang { after_cpu_ns: 0 },
            FaultSpec::Hang {
                after_cpu_ns: 10 * MS,
            },
            FaultSpec::NanRate,
            FaultSpec::HorizonLie,
            FaultSpec::CoalesceBreak,
        ] {
            let token = spec.to_string();
            assert_eq!(FaultSpec::parse(&token).unwrap(), spec, "token '{token}'");
        }
    }

    #[test]
    fn malformed_fault_tokens_are_rejected() {
        for bad in ["", "panic", "panic@", "panic@abc", "hang@", "crash", "nan"] {
            assert!(FaultSpec::parse(bad).is_err(), "'{bad}' must fail");
        }
    }

    #[test]
    fn hang_demands_cpu_without_progress() {
        let cache = CacheSpec::i7_3770();
        let inner = Box::new(MemWalk::llcf("t", &cache));
        let wl = FaultyWorkload::new(inner, FaultSpec::Hang { after_cpu_ns: 0 });
        assert!(wl.runnable(0));
        assert_eq!(wl.horizon(0, SimTime::ZERO), Horizon::Unknown);
    }

    #[test]
    fn nan_rate_poisons_metrics() {
        let cache = CacheSpec::i7_3770();
        let inner = Box::new(MemWalk::llcf("t", &cache));
        let wl = FaultyWorkload::new(inner, FaultSpec::NanRate);
        match wl.metrics() {
            WorkloadMetrics::Mem { instructions } => assert!(instructions.is_nan()),
            other => panic!("unexpected metrics {other:?}"),
        }
    }

    #[test]
    fn horizon_lie_always_promises_never() {
        let cache = CacheSpec::i7_3770();
        let inner = Box::new(MemWalk::llcf("t", &cache));
        let wl = FaultyWorkload::new(inner, FaultSpec::HorizonLie);
        assert_eq!(wl.horizon(0, SimTime::ZERO), Horizon::Never);
    }
}
