//! A workload whose class changes over time.
//!
//! The paper argues a vCPU's type is not fixed: "several different
//! thread types can be scheduled by the guest OS on the same vCPU"
//! (§1). [`PhasedMemWalk`] cycles through memory profiles as it
//! consumes CPU, so vTRS must re-classify it online; it is used by the
//! recognition tests and the `vtrs_live` example.

use aql_hv::workload::{
    CoalesceHint, CoalesceProbe, ExecContext, GuestWorkload, Horizon, RunOutcome, TimerFire,
    WorkloadMetrics,
};
use aql_mem::MemProfile;
use aql_sim::time::SimTime;

/// One phase: a memory profile held for a CPU-time duration.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// CPU time the phase lasts (ns).
    pub duration_ns: u64,
    /// Memory behaviour during the phase.
    pub profile: MemProfile,
}

/// A single-vCPU walker cycling through profiles.
#[derive(Debug, Clone)]
pub struct PhasedMemWalk {
    name: String,
    phases: Vec<Phase>,
    current: usize,
    left_in_phase: u64,
    instructions: f64,
    switches: u64,
}

impl PhasedMemWalk {
    /// Creates a cycling walker; `phases` must be non-empty.
    pub fn new(name: &str, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| p.duration_ns > 0),
            "phases must have positive duration"
        );
        let left = phases[0].duration_ns;
        PhasedMemWalk {
            name: name.to_string(),
            phases,
            current: 0,
            left_in_phase: left,
            instructions: 0.0,
            switches: 0,
        }
    }

    /// Index of the phase currently executing.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Number of phase switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl GuestWorkload for PhasedMemWalk {
    fn name(&self) -> &str {
        &self.name
    }

    fn vcpu_slots(&self) -> usize {
        1
    }

    fn run(&mut self, slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        debug_assert_eq!(slot, 0);
        let mut used = 0;
        while used < budget_ns {
            let dt = (budget_ns - used).min(self.left_in_phase);
            let profile = self.phases[self.current].profile;
            let out = ctx.exec_mem(&profile, dt);
            self.instructions += out.instructions;
            used += dt;
            self.left_in_phase -= dt;
            if self.left_in_phase == 0 {
                self.current = (self.current + 1) % self.phases.len();
                self.left_in_phase = self.phases[self.current].duration_ns;
                self.switches += 1;
            }
        }
        RunOutcome::ran_all(budget_ns)
    }

    fn runnable(&self, _slot: usize) -> bool {
        true
    }

    fn horizon(&self, _slot: usize, _now: SimTime) -> Horizon {
        // Phase shifts happen inside `run` and never release the pCPU:
        // the walker burns CPU forever, whatever profile it is in.
        Horizon::Never
    }

    fn coalesce(&self, _slot: usize, probe: &mut CoalesceProbe<'_>) -> CoalesceHint {
        // Linear *within* the current phase: the upcoming phase has a
        // different profile (a different rate, possibly cold), so the
        // window ends at the phase boundary — the engine coalesces up
        // to it and replays the grid across the shift, which also
        // re-keys the rate cache on the new profile bits.
        if probe.linear_rate(&self.phases[self.current].profile) {
            CoalesceHint::LinearFor(self.left_in_phase)
        } else {
            CoalesceHint::No
        }
    }

    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        None
    }

    fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
        TimerFire::default()
    }

    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::Mem {
            instructions: self.instructions,
        }
    }

    fn reset_metrics(&mut self) {
        self.instructions = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_hv::{MachineSpec, SimulationBuilder, VmSpec};
    use aql_mem::CacheSpec;
    use aql_sim::time::{MS, SEC};

    #[test]
    fn phases_cycle_with_cpu_time() {
        let spec = CacheSpec::i7_3770();
        let w = PhasedMemWalk::new(
            "p",
            vec![
                Phase {
                    duration_ns: 100 * MS,
                    profile: MemProfile::lolcf(&spec),
                },
                Phase {
                    duration_ns: 100 * MS,
                    profile: MemProfile::llco(&spec),
                },
            ],
        );
        let mut sim =
            SimulationBuilder::new(MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770()))
                .vm(VmSpec::single("p"), Box::new(w))
                .build();
        sim.run_for(SEC);
        // 1 s of CPU over 200 ms cycles → about 5 switches per cycle
        // boundary pair, i.e. ~5 cycles → ~9-10 switches.
        let report = sim.report();
        assert!(report.vms[0].cpu_ns() > 900 * MS);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedMemWalk::new("bad", vec![]);
    }

    #[test]
    fn switch_counter_advances() {
        let spec = CacheSpec::i7_3770();
        let phases = vec![
            Phase {
                duration_ns: 10 * MS,
                profile: MemProfile::lolcf(&spec),
            },
            Phase {
                duration_ns: 10 * MS,
                profile: MemProfile::llcf(&spec),
            },
        ];
        let mut w = PhasedMemWalk::new("p", phases);
        assert_eq!(w.current_phase(), 0);
        // Drive it directly through a fake context.
        let mut llc = aql_mem::LlcState::new(spec.llc_bytes as f64, 1);
        let mut pmu = aql_mem::PmuCounters::new();
        let mut warmth = 0.0;
        let mut rng = aql_sim::rng::SimRng::seed_from(1);
        let running = vec![true];
        let mut ctx = aql_hv::workload::ExecContext {
            now: SimTime::ZERO,
            spec: &spec,
            llc: &mut llc,
            pmu: &mut pmu,
            l2_warmth: &mut warmth,
            rng: &mut rng,
            owner: 0,
            running_slots: &running,
            lean: false,
            rate_cache: None,
        };
        let out = w.run(0, 25 * MS, &mut ctx);
        assert_eq!(out.used_ns, 25 * MS);
        assert_eq!(w.switches(), 2);
        assert_eq!(w.current_phase(), 0);
    }
}
