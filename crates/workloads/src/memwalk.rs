//! CPU-burn memory walkers.
//!
//! [`MemWalk`] models the linked-list parser of the paper's
//! calibration \[27\]: a single-threaded loop re-referencing a working
//! set of configurable size. Its class follows from the WSS alone:
//! `LoLCF` (WSS ≤ L2), `LLCF` (WSS ≤ LLC) or `LLCO` (WSS > LLC). The
//! workload never blocks or yields: it is a pure CPU burner whose
//! performance metric is retired instructions.

use aql_hv::workload::{
    CoalesceHint, CoalesceProbe, ExecContext, GuestWorkload, Horizon, RunOutcome, TimerFire,
    WorkloadMetrics,
};
use aql_mem::{CacheSpec, MemProfile};
use aql_sim::time::SimTime;

/// A single-vCPU memory-walking workload.
///
/// # Examples
///
/// ```
/// use aql_workloads::MemWalk;
/// use aql_mem::CacheSpec;
///
/// let spec = CacheSpec::i7_3770();
/// let w = MemWalk::llcf("bzip2-model", &spec);
/// assert_eq!(w.profile().wss_bytes, spec.llc_bytes / 2);
/// ```
#[derive(Debug, Clone)]
pub struct MemWalk {
    name: String,
    profile: MemProfile,
    instructions: f64,
}

impl MemWalk {
    /// A walker with an explicit memory profile.
    pub fn new(name: &str, profile: MemProfile) -> Self {
        MemWalk {
            name: name.to_string(),
            profile,
            instructions: 0.0,
        }
    }

    /// An LLC-friendly walker (WSS = LLC/2, the paper's calibration).
    pub fn llcf(name: &str, spec: &CacheSpec) -> Self {
        MemWalk::new(name, MemProfile::llcf(spec))
    }

    /// A low-level-cache walker (WSS = 90% of L2).
    pub fn lolcf(name: &str, spec: &CacheSpec) -> Self {
        MemWalk::new(name, MemProfile::lolcf(spec))
    }

    /// A trashing walker (WSS = 4× LLC).
    pub fn llco(name: &str, spec: &CacheSpec) -> Self {
        MemWalk::new(name, MemProfile::llco(spec))
    }

    /// The walker's memory profile.
    pub fn profile(&self) -> &MemProfile {
        &self.profile
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> f64 {
        self.instructions
    }
}

impl GuestWorkload for MemWalk {
    fn name(&self) -> &str {
        &self.name
    }

    fn vcpu_slots(&self) -> usize {
        1
    }

    fn run(&mut self, slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        debug_assert_eq!(slot, 0);
        let out = ctx.exec_mem(&self.profile, budget_ns);
        self.instructions += out.instructions;
        RunOutcome::ran_all(budget_ns)
    }

    fn runnable(&self, _slot: usize) -> bool {
        true
    }

    fn horizon(&self, _slot: usize, _now: SimTime) -> Horizon {
        // A pure CPU burner: it never blocks or yields, so the engine
        // may fast-forward across it without limit.
        Horizon::Never
    }

    fn coalesce(&self, _slot: usize, probe: &mut CoalesceProbe<'_>) -> CoalesceHint {
        // A walker is pure-rate whenever its working set is resident
        // and the L2 is warm: no misses, no shared-state mutation, no
        // RNG. The profile never changes, so the window is unbounded.
        if probe.linear_rate(&self.profile) {
            CoalesceHint::LinearFor(u64::MAX)
        } else {
            CoalesceHint::No
        }
    }

    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        None
    }

    fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
        TimerFire::default()
    }

    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::Mem {
            instructions: self.instructions,
        }
    }

    fn reset_metrics(&mut self) {
        self.instructions = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_hv::{FixedQuantumPolicy, MachineSpec, SimulationBuilder, VmSpec};
    use aql_sim::time::{MS, SEC};

    fn one_core_machine() -> MachineSpec {
        MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770())
    }

    #[test]
    fn walker_retires_instructions_alone() {
        let spec = CacheSpec::i7_3770();
        let mut sim = SimulationBuilder::new(one_core_machine())
            .policy(Box::new(FixedQuantumPolicy::xen_default()))
            .vm(
                VmSpec::single("walker"),
                Box::new(MemWalk::llcf("walker", &spec)),
            )
            .build();
        sim.run_for(SEC);
        let report = sim.report();
        let m = &report.vms[0].metrics;
        let WorkloadMetrics::Mem { instructions } = m else {
            panic!("expected Mem metrics, got {m:?}");
        };
        // Alone on a core, an LLCF walker should retire hundreds of
        // millions of instructions per second once warm.
        assert!(
            *instructions > 1e8,
            "too slow for a warm solo walker: {instructions}"
        );
        // And the core should be ~100% busy.
        assert!(report.utilisation() > 0.99);
    }

    #[test]
    fn two_walkers_share_a_core_fairly() {
        let spec = CacheSpec::i7_3770();
        let mut sim = SimulationBuilder::new(one_core_machine())
            .policy(Box::new(FixedQuantumPolicy::xen_default()))
            .vm(VmSpec::single("a"), Box::new(MemWalk::lolcf("a", &spec)))
            .vm(VmSpec::single("b"), Box::new(MemWalk::lolcf("b", &spec)))
            .build();
        sim.run_for(3 * SEC);
        let report = sim.report();
        let a = report.vm_by_name("a").unwrap().cpu_ns() as f64;
        let b = report.vm_by_name("b").unwrap().cpu_ns() as f64;
        let ratio = a / b;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "equal-weight VMs should split the core evenly, ratio {ratio}"
        );
        assert!(report.jain_fairness() > 0.99);
    }

    #[test]
    fn llcf_with_trasher_prefers_long_quanta() {
        // The core claim of Fig. 2(d): an LLCF walker co-scheduled with
        // trashers performs better under a 90 ms quantum than 1 ms.
        let spec = CacheSpec::i7_3770();
        let run = |quantum: u64| -> f64 {
            let mut sim = SimulationBuilder::new(one_core_machine())
                .policy(Box::new(FixedQuantumPolicy::new(quantum)))
                .vm(
                    VmSpec::single("victim"),
                    Box::new(MemWalk::llcf("victim", &spec)),
                )
                .vm(VmSpec::single("t1"), Box::new(MemWalk::llco("t1", &spec)))
                .vm(VmSpec::single("t2"), Box::new(MemWalk::llco("t2", &spec)))
                .vm(VmSpec::single("t3"), Box::new(MemWalk::llco("t3", &spec)))
                .build();
            sim.run_for(4 * SEC);
            let report = sim.report();
            let WorkloadMetrics::Mem { instructions } =
                report.vm_by_name("victim").unwrap().metrics
            else {
                panic!("expected Mem metrics");
            };
            instructions
        };
        let short = run(MS);
        let long = run(90 * MS);
        assert!(
            long > 1.15 * short,
            "a long quantum should help the LLCF victim: 90ms={long}, 1ms={short}"
        );
    }
}
