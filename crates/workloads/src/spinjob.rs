//! A spin-synchronised parallel job.
//!
//! Models the paper's `ConSpin` class (kernbench, PARSEC): `T` guest
//! threads, one per vCPU, execute data-parallel *phases*. Within a
//! phase a thread alternates independent work segments with short
//! critical sections guarded by a ticket spin-lock; at the end of the
//! phase all threads meet at a spin barrier (PARSEC's kernels are
//! barrier-structured; kernbench's `make -j` joins behave alike).
//!
//! Under virtualization three pathologies emerge mechanically (§3.2):
//!
//! * **Lock-holder preemption** — the quantum expires inside a critical
//!   section; waiters spin until the holder's vCPU is rescheduled, up
//!   to (co-runners × quantum) later.
//! * **Lock-waiter preemption** — a ticket lock hands ownership to the
//!   next ticket at release; a descheduled waiter stalls the lock just
//!   as long.
//! * **Barrier straggling** — a phase completes when its *last* thread
//!   arrives; with time-sliced vCPUs the arrival skew grows with the
//!   quantum length, so phase throughput degrades as the quantum
//!   grows. This is the dominant, resonance-free mechanism behind
//!   Fig. 2(c)'s shape.
//!
//! Spinning (on the lock or the barrier) burns CPU and raises
//! Pause-Loop-Exiting traps — the signal vTRS uses to detect
//! `ConSpin`. As the paper puts it, waiting threads "consume their
//! entire quantum to carry out an active standby": by default no
//! directed yield is performed; set [`SpinJobCfg::yield_on_ple`] to
//! study that mitigation (ablation bench).

use aql_hv::spinlock::TicketLock;
use aql_hv::workload::{
    CoalesceHint, CoalesceProbe, ExecContext, GuestWorkload, Horizon, RunOutcome, StopReason,
    TimerFire, WorkloadMetrics,
};
use aql_mem::MemProfile;
use aql_sim::rng::SimRng;
use aql_sim::stats::OnlineStats;
use aql_sim::time::{SimTime, MS, US};

/// Configuration of a [`SpinJob`].
#[derive(Debug, Clone)]
pub struct SpinJobCfg {
    /// Guest threads; one per vCPU slot.
    pub threads: usize,
    /// Independent work per segment (ns, jittered).
    pub work_ns: u64,
    /// Critical-section length (ns, jittered).
    pub cs_ns: u64,
    /// Uniform jitter on work and CS lengths, `[0, 1]`.
    pub jitter: f64,
    /// Per-thread CPU work per parallel phase (ns, jittered ±50%);
    /// `0` disables barriers (pure lock-cycle workload).
    pub phase_work_ns: u64,
    /// Spin time before a Pause-Loop-Exiting trap fires (ns).
    pub ple_window_ns: u64,
    /// Whether a PLE trap yields the vCPU (directed yield).
    pub yield_on_ple: bool,
    /// Probability a work segment ends with a lock acquisition;
    /// segments that do not are lock-free.
    pub lock_prob: f64,
    /// Lock fabric: `false` (default) models a test-and-set lock —
    /// release hands the lock to whichever *running* spinner tries
    /// first; `true` models a FIFO ticket lock, whose strict order
    /// hands ownership to possibly-descheduled waiters (the
    /// lock-waiter-preemption pathology of \[39\], kept as an ablation).
    pub fifo_lock: bool,
    /// Memory profile of the work phase.
    pub profile: MemProfile,
}

impl SpinJobCfg {
    /// A kernbench/PARSEC-like job: `threads` threads, fine-grained
    /// (15 ms) barrier phases as in PARSEC's per-timestep kernels,
    /// moderate lock pressure.
    pub fn kernbench(threads: usize) -> Self {
        SpinJobCfg {
            threads,
            work_ns: 40 * US,
            cs_ns: 6 * US,
            jitter: 0.3,
            phase_work_ns: 15 * MS,
            ple_window_ns: 25 * US,
            yield_on_ple: false,
            lock_prob: 0.25,
            fifo_lock: false,
            // Compiler-like working set: enough LLC traffic that vTRS
            // does not mistake the job for LoLCF.
            profile: MemProfile {
                wss_bytes: 1536 * 1024,
                deep_refs_per_instr: 0.02,
                base_ns_per_instr: 0.40,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Computing outside the lock.
    Working { remaining_ns: u64 },
    /// Spinning for the lock (`ticket` used in FIFO mode only).
    Waiting { ticket: Option<u64>, since: SimTime },
    /// Inside the critical section; `owned_since` is when this ticket
    /// became the lock owner (possibly while descheduled).
    InCs {
        remaining_ns: u64,
        owned_since: SimTime,
    },
    /// Arrived at the phase barrier, spinning for generation
    /// `target_gen`.
    AtBarrier { target_gen: u64 },
}

#[derive(Debug, Clone)]
struct Thread {
    phase: Phase,
    /// CPU work left in the current parallel phase.
    phase_left_ns: u64,
    spin_acc_ns: u64,
}

/// A multi-threaded spin-synchronised job (one thread per vCPU slot).
#[derive(Debug)]
pub struct SpinJob {
    name: String,
    cfg: SpinJobCfg,
    rng: SimRng,
    lock: TicketLock,
    tas_owner: Option<usize>,
    tas_owned_since: SimTime,
    threads: Vec<Thread>,
    barrier_gen: u64,
    arrived: usize,
    phases_done: u64,
    work_items: u64,
    hold_ns: OnlineStats,
    wait_ns: OnlineStats,
    spin_total_ns: u64,
}

impl SpinJob {
    /// Creates the job; `cfg.threads` must be at least 1.
    pub fn new(name: &str, cfg: SpinJobCfg, seed: u64) -> Self {
        assert!(cfg.threads >= 1, "a spin job needs at least one thread");
        assert!(cfg.ple_window_ns > 0, "PLE window must be positive");
        let mut rng = SimRng::seed_from(seed);
        let phase_budget = |rng: &mut SimRng| -> u64 {
            if cfg.phase_work_ns == 0 {
                u64::MAX
            } else {
                rng.jitter_ns(cfg.phase_work_ns, 0.5)
            }
        };
        let threads = (0..cfg.threads)
            .map(|_| {
                let phase_left_ns = phase_budget(&mut rng);
                Thread {
                    phase: Phase::Working {
                        remaining_ns: rng.jitter_ns(cfg.work_ns, cfg.jitter.max(0.2)),
                    },
                    phase_left_ns,
                    spin_acc_ns: 0,
                }
            })
            .collect();
        SpinJob {
            name: name.to_string(),
            cfg,
            rng,
            lock: TicketLock::new(),
            tas_owner: None,
            tas_owned_since: SimTime::ZERO,
            threads,
            barrier_gen: 0,
            arrived: 0,
            phases_done: 0,
            work_items: 0,
            hold_ns: OnlineStats::new(),
            wait_ns: OnlineStats::new(),
            spin_total_ns: 0,
        }
    }

    /// Work segments completed across all threads (a fixed quota per
    /// phase, so segment throughput tracks phase throughput).
    pub fn work_items(&self) -> u64 {
        self.work_items
    }

    /// Parallel phases completed.
    pub fn phases_done(&self) -> u64 {
        self.phases_done
    }

    /// Mean observed lock-ownership duration, including time the
    /// owner's vCPU was descheduled.
    pub fn lock_hold_mean_ns(&self) -> f64 {
        self.hold_ns.mean()
    }

    /// Longest observed lock-ownership duration.
    pub fn lock_hold_max_ns(&self) -> f64 {
        self.hold_ns.max().unwrap_or(0.0)
    }

    /// Mean lock acquisition wait (ticket drawn to entry).
    pub fn lock_wait_mean_ns(&self) -> f64 {
        self.wait_ns.mean()
    }

    fn new_phase_budget(&mut self) -> u64 {
        if self.cfg.phase_work_ns == 0 {
            u64::MAX
        } else {
            self.rng.jitter_ns(self.cfg.phase_work_ns, 0.5)
        }
    }

    /// Spins for up to `budget` ns; returns (consumed, yield-now).
    fn spin(&mut self, slot: usize, budget: u64, ctx: &mut ExecContext<'_>) -> (u64, bool) {
        let window_left = self
            .cfg
            .ple_window_ns
            .saturating_sub(self.threads[slot].spin_acc_ns)
            .max(1);
        let dt = window_left.min(budget);
        self.spin_total_ns += dt;
        self.threads[slot].spin_acc_ns += dt;
        if self.threads[slot].spin_acc_ns >= self.cfg.ple_window_ns {
            ctx.ple_exits(1);
            self.threads[slot].spin_acc_ns = 0;
            if self.cfg.yield_on_ple {
                return (dt, true);
            }
        }
        (dt, false)
    }
}

impl GuestWorkload for SpinJob {
    fn name(&self) -> &str {
        &self.name
    }

    fn vcpu_slots(&self) -> usize {
        self.cfg.threads
    }

    fn run(&mut self, slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        let mut used: u64 = 0;
        while used < budget_ns {
            let now = ctx.now + used;
            match self.threads[slot].phase {
                Phase::Working { remaining_ns } => {
                    let dt = remaining_ns.min(budget_ns - used);
                    let profile = self.cfg.profile;
                    let _ = ctx.exec_mem(&profile, dt);
                    used += dt;
                    self.threads[slot].phase_left_ns =
                        self.threads[slot].phase_left_ns.saturating_sub(dt);
                    let left = remaining_ns - dt;
                    if left > 0 {
                        self.threads[slot].phase = Phase::Working { remaining_ns: left };
                        continue;
                    }
                    self.work_items += 1;
                    if self.threads[slot].phase_left_ns == 0 {
                        // Phase work done: arrive at the barrier.
                        self.arrived += 1;
                        let target_gen = self.barrier_gen + 1;
                        if self.arrived == self.cfg.threads {
                            self.arrived = 0;
                            self.barrier_gen += 1;
                            self.phases_done += 1;
                        }
                        self.threads[slot].phase = Phase::AtBarrier { target_gen };
                    } else if self.rng.chance(self.cfg.lock_prob) {
                        let ticket = self
                            .cfg
                            .fifo_lock
                            .then(|| self.lock.take_ticket(ctx.now + used));
                        self.threads[slot].phase = Phase::Waiting {
                            ticket,
                            since: ctx.now + used,
                        };
                    } else {
                        self.threads[slot].phase = Phase::Working {
                            remaining_ns: self.rng.jitter_ns(self.cfg.work_ns, self.cfg.jitter),
                        };
                    }
                }
                Phase::Waiting { ticket, since } => {
                    let (acquired, owned_since) = match ticket {
                        Some(t) => (self.lock.is_turn(t), self.lock.serving_since()),
                        None => (self.tas_owner.is_none(), now),
                    };
                    if acquired {
                        if ticket.is_none() {
                            self.tas_owner = Some(slot);
                            self.tas_owned_since = now;
                        }
                        self.wait_ns.add(now.saturating_since(since) as f64);
                        self.threads[slot].spin_acc_ns = 0;
                        self.threads[slot].phase = Phase::InCs {
                            remaining_ns: self.rng.jitter_ns(self.cfg.cs_ns, self.cfg.jitter),
                            owned_since,
                        };
                        continue;
                    }
                    let (dt, yield_now) = self.spin(slot, budget_ns - used, ctx);
                    used += dt;
                    if yield_now {
                        return RunOutcome {
                            used_ns: used,
                            stop: StopReason::Yielded,
                        };
                    }
                }
                Phase::InCs {
                    remaining_ns,
                    owned_since,
                } => {
                    let dt = remaining_ns.min(budget_ns - used);
                    let profile = self.cfg.profile;
                    let _ = ctx.exec_mem(&profile, dt);
                    used += dt;
                    self.threads[slot].phase_left_ns =
                        self.threads[slot].phase_left_ns.saturating_sub(dt);
                    let left = remaining_ns - dt;
                    if left == 0 {
                        let release_at = ctx.now + used;
                        if self.cfg.fifo_lock {
                            self.lock.release(release_at);
                        } else {
                            debug_assert_eq!(self.tas_owner, Some(slot));
                            self.tas_owner = None;
                        }
                        // Ownership duration — the paper's "lock
                        // duration" — includes any time the owner's
                        // vCPU was descheduled.
                        self.hold_ns
                            .add(release_at.saturating_since(owned_since) as f64);
                        self.threads[slot].phase = Phase::Working {
                            remaining_ns: self.rng.jitter_ns(self.cfg.work_ns, self.cfg.jitter),
                        };
                    } else {
                        self.threads[slot].phase = Phase::InCs {
                            remaining_ns: left,
                            owned_since,
                        };
                    }
                }
                Phase::AtBarrier { target_gen } => {
                    if self.barrier_gen >= target_gen {
                        // Barrier crossed: start the next phase.
                        self.threads[slot].spin_acc_ns = 0;
                        self.threads[slot].phase_left_ns = self.new_phase_budget();
                        self.threads[slot].phase = Phase::Working {
                            remaining_ns: self.rng.jitter_ns(self.cfg.work_ns, self.cfg.jitter),
                        };
                        continue;
                    }
                    let (dt, yield_now) = self.spin(slot, budget_ns - used, ctx);
                    used += dt;
                    if yield_now {
                        return RunOutcome {
                            used_ns: used,
                            stop: StopReason::Yielded,
                        };
                    }
                }
            }
        }
        RunOutcome::ran_all(budget_ns)
    }

    fn runnable(&self, _slot: usize) -> bool {
        true
    }

    fn horizon(&self, _slot: usize, _now: SimTime) -> Horizon {
        // Waiters "consume their entire quantum to carry out an active
        // standby" (§3.3.2): without the directed-yield mitigation a
        // thread burns CPU unconditionally — spinning, working or in a
        // critical section. Lock handoffs and barrier crossings are
        // slot-to-slot state changes inside `run`, which the engine's
        // sub-step grid resolves identically in both time modes. With
        // yield_on_ple a spin window may end in a directed yield at an
        // instant that depends on co-runners, so no promise is sound.
        if self.cfg.yield_on_ple {
            Horizon::Unknown
        } else {
            Horizon::Never
        }
    }

    fn coalesce(&self, _slot: usize, probe: &mut CoalesceProbe<'_>) -> CoalesceHint {
        // Only under no PLE-yield activity and with no running sibling:
        // a directed yield is a scheduler-visible act, and two running
        // threads interact through the lock fabric, the barrier and the
        // job's own RNG at sub-step granularity — coalescing would
        // reorder those by whole spans. A *sole* running thread only
        // reads frozen sibling state (spinning on a descheduled holder
        // burns CPU budget-deterministically), so with a fixpoint
        // profile its execution is chunk-size invariant.
        if self.cfg.yield_on_ple || probe.running_sibling_count() > 1 {
            return CoalesceHint::No;
        }
        if probe.linear_rate(&self.cfg.profile) {
            CoalesceHint::LinearFor(u64::MAX)
        } else {
            CoalesceHint::No
        }
    }

    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        None
    }

    fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
        TimerFire::default()
    }

    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::Spin {
            work_items: self.work_items,
            lock_hold_mean_ns: self.hold_ns.mean(),
            lock_hold_max_ns: self.hold_ns.max().unwrap_or(0.0),
            lock_wait_mean_ns: self.wait_ns.mean(),
            spin_ns: self.spin_total_ns,
        }
    }

    fn reset_metrics(&mut self) {
        self.work_items = 0;
        self.phases_done = 0;
        self.hold_ns = OnlineStats::new();
        self.wait_ns = OnlineStats::new();
        self.spin_total_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memwalk::MemWalk;
    use aql_hv::{FixedQuantumPolicy, MachineSpec, SimulationBuilder, VmSpec};
    use aql_mem::CacheSpec;
    use aql_sim::time::{MS, SEC};

    fn spin_metrics(report: &aql_hv::RunReport, name: &str) -> (u64, f64, f64) {
        let WorkloadMetrics::Spin {
            work_items,
            lock_hold_mean_ns,
            lock_hold_max_ns,
            ..
        } = report.vm_by_name(name).unwrap().metrics
        else {
            panic!("expected Spin metrics");
        };
        (work_items, lock_hold_mean_ns, lock_hold_max_ns)
    }

    #[test]
    fn solo_job_completes_items_with_short_holds() {
        let mut sim =
            SimulationBuilder::new(MachineSpec::custom("4core", 1, 4, CacheSpec::i7_3770()))
                .vm(
                    VmSpec::smp("job", 4),
                    Box::new(SpinJob::new("job", SpinJobCfg::kernbench(4), 5)),
                )
                .build();
        sim.run_for(2 * SEC);
        let (items, hold, _) = spin_metrics(&sim.report(), "job");
        assert!(items > 10_000, "uncontended job too slow: {items} items");
        // Ownership durations include cross-vCPU handoff visibility,
        // which the engine resolves at sub-step granularity (100 µs);
        // without preemption they must stay well below any quantum.
        assert!(
            hold < 6.0 * 1000.0 + 2.0 * 100_000.0,
            "solo hold time should stay at sub-step scale, got {hold}ns"
        );
    }

    #[test]
    fn solo_job_advances_phases() {
        let mut sim =
            SimulationBuilder::new(MachineSpec::custom("2core", 1, 2, CacheSpec::i7_3770()))
                .vm(
                    VmSpec::smp("job", 2),
                    Box::new(SpinJob::new("job", SpinJobCfg::kernbench(2), 5)),
                )
                .build();
        sim.run_for(2 * SEC);
        let report = sim.report();
        let WorkloadMetrics::Spin { work_items, .. } = report.vm_by_name("job").unwrap().metrics
        else {
            panic!()
        };
        // With 60 ms phases, 2 s fits ~25-30 phases of ~1500 segments
        // per thread.
        assert!(work_items > 20_000, "barrier must not wedge: {work_items}");
    }

    #[test]
    fn oversubscription_with_long_quanta_hurts_throughput() {
        // Fig. 2(c): a ConSpin VM whose vCPUs share a pCPU with CPU
        // hogs performs better with 1 ms quanta than with 90 ms ones —
        // barrier stragglers and lock stalls scale with the quantum.
        let run = |quantum: u64| {
            let spec = CacheSpec::i7_3770();
            let mut sim =
                SimulationBuilder::new(MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770()))
                    .policy(Box::new(FixedQuantumPolicy::new(quantum)))
                    .vm(
                        VmSpec {
                            weight: 512,
                            ..VmSpec::smp("job", 2)
                        },
                        Box::new(SpinJob::new("job", SpinJobCfg::kernbench(2), 5)),
                    )
                    .vm(VmSpec::single("h1"), Box::new(MemWalk::lolcf("h1", &spec)))
                    .vm(VmSpec::single("h2"), Box::new(MemWalk::lolcf("h2", &spec)))
                    .build();
            sim.run_for(SEC);
            sim.reset_measurements();
            sim.run_for(6 * SEC);
            spin_metrics(&sim.report(), "job")
        };
        let (items_short, _, _) = run(MS);
        let (items_long, _, _) = run(90 * MS);
        // Lock-hold maxima are sparse statistics at large quanta (a
        // holder-preemption needs the slice boundary to land inside a
        // critical section); the inset experiment measures them over
        // longer runs. Here only the robust throughput direction is
        // asserted.
        assert!(
            items_short as f64 > 1.2 * items_long as f64,
            "short quanta should win for ConSpin: 1ms={items_short}, 90ms={items_long}"
        );
    }

    #[test]
    fn ple_exits_are_visible_to_vtrs() {
        // Two highly-contended threads on one core: barrier and lock
        // waits force spinning, which raises PLE traps.
        let cfg = SpinJobCfg {
            threads: 2,
            work_ns: 5 * US,
            cs_ns: 20 * US,
            ..SpinJobCfg::kernbench(2)
        };
        let mut sim =
            SimulationBuilder::new(MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770()))
                .vm(VmSpec::smp("job", 2), Box::new(SpinJob::new("job", cfg, 5)))
                .build();
        sim.run_for(SEC);
        let report = sim.report();
        let WorkloadMetrics::Spin { spin_ns, .. } = report.vm_by_name("job").unwrap().metrics
        else {
            panic!("expected Spin metrics");
        };
        assert!(
            spin_ns > 25 * US,
            "spin bursts should exceed the PLE window, got {spin_ns}"
        );
    }

    #[test]
    fn ple_sample_counts_exits_in_monitor_period() {
        let cfg = SpinJobCfg {
            threads: 2,
            work_ns: 5 * US,
            cs_ns: 20 * US,
            ..SpinJobCfg::kernbench(2)
        };
        let mut sim =
            SimulationBuilder::new(MachineSpec::custom("1core", 1, 1, CacheSpec::i7_3770()))
                .vm(VmSpec::smp("job", 2), Box::new(SpinJob::new("job", cfg, 5)))
                .build();
        let mut total_ple = 0u64;
        for _ in 0..20 {
            sim.run_for(30 * MS);
            total_ple += sim
                .hv
                .vcpus
                .iter()
                .map(|v| v.last_sample.ple_exits)
                .sum::<u64>();
        }
        assert!(total_ple > 0, "spinning must raise PLE exits over 600ms");
    }

    #[test]
    fn barrier_disabled_when_phase_work_zero() {
        let cfg = SpinJobCfg {
            phase_work_ns: 0,
            ..SpinJobCfg::kernbench(2)
        };
        let job = SpinJob::new("x", cfg, 1);
        assert_eq!(job.phases_done(), 0);
        // A zero-phase job never arrives at the barrier: threads start
        // with an effectively infinite phase budget.
        assert_eq!(job.threads[0].phase_left_ns, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SpinJob::new(
            "bad",
            SpinJobCfg {
                threads: 0,
                ..SpinJobCfg::kernbench(1)
            },
            1,
        );
    }
}
