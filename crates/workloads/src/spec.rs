//! Declarative workload constructors.
//!
//! A [`WorkloadSpec`] names one workload model plus its parameters in
//! a compact `kind/args` token — the vocabulary the scenario layer's
//! text format uses for its `workload=` attribute. Every token
//! round-trips: `WorkloadSpec::parse(&spec.to_string())` reproduces
//! the spec exactly, which is what makes scenario files serialisable.
//!
//! The grammar (one token, `/`-separated fields):
//!
//! | Token | Model |
//! |---|---|
//! | `io/exclusive/<rate>` | [`IoServer`], exclusive-IO regime (Fig. 2a) |
//! | `io/heterogeneous/<rate>` | [`IoServer`], CGI-heavy regime (Fig. 2b) |
//! | `io/mail/<rate>` | [`IoServer`], SPECmail-style heavy requests |
//! | `io/plus/<rate>` | [`IoServer`], IOInt⁺ — IO-intensive and LLC-trashing (Fig. 3) |
//! | `io/noboost/<rate>` | [`IoServer`], never-blocking exclusive server (BOOST ablation) |
//! | `spin/kernbench/<threads>[/<flags>]` | [`SpinJob`], kernbench/PARSEC preset; flags `fifo`, `ple` or `fifo+ple` select the lock fabric and PLE yield |
//! | `walk/llcf`, `walk/lolcf`, `walk/llco` | [`MemWalk`] of that class |
//! | `app/<name>` | the named Table 3 catalog model |
//! | `phased/shift/<phase_ms>` | [`PhasedMemWalk`] cycling LoLCF → LLCF → LLCO |
//! | `idle` | [`IdleWorkload`] (scenario padding) |

use core::fmt;

use aql_hv::apptype::VcpuType;
use aql_hv::workload::GuestWorkload;
use aql_hv::VmSpec;
use aql_mem::{CacheSpec, MemProfile};
use aql_sim::time::MS;

use crate::catalog::{build_app_vm, find_app};
use crate::idle::IdleWorkload;
use crate::ioserver::{IoServer, IoServerCfg};
use crate::memwalk::MemWalk;
use crate::phased::{Phase, PhasedMemWalk};
use crate::spinjob::{SpinJob, SpinJobCfg};

/// The IO-server regimes a spec can name (§3.2; Fig. 2a/2b, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoRegime {
    /// Light requests only; the vCPU blocks between requests.
    Exclusive,
    /// CGI-style background compute keeps the vCPU always runnable.
    Heterogeneous,
    /// SPECmail-style: exclusive IO with periodic heavy requests.
    Mail,
    /// IOInt⁺ (Fig. 3): IO-intensive *and* LLC-trashing.
    Plus,
    /// BOOST-ablation co-runner: exclusive arrivals, but a feather-
    /// weight background loop keeps the vCPU runnable so wakes never
    /// earn BOOST.
    Noboost,
}

impl IoRegime {
    fn token(self) -> &'static str {
        match self {
            IoRegime::Exclusive => "exclusive",
            IoRegime::Heterogeneous => "heterogeneous",
            IoRegime::Mail => "mail",
            IoRegime::Plus => "plus",
            IoRegime::Noboost => "noboost",
        }
    }
}

/// A declarative, round-trippable description of one VM's workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// An open-loop request server at `rate_hz` mean arrivals.
    Io {
        /// Service regime (exclusive / heterogeneous / mail).
        regime: IoRegime,
        /// Mean Poisson arrival rate, requests per second.
        rate_hz: f64,
    },
    /// A spin-synchronised parallel job (kernbench preset).
    Spin {
        /// Guest threads; the VM gets one vCPU per thread.
        threads: usize,
        /// Strict FIFO ticket lock instead of test-and-set (the lock-
        /// fabric ablation; `/fifo` flag).
        fifo_lock: bool,
        /// Directed yield on pause-loop exits (`/ple` flag).
        yield_on_ple: bool,
    },
    /// A CPU-burn memory walker of the given class (`Llcf`, `Lolcf`
    /// or `Llco`).
    Walk {
        /// Memory class; must be one of the three CPU-burn types.
        class: VcpuType,
    },
    /// A named application from the Table 3 catalog.
    App {
        /// Catalog name, as the paper spells it.
        name: String,
    },
    /// A type-shifting walker cycling LoLCF → LLCF → LLCO, one phase
    /// every `phase_ms` milliseconds.
    PhasedShift {
        /// Phase length in milliseconds.
        phase_ms: u64,
    },
    /// A permanently blocked VM (padding).
    Idle,
}

impl WorkloadSpec {
    /// Parses a `kind/args` token. Returns a human-readable error for
    /// malformed input.
    pub fn parse(token: &str) -> Result<Self, String> {
        let fields: Vec<&str> = token.split('/').collect();
        let bad = || format!("malformed workload token '{token}'");
        match fields.as_slice() {
            ["io", regime, rate] => {
                let regime = match *regime {
                    "exclusive" => IoRegime::Exclusive,
                    "heterogeneous" => IoRegime::Heterogeneous,
                    "mail" => IoRegime::Mail,
                    "plus" => IoRegime::Plus,
                    "noboost" => IoRegime::Noboost,
                    _ => return Err(format!("unknown io regime '{regime}' in '{token}'")),
                };
                let rate_hz: f64 = rate.parse().map_err(|_| bad())?;
                if !rate_hz.is_finite() || rate_hz <= 0.0 {
                    return Err(format!("io rate must be positive in '{token}'"));
                }
                Ok(WorkloadSpec::Io { regime, rate_hz })
            }
            ["spin", "kernbench", threads] | ["spin", "kernbench", threads, _] => {
                let threads: usize = threads.parse().map_err(|_| bad())?;
                if threads == 0 {
                    return Err(format!("spin thread count must be positive in '{token}'"));
                }
                let mut fifo_lock = false;
                let mut yield_on_ple = false;
                if let ["spin", "kernbench", _, flags] = fields.as_slice() {
                    for flag in flags.split('+') {
                        match flag {
                            "fifo" if !fifo_lock => fifo_lock = true,
                            "ple" if !yield_on_ple => yield_on_ple = true,
                            _ => {
                                return Err(format!(
                                    "unknown or repeated spin flag '{flag}' in '{token}'"
                                ))
                            }
                        }
                    }
                }
                Ok(WorkloadSpec::Spin {
                    threads,
                    fifo_lock,
                    yield_on_ple,
                })
            }
            ["walk", class] => {
                let class = VcpuType::from_label(class)
                    .filter(|c| matches!(c, VcpuType::Llcf | VcpuType::Lolcf | VcpuType::Llco))
                    .ok_or_else(|| format!("unknown walk class '{class}' in '{token}'"))?;
                Ok(WorkloadSpec::Walk { class })
            }
            ["app", name] => {
                find_app(name).ok_or_else(|| format!("unknown catalog app '{name}'"))?;
                Ok(WorkloadSpec::App {
                    name: name.to_string(),
                })
            }
            ["phased", "shift", phase_ms] => {
                let phase_ms: u64 = phase_ms.parse().map_err(|_| bad())?;
                if phase_ms == 0 {
                    return Err(format!("phase length must be positive in '{token}'"));
                }
                if phase_ms.checked_mul(MS).is_none() {
                    return Err(format!("phase length overflows the ns clock in '{token}'"));
                }
                Ok(WorkloadSpec::PhasedShift { phase_ms })
            }
            ["idle"] => Ok(WorkloadSpec::Idle),
            _ => Err(bad()),
        }
    }

    /// The ground-truth application type of the built workload. A
    /// phased walker reports the class of its *first* phase (`LoLCF`);
    /// its whole point is that the truth then shifts under vTRS.
    pub fn class(&self) -> VcpuType {
        match self {
            WorkloadSpec::Io { .. } => VcpuType::IoInt,
            WorkloadSpec::Spin { .. } => VcpuType::ConSpin,
            WorkloadSpec::Walk { class } => *class,
            WorkloadSpec::App { name } => find_app(name).expect("validated at parse").class,
            WorkloadSpec::PhasedShift { .. } | WorkloadSpec::Idle => VcpuType::Lolcf,
        }
    }

    /// The vCPU count of the VM this workload drives.
    pub fn vcpus(&self) -> usize {
        match self {
            WorkloadSpec::Spin { threads, .. } => *threads,
            WorkloadSpec::App { name } => find_app(name).expect("validated at parse").vcpus,
            _ => 1,
        }
    }

    /// The standard-sizing default weight: a full 256 per vCPU, so SMP
    /// jobs keep per-vCPU parity with single-vCPU neighbours.
    pub fn default_weight(&self) -> u32 {
        256 * self.vcpus() as u32
    }

    /// Builds the VM spec and workload instance for one VM named
    /// `vm_name` on a machine with the given cache, seeding any
    /// private random stream from `seed` (walkers are deterministic
    /// and ignore it).
    pub fn build(
        &self,
        vm_name: &str,
        cache: &CacheSpec,
        seed: u64,
    ) -> (VmSpec, Box<dyn GuestWorkload>) {
        let single = || VmSpec::single(vm_name);
        match self {
            WorkloadSpec::Io { regime, rate_hz } => {
                let cfg = match regime {
                    IoRegime::Exclusive => IoServerCfg::exclusive(*rate_hz),
                    IoRegime::Heterogeneous => IoServerCfg::heterogeneous(*rate_hz),
                    IoRegime::Mail => IoServerCfg::mail(*rate_hz),
                    IoRegime::Plus => IoServerCfg::plus(*rate_hz),
                    IoRegime::Noboost => IoServerCfg::noboost(*rate_hz),
                };
                (single(), Box::new(IoServer::new(vm_name, cfg, seed)))
            }
            WorkloadSpec::Spin {
                threads,
                fifo_lock,
                yield_on_ple,
            } => {
                let spec = VmSpec {
                    weight: self.default_weight(),
                    ..VmSpec::smp(vm_name, *threads)
                };
                let cfg = SpinJobCfg {
                    fifo_lock: *fifo_lock,
                    yield_on_ple: *yield_on_ple,
                    ..SpinJobCfg::kernbench(*threads)
                };
                (spec, Box::new(SpinJob::new(vm_name, cfg, seed)))
            }
            WorkloadSpec::Walk { class } => {
                let wl = match class {
                    VcpuType::Llcf => MemWalk::llcf(vm_name, cache),
                    VcpuType::Lolcf => MemWalk::lolcf(vm_name, cache),
                    VcpuType::Llco => MemWalk::llco(vm_name, cache),
                    _ => unreachable!("parse admits CPU-burn classes only"),
                };
                (single(), Box::new(wl))
            }
            WorkloadSpec::App { name } => {
                let (mut spec, wl) = build_app_vm(name, cache, seed).expect("validated at parse");
                spec.name = vm_name.to_string();
                (spec, wl)
            }
            WorkloadSpec::PhasedShift { phase_ms } => {
                let dur = phase_ms * MS;
                let phases = vec![
                    Phase {
                        duration_ns: dur,
                        profile: MemProfile::lolcf(cache),
                    },
                    Phase {
                        duration_ns: dur,
                        profile: MemProfile::llcf(cache),
                    },
                    Phase {
                        duration_ns: dur,
                        profile: MemProfile::llco(cache),
                    },
                ];
                (single(), Box::new(PhasedMemWalk::new(vm_name, phases)))
            }
            WorkloadSpec::Idle => (single(), Box::new(IdleWorkload::new(vm_name, 1))),
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Io { regime, rate_hz } => {
                write!(f, "io/{}/{}", regime.token(), rate_hz)
            }
            WorkloadSpec::Spin {
                threads,
                fifo_lock,
                yield_on_ple,
            } => {
                write!(f, "spin/kernbench/{threads}")?;
                match (fifo_lock, yield_on_ple) {
                    (false, false) => Ok(()),
                    (true, false) => f.write_str("/fifo"),
                    (false, true) => f.write_str("/ple"),
                    (true, true) => f.write_str("/fifo+ple"),
                }
            }
            WorkloadSpec::Walk { class } => {
                write!(f, "walk/{}", class.label().to_lowercase())
            }
            WorkloadSpec::App { name } => write!(f, "app/{name}"),
            WorkloadSpec::PhasedShift { phase_ms } => write!(f, "phased/shift/{phase_ms}"),
            WorkloadSpec::Idle => f.write_str("idle"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let specs = [
            WorkloadSpec::Io {
                regime: IoRegime::Exclusive,
                rate_hz: 200.0,
            },
            WorkloadSpec::Io {
                regime: IoRegime::Heterogeneous,
                rate_hz: 120.0,
            },
            WorkloadSpec::Io {
                regime: IoRegime::Mail,
                rate_hz: 150.5,
            },
            WorkloadSpec::Io {
                regime: IoRegime::Plus,
                rate_hz: 120.0,
            },
            WorkloadSpec::Io {
                regime: IoRegime::Noboost,
                rate_hz: 150.0,
            },
            WorkloadSpec::Spin {
                threads: 4,
                fifo_lock: false,
                yield_on_ple: false,
            },
            WorkloadSpec::Spin {
                threads: 2,
                fifo_lock: true,
                yield_on_ple: false,
            },
            WorkloadSpec::Spin {
                threads: 2,
                fifo_lock: false,
                yield_on_ple: true,
            },
            WorkloadSpec::Spin {
                threads: 8,
                fifo_lock: true,
                yield_on_ple: true,
            },
            WorkloadSpec::Walk {
                class: VcpuType::Llcf,
            },
            WorkloadSpec::Walk {
                class: VcpuType::Lolcf,
            },
            WorkloadSpec::Walk {
                class: VcpuType::Llco,
            },
            WorkloadSpec::App {
                name: "fluidanimate".into(),
            },
            WorkloadSpec::PhasedShift { phase_ms: 2000 },
            WorkloadSpec::Idle,
        ];
        for s in specs {
            let token = s.to_string();
            assert_eq!(WorkloadSpec::parse(&token).unwrap(), s, "token '{token}'");
        }
    }

    #[test]
    fn every_kind_builds_consistently() {
        let cache = CacheSpec::i7_3770();
        for token in [
            "io/heterogeneous/120",
            "io/mail/200",
            "io/plus/120",
            "io/noboost/150",
            "spin/kernbench/4",
            "spin/kernbench/2/fifo",
            "spin/kernbench/2/ple",
            "spin/kernbench/2/fifo+ple",
            "walk/llco",
            "app/streamcluster",
            "phased/shift/500",
            "idle",
        ] {
            let spec = WorkloadSpec::parse(token).unwrap();
            let (vm, wl) = spec.build("t", &cache, 7);
            assert_eq!(vm.name, "t", "token '{token}'");
            assert_eq!(vm.vcpus, spec.vcpus(), "token '{token}'");
            assert_eq!(wl.vcpu_slots(), vm.vcpus, "token '{token}'");
        }
    }

    #[test]
    fn classes_are_derived_from_kind() {
        let class = |t: &str| WorkloadSpec::parse(t).unwrap().class();
        assert_eq!(class("io/exclusive/100"), VcpuType::IoInt);
        assert_eq!(class("spin/kernbench/2"), VcpuType::ConSpin);
        assert_eq!(class("walk/llcf"), VcpuType::Llcf);
        assert_eq!(class("app/mcf"), VcpuType::Llco);
        assert_eq!(class("phased/shift/100"), VcpuType::Lolcf);
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for bad in [
            "",
            "io",
            "io/heterogeneous",
            "io/turbo/100",
            "io/exclusive/-5",
            "io/exclusive/abc",
            "spin/kernbench/0",
            "spin/kernbench/2/turbo",
            "spin/kernbench/2/fifo+fifo",
            "spin/kernbench/2/",
            "phased/shift/18446744073709551615",
            "walk/ioint",
            "walk/conspin",
            "app/doom",
            "phased/shift/0",
            "idle/extra",
        ] {
            assert!(WorkloadSpec::parse(bad).is_err(), "'{bad}' must fail");
        }
    }
}
