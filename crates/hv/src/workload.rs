//! The guest-workload interface.
//!
//! A VM's application behaviour is a [`GuestWorkload`]: one object per
//! VM driving all of the VM's vCPU *slots*. The engine hands the
//! workload CPU time ([`GuestWorkload::run`]) and timer deliveries
//! ([`GuestWorkload::on_timer`]); the workload reports why it stopped
//! ([`StopReason`]) and, at the end of a run, its application-level
//! metrics ([`WorkloadMetrics`]).
//!
//! During `run` the workload executes through an [`ExecContext`], which
//! meters instruction progress against the cache model and accumulates
//! PMU counters — the same counters the paper's vTRS samples.

use aql_mem::{
    exec_step, exec_step_cached, exec_step_lean, CacheSpec, ExecOutcome, LlcState, MemProfile,
    PmuCounters, RateCache,
};
use aql_sim::rng::SimRng;
use aql_sim::time::SimTime;

/// A workload slot's promise about its next scheduling-visible act.
///
/// The engine's adaptive time-advance (`TimeMode::Adaptive`) asks every
/// *running* slot for its horizon when planning how far it can
/// fast-forward without consulting the scheduler. The contract is:
/// **assuming the slot runs continuously from `now`, any
/// [`GuestWorkload::run`] call that ends strictly before the horizon
/// returns [`StopReason::BudgetExhausted`]** — the slot neither blocks
/// nor yields inside the promised window. Phase changes, lock handoffs
/// and cache-state evolution are fine: they happen *inside* `run` and
/// do not require the scheduler.
///
/// An unsound (too-late) horizon cannot corrupt a run — the engine
/// detects the broken promise and falls back to the dense path for the
/// affected sub-step — but it wastes the fast path, so report
/// [`Horizon::Unknown`] when in doubt (it is the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// The slot may block or yield at any moment (e.g. an IO server
    /// with an empty request queue). The engine stays on the dense
    /// path while such a slot runs.
    Unknown,
    /// The slot will not block or yield before the given instant.
    At(SimTime),
    /// The slot never blocks or yields of its own accord (pure CPU
    /// burners, spin workloads without directed yield).
    Never,
}

/// A running slot's answer to "may the engine hand you one coalesced
/// execution chunk covering a whole quiescent span?".
///
/// The adaptive time-advance normally replays the dense sub-step grid
/// — one `run` call per grid point — so results stay bit-identical to
/// the dense oracle. When **every** running slot declares itself
/// linear, the engine instead issues a *single* `run` call per slot
/// for the whole proven-quiescent span. The contract a linear slot
/// signs (for the next `cpu_ns` nanoseconds of its own CPU time):
///
/// * every `run` call consumes its entire budget and returns
///   [`StopReason::BudgetExhausted`] (no block, no yield);
/// * execution is **pure-rate**: the slot's memory profile is at the
///   zero-traffic fixpoint ([`CoalesceProbe::linear_rate`]), so it
///   mutates no shared LLC state, and the slot draws nothing from the
///   shared [`ExecContext::rng`] and advances no state read by another
///   *running* slot;
/// * behaviour is therefore chunk-size invariant: one call over the
///   span differs from the dense chunk sequence only in the f64
///   summation order of accumulated metrics (the tolerance oracle's
///   1e-6 budget), never in any `u64` accounting or event.
///
/// Integer state machines driven by consumed CPU time (phase budgets,
/// work segments, PLE windows) are fine: they advance identically for
/// any chunking of the same budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceHint {
    /// Chunk-size sensitive (the default): the engine keeps the dense
    /// grid for the span.
    No,
    /// Pure-rate for at least this much more CPU time (use `u64::MAX`
    /// for "until further notice"); the engine may coalesce any span
    /// not exceeding it. A phase boundary inside the window would
    /// change the rate, so phased workloads bound the window by the
    /// CPU time left in the current phase.
    LinearFor(u64),
}

/// Read-only state probe handed to [`GuestWorkload::coalesce`], giving
/// the workload what it needs to check the fixpoint conditions for its
/// current memory profile without touching engine state.
pub struct CoalesceProbe<'a> {
    /// Cache geometry of the machine.
    pub spec: &'a CacheSpec,
    /// The LLC of the socket the running slot sits on.
    pub llc: &'a LlcState,
    /// The slot's current private-L2 warmth.
    pub l2_warmth: f64,
    /// LLC owner index (global vCPU index).
    pub owner: usize,
    /// Which of this VM's slots are currently on a pCPU. A slot whose
    /// siblings are also running usually cannot be linear: coalescing
    /// would reorder cross-slot interactions (locks, barriers, shared
    /// RNG draws) by whole spans.
    pub running_slots: &'a [bool],
    /// The engine's steady-rate cache (see [`RateCache`]).
    pub rate_cache: &'a mut RateCache,
}

impl CoalesceProbe<'_> {
    /// Whether `profile` is at the zero-traffic fixpoint for this slot
    /// right now (memoized in the engine's [`RateCache`]).
    pub fn linear_rate(&mut self, profile: &MemProfile) -> bool {
        self.rate_cache
            .linear_rate(profile, self.spec, self.llc, self.owner, self.l2_warmth)
            .is_some()
    }

    /// How many of this VM's slots are currently running.
    pub fn running_sibling_count(&self) -> usize {
        self.running_slots.iter().filter(|r| **r).count()
    }
}

/// Why a workload stopped before using its whole budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The time budget was fully consumed; the vCPU stays runnable.
    BudgetExhausted,
    /// The vCPU has no work until an external event (IO arrival); it
    /// blocks and releases the pCPU.
    Blocked,
    /// The vCPU voluntarily yields the pCPU but remains runnable
    /// (e.g. Pause-Loop-Exiting directed yield while spinning).
    Yielded,
}

/// The result of one [`GuestWorkload::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Nanoseconds of CPU actually consumed (at most the budget).
    pub used_ns: u64,
    /// Why the call returned.
    pub stop: StopReason,
}

impl RunOutcome {
    /// Convenience constructor for a full-budget run.
    pub fn ran_all(budget_ns: u64) -> Self {
        RunOutcome {
            used_ns: budget_ns,
            stop: StopReason::BudgetExhausted,
        }
    }
}

/// The result of delivering a timer to a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerFire {
    /// IO events materialised by this delivery (counted by the
    /// hypervisor's event-channel monitor, §3.3.2).
    pub io_events: u64,
    /// Whether the slot should wake if it was blocked.
    pub wake: bool,
}

/// Metered execution environment handed to [`GuestWorkload::run`].
///
/// Borrowing rules: the context holds exclusive access to the socket's
/// LLC state and the vCPU's PMU counters for the duration of the call.
pub struct ExecContext<'a> {
    /// Current simulated time at the start of the run slice.
    pub now: SimTime,
    /// Cache geometry of the machine.
    pub spec: &'a CacheSpec,
    /// Shared LLC of the socket the vCPU is running on.
    pub llc: &'a mut LlcState,
    /// The vCPU's PMU counters.
    pub pmu: &'a mut PmuCounters,
    /// The vCPU's private-L2 warmth (fraction resident), updated in
    /// place by [`ExecContext::exec_mem`].
    pub l2_warmth: &'a mut f64,
    /// Deterministic randomness.
    pub rng: &'a mut SimRng,
    /// LLC owner index (global vCPU index).
    pub owner: usize,
    /// Which of this VM's slots are currently on a pCPU; lets
    /// spin-lock models observe holder preemption.
    pub running_slots: &'a [bool],
    /// Routes [`ExecContext::exec_mem`] through the allocation-free
    /// lean cache plumbing ([`aql_mem::exec_step_lean`]). The two paths
    /// are bit-identical; the adaptive time-advance sets this, the
    /// dense conformance oracle leaves it off.
    pub lean: bool,
    /// Steady-rate cache consulted by the lean path; at the
    /// zero-traffic fixpoint a whole budget is answered in O(1) with
    /// the integrator's exact bits ([`aql_mem::exec_step_cached`]).
    /// `None` keeps the plain lean integrator.
    pub rate_cache: Option<&'a mut RateCache>,
}

impl ExecContext<'_> {
    /// Executes `dt_ns` of CPU under `profile`, updating the LLC, the
    /// L2 warmth and the PMU. Returns the retirement outcome.
    pub fn exec_mem(&mut self, profile: &MemProfile, dt_ns: u64) -> ExecOutcome {
        let out = if !self.lean {
            exec_step(
                profile,
                self.spec,
                self.llc,
                self.owner,
                self.l2_warmth,
                dt_ns,
            )
        } else if let Some(cache) = self.rate_cache.as_deref_mut() {
            exec_step_cached(
                profile,
                self.spec,
                self.llc,
                self.owner,
                self.l2_warmth,
                dt_ns,
                cache,
            )
        } else {
            exec_step_lean(
                profile,
                self.spec,
                self.llc,
                self.owner,
                self.l2_warmth,
                dt_ns,
            )
        };
        self.pmu.add_exec(&out);
        out
    }

    /// Records `n` Pause-Loop-Exiting traps (spin detection, §3.3.2).
    pub fn ple_exits(&mut self, n: u64) {
        self.pmu.add_ple_exits(n);
    }
}

/// Latency distribution summary for IO-like workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Completed requests.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: f64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: f64,
    /// Maximum observed latency in nanoseconds.
    pub max_ns: f64,
    /// NaN latency samples recorded. Zero on every healthy run; a
    /// non-zero count marks the summary as corrupted (the percentile
    /// fields may themselves be NaN) and is what the engine's
    /// invariant sentinel reports instead of letting a NaN propagate
    /// silently into normalised tables.
    pub nan_samples: u64,
}

impl LatencySummary {
    /// Whether every field of the summary is finite and no NaN sample
    /// was recorded.
    pub fn is_finite(&self) -> bool {
        self.nan_samples == 0
            && self.mean_ns.is_finite()
            && self.p95_ns.is_finite()
            && self.p99_ns.is_finite()
            && self.max_ns.is_finite()
    }
}

/// End-of-run application metrics, per workload kind.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadMetrics {
    /// Request/response workload: the paper scores these by latency.
    Io {
        /// Latency summary over completed requests.
        latency: LatencySummary,
        /// Requests completed.
        completed: u64,
        /// Requests that arrived (offered load).
        offered: u64,
    },
    /// Spin-lock synchronised parallel job: scored by throughput.
    Spin {
        /// Work items completed across all threads.
        work_items: u64,
        /// Mean observed lock-ownership duration, ns.
        lock_hold_mean_ns: f64,
        /// Longest observed lock-ownership duration, ns.
        lock_hold_max_ns: f64,
        /// Mean lock acquisition wait, ns.
        lock_wait_mean_ns: f64,
        /// Total CPU burnt spinning, ns.
        spin_ns: u64,
    },
    /// CPU/memory workload: scored by retired instructions.
    Mem {
        /// Instructions retired over the run.
        instructions: f64,
    },
    /// A workload with no meaningful application metric.
    None,
}

impl WorkloadMetrics {
    /// A scalar "time-like cost" (lower is better) used to normalise
    /// performance across runs, as the paper normalises every figure:
    /// mean latency for IO, inverse throughput for spin jobs, inverse
    /// instruction rate for memory workloads.
    pub fn time_cost(&self) -> Option<f64> {
        match self {
            WorkloadMetrics::Io { latency, .. } => (latency.count > 0).then_some(latency.mean_ns),
            WorkloadMetrics::Spin { work_items, .. } => {
                (*work_items > 0).then_some(1.0 / *work_items as f64)
            }
            WorkloadMetrics::Mem { instructions } => {
                (*instructions > 0.0).then_some(1.0 / *instructions)
            }
            WorkloadMetrics::None => None,
        }
    }
}

/// A VM's application behaviour.
///
/// One object drives all the VM's vCPU slots; slot indices are local
/// to the VM (`0..vcpu_slots()`).
///
/// `Send` is a supertrait because the parallel span executor
/// (`engine::horizon`) may run a VM's coalesced chunk on a worker
/// thread of the span pool. Workload state is only ever *accessed*
/// from one thread at a time — the engine hands each VM to exactly one
/// socket lane per span — so `Sync` is not required.
pub trait GuestWorkload: Send {
    /// Short human-readable name (e.g. `"SPECweb2009"`).
    fn name(&self) -> &str;

    /// Number of vCPU slots this workload drives; must equal the VM's
    /// vCPU count.
    fn vcpu_slots(&self) -> usize;

    /// Gives `slot` at most `budget_ns` of CPU starting at `ctx.now`.
    ///
    /// Must return `used_ns <= budget_ns`. Returning
    /// [`StopReason::Blocked`] parks the vCPU until a timer fires for
    /// the slot; [`StopReason::Yielded`] requeues it immediately.
    fn run(&mut self, slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome;

    /// Whether the slot has runnable work right now (used at admission
    /// and after pool reconfigurations).
    fn runnable(&self, slot: usize) -> bool;

    /// The next instant the *running* slot could block or yield (see
    /// [`Horizon`] for the exact contract). The default is
    /// [`Horizon::Unknown`], which is always sound: the engine then
    /// advances the slot on the dense sub-step path.
    fn horizon(&self, _slot: usize, _now: SimTime) -> Horizon {
        Horizon::Unknown
    }

    /// Whether the *running* slot's execution may be coalesced into a
    /// single chunk across a proven-quiescent span, and for how much
    /// CPU time (see [`CoalesceHint`] for the exact contract). The
    /// default is [`CoalesceHint::No`], which is always sound: the
    /// engine then replays the dense sub-step grid for the span.
    fn coalesce(&self, _slot: usize, _probe: &mut CoalesceProbe<'_>) -> CoalesceHint {
        CoalesceHint::No
    }

    /// The next instant at which the slot needs a timer delivery
    /// (request arrival, sleep expiry), if any.
    fn next_timer(&self, slot: usize) -> Option<SimTime>;

    /// Delivers a due timer to the slot.
    fn on_timer(&mut self, slot: usize, now: SimTime) -> TimerFire;

    /// Application metrics accumulated so far.
    fn metrics(&self) -> WorkloadMetrics;

    /// Clears accumulated metrics without disturbing execution state.
    ///
    /// Experiment harnesses call this after a warm-up phase so reported
    /// metrics reflect steady state (standard measurement practice; the
    /// paper's runs similarly exclude benchmark ramp-up).
    fn reset_metrics(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_outcome_full_budget() {
        let o = RunOutcome::ran_all(500);
        assert_eq!(o.used_ns, 500);
        assert_eq!(o.stop, StopReason::BudgetExhausted);
    }

    #[test]
    fn io_time_cost_is_latency() {
        let m = WorkloadMetrics::Io {
            latency: LatencySummary {
                count: 10,
                mean_ns: 5000.0,
                ..Default::default()
            },
            completed: 10,
            offered: 12,
        };
        assert_eq!(m.time_cost(), Some(5000.0));
    }

    #[test]
    fn spin_time_cost_is_inverse_throughput() {
        let m = WorkloadMetrics::Spin {
            work_items: 200,
            lock_hold_mean_ns: 0.0,
            lock_hold_max_ns: 0.0,
            lock_wait_mean_ns: 0.0,
            spin_ns: 0,
        };
        assert_eq!(m.time_cost(), Some(1.0 / 200.0));
    }

    #[test]
    fn empty_metrics_have_no_cost() {
        assert_eq!(WorkloadMetrics::None.time_cost(), None);
        let io = WorkloadMetrics::Io {
            latency: LatencySummary::default(),
            completed: 0,
            offered: 0,
        };
        assert_eq!(io.time_cost(), None);
        let mem = WorkloadMetrics::Mem { instructions: 0.0 };
        assert_eq!(mem.time_cost(), None);
    }

    #[test]
    fn mem_cost_decreases_with_more_instructions() {
        let a = WorkloadMetrics::Mem { instructions: 1e6 };
        let b = WorkloadMetrics::Mem { instructions: 2e6 };
        assert!(a.time_cost().unwrap() > b.time_cost().unwrap());
    }
}
