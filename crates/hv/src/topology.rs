//! Machine topology.

use aql_mem::CacheSpec;

use crate::ids::{PcpuId, SocketId};

/// The shape of the simulated machine: sockets, cores per socket and
/// the cache hierarchy.
///
/// pCPUs are numbered socket-major: pCPU `i` lives on socket
/// `i / cores_per_socket`.
///
/// # Examples
///
/// ```
/// use aql_hv::MachineSpec;
///
/// let m = MachineSpec::xeon_e5_4603();
/// assert_eq!(m.sockets, 4);
/// assert_eq!(m.total_pcpus(), 16);
/// assert_eq!(m.socket_of(aql_hv::PcpuId(5)).index(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable machine name.
    pub name: String,
    /// Number of sockets (each with a private shared LLC).
    pub sockets: usize,
    /// Cores per socket; each core is one pCPU.
    pub cores_per_socket: usize,
    /// Cache hierarchy geometry and timing.
    pub cache: CacheSpec,
}

impl MachineSpec {
    /// The paper's calibration host (Table 2): one socket, 8 cores,
    /// 8 MB LLC (Intel Core i7-3770).
    pub fn i7_3770() -> Self {
        MachineSpec {
            name: "i7-3770".to_string(),
            sockets: 1,
            cores_per_socket: 8,
            cache: CacheSpec::i7_3770(),
        }
    }

    /// The paper's multi-socket host (§4.2): four sockets of 4 cores
    /// (Intel Xeon E5-4603). One socket is conventionally reserved for
    /// dom0 by the experiment harness, mirroring Fig. 3.
    pub fn xeon_e5_4603() -> Self {
        MachineSpec {
            name: "Xeon-E5-4603".to_string(),
            sockets: 4,
            cores_per_socket: 4,
            cache: CacheSpec::xeon_e5_4603(),
        }
    }

    /// An arbitrary custom shape.
    pub fn custom(name: &str, sockets: usize, cores_per_socket: usize, cache: CacheSpec) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0, "degenerate machine");
        MachineSpec {
            name: name.to_string(),
            sockets,
            cores_per_socket,
            cache,
        }
    }

    /// Total number of pCPUs.
    pub fn total_pcpus(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// The socket a pCPU belongs to.
    pub fn socket_of(&self, pcpu: PcpuId) -> SocketId {
        debug_assert!(pcpu.index() < self.total_pcpus());
        SocketId(pcpu.index() / self.cores_per_socket)
    }

    /// The pCPUs of one socket, in index order.
    pub fn pcpus_of_socket(&self, socket: SocketId) -> Vec<PcpuId> {
        let base = socket.index() * self.cores_per_socket;
        (base..base + self.cores_per_socket).map(PcpuId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i7_is_single_socket_8_cores() {
        let m = MachineSpec::i7_3770();
        assert_eq!(m.total_pcpus(), 8);
        assert_eq!(m.socket_of(PcpuId(7)).index(), 0);
    }

    #[test]
    fn xeon_socket_mapping() {
        let m = MachineSpec::xeon_e5_4603();
        assert_eq!(m.socket_of(PcpuId(0)).index(), 0);
        assert_eq!(m.socket_of(PcpuId(3)).index(), 0);
        assert_eq!(m.socket_of(PcpuId(4)).index(), 1);
        assert_eq!(m.socket_of(PcpuId(15)).index(), 3);
    }

    #[test]
    fn pcpus_of_socket_partition_the_machine() {
        let m = MachineSpec::xeon_e5_4603();
        let mut all: Vec<usize> = Vec::new();
        for s in 0..m.sockets {
            all.extend(m.pcpus_of_socket(SocketId(s)).iter().map(|p| p.index()));
        }
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "degenerate machine")]
    fn zero_socket_machine_rejected() {
        let _ = MachineSpec::custom("bad", 0, 4, CacheSpec::i7_3770());
    }
}
