//! Guest-visible ticket spin-lock.
//!
//! The paper's `ConSpin` class (§3.2) synchronises threads with spin
//! locks, and its pathology under virtualization is *lock-holder /
//! lock-waiter preemption*: the thread owning (or next in line for)
//! the lock sits on a descheduled vCPU, so every other thread burns its
//! quantum spinning. [`TicketLock`] models the lock fabric; the spin
//! workload in `aql-workloads` drives it and reports hold/wait times.

use aql_sim::time::SimTime;

/// A FIFO ticket lock.
///
/// `take_ticket` hands out increasing tickets; the lock serves tickets
/// in order. After a release the next ticket is *immediately* the
/// owner — if the thread holding that ticket sits on a descheduled
/// vCPU, the lock stalls until that vCPU runs again, which is exactly
/// the waiter-preemption cost that grows with the quantum length.
///
/// The lock records when the currently-served ticket became the owner
/// ([`TicketLock::serving_since`]), so the *ownership duration* — the
/// paper's "lock duration", including time the owner's vCPU was
/// descheduled — can be measured at release.
///
/// # Examples
///
/// ```
/// use aql_hv::spinlock::TicketLock;
/// use aql_sim::time::SimTime;
///
/// let mut lock = TicketLock::new();
/// let a = lock.take_ticket(SimTime::from_us(1));
/// let b = lock.take_ticket(SimTime::from_us(2));
/// assert!(lock.is_turn(a));
/// assert!(!lock.is_turn(b));
/// lock.release(SimTime::from_us(9));
/// assert!(lock.is_turn(b));
/// // b became the owner at the release instant.
/// assert_eq!(lock.serving_since(), SimTime::from_us(9));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TicketLock {
    next_ticket: u64,
    now_serving: u64,
    serving_since: SimTime,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TicketLock::default()
    }

    /// Draws the next ticket at time `now`. If the lock was free the
    /// ticket is immediately the owner and ownership starts now.
    pub fn take_ticket(&mut self, now: SimTime) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        if self.now_serving == t {
            self.serving_since = now;
        }
        t
    }

    /// Whether `ticket` is currently being served (its holder may enter
    /// the critical section).
    pub fn is_turn(&self, ticket: u64) -> bool {
        self.now_serving == ticket
    }

    /// When the currently-served ticket became the owner.
    pub fn serving_since(&self) -> SimTime {
        self.serving_since
    }

    /// Releases the critical section at time `now`, handing ownership
    /// to the next ticket (whose ownership starts immediately, even if
    /// its thread's vCPU is descheduled — the waiter-preemption case).
    pub fn release(&mut self, now: SimTime) {
        debug_assert!(
            self.now_serving < self.next_ticket,
            "release without an outstanding ticket"
        );
        self.now_serving += 1;
        self.serving_since = now;
    }

    /// Number of tickets waiting behind the one being served
    /// (outstanding tickets minus the current owner).
    pub fn waiters(&self) -> u64 {
        (self.next_ticket - self.now_serving).saturating_sub(1)
    }

    /// Whether any ticket is outstanding.
    pub fn is_held(&self) -> bool {
        self.next_ticket > self.now_serving
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn fifo_service_order() {
        let mut l = TicketLock::new();
        let t0 = l.take_ticket(t(0));
        let t1 = l.take_ticket(t(1));
        let t2 = l.take_ticket(t(2));
        assert!(l.is_turn(t0) && !l.is_turn(t1));
        l.release(t(5));
        assert!(l.is_turn(t1) && !l.is_turn(t2));
        l.release(t(9));
        assert!(l.is_turn(t2));
    }

    #[test]
    fn waiters_counts_queue_depth() {
        let mut l = TicketLock::new();
        assert_eq!(l.waiters(), 0);
        assert!(!l.is_held());
        let _ = l.take_ticket(t(0));
        assert_eq!(l.waiters(), 0);
        assert!(l.is_held());
        let _ = l.take_ticket(t(1));
        let _ = l.take_ticket(t(2));
        assert_eq!(l.waiters(), 2);
        l.release(t(3));
        assert_eq!(l.waiters(), 1);
    }

    #[test]
    fn release_then_empty() {
        let mut l = TicketLock::new();
        let _ = l.take_ticket(t(0));
        l.release(t(1));
        assert!(!l.is_held());
        assert_eq!(l.waiters(), 0);
    }

    #[test]
    fn ownership_starts_at_take_when_free() {
        let mut l = TicketLock::new();
        let _ = l.take_ticket(t(7));
        assert_eq!(l.serving_since(), t(7));
    }

    #[test]
    fn ownership_transfers_at_release() {
        let mut l = TicketLock::new();
        let _a = l.take_ticket(t(1));
        let b = l.take_ticket(t(2));
        l.release(t(10));
        // b owns the lock from the release instant, even if its vCPU
        // is descheduled (lock-waiter preemption).
        assert!(l.is_turn(b));
        assert_eq!(l.serving_since(), t(10));
    }
}
