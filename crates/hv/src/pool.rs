//! CPU pools.
//!
//! A pool is a set of pCPUs whose schedulers share one quantum length.
//! Pools are the mechanism behind the paper's clustering (§3.5): each
//! vCPU cluster is pinned to a pool configured with the cluster's best
//! quantum. The default configuration is a single pool covering the
//! whole machine with Xen's 30 ms quantum.
//!
//! As in the paper's prototype (§4.3), all pools share the scheduler's
//! data structures, so moving a vCPU between pools costs nothing in
//! the simulated hypervisor.

use crate::ids::{PcpuId, PoolId};
use crate::DEFAULT_QUANTUM_NS;

/// Requested pool layout: pCPU set plus quantum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSpec {
    /// pCPUs in the pool (must be disjoint across specs and cover the
    /// machine when applied).
    pub pcpus: Vec<PcpuId>,
    /// Quantum length (ns) every pCPU scheduler in the pool uses.
    pub quantum_ns: u64,
}

impl PoolSpec {
    /// A pool over the given pCPUs with the given quantum.
    pub fn new(pcpus: Vec<PcpuId>, quantum_ns: u64) -> Self {
        PoolSpec { pcpus, quantum_ns }
    }
}

/// A live CPU pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuPool {
    /// Pool identifier (dense).
    pub id: PoolId,
    /// Member pCPUs, in index order.
    pub pcpus: Vec<PcpuId>,
    /// Current quantum length (ns).
    pub quantum_ns: u64,
}

impl CpuPool {
    /// Creates a pool; member list is kept sorted for determinism.
    pub fn new(id: PoolId, mut pcpus: Vec<PcpuId>, quantum_ns: u64) -> Self {
        assert!(!pcpus.is_empty(), "a pool must own at least one pCPU");
        assert!(quantum_ns > 0, "quantum must be positive");
        pcpus.sort();
        pcpus.dedup();
        CpuPool {
            id,
            pcpus,
            quantum_ns,
        }
    }

    /// The machine-wide default: all pCPUs, 30 ms quantum.
    pub fn default_pool(total_pcpus: usize) -> Self {
        CpuPool::new(
            PoolId(0),
            (0..total_pcpus).map(PcpuId).collect(),
            DEFAULT_QUANTUM_NS,
        )
    }

    /// Whether the pool contains `pcpu`.
    pub fn contains(&self, pcpu: PcpuId) -> bool {
        self.pcpus.binary_search(&pcpu).is_ok()
    }
}

/// Validates that `specs` partition `total_pcpus` pCPUs: every pCPU in
/// exactly one pool, no pool empty. Returns the pool list on success.
pub fn build_pools(specs: &[PoolSpec], total_pcpus: usize) -> Result<Vec<CpuPool>, String> {
    if specs.is_empty() {
        return Err("no pool specs given".to_string());
    }
    let mut seen = vec![false; total_pcpus];
    let mut pools = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        if spec.pcpus.is_empty() {
            return Err(format!("pool {i} is empty"));
        }
        if spec.quantum_ns == 0 {
            return Err(format!("pool {i} has zero quantum"));
        }
        for &p in &spec.pcpus {
            if p.index() >= total_pcpus {
                return Err(format!("pool {i} references unknown {p}"));
            }
            if seen[p.index()] {
                return Err(format!("{p} assigned to more than one pool"));
            }
            seen[p.index()] = true;
        }
        pools.push(CpuPool::new(PoolId(i), spec.pcpus.clone(), spec.quantum_ns));
    }
    if let Some(idx) = seen.iter().position(|s| !s) {
        return Err(format!("pcpu{idx} not covered by any pool"));
    }
    Ok(pools)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_sim::time::MS;

    #[test]
    fn default_pool_covers_machine() {
        let p = CpuPool::default_pool(8);
        assert_eq!(p.pcpus.len(), 8);
        assert_eq!(p.quantum_ns, DEFAULT_QUANTUM_NS);
        assert!(p.contains(PcpuId(0)));
        assert!(p.contains(PcpuId(7)));
        assert!(!p.contains(PcpuId(8)));
    }

    #[test]
    fn build_pools_accepts_partition() {
        let specs = vec![
            PoolSpec::new(vec![PcpuId(0), PcpuId(1)], MS),
            PoolSpec::new(vec![PcpuId(2), PcpuId(3)], 90 * MS),
        ];
        let pools = build_pools(&specs, 4).unwrap();
        assert_eq!(pools.len(), 2);
        assert_eq!(pools[0].quantum_ns, MS);
        assert_eq!(pools[1].quantum_ns, 90 * MS);
    }

    #[test]
    fn build_pools_rejects_overlap() {
        let specs = vec![
            PoolSpec::new(vec![PcpuId(0), PcpuId(1)], MS),
            PoolSpec::new(vec![PcpuId(1), PcpuId(2)], MS),
        ];
        let err = build_pools(&specs, 3).unwrap_err();
        assert!(err.contains("more than one pool"), "{err}");
    }

    #[test]
    fn build_pools_rejects_hole() {
        let specs = vec![PoolSpec::new(vec![PcpuId(0)], MS)];
        let err = build_pools(&specs, 2).unwrap_err();
        assert!(err.contains("not covered"), "{err}");
    }

    #[test]
    fn build_pools_rejects_unknown_pcpu() {
        let specs = vec![PoolSpec::new(vec![PcpuId(5)], MS)];
        let err = build_pools(&specs, 2).unwrap_err();
        assert!(err.contains("unknown"), "{err}");
    }

    #[test]
    fn build_pools_rejects_zero_quantum() {
        let specs = vec![PoolSpec::new(vec![PcpuId(0)], 0)];
        let err = build_pools(&specs, 1).unwrap_err();
        assert!(err.contains("zero quantum"), "{err}");
    }

    #[test]
    fn pool_members_sorted_and_deduped() {
        let p = CpuPool::new(PoolId(0), vec![PcpuId(3), PcpuId(1), PcpuId(3)], MS);
        assert_eq!(p.pcpus, vec![PcpuId(1), PcpuId(3)]);
    }
}
