//! The simulation engine.
//!
//! [`Hypervisor`] holds the machine state (vCPUs, pools, run queues,
//! LLCs); [`Simulation`] owns the hypervisor plus the guest workloads,
//! the scheduling policy and the event queue, and advances simulated
//! time.
//!
//! Time advances in two interleaved ways:
//!
//! 1. **Events** (ticks, monitoring periods, guest timers) are popped
//!    from a stable [`EventQueue`].
//! 2. **Execution** between events proceeds in bounded sub-steps:
//!    every running vCPU's workload is advanced by at most
//!    `substep_ns`, so concurrently running vCPUs observe each other's
//!    LLC pressure and lock state with bounded staleness.
//!
//! Quantum boundaries are enforced inside the sub-step loop at
//! nanosecond precision: a slice never runs past `Vcpu::slice_end`.
//!
//! How the loop walks that sub-step grid is the [`TimeMode`]:
//! [`TimeMode::Dense`] visits every grid point and re-derives the
//! scheduler state at each one (the original engine loop, kept as the
//! conformance oracle), while [`TimeMode::Adaptive`] — the default —
//! computes an *event horizon* (the earliest instant anything
//! scheduler-visible can happen: next event, slice expiry, kick
//! deadline or workload [`Horizon`](crate::workload::Horizon)) and
//! fast-forwards whole sub-steps up to it on a lean path, **coalescing
//! the span into one execution chunk per slot** whenever every running
//! slot is provably linear (see
//! [`CoalesceHint`](crate::workload::CoalesceHint)). The adaptive mode
//! reproduces the dense oracle under a quantified tolerance: all `u64`
//! accounting, events and dispatch decisions are bit-exact, and f64
//! metrics drift by at most 1e-6 relative (coalesced summation order
//! plus snapped sub-epsilon cache traffic); see the `horizon` module
//! docs for the argument.
//!
//! The engine is layered into focused modules behind this facade:
//!
//! * `machine` — [`Hypervisor`] + [`PcpuState`]: the machine state
//!   policies reconfigure.
//! * `dispatch` — the context-switch layer. Every context switch, for
//!   every policy, is described by an explicit [`DispatchDecision`] so
//!   measured policy deltas are attributable to configuration, never
//!   to divergent code paths.
//! * `exec` — the bounded sub-step execution loop.
//! * `horizon` — the adaptive time-advance core: quiescent-span
//!   planning and the fast-forward loop.
//! * `monitor` — event handling: credit ticks, PMU sampling and the
//!   [`SchedPolicy::on_monitor`] plumbing, guest timers.
//! * `balance` — idle stealing and periodic run-queue balancing
//!   within pools.
//! * `builder` — [`SimulationBuilder`].

mod balance;
mod budget;
mod builder;
mod dispatch;
mod exec;
mod horizon;
mod machine;
mod monitor;
mod spanpool;

#[cfg(test)]
mod tests;

pub use budget::{EngineError, RunBudget};
pub use builder::SimulationBuilder;
pub use dispatch::{DispatchDecision, DispatchSource};
pub use machine::{Hypervisor, PcpuState};

/// How [`Simulation::run_until`] advances simulated time between
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeMode {
    /// The original engine loop: every sub-step visits the event
    /// queue, the rescheduler and every pCPU. Kept as the conformance
    /// oracle for [`TimeMode::Adaptive`] and for bisecting suspected
    /// fast-path bugs.
    Dense,
    /// Event-horizon execution (the default): between events the
    /// engine proves a span quiescent — no slice expiry, no kick
    /// deadline, every running workload's
    /// [`Horizon`](crate::workload::Horizon) beyond it — and
    /// fast-forwards the span's sub-steps on a lean path that skips
    /// the event queue, the rescheduler and idle pCPUs entirely,
    /// executing the whole span as one coalesced chunk per slot when
    /// every running slot is linear. Reproduces [`TimeMode::Dense`]
    /// within the tolerance oracle: bit-exact integer accounting and
    /// events, ≤1e-6 relative drift on f64 metrics (none at all with
    /// coalescing disabled via `SimulationBuilder::coalesce(false)`).
    #[default]
    Adaptive,
}

use aql_sim::queue::EventQueue;
use aql_sim::rng::SimRng;
use aql_sim::time::SimTime;
use aql_sim::trace::TraceLog;

use aql_mem::RateCache;

use crate::policy::SchedPolicy;
use crate::report::{RunReport, VmReport};
use crate::workload::GuestWorkload;

/// Default execution sub-step: 100 µs bounds cross-pCPU staleness.
pub const DEFAULT_SUBSTEP_NS: u64 = 100 * aql_sim::time::US;

/// Engine events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// 10 ms credit tick.
    Tick,
    /// 30 ms monitoring period boundary.
    Monitor,
    /// A guest timer for vCPU `vcpu`; stale if `gen` mismatches.
    GuestTimer { vcpu: usize, gen: u64 },
}

/// Reusable scratch storage for the engine's periodic passes, so the
/// steady-state run loop performs no heap allocation.
#[derive(Debug, Default)]
struct Scratch {
    /// pCPU indices of the pool currently being rebalanced.
    pool_pcpus: Vec<usize>,
    /// Busy-pCPU execution slots of the adaptive fast-forward loop.
    fast_slots: Vec<horizon::FastSlot>,
    /// `sched_gen` at the last failed quiescent-span plan; planning is
    /// skipped (generic dense sub-steps taken) until the generation
    /// moves. Purely an efficiency memo — which advance mode runs is
    /// invisible in the results.
    failed_plan_gen: Option<u64>,
    /// Per-pool "any stealable queued work" flags for the adaptive
    /// generic sub-step (see `Simulation::advance_all_adaptive`).
    pool_stealable: Vec<bool>,
    /// `sched_gen` the flags were computed at; they stay exact until
    /// the generation moves (every enqueue/dispatch bumps it).
    pool_stealable_gen: Option<u64>,
}

/// A complete simulation run: hypervisor + workloads + policy + clock.
pub struct Simulation {
    /// The simulated hypervisor (public for policies and tests).
    pub hv: Hypervisor,
    workloads: Vec<Box<dyn GuestWorkload>>,
    vm_running: Vec<Vec<bool>>,
    policy: Box<dyn SchedPolicy>,
    queue: EventQueue<Event>,
    now: SimTime,
    rng: SimRng,
    substep_ns: u64,
    time_mode: TimeMode,
    /// Whether the adaptive mode may coalesce a proven-quiescent span
    /// into one execution chunk per slot when every running slot
    /// declares itself linear (see `engine::horizon`). Off, the
    /// adaptive mode replays the dense sub-step grid bit-for-bit.
    coalesce: bool,
    /// Steady-rate memos for the lean execution path and the coalesce
    /// probes, one per socket (see [`aql_mem::RateCache`]). The split
    /// is bit-transparent — a miss recomputes the exact bits a hit
    /// would have served — and is what lets a parallel span hand each
    /// socket lane its own cache without locking.
    rate_caches: Vec<RateCache>,
    /// Persistent worker threads for parallel span execution; `None`
    /// runs every span on the calling thread (`span_workers <= 1` or a
    /// single-socket machine).
    span_pool: Option<spanpool::SpanPool>,
    /// How many coalesced spans actually executed on the pool (multi-
    /// socket fan-out, not the serial fallback). Diagnostic only —
    /// never enters a report; the conformance suites assert it is
    /// non-zero to prove their determinism checks are not vacuous.
    parallel_spans: u64,
    /// Scheduling-state generation: bumped on every event, dispatch,
    /// preemption, block and yield. The adaptive planner memoizes a
    /// failed quiescent-span plan against this counter — no plan can
    /// start succeeding until the generation moves, so re-planning
    /// every sub-step of a short-quantum regime is wasted work.
    sched_gen: u64,
    /// Armed sentinels of a budgeted run in flight (see
    /// [`Simulation::run_measured_budgeted`]); `None` outside one.
    budget: Option<budget::ArmedBudget>,
    /// How many coalesced chunks broke the
    /// [`CoalesceHint`](crate::workload::CoalesceHint) contract and
    /// were recovered through the dense continuation. Zero for every
    /// in-tree workload; fault injection (`coalesce-break`) drives it
    /// up to prove the recovery path, and tests assert on it.
    contract_breaks: u64,
    /// Trace log (enable via [`SimulationBuilder::trace`]).
    pub trace: TraceLog,
    tick_count: u64,
    measure_start: SimTime,
    scratch: Scratch,
}

impl Simulation {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active policy, for downcasting to extract internal traces.
    pub fn policy(&self) -> &dyn SchedPolicy {
        self.policy.as_ref()
    }

    /// The time-advance mode this simulation runs with.
    pub fn time_mode(&self) -> TimeMode {
        self.time_mode
    }

    /// `(hits, recomputes)` of the steady-rate caches, summed over
    /// sockets — recomputes count every invalidation-by-key-mismatch
    /// (contention insertions, migration warmth resets, phase shifts).
    pub fn rate_cache_stats(&self) -> (u64, u64) {
        self.rate_caches
            .iter()
            .map(|c| c.stats())
            .fold((0, 0), |(h, r), (ch, cr)| (h + ch, r + cr))
    }

    /// How many coalesced spans ran on the span pool (multi-socket
    /// fan-out; the serial fallback does not count). Zero whenever
    /// `span_workers <= 1`, the machine has one socket, or no span
    /// ever had two sockets busy.
    pub fn parallel_span_count(&self) -> u64 {
        self.parallel_spans
    }

    /// How many coalesced chunks broke the linear contract and were
    /// completed through the dense recovery path. Zero for conforming
    /// workloads; the fault-injection tests assert it moves under a
    /// `coalesce-break` fault, proving the recovery is exercised.
    pub fn coalesce_break_count(&self) -> u64 {
        self.contract_breaks
    }

    /// Runs until `end` (absolute simulated time). A no-op when `end`
    /// is not after the current time: the clock never moves backwards.
    pub fn run_until(&mut self, end: SimTime) {
        if end <= self.now {
            return;
        }
        match self.time_mode {
            TimeMode::Dense => self.run_until_dense(end),
            TimeMode::Adaptive => self.run_until_adaptive(end),
        }
    }

    /// The original dense loop: every sub-step re-derives the full
    /// scheduler state. [`TimeMode::Adaptive`] must reproduce this
    /// loop's results bit for bit.
    fn run_until_dense(&mut self, end: SimTime) {
        while self.now < end {
            // 0. A tripped run budget aborts mid-run: return, never
            // `break` — the epilogue below would claim the clock
            // reached `end` when it did not.
            if self.budget_stop() {
                return;
            }
            // 1. Process all events due now.
            while self
                .queue
                .peek_time()
                .is_some_and(|t| t <= self.now && t <= end)
            {
                let (t, ev) = self.queue.pop().expect("peeked");
                debug_assert!(t <= self.now);
                self.handle_event(ev);
            }
            // 2. Repair scheduling decisions.
            self.resched_all();
            // 3. Advance execution to the next event or sub-step.
            let t_next = self.queue.peek_time().map_or(end, |t| t.min(end));
            if t_next <= self.now {
                // An event scheduled exactly at `now` appeared during
                // resched; loop around to process it.
                if self.queue.peek_time().is_some_and(|t| t <= self.now) {
                    continue;
                }
                break;
            }
            let span = t_next - self.now;
            let dt = span.min(self.substep_ns);
            if self.hv.pcpus.iter().any(|p| p.running.is_some()) {
                self.advance_all(dt);
                self.now += dt;
            } else {
                self.now = t_next;
            }
        }
        self.now = end;
    }

    /// Runs for `dur` nanoseconds from the current time.
    pub fn run_for(&mut self, dur: u64) {
        self.run_until(self.now + dur);
    }

    /// Runs the standard measurement protocol: `warmup_ns` of
    /// execution, a measurement reset, `measure_ns` of measured
    /// execution, and the steady-state report. Every example, scenario
    /// and figure uses this exact sequence, so reports are comparable
    /// across all of them.
    pub fn run_measured(&mut self, warmup_ns: u64, measure_ns: u64) -> crate::RunReport {
        self.run_for(warmup_ns);
        self.reset_measurements();
        self.run_for(measure_ns);
        self.report()
    }

    /// Clears all measurement state (workload metrics, CPU accounting,
    /// pCPU busy time) without disturbing execution state. Call after a
    /// warm-up phase so reports reflect steady state.
    pub fn reset_measurements(&mut self) {
        for wl in &mut self.workloads {
            wl.reset_metrics();
        }
        for v in &mut self.hv.vcpus {
            v.cpu_ns = 0;
            v.pool_migrations = 0;
        }
        for p in &mut self.hv.pcpus {
            p.busy_ns = 0;
        }
        self.measure_start = self.now;
    }

    /// Builds the end-of-run report.
    pub fn report(&self) -> RunReport {
        let vms = self
            .hv
            .vms
            .iter()
            .map(|vm| VmReport {
                vm: vm.id,
                name: vm.spec.name.clone(),
                vcpu_cpu_ns: vm
                    .vcpus
                    .iter()
                    .map(|v| self.hv.vcpus[v.index()].cpu_ns)
                    .collect(),
                vcpu_pool_migrations: vm
                    .vcpus
                    .iter()
                    .map(|v| self.hv.vcpus[v.index()].pool_migrations)
                    .collect(),
                metrics: self.workloads[vm.id.index()].metrics(),
            })
            .collect();
        RunReport {
            sim_ns: self.now.saturating_since(self.measure_start),
            policy: self.policy.name().to_string(),
            vms,
            pcpu_busy_ns: self.hv.pcpus.iter().map(|p| p.busy_ns).collect(),
        }
    }
}
