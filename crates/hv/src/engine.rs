//! The simulation engine.
//!
//! [`Hypervisor`] holds the machine state (vCPUs, pools, run queues,
//! LLCs); [`Simulation`] owns the hypervisor plus the guest workloads,
//! the scheduling policy and the event queue, and advances simulated
//! time.
//!
//! Time advances in two interleaved ways:
//!
//! 1. **Events** (ticks, monitoring periods, guest timers) are popped
//!    from a stable [`EventQueue`].
//! 2. **Execution** between events proceeds in bounded sub-steps:
//!    every running vCPU's workload is advanced by at most
//!    `substep_ns`, so concurrently running vCPUs observe each other's
//!    LLC pressure and lock state with bounded staleness.
//!
//! Quantum boundaries are enforced inside the sub-step loop at
//! nanosecond precision: a slice never runs past `Vcpu::slice_end`.

use aql_mem::LlcState;
use aql_sim::queue::EventQueue;
use aql_sim::rng::SimRng;
use aql_sim::time::SimTime;
use aql_sim::trace::TraceLog;

use crate::ids::{PcpuId, PoolId, VcpuId, VmId};
use crate::policy::SchedPolicy;
use crate::pool::{build_pools, CpuPool, PoolSpec};
use crate::report::{RunReport, VmReport};
use crate::sched::{burn_credits, refill_credits, RunQueue};
use crate::topology::MachineSpec;
use crate::vm::{Prio, Vcpu, VcpuState, VmMeta, VmSpec};
use crate::workload::{ExecContext, GuestWorkload, StopReason};
use crate::{ACCT_TICKS, MONITOR_PERIOD_NS, TICK_NS};

/// Default execution sub-step: 100 µs bounds cross-pCPU staleness.
pub const DEFAULT_SUBSTEP_NS: u64 = 100 * aql_sim::time::US;

/// Per-pCPU scheduler state.
#[derive(Debug)]
pub struct PcpuState {
    /// This pCPU's identifier.
    pub id: PcpuId,
    /// Pool membership.
    pub pool: PoolId,
    /// Currently dispatched vCPU, if any.
    pub running: Option<VcpuId>,
    /// Local run queue.
    pub queue: RunQueue,
    /// Total busy time.
    pub busy_ns: u64,
    /// Set when the current slice must be re-evaluated (boost wake,
    /// pool reconfiguration).
    pub force_resched: bool,
    /// The vCPU that last touched this core's private caches.
    pub last_vcpu: Option<VcpuId>,
}

/// Machine-wide hypervisor state.
///
/// Policies receive `&mut Hypervisor` and may reconfigure pools and
/// vCPU placement through [`Hypervisor::apply_plan`]; the engine
/// repairs run queues and reschedules accordingly.
#[derive(Debug)]
pub struct Hypervisor {
    /// Machine shape.
    pub machine: MachineSpec,
    /// All VMs, id-ordered.
    pub vms: Vec<VmMeta>,
    /// All vCPUs, id-ordered (dense across VMs).
    pub vcpus: Vec<Vcpu>,
    /// Per-pCPU scheduler state, id-ordered.
    pub pcpus: Vec<PcpuState>,
    /// Current CPU pools.
    pub pools: Vec<CpuPool>,
    /// Per-socket shared LLC state.
    pub llcs: Vec<LlcState>,
}

impl Hypervisor {
    /// Creates an idle hypervisor with one default pool.
    pub fn new(machine: MachineSpec) -> Self {
        let total = machine.total_pcpus();
        let pcpus = (0..total)
            .map(|i| PcpuState {
                id: PcpuId(i),
                pool: PoolId(0),
                running: None,
                queue: RunQueue::new(),
                busy_ns: 0,
                force_resched: false,
                last_vcpu: None,
            })
            .collect();
        let llcs = (0..machine.sockets)
            .map(|_| LlcState::new(machine.cache.llc_bytes as f64, 0))
            .collect();
        Hypervisor {
            vms: Vec::new(),
            vcpus: Vec::new(),
            pcpus,
            pools: vec![CpuPool::default_pool(total)],
            llcs,
            machine,
        }
    }

    /// Admits a VM; its vCPUs join pool 0 with round-robin affinity.
    pub fn add_vm(&mut self, spec: VmSpec) -> VmId {
        assert!(spec.vcpus > 0, "a VM needs at least one vCPU");
        let vm_id = VmId(self.vms.len());
        let mut ids = Vec::with_capacity(spec.vcpus);
        for slot in 0..spec.vcpus {
            let id = VcpuId(self.vcpus.len());
            let affine = PcpuId(id.index() % self.machine.total_pcpus());
            self.vcpus.push(Vcpu::new(id, vm_id, slot, PoolId(0), affine));
            ids.push(id);
        }
        for llc in &mut self.llcs {
            llc.ensure_owners(self.vcpus.len());
        }
        self.vms.push(VmMeta {
            id: vm_id,
            spec,
            vcpus: ids,
        });
        vm_id
    }

    /// The quantum a vCPU runs with: its override, else its pool's.
    pub fn quantum_for(&self, vcpu: VcpuId) -> u64 {
        let v = &self.vcpus[vcpu.index()];
        v.quantum_override
            .unwrap_or(self.pools[v.pool.index()].quantum_ns)
    }

    /// Atomically replaces the pool layout and the vCPU→pool
    /// assignment (`assignment[i]` is vCPU `i`'s pool). Run queues are
    /// rebuilt; running vCPUs on foreign pools are flagged for
    /// preemption at the next resched point.
    pub fn apply_plan(
        &mut self,
        pools: Vec<PoolSpec>,
        assignment: Vec<PoolId>,
    ) -> Result<(), String> {
        if assignment.len() != self.vcpus.len() {
            return Err(format!(
                "assignment covers {} vCPUs, machine has {}",
                assignment.len(),
                self.vcpus.len()
            ));
        }
        let new_pools = build_pools(&pools, self.machine.total_pcpus())?;
        for (i, pool) in assignment.iter().enumerate() {
            if pool.index() >= new_pools.len() {
                return Err(format!("vcpu{i} assigned to unknown {pool}"));
            }
        }
        self.pools = new_pools;
        for pool in &self.pools {
            for &p in &pool.pcpus {
                self.pcpus[p.index()].pool = pool.id;
            }
        }
        for (i, &pool) in assignment.iter().enumerate() {
            if self.vcpus[i].pool != pool {
                self.vcpus[i].pool = pool;
                self.vcpus[i].pool_migrations += 1;
            }
        }
        // Rebuild queues: drain everything, re-enqueue in global order.
        let mut queued: Vec<(VcpuId, Prio)> = Vec::new();
        for p in &mut self.pcpus {
            while let Some(entry) = p.queue.pop_best() {
                queued.push(entry);
            }
        }
        queued.sort_by_key(|(v, _)| v.index());
        for (v, prio) in queued {
            self.enqueue(v, prio, false, false);
        }
        // Running vCPUs sitting on a pCPU outside their pool must move.
        for pi in 0..self.pcpus.len() {
            if let Some(rv) = self.pcpus[pi].running {
                if self.vcpus[rv.index()].pool != self.pcpus[pi].pool {
                    self.pcpus[pi].force_resched = true;
                }
            }
        }
        Ok(())
    }

    /// Changes one pool's quantum; takes effect from the next dispatch.
    pub fn set_pool_quantum(&mut self, pool: PoolId, quantum_ns: u64) {
        assert!(quantum_ns > 0, "quantum must be positive");
        self.pools[pool.index()].quantum_ns = quantum_ns;
    }

    /// Sets or clears a per-vCPU quantum override (vSlicer-style
    /// differentiated slicing); takes effect from the next dispatch.
    pub fn set_vcpu_quantum_override(&mut self, vcpu: VcpuId, quantum_ns: Option<u64>) {
        if let Some(q) = quantum_ns {
            assert!(q > 0, "quantum must be positive");
        }
        self.vcpus[vcpu.index()].quantum_override = quantum_ns;
    }

    /// Sets or clears a vCPU's kick period: while runnable-queued for
    /// longer than this, it preempts the running vCPU (vSlicer's
    /// differentiated scheduling frequency).
    pub fn set_vcpu_kick_period(&mut self, vcpu: VcpuId, period_ns: Option<u64>) {
        if let Some(p) = period_ns {
            assert!(p > 0, "kick period must be positive");
        }
        self.vcpus[vcpu.index()].kick_period_ns = period_ns;
    }

    /// The vCPUs of the VM with the given name, if it exists.
    pub fn vm_vcpus_by_name(&self, name: &str) -> Option<&[VcpuId]> {
        self.vms
            .iter()
            .find(|vm| vm.spec.name == name)
            .map(|vm| vm.vcpus.as_slice())
    }

    /// Least-loaded pCPU (by queue length, then index) of a pool.
    fn least_loaded_pcpu(&self, pool: PoolId) -> PcpuId {
        *self.pools[pool.index()]
            .pcpus
            .iter()
            .min_by_key(|p| {
                let st = &self.pcpus[p.index()];
                (st.queue.len() + usize::from(st.running.is_some()), p.index())
            })
            .expect("pools are never empty")
    }

    /// Enqueues a runnable vCPU on a pCPU of its pool (affine pCPU if
    /// still valid, else the least-loaded one). `at_head` requeues a
    /// preempted vCPU before its peers.
    ///
    /// `from_wake` marks a wake-up enqueue: as in Xen's run-queue
    /// tickle, only a *waking* vCPU of strictly better priority
    /// preempts the running one mid-slice (this is how BOOST cuts IO
    /// latency). Plain requeues never preempt: tick-driven priority
    /// changes take effect at slice boundaries.
    fn enqueue(&mut self, vcpu: VcpuId, prio: Prio, at_head: bool, from_wake: bool) {
        let v = &self.vcpus[vcpu.index()];
        let pool = v.pool;
        let target = if self.pools[pool.index()].contains(v.affine_pcpu) {
            v.affine_pcpu
        } else {
            self.least_loaded_pcpu(pool)
        };
        self.vcpus[vcpu.index()].affine_pcpu = target;
        let q = &mut self.pcpus[target.index()].queue;
        if at_head {
            q.push_head(prio, vcpu);
        } else {
            q.push_tail(prio, vcpu);
        }
        if from_wake {
            if let Some(rv) = self.pcpus[target.index()].running {
                if prio < self.vcpus[rv.index()].prio {
                    self.pcpus[target.index()].force_resched = true;
                }
            }
        }
    }

    /// Wakes a blocked vCPU. Grants BOOST when the vCPU still has
    /// credit and did not exhaust its previous slice (§2.1).
    pub fn wake(&mut self, vcpu: VcpuId) {
        let v = &mut self.vcpus[vcpu.index()];
        if v.state != VcpuState::Blocked {
            return;
        }
        v.state = VcpuState::Runnable;
        let prio = if v.credit < 0.0 {
            Prio::Over
        } else if !v.last_slice_exhausted {
            Prio::Boost
        } else {
            Prio::Under
        };
        v.prio = prio;
        if v.parked {
            return; // Enqueued at unpark time instead.
        }
        self.enqueue(vcpu, prio, false, true);
    }

    /// Total CPU time consumed by a VM across its vCPUs.
    pub fn vm_cpu_ns(&self, vm: VmId) -> u64 {
        self.vms[vm.index()]
            .vcpus
            .iter()
            .map(|v| self.vcpus[v.index()].cpu_ns)
            .sum()
    }
}

/// Engine events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// 10 ms credit tick.
    Tick,
    /// 30 ms monitoring period boundary.
    Monitor,
    /// A guest timer for vCPU `vcpu`; stale if `gen` mismatches.
    GuestTimer { vcpu: usize, gen: u64 },
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    machine: MachineSpec,
    seed: u64,
    substep_ns: u64,
    trace_capacity: usize,
    vms: Vec<(VmSpec, Box<dyn GuestWorkload>)>,
    policy: Option<Box<dyn SchedPolicy>>,
}

impl SimulationBuilder {
    /// Starts a build for the given machine.
    pub fn new(machine: MachineSpec) -> Self {
        SimulationBuilder {
            machine,
            seed: 1,
            substep_ns: DEFAULT_SUBSTEP_NS,
            trace_capacity: 0,
            vms: Vec::new(),
            policy: None,
        }
    }

    /// Sets the deterministic seed (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution sub-step (default 100 µs). Smaller values
    /// sharpen cross-pCPU interactions (spin-lock handoffs) at the
    /// cost of simulation speed.
    pub fn substep_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "substep must be positive");
        self.substep_ns = ns;
        self
    }

    /// Enables the trace log with the given line capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Adds a VM with its workload. The workload must drive exactly
    /// `spec.vcpus` slots.
    pub fn vm(mut self, spec: VmSpec, workload: Box<dyn GuestWorkload>) -> Self {
        assert_eq!(
            workload.vcpu_slots(),
            spec.vcpus,
            "workload '{}' drives {} slots but VM '{}' has {} vCPUs",
            workload.name(),
            workload.vcpu_slots(),
            spec.name,
            spec.vcpus
        );
        self.vms.push((spec, workload));
        self
    }

    /// Sets the scheduling policy (defaults to native Xen 30 ms).
    pub fn policy(mut self, policy: Box<dyn SchedPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Builds the simulation: admits VMs, initialises the policy, arms
    /// recurring events and performs initial wake-ups.
    pub fn build(self) -> Simulation {
        let mut hv = Hypervisor::new(self.machine);
        let mut workloads = Vec::with_capacity(self.vms.len());
        let mut vm_running = Vec::with_capacity(self.vms.len());
        for (spec, wl) in self.vms {
            let slots = spec.vcpus;
            hv.add_vm(spec);
            vm_running.push(vec![false; slots]);
            workloads.push(wl);
        }
        let mut policy = self
            .policy
            .unwrap_or_else(|| Box::new(crate::policy::FixedQuantumPolicy::xen_default()));
        policy.init(&mut hv);
        let trace = if self.trace_capacity > 0 {
            TraceLog::enabled(self.trace_capacity)
        } else {
            TraceLog::disabled()
        };
        // Fresh VMs start with a full accounting period of credits so
        // the first 30 ms are not artificially BOOST-starved.
        refill_credits(&mut hv.vcpus, &hv.vms, &hv.pools);
        let mut sim = Simulation {
            hv,
            workloads,
            vm_running,
            policy,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from(self.seed),
            substep_ns: self.substep_ns,
            trace,
            tick_count: 0,
            measure_start: SimTime::ZERO,
        };
        sim.queue.push(SimTime(TICK_NS), Event::Tick);
        sim.queue.push(SimTime(MONITOR_PERIOD_NS), Event::Monitor);
        // Initial admission: wake runnable slots, arm timers.
        for vi in 0..sim.hv.vcpus.len() {
            let (vm, slot) = {
                let v = &sim.hv.vcpus[vi];
                (v.vm.index(), v.slot)
            };
            if sim.workloads[vm].runnable(slot) {
                sim.hv.wake(VcpuId(vi));
            }
            sim.arm_timer(vi);
        }
        sim
    }
}

/// A complete simulation run: hypervisor + workloads + policy + clock.
pub struct Simulation {
    /// The simulated hypervisor (public for policies and tests).
    pub hv: Hypervisor,
    workloads: Vec<Box<dyn GuestWorkload>>,
    vm_running: Vec<Vec<bool>>,
    policy: Box<dyn SchedPolicy>,
    queue: EventQueue<Event>,
    now: SimTime,
    rng: SimRng,
    substep_ns: u64,
    /// Trace log (enable via [`SimulationBuilder::trace`]).
    pub trace: TraceLog,
    tick_count: u64,
    measure_start: SimTime,
}

impl Simulation {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active policy, for downcasting to extract internal traces.
    pub fn policy(&self) -> &dyn SchedPolicy {
        self.policy.as_ref()
    }

    /// Runs until `end` (absolute simulated time).
    pub fn run_until(&mut self, end: SimTime) {
        while self.now < end {
            // 1. Process all events due now.
            while self
                .queue
                .peek_time()
                .is_some_and(|t| t <= self.now && t <= end)
            {
                let (t, ev) = self.queue.pop().expect("peeked");
                debug_assert!(t <= self.now);
                self.handle_event(ev);
            }
            // 2. Repair scheduling decisions.
            self.resched_all();
            // 3. Advance execution to the next event or sub-step.
            let t_next = self
                .queue
                .peek_time()
                .map_or(end, |t| t.min(end));
            if t_next <= self.now {
                // An event scheduled exactly at `now` appeared during
                // resched; loop around to process it.
                if self.queue.peek_time().is_some_and(|t| t <= self.now) {
                    continue;
                }
                break;
            }
            let span = t_next - self.now;
            let dt = span.min(self.substep_ns);
            if self.hv.pcpus.iter().any(|p| p.running.is_some()) {
                self.advance_all(dt);
                self.now += dt;
            } else {
                self.now = t_next;
            }
        }
        self.now = end;
    }

    /// Runs for `dur` nanoseconds from the current time.
    pub fn run_for(&mut self, dur: u64) {
        self.run_until(self.now + dur);
    }

    /// Clears all measurement state (workload metrics, CPU accounting,
    /// pCPU busy time) without disturbing execution state. Call after a
    /// warm-up phase so reports reflect steady state.
    pub fn reset_measurements(&mut self) {
        for wl in &mut self.workloads {
            wl.reset_metrics();
        }
        for v in &mut self.hv.vcpus {
            v.cpu_ns = 0;
            v.pool_migrations = 0;
        }
        for p in &mut self.hv.pcpus {
            p.busy_ns = 0;
        }
        self.measure_start = self.now;
    }

    /// Builds the end-of-run report.
    pub fn report(&self) -> RunReport {
        let vms = self
            .hv
            .vms
            .iter()
            .map(|vm| VmReport {
                vm: vm.id,
                name: vm.spec.name.clone(),
                vcpu_cpu_ns: vm
                    .vcpus
                    .iter()
                    .map(|v| self.hv.vcpus[v.index()].cpu_ns)
                    .collect(),
                vcpu_pool_migrations: vm
                    .vcpus
                    .iter()
                    .map(|v| self.hv.vcpus[v.index()].pool_migrations)
                    .collect(),
                metrics: self.workloads[vm.id.index()].metrics(),
            })
            .collect();
        RunReport {
            sim_ns: self.now.saturating_since(self.measure_start),
            policy: self.policy.name().to_string(),
            vms,
            pcpu_busy_ns: self.hv.pcpus.iter().map(|p| p.busy_ns).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Tick => {
                self.tick_count += 1;
                for v in &mut self.hv.vcpus {
                    burn_credits(v);
                }
                // Xen demotes a running BOOST vCPU at the tick.
                for pi in 0..self.hv.pcpus.len() {
                    if let Some(rv) = self.hv.pcpus[pi].running {
                        let v = &mut self.hv.vcpus[rv.index()];
                        if v.prio == Prio::Boost {
                            v.prio = Prio::Under;
                        }
                    }
                }
                if self.tick_count.is_multiple_of(ACCT_TICKS) {
                    refill_credits(&mut self.hv.vcpus, &self.hv.vms, &self.hv.pools);
                    self.update_parking();
                }
                self.queue.push(self.now + TICK_NS, Event::Tick);
            }
            Event::Monitor => {
                for v in &mut self.hv.vcpus {
                    v.last_sample = v.pmu.snapshot_and_reset(MONITOR_PERIOD_NS);
                }
                self.policy.on_monitor(&mut self.hv, self.now);
                self.rebalance_pools();
                self.queue.push(self.now + MONITOR_PERIOD_NS, Event::Monitor);
            }
            Event::GuestTimer { vcpu, gen } => {
                if self.hv.vcpus[vcpu].timer_gen != gen {
                    return; // Stale timer.
                }
                let (vm, slot) = {
                    let v = &self.hv.vcpus[vcpu];
                    (v.vm.index(), v.slot)
                };
                let fire = self.workloads[vm].on_timer(slot, self.now);
                if fire.io_events > 0 {
                    self.hv.vcpus[vcpu].pmu.add_io_events(fire.io_events);
                }
                if fire.wake {
                    self.hv.wake(VcpuId(vcpu));
                }
                self.arm_timer(vcpu);
            }
        }
    }

    /// Re-arms the guest timer for a vCPU from its workload's
    /// `next_timer`, invalidating any previously queued timer.
    fn arm_timer(&mut self, vcpu: usize) {
        let (vm, slot) = {
            let v = &self.hv.vcpus[vcpu];
            (v.vm.index(), v.slot)
        };
        let v = &mut self.hv.vcpus[vcpu];
        v.timer_gen += 1;
        if let Some(t) = self.workloads[vm].next_timer(slot) {
            let gen = v.timer_gen;
            let when = if t <= self.now { SimTime(self.now.as_ns() + 1) } else { t };
            self.queue.push(when, Event::GuestTimer { vcpu, gen });
        }
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Evens out run-queue lengths within each pool (Xen's periodic
    /// load balancing): with long quanta and saturated pCPUs, idle-time
    /// stealing never fires, so queue imbalance — e.g. after a pool
    /// reconfiguration — would otherwise persist indefinitely.
    fn rebalance_pools(&mut self) {
        for pool_idx in 0..self.hv.pools.len() {
            let pcpus: Vec<usize> = self.hv.pools[pool_idx]
                .pcpus
                .iter()
                .map(|p| p.index())
                .collect();
            if pcpus.len() < 2 {
                continue;
            }
            for _ in 0..self.hv.vcpus.len() {
                let load = |p: &usize| {
                    self.hv.pcpus[*p].queue.len()
                        + usize::from(self.hv.pcpus[*p].running.is_some())
                };
                let &max_p = pcpus.iter().max_by_key(|p| (load(p), usize::MAX - **p)).expect("non-empty");
                let &min_p = pcpus.iter().min_by_key(|p| (load(p), **p)).expect("non-empty");
                if load(&max_p) <= load(&min_p) + 1 {
                    break;
                }
                let Some((vid, prio)) = self.hv.pcpus[max_p].queue.steal_tail() else {
                    break;
                };
                self.hv.vcpus[vid.index()].affine_pcpu = PcpuId(min_p);
                self.hv.pcpus[min_p].queue.push_tail(prio, vid);
            }
        }
    }

    /// Parks and unparks capped VMs' vCPUs, as Xen's `csched_acct`
    /// does: a capped VM whose credits are exhausted is taken off the
    /// run queues until the next refill brings it back above zero —
    /// this is what makes `cap` bind even on an idle machine.
    fn update_parking(&mut self) {
        for vi in 0..self.hv.vcpus.len() {
            let vm = self.hv.vcpus[vi].vm;
            if self.hv.vms[vm.index()].spec.cap_pct.is_none() {
                continue;
            }
            let (parked, credit, state) = {
                let v = &self.hv.vcpus[vi];
                (v.parked, v.credit, v.state)
            };
            if !parked && credit <= 0.0 {
                self.hv.vcpus[vi].parked = true;
                // Remove from any queue; preempt if running.
                let vid = VcpuId(vi);
                for p in 0..self.hv.pcpus.len() {
                    self.hv.pcpus[p].queue.remove(vid);
                    if self.hv.pcpus[p].running == Some(vid) {
                        self.hv.pcpus[p].force_resched = true;
                    }
                }
            } else if parked && credit > 0.0 {
                self.hv.vcpus[vi].parked = false;
                if state == VcpuState::Runnable {
                    let prio = self.hv.vcpus[vi].prio;
                    self.hv.enqueue(VcpuId(vi), prio, false, false);
                }
            }
        }
    }

    /// Applies pending preemptions and fills idle pCPUs.
    fn resched_all(&mut self) {
        for pi in 0..self.hv.pcpus.len() {
            if self.hv.pcpus[pi].force_resched {
                self.hv.pcpus[pi].force_resched = false;
                if let Some(rv) = self.hv.pcpus[pi].running {
                    let wrong_pool =
                        self.hv.vcpus[rv.index()].pool != self.hv.pcpus[pi].pool;
                    let parked = self.hv.vcpus[rv.index()].parked;
                    let better_waiter = self.hv.pcpus[pi]
                        .queue
                        .best_class()
                        .is_some_and(|c| c < self.hv.vcpus[rv.index()].prio);
                    if wrong_pool || parked || better_waiter {
                        self.preempt(pi, rv, false);
                    }
                }
            }
            // vSlicer differentiated frequency: a queued vCPU whose
            // kick period elapsed preempts the running vCPU and runs
            // next (its own slice is the short override).
            if let Some(rv) = self.hv.pcpus[pi].running {
                let due = self.hv.pcpus[pi].queue.iter().find(|v| {
                    let vc = &self.hv.vcpus[v.index()];
                    vc.kick_period_ns.is_some_and(|p| {
                        self.now.saturating_since(vc.last_desched) >= p
                    })
                });
                if let Some(due) = due {
                    if due != rv && self.hv.vcpus[rv.index()].kick_period_ns.is_none() {
                        // Preempt first (the victim head-requeues), then
                        // put the due vCPU in front so it runs next.
                        self.preempt(pi, rv, false);
                        let prio = self.hv.vcpus[due.index()].prio;
                        self.hv.pcpus[pi].queue.remove(due);
                        self.hv.pcpus[pi].queue.push_head(prio, due);
                    }
                }
            }
            if self.hv.pcpus[pi].running.is_none() {
                self.try_dispatch(pi, self.now);
            }
        }
    }

    /// Preempts the running vCPU. `exhausted` marks quantum expiry
    /// (affecting BOOST eligibility on the next wake).
    fn preempt(&mut self, pcpu: usize, vcpu: VcpuId, exhausted: bool) {
        debug_assert_eq!(self.hv.pcpus[pcpu].running, Some(vcpu));
        self.hv.pcpus[pcpu].running = None;
        let now = self.now;
        let (vm, slot, prio) = {
            let v = &mut self.hv.vcpus[vcpu.index()];
            v.state = VcpuState::Runnable;
            v.last_slice_exhausted = exhausted;
            v.last_desched = now;
            // An involuntarily preempted vCPU resumes its remaining
            // slice later; granting a fresh quantum every time would
            // let a head-requeued victim monopolise the queue.
            v.resume_slice_ns = if exhausted {
                None
            } else {
                Some(v.slice_end.saturating_since(now).max(100_000))
            };
            if v.prio == Prio::Boost {
                v.prio = Prio::Under;
            }
            (v.vm.index(), v.slot, v.prio)
        };
        self.vm_running[vm][slot] = false;
        // Parked vCPUs (capped VM out of credit) stay off the queues
        // until the next refill unparks them.
        if self.hv.vcpus[vcpu.index()].parked {
            return;
        }
        // Expired slices requeue at the tail; involuntary preemptions
        // resume at the head of their class.
        self.hv.enqueue(vcpu, prio, !exhausted, false);
    }

    /// Blocks the running vCPU (no runnable work).
    fn block(&mut self, pcpu: usize, vcpu: VcpuId) {
        debug_assert_eq!(self.hv.pcpus[pcpu].running, Some(vcpu));
        self.hv.pcpus[pcpu].running = None;
        let now = self.now;
        let v = &mut self.hv.vcpus[vcpu.index()];
        v.state = VcpuState::Blocked;
        v.last_slice_exhausted = false;
        v.last_desched = now;
        v.resume_slice_ns = None;
        if v.prio == Prio::Boost {
            v.prio = Prio::Under;
        }
        let (vm, slot) = (v.vm.index(), v.slot);
        self.vm_running[vm][slot] = false;
        // Re-arm the timer: the workload's next wake-up may have moved.
        self.arm_timer(vcpu.index());
    }

    /// Voluntary yield: requeue at the tail, stay runnable.
    fn yield_requeue(&mut self, pcpu: usize, vcpu: VcpuId) {
        debug_assert_eq!(self.hv.pcpus[pcpu].running, Some(vcpu));
        self.hv.pcpus[pcpu].running = None;
        let now = self.now;
        let (vm, slot, prio) = {
            let v = &mut self.hv.vcpus[vcpu.index()];
            v.state = VcpuState::Runnable;
            v.last_slice_exhausted = false;
            v.last_desched = now;
            v.resume_slice_ns = None;
            if v.prio == Prio::Boost {
                v.prio = Prio::Under;
            }
            (v.vm.index(), v.slot, v.prio)
        };
        self.vm_running[vm][slot] = false;
        self.hv.enqueue(vcpu, prio, false, false);
    }

    /// Dispatches the best local vCPU, stealing from pool peers when
    /// the local queue is empty. Returns whether something ran.
    fn try_dispatch(&mut self, pcpu: usize, t: SimTime) -> bool {
        debug_assert!(self.hv.pcpus[pcpu].running.is_none());
        let picked = self.hv.pcpus[pcpu].queue.pop_best().or_else(|| {
            // Work stealing within the pool: take from the most loaded
            // peer (deterministic order).
            let pool = self.hv.pcpus[pcpu].pool;
            let peers: Vec<usize> = self.hv.pools[pool.index()]
                .pcpus
                .iter()
                .map(|p| p.index())
                .filter(|&p| p != pcpu)
                .collect();
            let victim = peers
                .into_iter()
                .filter(|&p| !self.hv.pcpus[p].queue.is_empty())
                .max_by_key(|&p| (self.hv.pcpus[p].queue.len(), usize::MAX - p))?;
            self.hv.pcpus[victim].queue.steal_tail()
        });
        let Some((vid, _)) = picked else {
            return false;
        };
        self.dispatch(pcpu, vid, t);
        true
    }

    /// Puts `vid` on `pcpu` for a slice starting at `t` — a fresh
    /// quantum, or the remainder of an involuntarily-preempted slice.
    fn dispatch(&mut self, pcpu: usize, vid: VcpuId, t: SimTime) {
        let quantum = self.hv.quantum_for(vid);
        let (vm, slot) = {
            let v = &mut self.hv.vcpus[vid.index()];
            debug_assert_eq!(v.state, VcpuState::Runnable);
            v.state = VcpuState::Running;
            let grant = v.resume_slice_ns.take().unwrap_or(quantum);
            v.slice_end = t + grant;
            v.affine_pcpu = PcpuId(pcpu);
            (v.vm.index(), v.slot)
        };
        // Private-cache cooling: a different vCPU ran here in between.
        if self.hv.pcpus[pcpu].last_vcpu != Some(vid) {
            self.hv.vcpus[vid.index()].l2_warmth = 0.0;
        }
        self.hv.vcpus[vid.index()].last_pcpu = Some(PcpuId(pcpu));
        self.hv.pcpus[pcpu].last_vcpu = Some(vid);
        self.hv.pcpus[pcpu].running = Some(vid);
        self.vm_running[vm][slot] = true;
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Advances every pCPU by `dt` nanoseconds of wall time.
    fn advance_all(&mut self, dt: u64) {
        for pi in 0..self.hv.pcpus.len() {
            self.advance_pcpu(pi, dt);
        }
    }

    /// Advances one pCPU by `dt`, running (possibly several) vCPUs and
    /// enforcing quantum boundaries at nanosecond precision.
    fn advance_pcpu(&mut self, pcpu: usize, dt: u64) {
        let mut off: u64 = 0;
        // Defensive bound: a pCPU cannot context-switch more often than
        // once per zero-progress dispatch more than a few times.
        let mut spins_without_progress = 0u32;
        while off < dt {
            let Some(vid) = self.hv.pcpus[pcpu].running else {
                if !self.try_dispatch(pcpu, self.now + off) {
                    return; // Idle for the rest of the step.
                }
                continue;
            };
            let t0 = self.now + off;
            let slice_left = self.hv.vcpus[vid.index()].slice_end.saturating_since(t0);
            if slice_left == 0 {
                self.preempt(pcpu, vid, true);
                continue;
            }
            let budget = (dt - off).min(slice_left);
            let used = self.run_workload(pcpu, vid, budget, t0);
            off += used.used_ns;
            if used.used_ns == 0 {
                spins_without_progress += 1;
                if spins_without_progress > 8 {
                    return; // Degenerate workload; stay idle this step.
                }
            } else {
                spins_without_progress = 0;
            }
            match used.stop {
                StopReason::BudgetExhausted => {
                    // Quantum boundary handled at the top of the loop.
                }
                StopReason::Blocked => {
                    self.block(pcpu, vid);
                }
                StopReason::Yielded => {
                    self.yield_requeue(pcpu, vid);
                }
            }
        }
    }

    /// Runs `vid`'s workload for `budget` ns and accounts the usage.
    fn run_workload(
        &mut self,
        pcpu: usize,
        vid: VcpuId,
        budget: u64,
        t0: SimTime,
    ) -> crate::workload::RunOutcome {
        let (vm, slot, socket) = {
            let v = &self.hv.vcpus[vid.index()];
            let socket = self.hv.machine.socket_of(PcpuId(pcpu)).index();
            (v.vm.index(), v.slot, socket)
        };
        let Hypervisor {
            vcpus,
            llcs,
            machine,
            ..
        } = &mut self.hv;
        let v = &mut vcpus[vid.index()];
        let mut ctx = ExecContext {
            now: t0,
            spec: &machine.cache,
            llc: &mut llcs[socket],
            pmu: &mut v.pmu,
            l2_warmth: &mut v.l2_warmth,
            rng: &mut self.rng,
            owner: vid.index(),
            running_slots: &self.vm_running[vm],
        };
        let mut out = self.workloads[vm].run(slot, budget, &mut ctx);
        debug_assert!(
            out.used_ns <= budget,
            "workload '{}' overran its budget",
            self.workloads[vm].name()
        );
        out.used_ns = out.used_ns.min(budget);
        let v = &mut self.hv.vcpus[vid.index()];
        v.cpu_ns += out.used_ns;
        v.unbilled_ns += out.used_ns;
        v.pmu.add_ran_ns(out.used_ns);
        self.hv.pcpus[pcpu].busy_ns += out.used_ns;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{RunOutcome, TimerFire, WorkloadMetrics};
    use aql_mem::CacheSpec;
    use aql_sim::time::{MS, SEC};

    /// A minimal CPU hog for engine tests.
    struct Hog;

    impl GuestWorkload for Hog {
        fn name(&self) -> &str {
            "hog"
        }
        fn vcpu_slots(&self) -> usize {
            1
        }
        fn run(
            &mut self,
            _slot: usize,
            budget_ns: u64,
            ctx: &mut ExecContext<'_>,
        ) -> RunOutcome {
            let _ = ctx.exec_mem(&aql_mem::MemProfile::light(), budget_ns);
            RunOutcome::ran_all(budget_ns)
        }
        fn runnable(&self, _slot: usize) -> bool {
            true
        }
        fn next_timer(&self, _slot: usize) -> Option<SimTime> {
            None
        }
        fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
            TimerFire::default()
        }
        fn metrics(&self) -> WorkloadMetrics {
            WorkloadMetrics::None
        }
    }

    /// A periodic blocker: runs `burst` then blocks until the next
    /// timer `period` later. Exercises wake/BOOST paths.
    struct Blinker {
        burst_ns: u64,
        period_ns: u64,
        next: SimTime,
        pending: bool,
        left: u64,
    }

    impl Blinker {
        fn new(burst_ns: u64, period_ns: u64) -> Self {
            Blinker {
                burst_ns,
                period_ns,
                next: SimTime(period_ns),
                pending: false,
                left: 0,
            }
        }
    }

    impl GuestWorkload for Blinker {
        fn name(&self) -> &str {
            "blinker"
        }
        fn vcpu_slots(&self) -> usize {
            1
        }
        fn run(
            &mut self,
            _slot: usize,
            budget_ns: u64,
            ctx: &mut ExecContext<'_>,
        ) -> RunOutcome {
            if self.pending && self.left == 0 {
                self.left = self.burst_ns;
                self.pending = false;
            }
            if self.left == 0 {
                return RunOutcome {
                    used_ns: 0,
                    stop: StopReason::Blocked,
                };
            }
            let dt = self.left.min(budget_ns);
            let _ = ctx.exec_mem(&aql_mem::MemProfile::light(), dt);
            self.left -= dt;
            if self.left == 0 && !self.pending {
                RunOutcome {
                    used_ns: dt,
                    stop: StopReason::Blocked,
                }
            } else {
                RunOutcome {
                    used_ns: dt,
                    stop: StopReason::BudgetExhausted,
                }
            }
        }
        fn runnable(&self, _slot: usize) -> bool {
            self.pending || self.left > 0
        }
        fn next_timer(&self, _slot: usize) -> Option<SimTime> {
            Some(self.next)
        }
        fn on_timer(&mut self, _slot: usize, now: SimTime) -> TimerFire {
            if now < self.next {
                return TimerFire::default();
            }
            self.pending = true;
            self.next = SimTime(self.next.as_ns() + self.period_ns);
            TimerFire {
                io_events: 1,
                wake: true,
            }
        }
        fn metrics(&self) -> WorkloadMetrics {
            WorkloadMetrics::None
        }
    }

    fn machine(cores: usize) -> MachineSpec {
        MachineSpec::custom("engine-test", 1, cores, CacheSpec::i7_3770())
    }

    #[test]
    fn single_hog_saturates_the_core() {
        let mut sim = SimulationBuilder::new(machine(1))
            .vm(VmSpec::single("h"), Box::new(Hog))
            .build();
        sim.run_for(SEC);
        let r = sim.report();
        assert_eq!(r.vms[0].cpu_ns(), SEC);
        assert!(r.utilisation() > 0.999);
    }

    #[test]
    fn blocked_vm_wakes_with_boost_and_preempts() {
        // A blinker with tiny bursts next to a hog: with BOOST its
        // bursts run almost immediately, so it accumulates close to
        // its demanded CPU (1ms every 10ms = 10%).
        let mut sim = SimulationBuilder::new(machine(1))
            .vm(VmSpec::single("blinker"), Box::new(Blinker::new(MS, 10 * MS)))
            .vm(VmSpec::single("hog"), Box::new(Hog))
            .build();
        sim.run_for(SEC);
        let r = sim.report();
        let blinker = r.vm_by_name("blinker").unwrap().cpu_ns() as f64;
        assert!(
            blinker > 0.08 * SEC as f64,
            "boosted blinker starved: {blinker}"
        );
    }

    #[test]
    fn parked_capped_vm_frees_the_cpu() {
        let mut sim = SimulationBuilder::new(machine(1))
            .vm(
                VmSpec {
                    cap_pct: Some(20),
                    ..VmSpec::single("capped")
                },
                Box::new(Hog),
            )
            .vm(VmSpec::single("free"), Box::new(Hog))
            .build();
        sim.run_for(SEC);
        sim.reset_measurements();
        sim.run_for(4 * SEC);
        let r = sim.report();
        let capped = r.vm_by_name("capped").unwrap().cpu_ns() as f64 / (4.0 * SEC as f64);
        let free = r.vm_by_name("free").unwrap().cpu_ns() as f64 / (4.0 * SEC as f64);
        assert!(capped < 0.3, "cap must bind: {capped}");
        assert!(free > 0.65, "uncapped VM should soak the slack: {free}");
    }

    #[test]
    fn apply_plan_rejects_bad_inputs() {
        let mut sim = SimulationBuilder::new(machine(2))
            .vm(VmSpec::single("a"), Box::new(Hog))
            .build();
        // Wrong assignment length.
        let err = sim.hv.apply_plan(
            vec![PoolSpec::new(vec![PcpuId(0), PcpuId(1)], MS)],
            vec![],
        );
        assert!(err.is_err());
        // Unknown pool in assignment.
        let err = sim.hv.apply_plan(
            vec![PoolSpec::new(vec![PcpuId(0), PcpuId(1)], MS)],
            vec![PoolId(7)],
        );
        assert!(err.is_err());
        // Valid plan applies.
        sim.hv
            .apply_plan(
                vec![
                    PoolSpec::new(vec![PcpuId(0)], MS),
                    PoolSpec::new(vec![PcpuId(1)], 90 * MS),
                ],
                vec![PoolId(1)],
            )
            .expect("valid plan");
        assert_eq!(sim.hv.vcpus[0].pool, PoolId(1));
        assert_eq!(sim.hv.vcpus[0].pool_migrations, 1);
    }

    #[test]
    fn pool_migration_moves_execution() {
        let mut sim = SimulationBuilder::new(machine(2))
            .vm(VmSpec::single("a"), Box::new(Hog))
            .vm(VmSpec::single("b"), Box::new(Hog))
            .build();
        sim.run_for(300 * MS);
        // Confine both hogs to pCPU 1.
        sim.hv
            .apply_plan(
                vec![
                    PoolSpec::new(vec![PcpuId(0)], 30 * MS),
                    PoolSpec::new(vec![PcpuId(1)], 30 * MS),
                ],
                vec![PoolId(1), PoolId(1)],
            )
            .expect("valid plan");
        sim.reset_measurements();
        sim.run_for(SEC);
        let r = sim.report();
        assert_eq!(r.pcpu_busy_ns[0], 0, "pool 0 must fall idle");
        assert!(r.pcpu_busy_ns[1] as f64 > 0.99 * SEC as f64);
        // Fairness preserved inside the shared pool.
        assert!(r.jain_fairness() > 0.95);
    }

    #[test]
    fn kick_period_grants_frequent_slices() {
        let mut sim = SimulationBuilder::new(machine(1))
            .vm(VmSpec::single("ls"), Box::new(Hog))
            .vm(VmSpec::single("batch"), Box::new(Hog))
            .build();
        sim.hv.set_vcpu_quantum_override(VcpuId(0), Some(MS));
        sim.hv.set_vcpu_kick_period(VcpuId(0), Some(3 * MS));
        sim.run_for(SEC);
        // The kick grants scheduling *frequency* (1 ms slices every
        // few ms); the credit system still enforces the fair 50%
        // share. Latency effects are asserted in the vSlicer baseline
        // tests; here only share preservation is checked.
        let r = sim.report();
        let ls = r.vm_by_name("ls").unwrap().cpu_ns() as f64 / SEC as f64;
        assert!(
            (0.40..=0.60).contains(&ls),
            "kick must not distort the fair share: {ls}"
        );
    }

    #[test]
    fn rebalance_fixes_queue_imbalance() {
        // Start 6 hogs confined to pCPU 0's pool, then widen the pool:
        // the periodic rebalance must spread them over both pCPUs.
        let mut sim = SimulationBuilder::new(machine(2))
            .vm(VmSpec::single("h0"), Box::new(Hog))
            .vm(VmSpec::single("h1"), Box::new(Hog))
            .vm(VmSpec::single("h2"), Box::new(Hog))
            .vm(VmSpec::single("h3"), Box::new(Hog))
            .vm(VmSpec::single("h4"), Box::new(Hog))
            .vm(VmSpec::single("h5"), Box::new(Hog))
            .build();
        sim.run_for(200 * MS);
        sim.reset_measurements();
        sim.run_for(2 * SEC);
        let r = sim.report();
        assert!(r.utilisation() > 0.99, "both cores busy");
        assert!(r.jain_fairness() > 0.9, "hogs share evenly");
    }

    #[test]
    fn timers_fire_in_order_for_blocked_vms() {
        let mut sim = SimulationBuilder::new(machine(1))
            .vm(VmSpec::single("b"), Box::new(Blinker::new(100_000, 5 * MS)))
            .build();
        sim.run_for(SEC);
        // 200 periods of 0.1ms bursts = ~20ms CPU.
        let r = sim.report();
        let got = r.vms[0].cpu_ns();
        assert!(
            (15 * MS..25 * MS).contains(&got),
            "expected ~20ms of burst CPU, got {got}"
        );
    }
}
