//! Typed identifiers.
//!
//! All entity identifiers are dense indices wrapped in newtypes so a
//! pCPU index cannot be passed where a vCPU index is expected. The raw
//! index is public — the simulator uses it to address flat `Vec`s.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw dense index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual machine (Xen domain).
    VmId,
    "vm"
);
id_type!(
    /// A virtual CPU, dense across all VMs.
    VcpuId,
    "vcpu"
);
id_type!(
    /// A physical CPU (core).
    PcpuId,
    "pcpu"
);
id_type!(
    /// A socket (package) with its own shared LLC.
    SocketId,
    "socket"
);
id_type!(
    /// A CPU pool: a pCPU set sharing one quantum length.
    PoolId,
    "pool"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_readably() {
        assert_eq!(format!("{}", VcpuId(3)), "vcpu3");
        assert_eq!(format!("{:?}", PcpuId(0)), "pcpu0");
        assert_eq!(format!("{}", PoolId(2)), "pool2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(VcpuId(1) < VcpuId(2));
        assert_eq!(VmId(5).index(), 5);
    }
}
