//! Virtual machines and virtual CPUs.

use aql_mem::{PmuCounters, PmuSample};
use aql_sim::time::SimTime;

use crate::ids::{PcpuId, PoolId, VcpuId, VmId};

/// Static configuration of a VM (a Xen domain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmSpec {
    /// Human-readable name (also used to look up results in reports).
    pub name: String,
    /// Credit-scheduler weight; CPU is shared in proportion to weight
    /// (Xen default 256).
    pub weight: u32,
    /// Optional cap, in percent of one pCPU, limiting the VM's total
    /// CPU consumption (Xen `cap`); `None` = uncapped.
    pub cap_pct: Option<u32>,
    /// Number of vCPUs.
    pub vcpus: usize,
    /// Hard pCPU affinity: all of the VM's vCPUs run *only* on this
    /// pCPU (Xen `vcpu-pin`). Pinned vCPUs are never stolen or
    /// rebalanced, and the pin overrides pool placement. `None` =
    /// free placement (the default).
    pub pin: Option<usize>,
}

impl VmSpec {
    /// A single-vCPU VM with default weight and no cap.
    pub fn single(name: &str) -> Self {
        VmSpec {
            name: name.to_string(),
            weight: 256,
            cap_pct: None,
            vcpus: 1,
            pin: None,
        }
    }

    /// A `n`-vCPU VM with default weight and no cap.
    pub fn smp(name: &str, n: usize) -> Self {
        VmSpec {
            vcpus: n,
            ..VmSpec::single(name)
        }
    }
}

/// Scheduler run state of a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcpuState {
    /// Parked, waiting for an event.
    Blocked,
    /// On a run queue.
    Runnable,
    /// Currently on a pCPU.
    Running,
}

/// Credit-scheduler priority classes, ordered best-first.
///
/// `BOOST` is the transient priority Xen gives a vCPU that wakes for IO
/// without having exhausted its previous quantum (§2.1, \[13\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Prio {
    /// Boosted after an IO wake; preempts `Under` and `Over` vCPUs.
    Boost,
    /// Credits remaining.
    Under,
    /// Credits exhausted; runs only when nothing better exists.
    Over,
}

/// Runtime metadata of a VM.
#[derive(Debug, Clone)]
pub struct VmMeta {
    /// The VM's identifier.
    pub id: VmId,
    /// Static configuration.
    pub spec: VmSpec,
    /// Global indices of the VM's vCPUs, slot-ordered.
    pub vcpus: Vec<VcpuId>,
}

/// Runtime state of a vCPU.
#[derive(Debug, Clone)]
pub struct Vcpu {
    /// Identifier (dense across VMs).
    pub id: VcpuId,
    /// Owning VM.
    pub vm: VmId,
    /// Slot index within the VM.
    pub slot: usize,
    /// Scheduler state.
    pub state: VcpuState,
    /// Priority class.
    pub prio: Prio,
    /// Remaining credits; negative means `Over`.
    pub credit: f64,
    /// CPU time consumed since the last tick accounting.
    pub unbilled_ns: u64,
    /// The pool this vCPU must be scheduled in.
    pub pool: PoolId,
    /// Preferred pCPU (last queue position); must be in `pool`.
    pub affine_pcpu: PcpuId,
    /// Hard affinity from [`VmSpec::pin`]: when set, the vCPU only
    /// ever queues and runs on this pCPU (never stolen, never
    /// rebalanced, pin beats pool placement).
    pub pinned: Option<PcpuId>,
    /// Per-vCPU quantum override (vSlicer-style); `None` uses the
    /// pool quantum.
    pub quantum_override: Option<u64>,
    /// vSlicer-style differentiated frequency: when queued for this
    /// long, the vCPU preempts the running one (latency-sensitive VMs
    /// are scheduled with smaller slices at higher frequency).
    pub kick_period_ns: Option<u64>,
    /// When the vCPU last left a pCPU (for `kick_period_ns`).
    pub last_desched: SimTime,
    /// Whether the previous slice ended by quantum expiry (disables
    /// BOOST on the next wake, as in Xen).
    pub last_slice_exhausted: bool,
    /// Parked by the cap enforcement (Xen's `CSCHED_FLAG_VCPU_PARKED`):
    /// off the run queues until credits recover.
    pub parked: bool,
    /// Remaining slice to resume after an involuntary preemption
    /// (BOOST or kick): the victim continues its slice instead of
    /// being granted a fresh quantum, so it cannot starve queue-mates
    /// by cycling at the head forever.
    pub resume_slice_ns: Option<u64>,
    /// End of the current slice while running.
    pub slice_end: SimTime,
    /// PMU counters for the current monitoring period.
    pub pmu: PmuCounters,
    /// Latest monitoring-period snapshot.
    pub last_sample: PmuSample,
    /// Private-L2 warmth in `[0, 1]`.
    pub l2_warmth: f64,
    /// pCPU that last executed this vCPU (for L2-pollution tracking).
    pub last_pcpu: Option<PcpuId>,
    /// Total CPU time consumed over the whole run.
    pub cpu_ns: u64,
    /// Timer generation, bumped on each re-arm to invalidate stale
    /// queue entries.
    pub timer_gen: u64,
    /// Number of times this vCPU was migrated across pools.
    pub pool_migrations: u64,
}

impl Vcpu {
    /// Creates a fresh vCPU in the given pool with zero history.
    pub fn new(id: VcpuId, vm: VmId, slot: usize, pool: PoolId, affine: PcpuId) -> Self {
        Vcpu {
            id,
            vm,
            slot,
            state: VcpuState::Blocked,
            prio: Prio::Under,
            credit: 0.0,
            unbilled_ns: 0,
            pool,
            affine_pcpu: affine,
            pinned: None,
            quantum_override: None,
            kick_period_ns: None,
            last_desched: SimTime::ZERO,
            last_slice_exhausted: false,
            parked: false,
            resume_slice_ns: None,
            slice_end: SimTime::ZERO,
            pmu: PmuCounters::new(),
            last_sample: PmuSample::default(),
            l2_warmth: 0.0,
            last_pcpu: None,
            cpu_ns: 0,
            timer_gen: 0,
            pool_migrations: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prio_orders_best_first() {
        assert!(Prio::Boost < Prio::Under);
        assert!(Prio::Under < Prio::Over);
    }

    #[test]
    fn vm_spec_builders() {
        let s = VmSpec::single("web");
        assert_eq!(s.vcpus, 1);
        assert_eq!(s.weight, 256);
        assert_eq!(s.cap_pct, None);
        let m = VmSpec::smp("par", 4);
        assert_eq!(m.vcpus, 4);
        assert_eq!(m.name, "par");
    }

    #[test]
    fn new_vcpu_starts_blocked_under() {
        let v = Vcpu::new(VcpuId(0), VmId(0), 0, PoolId(0), PcpuId(0));
        assert_eq!(v.state, VcpuState::Blocked);
        assert_eq!(v.prio, Prio::Under);
        assert_eq!(v.cpu_ns, 0);
        assert!(!v.last_slice_exhausted);
    }
}
