//! Machine-wide hypervisor state: [`Hypervisor`] and [`PcpuState`].
//!
//! This is the state layer of the engine — everything a policy may
//! inspect or reconfigure, with no execution logic. Context switching
//! lives in [`dispatch`](super::dispatch), the run loop in
//! [`exec`](super::exec).

use aql_mem::LlcState;

use crate::ids::{PcpuId, PoolId, VcpuId, VmId};
use crate::pool::{build_pools, CpuPool, PoolSpec};
use crate::sched::RunQueue;
use crate::topology::MachineSpec;
use crate::vm::{Prio, Vcpu, VcpuState, VmMeta, VmSpec};

/// Per-pCPU scheduler state.
#[derive(Debug)]
pub struct PcpuState {
    /// This pCPU's identifier.
    pub id: PcpuId,
    /// Pool membership.
    pub pool: PoolId,
    /// Currently dispatched vCPU, if any.
    pub running: Option<VcpuId>,
    /// Local run queue.
    pub queue: RunQueue,
    /// Total busy time.
    pub busy_ns: u64,
    /// Set when the current slice must be re-evaluated (boost wake,
    /// pool reconfiguration).
    pub force_resched: bool,
    /// The vCPU that last touched this core's private caches.
    pub last_vcpu: Option<VcpuId>,
}

/// Machine-wide hypervisor state.
///
/// Policies receive `&mut Hypervisor` and may reconfigure pools and
/// vCPU placement through [`Hypervisor::apply_plan`]; the engine
/// repairs run queues and reschedules accordingly.
#[derive(Debug)]
pub struct Hypervisor {
    /// Machine shape.
    pub machine: MachineSpec,
    /// All VMs, id-ordered.
    pub vms: Vec<VmMeta>,
    /// All vCPUs, id-ordered (dense across VMs).
    pub vcpus: Vec<Vcpu>,
    /// Per-pCPU scheduler state, id-ordered.
    pub pcpus: Vec<PcpuState>,
    /// Current CPU pools.
    pub pools: Vec<CpuPool>,
    /// Per-socket shared LLC state.
    pub llcs: Vec<LlcState>,
    /// Number of vCPUs with a hard pin ([`VmSpec::pin`]). The balance
    /// paths only take their pin-aware (predicate-scanning) branches
    /// when this is non-zero, so pin-free machines keep the exact
    /// allocation-free fast paths.
    pub pinned_vcpus: usize,
}

impl Hypervisor {
    /// Creates an idle hypervisor with one default pool.
    pub fn new(machine: MachineSpec) -> Self {
        let total = machine.total_pcpus();
        let pcpus = (0..total)
            .map(|i| PcpuState {
                id: PcpuId(i),
                pool: PoolId(0),
                running: None,
                queue: RunQueue::new(),
                busy_ns: 0,
                force_resched: false,
                last_vcpu: None,
            })
            .collect();
        let llcs = (0..machine.sockets)
            .map(|_| LlcState::new(machine.cache.llc_bytes as f64, 0))
            .collect();
        Hypervisor {
            vms: Vec::new(),
            vcpus: Vec::new(),
            pcpus,
            pools: vec![CpuPool::default_pool(total)],
            llcs,
            machine,
            pinned_vcpus: 0,
        }
    }

    /// Admits a VM; its vCPUs join pool 0 with round-robin affinity
    /// (or the VM's hard pin, when one is declared).
    pub fn add_vm(&mut self, spec: VmSpec) -> VmId {
        assert!(spec.vcpus > 0, "a VM needs at least one vCPU");
        let pin = spec.pin.map(|p| {
            assert!(
                p < self.machine.total_pcpus(),
                "pin target pcpu{p} outside the machine"
            );
            PcpuId(p)
        });
        let vm_id = VmId(self.vms.len());
        let mut ids = Vec::with_capacity(spec.vcpus);
        for slot in 0..spec.vcpus {
            let id = VcpuId(self.vcpus.len());
            let affine = pin.unwrap_or(PcpuId(id.index() % self.machine.total_pcpus()));
            let mut vcpu = Vcpu::new(id, vm_id, slot, PoolId(0), affine);
            vcpu.pinned = pin;
            self.pinned_vcpus += usize::from(pin.is_some());
            self.vcpus.push(vcpu);
            ids.push(id);
        }
        for llc in &mut self.llcs {
            llc.ensure_owners(self.vcpus.len());
        }
        self.vms.push(VmMeta {
            id: vm_id,
            spec,
            vcpus: ids,
        });
        vm_id
    }

    /// The quantum a vCPU runs with: its override, else its pool's.
    pub fn quantum_for(&self, vcpu: VcpuId) -> u64 {
        let v = &self.vcpus[vcpu.index()];
        v.quantum_override
            .unwrap_or(self.pools[v.pool.index()].quantum_ns)
    }

    /// Atomically replaces the pool layout and the vCPU→pool
    /// assignment (`assignment[i]` is vCPU `i`'s pool). Run queues are
    /// rebuilt; running vCPUs on foreign pools are flagged for
    /// preemption at the next resched point.
    pub fn apply_plan(
        &mut self,
        pools: Vec<PoolSpec>,
        assignment: Vec<PoolId>,
    ) -> Result<(), String> {
        if assignment.len() != self.vcpus.len() {
            return Err(format!(
                "assignment covers {} vCPUs, machine has {}",
                assignment.len(),
                self.vcpus.len()
            ));
        }
        let new_pools = build_pools(&pools, self.machine.total_pcpus())?;
        for (i, pool) in assignment.iter().enumerate() {
            if pool.index() >= new_pools.len() {
                return Err(format!("vcpu{i} assigned to unknown {pool}"));
            }
        }
        self.pools = new_pools;
        for pool in &self.pools {
            for &p in &pool.pcpus {
                self.pcpus[p.index()].pool = pool.id;
            }
        }
        for (i, &pool) in assignment.iter().enumerate() {
            if self.vcpus[i].pool != pool {
                self.vcpus[i].pool = pool;
                self.vcpus[i].pool_migrations += 1;
            }
        }
        // Rebuild queues: drain everything, re-enqueue in global order.
        let mut queued: Vec<(VcpuId, Prio)> = Vec::new();
        for p in &mut self.pcpus {
            while let Some(entry) = p.queue.pop_best() {
                queued.push(entry);
            }
        }
        queued.sort_by_key(|(v, _)| v.index());
        for (v, prio) in queued {
            self.enqueue(v, prio, false, false);
        }
        // Running vCPUs sitting on a pCPU outside their pool must move.
        for pi in 0..self.pcpus.len() {
            if let Some(rv) = self.pcpus[pi].running {
                if self.vcpus[rv.index()].pool != self.pcpus[pi].pool {
                    self.pcpus[pi].force_resched = true;
                }
            }
        }
        Ok(())
    }

    /// Changes one pool's quantum; takes effect from the next dispatch.
    pub fn set_pool_quantum(&mut self, pool: PoolId, quantum_ns: u64) {
        assert!(quantum_ns > 0, "quantum must be positive");
        self.pools[pool.index()].quantum_ns = quantum_ns;
    }

    /// Sets or clears a per-vCPU quantum override (vSlicer-style
    /// differentiated slicing); takes effect from the next dispatch.
    pub fn set_vcpu_quantum_override(&mut self, vcpu: VcpuId, quantum_ns: Option<u64>) {
        if let Some(q) = quantum_ns {
            assert!(q > 0, "quantum must be positive");
        }
        self.vcpus[vcpu.index()].quantum_override = quantum_ns;
    }

    /// Sets or clears a vCPU's kick period: while runnable-queued for
    /// longer than this, it preempts the running vCPU (vSlicer's
    /// differentiated scheduling frequency).
    pub fn set_vcpu_kick_period(&mut self, vcpu: VcpuId, period_ns: Option<u64>) {
        if let Some(p) = period_ns {
            assert!(p > 0, "kick period must be positive");
        }
        self.vcpus[vcpu.index()].kick_period_ns = period_ns;
    }

    /// The vCPUs of the VM with the given name, if it exists.
    pub fn vm_vcpus_by_name(&self, name: &str) -> Option<&[VcpuId]> {
        self.vms
            .iter()
            .find(|vm| vm.spec.name == name)
            .map(|vm| vm.vcpus.as_slice())
    }

    /// Least-loaded pCPU (by queue length, then index) of a pool.
    fn least_loaded_pcpu(&self, pool: PoolId) -> PcpuId {
        *self.pools[pool.index()]
            .pcpus
            .iter()
            .min_by_key(|p| {
                let st = &self.pcpus[p.index()];
                (
                    st.queue.len() + usize::from(st.running.is_some()),
                    p.index(),
                )
            })
            .expect("pools are never empty")
    }

    /// Enqueues a runnable vCPU on a pCPU of its pool (affine pCPU if
    /// still valid, else the least-loaded one). `at_head` requeues a
    /// preempted vCPU before its peers.
    ///
    /// `from_wake` marks a wake-up enqueue: as in Xen's run-queue
    /// tickle, only a *waking* vCPU of strictly better priority
    /// preempts the running one mid-slice (this is how BOOST cuts IO
    /// latency). Plain requeues never preempt: tick-driven priority
    /// changes take effect at slice boundaries.
    pub(super) fn enqueue(&mut self, vcpu: VcpuId, prio: Prio, at_head: bool, from_wake: bool) {
        let v = &self.vcpus[vcpu.index()];
        let pool = v.pool;
        let target = if let Some(pin) = v.pinned {
            // Hard affinity wins over pool placement (Xen vcpu-pin).
            pin
        } else if self.pools[pool.index()].contains(v.affine_pcpu) {
            v.affine_pcpu
        } else {
            self.least_loaded_pcpu(pool)
        };
        self.vcpus[vcpu.index()].affine_pcpu = target;
        let q = &mut self.pcpus[target.index()].queue;
        if at_head {
            q.push_head(prio, vcpu);
        } else {
            q.push_tail(prio, vcpu);
        }
        if from_wake {
            if let Some(rv) = self.pcpus[target.index()].running {
                if prio < self.vcpus[rv.index()].prio {
                    self.pcpus[target.index()].force_resched = true;
                }
            }
        }
    }

    /// Wakes a blocked vCPU. Grants BOOST when the vCPU still has
    /// credit and did not exhaust its previous slice (§2.1).
    pub fn wake(&mut self, vcpu: VcpuId) {
        let v = &mut self.vcpus[vcpu.index()];
        if v.state != VcpuState::Blocked {
            return;
        }
        v.state = VcpuState::Runnable;
        let prio = if v.credit < 0.0 {
            Prio::Over
        } else if !v.last_slice_exhausted {
            Prio::Boost
        } else {
            Prio::Under
        };
        v.prio = prio;
        if v.parked {
            return; // Enqueued at unpark time instead.
        }
        self.enqueue(vcpu, prio, false, true);
    }

    /// Total CPU time consumed by a VM across its vCPUs.
    pub fn vm_cpu_ns(&self, vm: VmId) -> u64 {
        self.vms[vm.index()]
            .vcpus
            .iter()
            .map(|v| self.vcpus[v.index()].cpu_ns)
            .sum()
    }
}
