//! Engine unit tests: dispatch, BOOST, caps, pools, timers and the
//! unified [`DispatchDecision`] path.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use super::*;
use crate::ids::{PcpuId, PoolId, VcpuId};
use crate::pool::PoolSpec;
use crate::topology::MachineSpec;
use crate::vm::{Prio, VmSpec};
use crate::workload::{
    ExecContext, GuestWorkload, RunOutcome, StopReason, TimerFire, WorkloadMetrics,
};
use aql_mem::CacheSpec;
use aql_sim::time::{MS, SEC};

/// A minimal CPU hog for engine tests.
struct Hog;

impl GuestWorkload for Hog {
    fn name(&self) -> &str {
        "hog"
    }
    fn vcpu_slots(&self) -> usize {
        1
    }
    fn run(&mut self, _slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        let _ = ctx.exec_mem(&aql_mem::MemProfile::light(), budget_ns);
        RunOutcome::ran_all(budget_ns)
    }
    fn runnable(&self, _slot: usize) -> bool {
        true
    }
    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        None
    }
    fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
        TimerFire::default()
    }
    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::None
    }
}

/// A periodic blocker: runs `burst` then blocks until the next
/// timer `period` later. Exercises wake/BOOST paths.
struct Blinker {
    burst_ns: u64,
    period_ns: u64,
    next: SimTime,
    pending: bool,
    left: u64,
}

impl Blinker {
    fn new(burst_ns: u64, period_ns: u64) -> Self {
        Blinker {
            burst_ns,
            period_ns,
            next: SimTime(period_ns),
            pending: false,
            left: 0,
        }
    }
}

impl GuestWorkload for Blinker {
    fn name(&self) -> &str {
        "blinker"
    }
    fn vcpu_slots(&self) -> usize {
        1
    }
    fn run(&mut self, _slot: usize, budget_ns: u64, ctx: &mut ExecContext<'_>) -> RunOutcome {
        if self.pending && self.left == 0 {
            self.left = self.burst_ns;
            self.pending = false;
        }
        if self.left == 0 {
            return RunOutcome {
                used_ns: 0,
                stop: StopReason::Blocked,
            };
        }
        let dt = self.left.min(budget_ns);
        let _ = ctx.exec_mem(&aql_mem::MemProfile::light(), dt);
        self.left -= dt;
        if self.left == 0 && !self.pending {
            RunOutcome {
                used_ns: dt,
                stop: StopReason::Blocked,
            }
        } else {
            RunOutcome {
                used_ns: dt,
                stop: StopReason::BudgetExhausted,
            }
        }
    }
    fn runnable(&self, _slot: usize) -> bool {
        self.pending || self.left > 0
    }
    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        Some(self.next)
    }
    fn on_timer(&mut self, _slot: usize, now: SimTime) -> TimerFire {
        if now < self.next {
            return TimerFire::default();
        }
        self.pending = true;
        self.next = SimTime(self.next.as_ns() + self.period_ns);
        TimerFire {
            io_events: 1,
            wake: true,
        }
    }
    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::None
    }
}

fn machine(cores: usize) -> MachineSpec {
    MachineSpec::custom("engine-test", 1, cores, CacheSpec::i7_3770())
}

#[test]
fn single_hog_saturates_the_core() {
    let mut sim = SimulationBuilder::new(machine(1))
        .vm(VmSpec::single("h"), Box::new(Hog))
        .build();
    sim.run_for(SEC);
    let r = sim.report();
    assert_eq!(r.vms[0].cpu_ns(), SEC);
    assert!(r.utilisation() > 0.999);
}

#[test]
fn blocked_vm_wakes_with_boost_and_preempts() {
    // A blinker with tiny bursts next to a hog: with BOOST its
    // bursts run almost immediately, so it accumulates close to
    // its demanded CPU (1ms every 10ms = 10%).
    let mut sim = SimulationBuilder::new(machine(1))
        .vm(
            VmSpec::single("blinker"),
            Box::new(Blinker::new(MS, 10 * MS)),
        )
        .vm(VmSpec::single("hog"), Box::new(Hog))
        .build();
    sim.run_for(SEC);
    let r = sim.report();
    let blinker = r.vm_by_name("blinker").unwrap().cpu_ns() as f64;
    assert!(
        blinker > 0.08 * SEC as f64,
        "boosted blinker starved: {blinker}"
    );
}

#[test]
fn parked_capped_vm_frees_the_cpu() {
    let mut sim = SimulationBuilder::new(machine(1))
        .vm(
            VmSpec {
                cap_pct: Some(20),
                ..VmSpec::single("capped")
            },
            Box::new(Hog),
        )
        .vm(VmSpec::single("free"), Box::new(Hog))
        .build();
    sim.run_for(SEC);
    sim.reset_measurements();
    sim.run_for(4 * SEC);
    let r = sim.report();
    let capped = r.vm_by_name("capped").unwrap().cpu_ns() as f64 / (4.0 * SEC as f64);
    let free = r.vm_by_name("free").unwrap().cpu_ns() as f64 / (4.0 * SEC as f64);
    assert!(capped < 0.3, "cap must bind: {capped}");
    assert!(free > 0.65, "uncapped VM should soak the slack: {free}");
}

#[test]
fn apply_plan_rejects_bad_inputs() {
    let mut sim = SimulationBuilder::new(machine(2))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .build();
    // Wrong assignment length.
    let err = sim
        .hv
        .apply_plan(vec![PoolSpec::new(vec![PcpuId(0), PcpuId(1)], MS)], vec![]);
    assert!(err.is_err());
    // Unknown pool in assignment.
    let err = sim.hv.apply_plan(
        vec![PoolSpec::new(vec![PcpuId(0), PcpuId(1)], MS)],
        vec![PoolId(7)],
    );
    assert!(err.is_err());
    // Valid plan applies.
    sim.hv
        .apply_plan(
            vec![
                PoolSpec::new(vec![PcpuId(0)], MS),
                PoolSpec::new(vec![PcpuId(1)], 90 * MS),
            ],
            vec![PoolId(1)],
        )
        .expect("valid plan");
    assert_eq!(sim.hv.vcpus[0].pool, PoolId(1));
    assert_eq!(sim.hv.vcpus[0].pool_migrations, 1);
}

#[test]
fn pool_migration_moves_execution() {
    let mut sim = SimulationBuilder::new(machine(2))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .vm(VmSpec::single("b"), Box::new(Hog))
        .build();
    sim.run_for(300 * MS);
    // Confine both hogs to pCPU 1.
    sim.hv
        .apply_plan(
            vec![
                PoolSpec::new(vec![PcpuId(0)], 30 * MS),
                PoolSpec::new(vec![PcpuId(1)], 30 * MS),
            ],
            vec![PoolId(1), PoolId(1)],
        )
        .expect("valid plan");
    sim.reset_measurements();
    sim.run_for(SEC);
    let r = sim.report();
    assert_eq!(r.pcpu_busy_ns[0], 0, "pool 0 must fall idle");
    assert!(r.pcpu_busy_ns[1] as f64 > 0.99 * SEC as f64);
    // Fairness preserved inside the shared pool.
    assert!(r.jain_fairness() > 0.95);
}

#[test]
fn kick_period_grants_frequent_slices() {
    let mut sim = SimulationBuilder::new(machine(1))
        .vm(VmSpec::single("ls"), Box::new(Hog))
        .vm(VmSpec::single("batch"), Box::new(Hog))
        .build();
    sim.hv.set_vcpu_quantum_override(VcpuId(0), Some(MS));
    sim.hv.set_vcpu_kick_period(VcpuId(0), Some(3 * MS));
    sim.run_for(SEC);
    // The kick grants scheduling *frequency* (1 ms slices every
    // few ms); the credit system still enforces the fair 50%
    // share. Latency effects are asserted in the vSlicer baseline
    // tests; here only share preservation is checked.
    let r = sim.report();
    let ls = r.vm_by_name("ls").unwrap().cpu_ns() as f64 / SEC as f64;
    assert!(
        (0.40..=0.60).contains(&ls),
        "kick must not distort the fair share: {ls}"
    );
}

#[test]
fn rebalance_fixes_queue_imbalance() {
    // Start 6 hogs confined to pCPU 0's pool, then widen the pool:
    // the periodic rebalance must spread them over both pCPUs.
    let mut sim = SimulationBuilder::new(machine(2))
        .vm(VmSpec::single("h0"), Box::new(Hog))
        .vm(VmSpec::single("h1"), Box::new(Hog))
        .vm(VmSpec::single("h2"), Box::new(Hog))
        .vm(VmSpec::single("h3"), Box::new(Hog))
        .vm(VmSpec::single("h4"), Box::new(Hog))
        .vm(VmSpec::single("h5"), Box::new(Hog))
        .build();
    sim.run_for(200 * MS);
    sim.reset_measurements();
    sim.run_for(2 * SEC);
    let r = sim.report();
    assert!(r.utilisation() > 0.99, "both cores busy");
    assert!(r.jain_fairness() > 0.9, "hogs share evenly");
}

#[test]
fn timers_fire_in_order_for_blocked_vms() {
    let mut sim = SimulationBuilder::new(machine(1))
        .vm(VmSpec::single("b"), Box::new(Blinker::new(100_000, 5 * MS)))
        .build();
    sim.run_for(SEC);
    // 200 periods of 0.1ms bursts = ~20ms CPU.
    let r = sim.report();
    let got = r.vms[0].cpu_ns();
    assert!(
        (15 * MS..25 * MS).contains(&got),
        "expected ~20ms of burst CPU, got {got}"
    );
}

// ----------------------------------------------------------------
// DispatchDecision path
// ----------------------------------------------------------------

/// Records every dispatch decision the engine applies while running
/// a fixed-quantum configuration, via the `on_dispatch` hook.
struct RecordingPolicy {
    inner: crate::policy::FixedQuantumPolicy,
    decisions: Rc<RefCell<Vec<DispatchDecision>>>,
}

impl crate::policy::SchedPolicy for RecordingPolicy {
    fn name(&self) -> &str {
        "recording"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        self.inner.init(hv);
    }

    fn on_dispatch(&mut self, _hv: &Hypervisor, decision: &DispatchDecision, _now: SimTime) {
        self.decisions.borrow_mut().push(*decision);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn every_context_switch_is_an_explicit_decision() {
    // Two hogs on one core with a 30 ms quantum for 1 s: the engine
    // must alternate them, and every dispatch must surface through
    // the decision hook with the configured slice.
    let decisions = Rc::new(RefCell::new(Vec::new()));
    let policy = RecordingPolicy {
        inner: crate::policy::FixedQuantumPolicy::xen_default(),
        decisions: Rc::clone(&decisions),
    };
    let mut sim = SimulationBuilder::new(machine(1))
        .policy(Box::new(policy))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .vm(VmSpec::single("b"), Box::new(Hog))
        .build();
    sim.run_for(SEC);
    let decisions = decisions.borrow();
    // 1 s / 30 ms quantum with two alternating hogs ≈ 33 switches.
    assert!(
        (25..=45).contains(&decisions.len()),
        "expected ~33 dispatches, saw {}",
        decisions.len()
    );
    for d in decisions.iter() {
        assert_eq!(d.pcpu, PcpuId(0), "single-core machine");
        assert!(d.slice_ns <= crate::DEFAULT_QUANTUM_NS);
        assert!(!d.resumed, "hogs never resume a preempted slice");
        assert_eq!(d.source, DispatchSource::LocalQueue);
    }
    // Both vCPUs were dispatched, in alternation.
    assert!(decisions.iter().any(|d| d.vcpu == VcpuId(0)));
    assert!(decisions.iter().any(|d| d.vcpu == VcpuId(1)));
}

#[test]
fn quantum_override_resolves_in_the_decision() {
    let decisions = Rc::new(RefCell::new(Vec::new()));
    let policy = RecordingPolicy {
        inner: crate::policy::FixedQuantumPolicy::xen_default(),
        decisions: Rc::clone(&decisions),
    };
    let mut sim = SimulationBuilder::new(machine(1))
        .policy(Box::new(policy))
        .vm(VmSpec::single("micro"), Box::new(Hog))
        .vm(VmSpec::single("batch"), Box::new(Hog))
        .build();
    sim.hv.set_vcpu_quantum_override(VcpuId(0), Some(MS));
    sim.run_for(SEC);
    let decisions = decisions.borrow();
    let micro_slices: Vec<u64> = decisions
        .iter()
        .filter(|d| d.vcpu == VcpuId(0) && !d.resumed)
        .map(|d| d.slice_ns)
        .collect();
    assert!(!micro_slices.is_empty());
    assert!(
        micro_slices.iter().all(|&s| s == MS),
        "override must resolve to 1 ms slices: {micro_slices:?}"
    );
    let batch_slices: Vec<u64> = decisions
        .iter()
        .filter(|d| d.vcpu == VcpuId(1) && !d.resumed)
        .map(|d| d.slice_ns)
        .collect();
    assert!(
        batch_slices.iter().all(|&s| s == crate::DEFAULT_QUANTUM_NS),
        "untouched vCPU keeps the pool quantum"
    );
}

#[test]
fn idle_stealing_reports_its_victim() {
    // pCPU 1's only local work is a blinker that keeps blocking; the
    // two hogs share pCPU 0's queue. Whenever the blinker blocks,
    // pCPU 1 goes idle with an empty queue and must steal a hog from
    // its loaded peer — visible in the decisions.
    let decisions = Rc::new(RefCell::new(Vec::new()));
    let policy = RecordingPolicy {
        inner: crate::policy::FixedQuantumPolicy::xen_default(),
        decisions: Rc::clone(&decisions),
    };
    let mut sim = SimulationBuilder::new(machine(2))
        .policy(Box::new(policy))
        .vm(VmSpec::single("h0"), Box::new(Hog))
        .vm(VmSpec::single("blink"), Box::new(Blinker::new(MS, 7 * MS)))
        .vm(VmSpec::single("h1"), Box::new(Hog))
        .build();
    sim.run_for(SEC);
    let decisions = decisions.borrow();
    assert!(
        decisions
            .iter()
            .any(|d| matches!(d.source, DispatchSource::Stolen { .. })),
        "a blocking vCPU next to a loaded peer must trigger idle stealing"
    );
    for d in decisions.iter() {
        if let DispatchSource::Stolen { victim } = d.source {
            assert_ne!(victim, d.pcpu, "a pCPU cannot steal from itself");
        }
    }
}

#[test]
fn steal_skips_boost_only_peers() {
    // Work conservation: a peer whose queue holds only BOOST vCPUs
    // (never stealable) must not be chosen as the steal victim when
    // another peer has stealable work — even if the BOOST queue is
    // longer.
    let mut sim = SimulationBuilder::new(machine(3))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .vm(VmSpec::single("b"), Box::new(Hog))
        .vm(VmSpec::single("c"), Box::new(Hog))
        .build();
    for p in &mut sim.hv.pcpus {
        while p.queue.pop_best().is_some() {}
        p.running = None;
    }
    // pCPU 1: two BOOST entries (longer queue); pCPU 2: one UNDER.
    sim.hv.pcpus[1].queue.push_tail(Prio::Boost, VcpuId(0));
    sim.hv.pcpus[1].queue.push_tail(Prio::Boost, VcpuId(1));
    sim.hv.pcpus[2].queue.push_tail(Prio::Under, VcpuId(2));
    let got = sim.steal_from_peer(0);
    assert_eq!(
        got,
        Some(((VcpuId(2), Prio::Under), PcpuId(2))),
        "the UNDER work on pcpu2 must be stolen, not the BOOST-only pcpu1"
    );
}

#[test]
fn rebalance_skips_boost_only_donors() {
    // Same work-conservation rule for the periodic rebalance: a
    // BOOST-only queue must not win the donor pick (its tail can
    // never be stolen) while a peer with movable work exists.
    let mut sim = SimulationBuilder::new(machine(3))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .vm(VmSpec::single("b"), Box::new(Hog))
        .vm(VmSpec::single("c"), Box::new(Hog))
        .build();
    for p in &mut sim.hv.pcpus {
        while p.queue.pop_best().is_some() {}
        p.running = None;
    }
    // pCPU 0: three BOOST entries; pCPU 1: empty; pCPU 2: three UNDER.
    for v in [0, 1, 2] {
        sim.hv.pcpus[0].queue.push_tail(Prio::Boost, VcpuId(v));
    }
    for v in [0, 1, 2] {
        sim.hv.pcpus[2].queue.push_tail(Prio::Under, VcpuId(v));
    }
    sim.rebalance_pools();
    assert!(
        !sim.hv.pcpus[1].queue.is_empty(),
        "the idle pCPU must receive movable work from pcpu2"
    );
    assert_eq!(
        sim.hv.pcpus[0].queue.len(),
        3,
        "the BOOST-only queue is left alone"
    );
}

#[test]
fn rebalance_prefers_the_loaded_donor_on_stealable_ties() {
    // pCPU 0 and pCPU 1 tie on stealable work (2 UNDER each) but
    // pCPU 1 also carries 4 BOOST entries: the donor pick must go by
    // total load among stealable peers, so pCPU 1 donates to the
    // near-idle pCPU 2 rather than the round breaking on pCPU 0.
    let mut sim = SimulationBuilder::new(machine(3))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .vm(VmSpec::single("b"), Box::new(Hog))
        .vm(VmSpec::single("c"), Box::new(Hog))
        .build();
    for p in &mut sim.hv.pcpus {
        while p.queue.pop_best().is_some() {}
        p.running = None;
    }
    for v in [0, 1] {
        sim.hv.pcpus[0].queue.push_tail(Prio::Under, VcpuId(v));
    }
    for v in [0, 1, 2, 0] {
        sim.hv.pcpus[1].queue.push_tail(Prio::Boost, VcpuId(v));
    }
    for v in [1, 2] {
        sim.hv.pcpus[1].queue.push_tail(Prio::Under, VcpuId(v));
    }
    sim.rebalance_pools();
    assert!(
        !sim.hv.pcpus[2].queue.is_empty(),
        "the overloaded stealable donor (pcpu1) must shed work to pcpu2"
    );
    assert_eq!(
        sim.hv.pcpus[0].queue.len(),
        2,
        "the lightly-loaded tied peer donates nothing"
    );
}

#[test]
fn trace_log_records_dispatches() {
    let mut sim = SimulationBuilder::new(machine(1))
        .trace(64)
        .vm(VmSpec::single("a"), Box::new(Hog))
        .vm(VmSpec::single("b"), Box::new(Hog))
        .build();
    sim.run_for(200 * MS);
    let lines = sim.trace.lines();
    assert!(!lines.is_empty(), "trace must capture dispatch decisions");
    assert!(
        lines.iter().any(|l| l.contains("pcpu0 <- vcpu")),
        "dispatch lines name the pCPU and vCPU: {lines:?}"
    );
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let run = || {
        let mut sim = SimulationBuilder::new(machine(2))
            .seed(7)
            .vm(VmSpec::single("a"), Box::new(Hog))
            .vm(VmSpec::single("b"), Box::new(Blinker::new(MS, 7 * MS)))
            .vm(VmSpec::single("c"), Box::new(Hog))
            .build();
        sim.run_for(SEC);
        let r = sim.report();
        (
            r.pcpu_busy_ns.clone(),
            r.vms.iter().map(|v| v.cpu_ns()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "identical seeds must replay bit-identically");
}

/// A degenerate workload: always runnable, never makes progress.
struct Stuck;

impl GuestWorkload for Stuck {
    fn name(&self) -> &str {
        "stuck"
    }
    fn vcpu_slots(&self) -> usize {
        1
    }
    fn run(&mut self, _slot: usize, _budget_ns: u64, _ctx: &mut ExecContext<'_>) -> RunOutcome {
        RunOutcome {
            used_ns: 0,
            stop: StopReason::BudgetExhausted,
        }
    }
    fn runnable(&self, _slot: usize) -> bool {
        true
    }
    fn next_timer(&self, _slot: usize) -> Option<SimTime> {
        None
    }
    fn on_timer(&mut self, _slot: usize, _now: SimTime) -> TimerFire {
        TimerFire::default()
    }
    fn metrics(&self) -> WorkloadMetrics {
        WorkloadMetrics::None
    }
}

#[test]
fn starved_pcpu_emits_a_trace_line() {
    // A workload that never makes progress used to idle the pCPU for
    // the rest of the step silently; now the bail-out is traced.
    let mut sim = SimulationBuilder::new(machine(1))
        .trace(512)
        .vm(VmSpec::single("zombie"), Box::new(Stuck))
        .build();
    sim.run_for(MS);
    assert!(
        sim.trace.lines().iter().any(|l| l.contains("starved")),
        "zero-progress bail-outs must be diagnosable: {:?}",
        sim.trace.lines()
    );
    assert_eq!(sim.now(), SimTime(MS), "the clock still reaches the end");
}

#[test]
fn time_mode_defaults_to_adaptive_and_is_selectable() {
    let sim = SimulationBuilder::new(machine(1))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .build();
    assert_eq!(sim.time_mode(), TimeMode::Adaptive);
    let dense = SimulationBuilder::new(machine(1))
        .time_mode(TimeMode::Dense)
        .vm(VmSpec::single("a"), Box::new(Hog))
        .build();
    assert_eq!(dense.time_mode(), TimeMode::Dense);
}

#[test]
fn dense_and_adaptive_agree_bit_for_bit_on_engine_mixes() {
    // The engine-level conformance check: hogs (horizon-less custom
    // workloads default to Unknown) plus blockers, on both modes.
    let run = |mode: TimeMode| {
        let mut sim = SimulationBuilder::new(machine(2))
            .seed(11)
            .time_mode(mode)
            .vm(VmSpec::single("a"), Box::new(Hog))
            .vm(VmSpec::single("b"), Box::new(Blinker::new(MS, 7 * MS)))
            .vm(VmSpec::single("c"), Box::new(Hog))
            .build();
        sim.run_for(SEC);
        format!("{:?}", sim.report())
    };
    assert_eq!(
        run(TimeMode::Dense),
        run(TimeMode::Adaptive),
        "time modes must be observationally identical"
    );
}

#[test]
fn run_until_never_moves_the_clock_backwards() {
    let mut sim = SimulationBuilder::new(machine(1))
        .vm(VmSpec::single("a"), Box::new(Hog))
        .build();
    sim.run_until(SimTime(50 * MS));
    assert_eq!(sim.now(), SimTime(50 * MS));
    // An earlier (or equal) target is a no-op, not a rewind.
    sim.run_until(SimTime(10 * MS));
    assert_eq!(sim.now(), SimTime(50 * MS));
    sim.run_until(SimTime(50 * MS));
    assert_eq!(sim.now(), SimTime(50 * MS));
}

#[test]
fn pinned_vms_share_their_pcpu_and_others_idle() {
    // Two hogs pinned to pCPU 0 of a 4-core machine: they split that
    // core, and no other core ever runs them (hard affinity survives
    // idle stealing and the periodic rebalance).
    let mut sim = SimulationBuilder::new(machine(4))
        .vm(
            VmSpec {
                pin: Some(0),
                ..VmSpec::single("a")
            },
            Box::new(Hog),
        )
        .vm(
            VmSpec {
                pin: Some(0),
                ..VmSpec::single("b")
            },
            Box::new(Hog),
        )
        .build();
    assert_eq!(sim.hv.pinned_vcpus, 2);
    sim.run_for(SEC);
    let r = sim.report();
    let a = r.vms[0].vcpu_cpu_ns[0];
    let b = r.vms[1].vcpu_cpu_ns[0];
    // Both ran, their sum is one core's worth, and the split is fair.
    assert!(a > 0 && b > 0, "both pinned hogs must run ({a}, {b})");
    let total = a + b;
    assert!(
        total as f64 > 0.98 * SEC as f64 && total <= SEC,
        "two pinned hogs saturate exactly one core, got {total}"
    );
    // The other cores stayed idle: no stolen work.
    for p in 1..4 {
        assert_eq!(
            sim.hv.pcpus[p].busy_ns, 0,
            "pCPU {p} must never run a pinned vCPU"
        );
    }
}

#[test]
fn pinned_vcpus_survive_pool_reconfiguration() {
    // A plan that puts every vCPU in a pool over pCPUs {1, 2, 3} must
    // not move a pinned vCPU off its pin: the pin beats the pool.
    let mut sim = SimulationBuilder::new(machine(4))
        .vm(
            VmSpec {
                pin: Some(0),
                ..VmSpec::single("pinned")
            },
            Box::new(Hog),
        )
        .vm(VmSpec::single("free"), Box::new(Hog))
        .build();
    let pools = vec![
        PoolSpec::new(vec![PcpuId(1), PcpuId(2), PcpuId(3)], 30 * MS),
        PoolSpec::new(vec![PcpuId(0)], 30 * MS),
    ];
    let assignment = vec![PoolId(0); sim.hv.vcpus.len()];
    sim.hv.apply_plan(pools, assignment).unwrap();
    sim.run_for(SEC);
    // The pinned hog ran on pCPU 0 only; the free hog elsewhere.
    assert!(sim.hv.pcpus[0].busy_ns > 0, "pin target must run the VM");
    let r = sim.report();
    assert!(r.vms[0].vcpu_cpu_ns[0] > 0, "pinned vCPU starved");
    assert!(r.vms[1].vcpu_cpu_ns[0] > 0, "free vCPU starved");
}

#[test]
#[should_panic(expected = "pin target pcpu7 outside the machine")]
fn pins_outside_the_machine_are_rejected() {
    let _ = SimulationBuilder::new(machine(2))
        .vm(
            VmSpec {
                pin: Some(7),
                ..VmSpec::single("bad")
            },
            Box::new(Hog),
        )
        .build();
}
