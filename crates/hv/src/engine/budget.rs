//! Run budgets and structured failure sentinels.
//!
//! [`Simulation::run_measured`] assumes a healthy workload: it always
//! returns a report, even if a degenerate guest starves its vCPU for
//! the whole run or a corrupted metric poisons the summary. This module
//! adds the budgeted variant the experiment harness uses for fault
//! isolation: [`Simulation::run_measured_budgeted`] arms a
//! [`RunBudget`] and returns `Err(`[`EngineError`]`)` the moment a
//! sentinel trips, instead of a silently-wrong report.
//!
//! Three sentinels cover the failure modes a cell can hit:
//!
//! * **Livelock** — the sub-step executor's zero-progress bail (see
//!   `engine::exec`) fires for the same vCPU over and over. One bail is
//!   a trace line (transient starvation is legal); an unbroken streak
//!   means the guest will never run again, so the budget promotes it to
//!   a structured error.
//! * **Wall budget** — real time, not simulated time: a deadline for
//!   the whole measured run, checked from inside both run loops so even
//!   a slow-but-live cell is cut off.
//! * **Invariant violation** — post-run checks on the report itself:
//!   the engine's conservation law (every vCPU nanosecond is billed to
//!   exactly one pCPU), the busy-time bound, and metric finiteness
//!   (a NaN latency summary marks the run corrupted rather than
//!   propagating into normalised tables).
//!
//! The distinction [`EngineError::is_environmental`] draws is what the
//! harness's retry classifier keys on: the simulation is a pure
//! function of its seed, so a livelock or invariant break will recur on
//! every retry — only the wall deadline depends on the machine the
//! harness happens to be running on.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use aql_sim::time::SimTime;

use super::Simulation;
use crate::ids::VcpuId;
use crate::report::RunReport;
use crate::workload::WorkloadMetrics;

/// How many `budget_stop` polls elapse between `Instant::now` reads.
/// The run loops poll once per outer iteration (at most one sub-step,
/// 100 µs simulated), so the wall deadline is enforced with generous
/// slack while the hot loop almost never touches the clock syscall.
const WALL_CHECK_EVERY: u32 = 256;

/// Default livelock threshold: zero-progress bails charged to one vCPU
/// before the run is declared dead. A bail fires at most once per
/// sub-step (100 µs) of *dispatched* time, so this is ~26 ms of the
/// guest holding a pCPU while consuming nothing — orders of magnitude
/// beyond any legal starvation the in-tree scenarios produce (their
/// bail count is exactly zero), yet low enough to trip well inside
/// even a quick smoke run's window.
const DEFAULT_LIVELOCK_BAILS: u32 = 256;

/// Limits a budgeted run (see [`Simulation::run_measured_budgeted`]).
///
/// The default budget has no wall deadline, the livelock watchdog on at
/// [`RunBudget::default`]'s threshold, and invariant checks on — safe
/// to arm unconditionally, since a healthy run can trip none of them.
#[derive(Debug, Clone, Copy)]
pub struct RunBudget {
    /// Wall-clock deadline for the whole run (warm-up + measurement);
    /// `None` never times out.
    pub max_wall: Option<Duration>,
    /// Zero-progress dispatch bails charged to one vCPU before the run
    /// is declared livelocked; `None` disables the watchdog. The count
    /// is cumulative per vCPU across the run: in-tree workloads bail
    /// exactly zero times, so any threshold this order of magnitude
    /// separates healthy runs from dead ones cleanly.
    pub livelock_bails: Option<u32>,
    /// Whether to verify the report's conservation and finiteness
    /// invariants before returning it.
    pub check_invariants: bool,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_wall: None,
            livelock_bails: Some(DEFAULT_LIVELOCK_BAILS),
            check_invariants: true,
        }
    }
}

impl RunBudget {
    /// A budget that can never trip: `run_measured_budgeted` with this
    /// is `run_measured` wrapped in `Ok`.
    pub fn unlimited() -> Self {
        RunBudget {
            max_wall: None,
            livelock_bails: None,
            check_invariants: false,
        }
    }

    /// The default sentinels plus a wall-clock deadline.
    pub fn with_max_wall(wall: Duration) -> Self {
        RunBudget {
            max_wall: Some(wall),
            ..RunBudget::default()
        }
    }
}

/// A budgeted run's structured failure cause.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A vCPU accumulated `bails` zero-progress dispatch bails: the
    /// guest demands CPU but consumes none, and the seeded simulation
    /// guarantees it never will.
    Livelock {
        /// The starved vCPU.
        vcpu: VcpuId,
        /// Zero-progress bails charged to it.
        bails: u32,
        /// Simulated time when the watchdog tripped.
        sim_at: SimTime,
    },
    /// The run exceeded its wall-clock deadline. The only
    /// *environmental* failure: it depends on host load, not the seed.
    WallBudgetExceeded {
        /// The configured deadline.
        limit: Duration,
        /// Simulated time reached when the deadline passed.
        sim_at: SimTime,
    },
    /// The finished run's report violates an engine invariant
    /// (accounting conservation, busy-time bound, metric finiteness).
    InvariantViolation {
        /// Human-readable description naming the violated invariant.
        what: String,
    },
}

impl EngineError {
    /// Whether the failure is environmental — caused by the host the
    /// run happened to execute on, not by the (deterministic) run
    /// itself. Environmental failures are worth retrying; deterministic
    /// ones recur on every retry by construction.
    pub fn is_environmental(&self) -> bool {
        matches!(self, EngineError::WallBudgetExceeded { .. })
    }

    /// Short stable tag for tables and journals.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Livelock { .. } => "livelock",
            EngineError::WallBudgetExceeded { .. } => "wall-budget",
            EngineError::InvariantViolation { .. } => "invariant",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Livelock {
                vcpu,
                bails,
                sim_at,
            } => write!(
                f,
                "livelock: {vcpu} made no progress over {bails} dispatch bails \
                 (sim time {sim_at})"
            ),
            EngineError::WallBudgetExceeded { limit, sim_at } => write!(
                f,
                "wall budget exceeded: {limit:?} elapsed with the run at sim time {sim_at}"
            ),
            EngineError::InvariantViolation { what } => {
                write!(f, "invariant violation: {what}")
            }
        }
    }
}

impl Error for EngineError {}

/// Live watchdog state while a budgeted run is in flight.
#[derive(Debug)]
pub(super) struct ArmedBudget {
    cfg: RunBudget,
    started: Instant,
    /// Countdown to the next `Instant::now` read.
    wall_check_in: u32,
    /// Zero-progress bail count per vCPU (indexed by vCPU, grown
    /// lazily). Per-vCPU — not a last-bailer streak — so several hung
    /// vCPUs alternating bails in pCPU order still each accumulate.
    starve_bails: Vec<u32>,
    tripped: Option<EngineError>,
}

impl ArmedBudget {
    fn new(cfg: RunBudget) -> Self {
        ArmedBudget {
            cfg,
            started: Instant::now(),
            // First poll reads the clock: a heavily-coalesced run can
            // finish in fewer than WALL_CHECK_EVERY loop iterations,
            // and a deadline that is never even consulted cannot trip.
            wall_check_in: 1,
            starve_bails: Vec::new(),
            tripped: None,
        }
    }
}

impl Simulation {
    /// Runs the standard measurement protocol under `budget`: the exact
    /// [`Simulation::run_measured`] sequence, except that a tripped
    /// sentinel aborts the run and surfaces as a structured
    /// [`EngineError`]. With [`RunBudget::unlimited`] the two are
    /// behaviourally identical — the watchdogs are passive observers of
    /// state the engine maintains anyway, so arming a budget that never
    /// trips changes no result bit.
    pub fn run_measured_budgeted(
        &mut self,
        warmup_ns: u64,
        measure_ns: u64,
        budget: &RunBudget,
    ) -> Result<RunReport, EngineError> {
        self.budget = Some(ArmedBudget::new(*budget));
        self.run_for(warmup_ns);
        if let Some(err) = self.budget.as_ref().and_then(|b| b.tripped.clone()) {
            self.budget = None;
            return Err(err);
        }
        self.reset_measurements();
        self.run_for(measure_ns);
        let tripped = self.budget.take().and_then(|b| b.tripped);
        if let Some(err) = tripped {
            return Err(err);
        }
        let report = self.report();
        if budget.check_invariants {
            self.check_report_invariants(&report)?;
        }
        Ok(report)
    }

    /// Polled at the top of both run loops: `true` aborts the loop
    /// (leaving `self.now` where the run actually stopped). Reads the
    /// wall clock once every [`WALL_CHECK_EVERY`] polls.
    pub(super) fn budget_stop(&mut self) -> bool {
        let now = self.now;
        let Some(b) = self.budget.as_mut() else {
            return false;
        };
        if b.tripped.is_some() {
            return true;
        }
        if let Some(limit) = b.cfg.max_wall {
            b.wall_check_in = b.wall_check_in.saturating_sub(1);
            if b.wall_check_in == 0 {
                b.wall_check_in = WALL_CHECK_EVERY;
                if b.started.elapsed() >= limit {
                    b.tripped = Some(EngineError::WallBudgetExceeded { limit, sim_at: now });
                    return true;
                }
            }
        }
        false
    }

    /// Notes one zero-progress dispatch bail (see `engine::exec`),
    /// charged to the starved vCPU's cumulative count.
    pub(super) fn note_starve_bail(&mut self, vid: VcpuId) {
        let now = self.now;
        let Some(b) = self.budget.as_mut() else {
            return;
        };
        let Some(limit) = b.cfg.livelock_bails else {
            return;
        };
        if b.tripped.is_some() {
            return;
        }
        if b.starve_bails.len() <= vid.index() {
            b.starve_bails.resize(vid.index() + 1, 0);
        }
        let n = b.starve_bails[vid.index()].saturating_add(1);
        b.starve_bails[vid.index()] = n;
        if n >= limit {
            b.tripped = Some(EngineError::Livelock {
                vcpu: vid,
                bails: n,
                sim_at: now,
            });
        }
    }

    /// The post-run report checks: conservation of CPU accounting
    /// (every vCPU nanosecond lands on exactly one pCPU), the per-pCPU
    /// busy-time bound, and finiteness of every f64 metric.
    fn check_report_invariants(&self, r: &RunReport) -> Result<(), EngineError> {
        let violation = |what: String| Err(EngineError::InvariantViolation { what });
        let vcpu_total: u64 = r
            .vms
            .iter()
            .map(|vm| vm.vcpu_cpu_ns.iter().sum::<u64>())
            .sum();
        let pcpu_total: u64 = r.pcpu_busy_ns.iter().sum();
        if vcpu_total != pcpu_total {
            return violation(format!(
                "accounting drift: vCPU cpu_ns sums to {vcpu_total} but pCPU busy_ns \
                 sums to {pcpu_total}"
            ));
        }
        for (pi, &busy) in r.pcpu_busy_ns.iter().enumerate() {
            if busy > r.sim_ns {
                return violation(format!(
                    "pCPU {pi} busy for {busy} ns of a {} ns measured window",
                    r.sim_ns
                ));
            }
        }
        for vm in &r.vms {
            match &vm.metrics {
                WorkloadMetrics::Io { latency, .. } => {
                    if !latency.is_finite() {
                        return violation(format!(
                            "vm '{}' latency summary corrupted ({} NaN samples; \
                             mean {} ns)",
                            vm.name, latency.nan_samples, latency.mean_ns
                        ));
                    }
                }
                WorkloadMetrics::Spin {
                    lock_hold_mean_ns,
                    lock_hold_max_ns,
                    lock_wait_mean_ns,
                    ..
                } => {
                    if !lock_hold_mean_ns.is_finite()
                        || !lock_hold_max_ns.is_finite()
                        || !lock_wait_mean_ns.is_finite()
                    {
                        return violation(format!("vm '{}' spin metrics are non-finite", vm.name));
                    }
                }
                WorkloadMetrics::Mem { instructions } => {
                    if !instructions.is_finite() {
                        return violation(format!(
                            "vm '{}' instruction count is non-finite",
                            vm.name
                        ));
                    }
                }
                WorkloadMetrics::None => {}
            }
        }
        Ok(())
    }
}
