//! The bounded sub-step execution loop.
//!
//! Between events, every pCPU is advanced by at most `substep_ns` of
//! wall time; within a sub-step a pCPU may run several vCPUs back to
//! back as slices expire, workloads block or yield. This loop is the
//! engine's hot path: it performs no heap allocation in steady state.
//!
//! The adaptive time-advance (`engine::horizon`) re-enters this loop
//! mid-chunk through [`Simulation::advance_pcpu_from`] when a workload
//! deviates from its promised horizon, so both time modes share one
//! implementation of quantum enforcement and stop-reason handling.

use aql_sim::time::SimTime;

use super::Simulation;
use crate::ids::{PcpuId, VcpuId};
use crate::workload::{ExecContext, StopReason};

impl Simulation {
    /// Advances every pCPU by `dt` nanoseconds of wall time.
    pub(super) fn advance_all(&mut self, dt: u64) {
        for pi in 0..self.hv.pcpus.len() {
            self.advance_pcpu(pi, dt);
        }
    }

    /// Advances one pCPU by `dt`, running (possibly several) vCPUs and
    /// enforcing quantum boundaries at nanosecond precision.
    fn advance_pcpu(&mut self, pcpu: usize, dt: u64) {
        self.advance_pcpu_from(pcpu, 0, dt, 0);
    }

    /// Advances one pCPU across `off..dt`, with `spins` zero-progress
    /// dispatches already observed. `advance_pcpu` enters at
    /// `(off = 0, spins = 0)`; the adaptive fast path re-enters here to
    /// finish a sub-step after a workload returned early.
    pub(super) fn advance_pcpu_from(&mut self, pcpu: usize, mut off: u64, dt: u64, spins: u32) {
        // Defensive bound: a pCPU cannot context-switch more often than
        // once per zero-progress dispatch more than a few times.
        let mut spins_without_progress = spins;
        while off < dt {
            let Some(vid) = self.hv.pcpus[pcpu].running else {
                if !self.try_dispatch(pcpu, self.now + off) {
                    return; // Idle for the rest of the step.
                }
                continue;
            };
            let t0 = self.now + off;
            let slice_left = self.hv.vcpus[vid.index()].slice_end.saturating_since(t0);
            if slice_left == 0 {
                self.preempt(pcpu, vid, true);
                continue;
            }
            let budget = (dt - off).min(slice_left);
            let used = self.run_workload(pcpu, vid, budget, t0);
            off += used.used_ns;
            if used.used_ns == 0 {
                spins_without_progress += 1;
                if spins_without_progress > 8 {
                    // Degenerate workload; stay idle this step — but
                    // say so, or the starvation is undiagnosable.
                    self.trace.emit(t0, || {
                        format!(
                            "{} starved: {} made no progress over {spins_without_progress} \
                             dispatches, idling for the rest of the step",
                            PcpuId(pcpu),
                            vid
                        )
                    });
                    // An armed run budget counts the streak: enough
                    // consecutive bails by one vCPU promote this trace
                    // line to a structured livelock sentinel.
                    self.note_starve_bail(vid);
                    return;
                }
            } else {
                spins_without_progress = 0;
            }
            match used.stop {
                StopReason::BudgetExhausted => {
                    // Quantum boundary handled at the top of the loop.
                }
                StopReason::Blocked => {
                    self.block(pcpu, vid);
                }
                StopReason::Yielded => {
                    self.yield_requeue(pcpu, vid);
                }
            }
        }
    }

    /// Runs `vid`'s workload for `budget` ns and accounts the usage.
    fn run_workload(
        &mut self,
        pcpu: usize,
        vid: VcpuId,
        budget: u64,
        t0: SimTime,
    ) -> crate::workload::RunOutcome {
        let (vm, slot, socket) = {
            let v = &self.hv.vcpus[vid.index()];
            let socket = self.hv.machine.socket_of(PcpuId(pcpu)).index();
            (v.vm.index(), v.slot, socket)
        };
        let out = self.run_chunk(vid, vm, slot, socket, budget, t0, false);
        let v = &mut self.hv.vcpus[vid.index()];
        v.cpu_ns += out.used_ns;
        v.unbilled_ns += out.used_ns;
        v.pmu.add_ran_ns(out.used_ns);
        self.hv.pcpus[pcpu].busy_ns += out.used_ns;
        out
    }

    /// The execution chunk shared by both time modes: hands the slot
    /// `budget` ns through an [`ExecContext`] and clamps the reported
    /// usage. CPU-time accounting is left to the caller (the dense
    /// path accounts per chunk, the fast path per span — u64 sums, so
    /// the split cannot change any result).
    ///
    /// `coalesced` marks a whole-span chunk issued under the
    /// [`CoalesceHint`](crate::workload::CoalesceHint) contract: only
    /// those route `exec_mem` through the steady-rate cache (the probe
    /// just verified and memoized the rate, so every lookup hits).
    /// Grid-sized chunks keep the plain lean integrator — under
    /// contention the memo key churns every chunk, so probing it there
    /// would be pure overhead.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn run_chunk(
        &mut self,
        vid: VcpuId,
        vm: usize,
        slot: usize,
        socket: usize,
        budget: u64,
        t0: SimTime,
        coalesced: bool,
    ) -> crate::workload::RunOutcome {
        let super::Hypervisor {
            vcpus,
            llcs,
            machine,
            ..
        } = &mut self.hv;
        let v = &mut vcpus[vid.index()];
        let lean = self.time_mode == super::TimeMode::Adaptive;
        let mut ctx = ExecContext {
            now: t0,
            spec: &machine.cache,
            llc: &mut llcs[socket],
            pmu: &mut v.pmu,
            l2_warmth: &mut v.l2_warmth,
            rng: &mut self.rng,
            owner: vid.index(),
            running_slots: &self.vm_running[vm],
            lean,
            rate_cache: (lean && coalesced).then(|| &mut self.rate_caches[socket]),
        };
        let mut out = self.workloads[vm].run(slot, budget, &mut ctx);
        debug_assert!(
            out.used_ns <= budget,
            "workload '{}' overran its budget",
            self.workloads[vm].name()
        );
        out.used_ns = out.used_ns.min(budget);
        out
    }
}
