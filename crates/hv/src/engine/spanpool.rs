//! A persistent thread pool for parallel span execution.
//!
//! The pool exists for exactly one call shape: `engine::horizon` has
//! split a coalesced span into independent per-socket closures and
//! wants them run concurrently, blocking until all of them finish.
//! Workers are spawned once at simulation build time and parked on a
//! condvar between spans, so the per-span cost is two mutex round
//! trips per lane — not a thread spawn.
//!
//! # Why not `std::thread::scope`
//!
//! A simulation executes millions of spans; scoped threads would spawn
//! and join OS threads on every one of them. The experiments layer
//! already demonstrates the scoped pattern for coarse-grained work
//! (one thread per *scenario*); spans are about six orders of
//! magnitude finer.
//!
//! # Safety argument
//!
//! [`SpanPool::run`] accepts closures borrowing the caller's stack
//! (`'a`, not `'static`) and erases the lifetime to hand them to the
//! workers. This is the classic scoped-pool argument: `run` does not
//! return until every job has finished executing and the shared job
//! list has been cleared, so no worker can observe a job pointer after
//! the borrows it captures expire. Worker panics are caught, carried
//! back, and re-raised on the calling thread from `run` itself.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased, lifetime-erased job pointer. Only ever dereferenced
/// between publication and completion of one [`SpanPool::run`] call,
/// while the pointee is alive and exclusively ours (each job is
/// claimed by exactly one lane via the shared cursor).
struct JobPtr(*mut (dyn FnMut() + Send));

// SAFETY: the pointee is `Send` (bound enforced at the only
// construction site, in `run`) and exclusively claimed by one worker.
unsafe impl Send for JobPtr {}

/// Shared pool state behind the mutex.
#[derive(Default)]
struct State {
    /// Jobs of the span in flight; cleared before `run` returns.
    jobs: Vec<JobPtr>,
    /// Next unclaimed job index (lanes race on this under the lock).
    next: usize,
    /// Jobs published but not yet finished.
    remaining: usize,
    /// Tells workers to exit (set once, by `Drop`).
    shutdown: bool,
    /// First worker panic of the span, re-raised by `run`.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// A persistent pool of span workers (see the module docs).
///
/// The calling thread participates as a lane itself, so a pool built
/// with `SpanPool::new(n)` executes jobs on `n + 1` lanes.
pub(super) struct SpanPool {
    shared: &'static Shared,
    workers: Vec<JoinHandle<()>>,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new jobs published, or shutdown.
    work: Condvar,
    /// Signals the caller: `remaining` reached zero.
    done: Condvar,
}

impl std::fmt::Debug for SpanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl SpanPool {
    /// Spawns `workers` parked worker threads (the calling thread is
    /// the `workers + 1`-th lane).
    pub(super) fn new(workers: usize) -> Self {
        debug_assert!(workers > 0, "a zero-worker pool is just the caller");
        // The shared block must outlive the workers; they are joined in
        // `Drop`, after which the leak is the only remainder. One
        // allocation per simulation, freed with the process — the same
        // trade `Box::leak`-based pools make to avoid `Arc` traffic on
        // the span hot path.
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }));
        let spawn = |i: usize| {
            std::thread::Builder::new()
                .name(format!("span-worker-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn span worker")
        };
        SpanPool {
            shared,
            workers: (0..workers).map(spawn).collect(),
        }
    }

    /// Runs every closure in `jobs` to completion across the pool's
    /// lanes (including the calling thread) and returns once all have
    /// finished. Re-raises the first worker panic, if any.
    pub(super) fn run<'a>(&self, jobs: &mut [&mut (dyn FnMut() + Send + 'a)]) {
        if jobs.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.jobs.is_empty() && st.remaining == 0);
            st.jobs.clear();
            for job in jobs.iter_mut() {
                let ptr: *mut (dyn FnMut() + Send + 'a) = *job;
                // SAFETY: lifetime erasure, sound because this function
                // does not return until `remaining == 0` and the job
                // list is cleared (see the module docs).
                let ptr: *mut (dyn FnMut() + Send) = unsafe { std::mem::transmute(ptr) };
                st.jobs.push(JobPtr(ptr));
            }
            st.next = 0;
            st.remaining = st.jobs.len();
            drop(st);
            self.shared.work.notify_all();
        }
        // The calling thread is a lane: drain the cursor alongside the
        // workers instead of blocking immediately.
        drain(self.shared);
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.jobs.clear();
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

impl Drop for SpanPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and runs jobs until the cursor is exhausted. Shared by the
/// workers and the calling thread.
fn drain(shared: &Shared) {
    loop {
        let ptr = {
            let mut st = shared.state.lock().unwrap();
            if st.next >= st.jobs.len() {
                return;
            }
            let ptr = st.jobs[st.next].0;
            st.next += 1;
            ptr
        };
        // SAFETY: exclusively claimed via the cursor; alive until
        // `run` observes `remaining == 0` (which this job still counts
        // towards).
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*ptr)() }));
        let mut st = shared.state.lock().unwrap();
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    loop {
        {
            let mut st = shared.state.lock().unwrap();
            while !st.shutdown && st.next >= st.jobs.len() {
                st = shared.work.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
        }
        drain(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_and_supports_reuse() {
        let pool = SpanPool::new(2);
        for round in 1..=3usize {
            let counter = AtomicUsize::new(0);
            let mut jobs: Vec<Box<dyn FnMut() + Send>> = (0..8)
                .map(|i| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(i + round, Ordering::Relaxed);
                    }) as Box<dyn FnMut() + Send>
                })
                .collect();
            let mut refs: Vec<&mut (dyn FnMut() + Send)> =
                jobs.iter_mut().map(|b| &mut **b).collect();
            pool.run(&mut refs);
            assert_eq!(counter.load(Ordering::Relaxed), 28 + 8 * round);
        }
    }

    #[test]
    fn borrows_caller_stack_mutably() {
        let pool = SpanPool::new(1);
        let mut a = 0u64;
        let mut b = 0u64;
        let mut job_a: Box<dyn FnMut() + Send> = Box::new(|| a += 41);
        let mut job_b: Box<dyn FnMut() + Send> = Box::new(|| b += 1);
        let mut refs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut *job_a, &mut *job_b];
        pool.run(&mut refs);
        drop(job_a);
        drop(job_b);
        assert_eq!((a, b), (41, 1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = SpanPool::new(1);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut boom: Box<dyn FnMut() + Send> = Box::new(|| panic!("span job failed"));
            let mut ok: Box<dyn FnMut() + Send> = Box::new(|| {});
            let mut refs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut *boom, &mut *ok];
            pool.run(&mut refs);
        }));
        assert!(result.is_err(), "the job panic must reach the caller");
        // The pool must stay usable after a panic round.
        let mut ran = false;
        let mut job: Box<dyn FnMut() + Send> = Box::new(|| ran = true);
        let mut refs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut *job];
        pool.run(&mut refs);
        drop(job);
        assert!(ran);
    }
}
