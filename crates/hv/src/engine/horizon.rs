//! The adaptive time-advance core (`TimeMode::Adaptive`).
//!
//! Between events the dense loop visits every sub-step grid point and
//! re-derives the full scheduler state — event-queue peeks, pending
//! preemptions, kick deadlines, idle-pCPU dispatch and steal scans —
//! even across long spans where provably none of it can matter. This
//! module plans those spans explicitly and leaps over the dead work.
//!
//! # The quiescent-span argument
//!
//! After the event drain and [`Simulation::resched_all`] have run at
//! the current instant, nothing scheduler-visible can happen strictly
//! before
//!
//! ```text
//! span_end = min( next queued event,
//!                 running vCPUs' slice_end,
//!                 queued kick deadlines (vSlicer differentiated frequency),
//!                 running workloads' horizons )
//! ```
//!
//! because every state change the dense loop can perform between grid
//! points originates from one of those four sources: events are the
//! only wake/parking/accounting triggers; a dispatch needs an expired
//! slice, a kick, or a workload that blocked or yielded; and the
//! workload [`Horizon`] contract promises no block/yield before its
//! instant. Idle pCPUs cannot acquire work inside the span — nothing
//! enqueues — so skipping them is exact.
//!
//! # The conformance contract against the dense oracle
//!
//! On the *grid path* the fast-forward loop advances the same sub-step
//! grid the dense loop would walk and hands every running workload the
//! same sequence of execution chunks (`run` calls with the same
//! budgets at the same instants, in the same pCPU order), so
//! floating-point state follows the exact same trajectory. CPU-time
//! accounting is batched per span, but those accumulators are `u64`s:
//! integer addition is associative, so batching cannot change a single
//! bit. The lean cache plumbing ([`aql_mem::exec_step_lean`]) is
//! bit-identical to the dense one by construction and by property
//! test.
//!
//! **Chunk coalescing** deliberately relaxes bitwise equality to a
//! quantified tolerance. When every running slot signs the linear
//! contract ([`CoalesceHint`]) — pure-rate execution at the snapped
//! memory fixpoint ([`aql_mem::steady_rate`]), no scheduler-visible
//! act, no shared-state mutation, no shared-RNG draw — the engine
//! issues one `run` call per slot for the remaining span instead of
//! one per grid point. Everything discrete stays exact: `u64` CPU
//! accounting, event and timer delivery, dispatch order, PLE counts,
//! latency stamps. What moves are the low-order bits of f64
//! *accumulators* (workload metric sums, PMU counters, saturating
//! freshness touches): one whole-span sum instead of per-grid-point
//! sums, plus the snapped sub-epsilon cache traffic the fixpoint
//! omits. The conformance suite (`tests/coalesce_conformance.rs`)
//! bounds the drift at 1e-6 relative per VM metric against the dense
//! oracle, and the committed rendered goldens must stay byte-identical
//! — the rounding in every rendered artifact absorbs the drift.
//!
//! A workload that breaks its horizon promise (returns early, blocks,
//! yields) is detected on the spot: the engine finishes that sub-step
//! through the dense [`Simulation::advance_pcpu_from`] continuation —
//! the exact code the dense loop would have run — and abandons the
//! span, so even a lying horizon cannot cause divergence, only lost
//! speed. A broken *coalesce* contract (impossible for the in-tree
//! workloads, asserted in debug builds) is likewise completed through
//! the dense continuation at span scale.

use aql_sim::time::{whole_steps, SimTime};

use super::{Simulation, TimeMode};
use crate::ids::PcpuId;
use crate::vm::VcpuState;
use crate::workload::{CoalesceHint, CoalesceProbe, Horizon, StopReason};

/// Smallest quiescent span (in sub-steps) worth fast-forwarding.
/// Below this, planning a span (slot hoisting, accounting flush) costs
/// more than the skipped scheduler work, so the engine just takes
/// generic dense sub-steps — which mode is chosen per sub-step is
/// invisible in the results, so this is purely a tuning knob.
const MIN_FAST_STEPS: u64 = 3;

/// Per-busy-pCPU execution state hoisted once per quiescent span, so
/// the per-sub-step fast path re-derives nothing.
#[derive(Debug, Clone, Copy)]
pub(super) struct FastSlot {
    pcpu: usize,
    vid: crate::ids::VcpuId,
    vm: usize,
    slot: usize,
    socket: usize,
    /// CPU time accumulated by this slot during the span (flushed into
    /// the u64 accounting fields at span exit).
    acc_ns: u64,
}

impl Simulation {
    /// The adaptive run loop. Event handling, rescheduling and the
    /// generic sub-step are shared with the dense loop; the only
    /// addition is the quiescent-span fast-forward between them.
    pub(super) fn run_until_adaptive(&mut self, end: SimTime) {
        debug_assert_eq!(self.time_mode, TimeMode::Adaptive);
        // A previous call's failed plan may have been bounded by that
        // call's `end`; this call can see further.
        self.scratch.failed_plan_gen = None;
        while self.now < end {
            // 1. Process all events due now (identical to dense).
            while self
                .queue
                .peek_time()
                .is_some_and(|t| t <= self.now && t <= end)
            {
                let (t, ev) = self.queue.pop().expect("peeked");
                debug_assert!(t <= self.now);
                self.handle_event(ev);
            }
            // 2. Repair scheduling decisions (identical to dense).
            self.resched_all();
            // 3. Plan the advance.
            let t_next = self.queue.peek_time().map_or(end, |t| t.min(end));
            if t_next <= self.now {
                if self.queue.peek_time().is_some_and(|t| t <= self.now) {
                    continue;
                }
                break;
            }
            if !self.hv.pcpus.iter().any(|p| p.running.is_some()) {
                // Machine fully idle: leap to the next event, exactly
                // as the dense loop does.
                self.now = t_next;
                continue;
            }
            // A plan that failed can only start succeeding after the
            // scheduling state moves: slices end, kick deadlines pass
            // and IO queues drain all *via* a dispatch/block/preempt or
            // an event, each of which bumps `sched_gen`. So a failed
            // plan is memoized against the generation instead of being
            // recomputed every sub-step of a short-quantum regime.
            if self.scratch.failed_plan_gen != Some(self.sched_gen) {
                let span_end = self.quiescent_until(t_next);
                if whole_steps(self.now, span_end, self.substep_ns) >= MIN_FAST_STEPS {
                    self.fast_forward(span_end);
                    // Re-derive everything at the new grid point: the
                    // dense loop performs the same event drain and
                    // resched there (both provably no-ops unless the
                    // span aborted).
                    continue;
                }
                self.scratch.failed_plan_gen = Some(self.sched_gen);
            }
            // 4. Not quiescent for long enough: one generic sub-step.
            // `advance_all_adaptive` advances the same state the dense
            // `advance_all` would — it only skips idle pCPUs whose
            // dispatch attempt provably fails.
            let span = t_next - self.now;
            let dt = span.min(self.substep_ns);
            self.advance_all_adaptive(dt);
            self.now += dt;
        }
        self.now = end;
    }

    /// The earliest instant anything scheduler-visible can happen, at
    /// most `t_next` (the next queued event). Called immediately after
    /// the event drain and `resched_all`, which is what makes the
    /// bound sound — see the module docs.
    ///
    /// Bails to `self.now` ("not worth it") as soon as the bound drops
    /// below [`MIN_FAST_STEPS`] sub-steps, so short-quantum regimes
    /// (microsliced slices, dense vSlicer kick deadlines) pay a scan of
    /// at most a few pCPUs per sub-step, not a full machine scan.
    fn quiescent_until(&self, t_next: SimTime) -> SimTime {
        let floor = self.now + MIN_FAST_STEPS * self.substep_ns;
        if t_next < floor {
            return self.now;
        }
        let mut span_end = t_next;
        for pi in 0..self.hv.pcpus.len() {
            let Some(rv) = self.hv.pcpus[pi].running else {
                continue;
            };
            let v = &self.hv.vcpus[rv.index()];
            // Slice expiry is a dispatch point.
            span_end = span_end.min(v.slice_end);
            if span_end < floor {
                return self.now;
            }
            // The workload's own promise.
            match self.workloads[v.vm.index()].horizon(v.slot, self.now) {
                Horizon::Unknown => return self.now,
                Horizon::At(t) => span_end = span_end.min(t),
                Horizon::Never => {}
            }
            if span_end < floor {
                return self.now;
            }
            // vSlicer differentiated frequency: a queued vCPU whose
            // kick period elapses preempts a kickless runner.
            if v.kick_period_ns.is_none() {
                for w in self.hv.pcpus[pi].queue.iter() {
                    let wc = &self.hv.vcpus[w.index()];
                    if let Some(p) = wc.kick_period_ns {
                        span_end = span_end.min(wc.last_desched + p);
                    }
                }
                if span_end < floor {
                    return self.now;
                }
            }
        }
        span_end
    }

    /// Fast-forwards whole sub-steps across a proven-quiescent span:
    /// per grid point, one execution chunk per busy pCPU (in pCPU
    /// order, exactly like `advance_all`) and nothing else. Exits at
    /// the last grid point before `span_end`, or at the first sub-step
    /// where a workload deviated from its horizon promise (that
    /// sub-step is completed densely before returning).
    fn fast_forward(&mut self, span_end: SimTime) {
        let dt = self.substep_ns;
        let mut slots = std::mem::take(&mut self.scratch.fast_slots);
        slots.clear();
        for pi in 0..self.hv.pcpus.len() {
            if let Some(vid) = self.hv.pcpus[pi].running {
                let v = &self.hv.vcpus[vid.index()];
                debug_assert_eq!(v.state, VcpuState::Running);
                slots.push(FastSlot {
                    pcpu: pi,
                    vid,
                    vm: v.vm.index(),
                    slot: v.slot,
                    socket: self.hv.machine.socket_of(PcpuId(pi)).index(),
                    acc_ns: 0,
                });
            }
        }
        let mut steps = whole_steps(self.now, span_end, dt);
        debug_assert!(steps > 0, "caller checked the span fits a sub-step");
        // Chunk-coalescing probe cadence. A failed probe (some slot not
        // linear yet — typically rewarming its private L2 after a
        // dispatch) is retried with exponential backoff instead of
        // never: warm-up completes *inside* long spans, and the probe
        // then coalesces the warm tail. The backoff saturates at 64
        // steps, so a span that never turns linear pays O(log steps)
        // probes up front and then at most one per 64 grid steps
        // (~1.5 % overhead) — the cap bounds how much of a late warm
        // tail can be missed, which matters more than shaving the last
        // probes off hopeless spans.
        let mut probe_in: u64 = 0;
        let mut probe_backoff: u64 = 1;
        'span: while steps > 0 {
            // Chunk coalescing: when every running slot signs the
            // linear contract (pure-rate execution at the memory
            // fixpoint, no scheduler-visible act, no shared state), the
            // dense chunk grid is redundant — one `run_chunk` per slot
            // covers the rest of the span. Results differ from the
            // dense sequence only in the f64 summation order of
            // accumulated metrics; every u64 account and every event is
            // exact (the tolerance conformance suite and the rendered
            // goldens pin this).
            if self.coalesce && steps >= 2 && probe_in == 0 {
                if let Some(k) = self.coalescible_steps(&slots, steps, dt) {
                    let budget = k * dt;
                    for i in 0..slots.len() {
                        let s = slots[i];
                        let out =
                            self.run_chunk(s.vid, s.vm, s.slot, s.socket, budget, self.now, true);
                        if out.used_ns == budget && out.stop == StopReason::BudgetExhausted {
                            slots[i].acc_ns += budget;
                            continue;
                        }
                        // A linear hint lied. This cannot happen for the
                        // in-tree workloads (debug builds assert);
                        // recover by finishing the span window densely
                        // from the deviation, exactly like a broken
                        // horizon promise.
                        debug_assert!(
                            false,
                            "coalesce contract broken by vm {} slot {}",
                            s.vm, s.slot
                        );
                        slots[i].acc_ns += out.used_ns;
                        self.flush_fast_accounting(&mut slots);
                        match out.stop {
                            StopReason::BudgetExhausted => {}
                            StopReason::Blocked => self.block(s.pcpu, s.vid),
                            StopReason::Yielded => self.yield_requeue(s.pcpu, s.vid),
                        }
                        let spins = u32::from(out.used_ns == 0);
                        self.advance_pcpu_from(s.pcpu, out.used_ns, budget, spins);
                        for pj in (s.pcpu + 1)..self.hv.pcpus.len() {
                            self.advance_pcpu_from(pj, 0, budget, 0);
                        }
                        self.now += budget;
                        slots.clear();
                        break 'span;
                    }
                    self.now += budget;
                    steps -= k;
                    // A slot's linear window may have capped `k` (phase
                    // boundary): the tail re-probes immediately and
                    // otherwise resumes on the per-step grid.
                    continue 'span;
                    // (A broken contract above breaks out of 'span via
                    // the shared epilogue, like the grid-path recovery.)
                }
                probe_in = probe_backoff;
                probe_backoff = (probe_backoff * 2).min(64);
            }
            probe_in = probe_in.saturating_sub(1);
            for i in 0..slots.len() {
                let s = slots[i];
                // The span proof guarantees the slice outlives this
                // sub-step; the budget is always the full grid step.
                debug_assert!(
                    self.hv.vcpus[s.vid.index()]
                        .slice_end
                        .saturating_since(self.now)
                        >= dt
                );
                let out = self.run_chunk(s.vid, s.vm, s.slot, s.socket, dt, self.now, false);
                if out.used_ns == dt && out.stop == StopReason::BudgetExhausted {
                    slots[i].acc_ns += dt;
                    continue;
                }
                // Horizon promise broken: flush the span accounting,
                // replay the dense stop-reason handling for this chunk
                // and finish the sub-step densely for this pCPU and
                // every later one — byte-for-byte what the dense loop
                // would have done from here.
                slots[i].acc_ns += out.used_ns;
                self.flush_fast_accounting(&mut slots);
                match out.stop {
                    StopReason::BudgetExhausted => {}
                    StopReason::Blocked => self.block(s.pcpu, s.vid),
                    StopReason::Yielded => self.yield_requeue(s.pcpu, s.vid),
                }
                let spins = u32::from(out.used_ns == 0);
                self.advance_pcpu_from(s.pcpu, out.used_ns, dt, spins);
                for pj in (s.pcpu + 1)..self.hv.pcpus.len() {
                    self.advance_pcpu_from(pj, 0, dt, 0);
                }
                self.now += dt;
                slots.clear();
                break 'span;
            }
            self.now += dt;
            steps -= 1;
        }
        self.flush_fast_accounting(&mut slots);
        self.scratch.fast_slots = slots;
    }

    /// The adaptive twin of [`Simulation::advance_all`]: advances every
    /// pCPU whose sub-step can matter and skips idle pCPUs whose
    /// dispatch attempt provably fails — an empty local queue and no
    /// stealable work anywhere in their pool. The skip is exact: a
    /// failed `try_dispatch` performs no state change, and the
    /// precomputed pool flags are trusted only while `sched_gen` stands
    /// still (any block/yield/preempt/dispatch inside this sub-step
    /// bumps it, and the remaining pCPUs then take the full path).
    /// The dense loop keeps the exhaustive scan — it is the oracle.
    fn advance_all_adaptive(&mut self, dt: u64) {
        let gen0 = self.sched_gen;
        let mut flags = std::mem::take(&mut self.scratch.pool_stealable);
        // The flags are a pure function of queue contents, which only
        // change when `sched_gen` moves — consecutive quiet sub-steps
        // reuse them.
        if self.scratch.pool_stealable_gen != Some(gen0) {
            flags.clear();
            flags.resize(self.hv.pools.len(), false);
            let crate::engine::Hypervisor {
                vcpus,
                pcpus,
                pinned_vcpus,
                ..
            } = &self.hv;
            let has_pins = *pinned_vcpus > 0;
            for p in pcpus {
                let n = if has_pins {
                    p.queue
                        .stealable_len_where(|v| vcpus[v.index()].pinned.is_none())
                } else {
                    p.queue.stealable_len()
                };
                if n > 0 {
                    flags[p.pool.index()] = true;
                }
            }
            self.scratch.pool_stealable_gen = Some(gen0);
        }
        for pi in 0..self.hv.pcpus.len() {
            let p = &self.hv.pcpus[pi];
            if self.sched_gen == gen0
                && p.running.is_none()
                && p.queue.is_empty()
                && !flags[p.pool.index()]
            {
                continue;
            }
            self.advance_pcpu_from(pi, 0, dt, 0);
        }
        self.scratch.pool_stealable = flags;
    }

    /// How many of the span's `steps` grid steps may be coalesced into
    /// a single execution chunk per slot: `None` unless **every**
    /// running slot signs the linear contract ([`CoalesceHint`]) for at
    /// least two whole steps, else the largest whole-step count every
    /// slot's linear window covers.
    fn coalescible_steps(&mut self, slots: &[FastSlot], steps: u64, dt: u64) -> Option<u64> {
        let mut k = steps;
        for s in slots {
            let mut probe = CoalesceProbe {
                spec: &self.hv.machine.cache,
                llc: &self.hv.llcs[s.socket],
                l2_warmth: self.hv.vcpus[s.vid.index()].l2_warmth,
                owner: s.vid.index(),
                running_slots: &self.vm_running[s.vm],
                rate_cache: &mut self.rate_cache,
            };
            match self.workloads[s.vm].coalesce(s.slot, &mut probe) {
                CoalesceHint::No => return None,
                CoalesceHint::LinearFor(cpu_ns) => {
                    k = k.min(cpu_ns / dt);
                    if k < 2 {
                        return None;
                    }
                }
            }
        }
        Some(k)
    }

    /// Credits each slot's span-accumulated CPU time to the vCPU and
    /// pCPU accounting fields, consuming the accumulators. All of them
    /// are `u64`s, so crediting per span instead of per chunk is exact.
    fn flush_fast_accounting(&mut self, slots: &mut [FastSlot]) {
        for s in slots {
            if s.acc_ns == 0 {
                continue;
            }
            let v = &mut self.hv.vcpus[s.vid.index()];
            v.cpu_ns += s.acc_ns;
            v.unbilled_ns += s.acc_ns;
            v.pmu.add_ran_ns(s.acc_ns);
            self.hv.pcpus[s.pcpu].busy_ns += s.acc_ns;
            s.acc_ns = 0;
        }
    }
}
