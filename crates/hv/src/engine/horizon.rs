//! The adaptive time-advance core (`TimeMode::Adaptive`).
//!
//! Between events the dense loop visits every sub-step grid point and
//! re-derives the full scheduler state — event-queue peeks, pending
//! preemptions, kick deadlines, idle-pCPU dispatch and steal scans —
//! even across long spans where provably none of it can matter. This
//! module plans those spans explicitly and leaps over the dead work.
//!
//! # The quiescent-span argument
//!
//! After the event drain and [`Simulation::resched_all`] have run at
//! the current instant, nothing scheduler-visible can happen strictly
//! before
//!
//! ```text
//! span_end = min( next queued event,
//!                 running vCPUs' slice_end,
//!                 queued kick deadlines (vSlicer differentiated frequency),
//!                 running workloads' horizons )
//! ```
//!
//! because every state change the dense loop can perform between grid
//! points originates from one of those four sources: events are the
//! only wake/parking/accounting triggers; a dispatch needs an expired
//! slice, a kick, or a workload that blocked or yielded; and the
//! workload [`Horizon`] contract promises no block/yield before its
//! instant. Idle pCPUs cannot acquire work inside the span — nothing
//! enqueues — so skipping them is exact.
//!
//! # The conformance contract against the dense oracle
//!
//! On the *grid path* the fast-forward loop advances the same sub-step
//! grid the dense loop would walk and hands every running workload the
//! same sequence of execution chunks (`run` calls with the same
//! budgets at the same instants, in the same pCPU order), so
//! floating-point state follows the exact same trajectory. CPU-time
//! accounting is batched per span, but those accumulators are `u64`s:
//! integer addition is associative, so batching cannot change a single
//! bit. The lean cache plumbing ([`aql_mem::exec_step_lean`]) is
//! bit-identical to the dense one by construction and by property
//! test.
//!
//! **Chunk coalescing** deliberately relaxes bitwise equality to a
//! quantified tolerance. When every running slot signs the linear
//! contract ([`CoalesceHint`]) — pure-rate execution at the snapped
//! memory fixpoint ([`aql_mem::steady_rate`]), no scheduler-visible
//! act, no shared-state mutation, no shared-RNG draw — the engine
//! issues one `run` call per slot for the remaining span instead of
//! one per grid point. Everything discrete stays exact: `u64` CPU
//! accounting, event and timer delivery, dispatch order, PLE counts,
//! latency stamps. What moves are the low-order bits of f64
//! *accumulators* (workload metric sums, PMU counters, saturating
//! freshness touches): one whole-span sum instead of per-grid-point
//! sums, plus the snapped sub-epsilon cache traffic the fixpoint
//! omits. The conformance suite (`tests/coalesce_conformance.rs`)
//! bounds the drift at 1e-6 relative per VM metric against the dense
//! oracle, and the committed rendered goldens must stay byte-identical
//! — the rounding in every rendered artifact absorbs the drift.
//!
//! A workload that breaks its horizon promise (returns early, blocks,
//! yields) is detected on the spot: the engine finishes that sub-step
//! through the dense [`Simulation::advance_pcpu_from`] continuation —
//! the exact code the dense loop would have run — and abandons the
//! span, so even a lying horizon cannot cause divergence, only lost
//! speed. A broken *coalesce* contract — unreachable for the in-tree
//! workloads, reachable on purpose through fault injection — is
//! counted ([`Simulation::coalesce_break_count`]), traced, and
//! likewise completed through the dense continuation at span scale.

use aql_mem::{CacheSpec, LlcState, RateCache};
use aql_sim::rng::SimRng;
use aql_sim::time::{whole_steps, SimTime};

use super::{Simulation, TimeMode};
use crate::ids::PcpuId;
use crate::vm::{Vcpu, VcpuState};
use crate::workload::{
    CoalesceHint, CoalesceProbe, ExecContext, GuestWorkload, Horizon, RunOutcome, StopReason,
};

/// Smallest quiescent span (in sub-steps) worth fast-forwarding.
/// Below this, planning a span (slot hoisting, accounting flush) costs
/// more than the skipped scheduler work, so the engine just takes
/// generic dense sub-steps — which mode is chosen per sub-step is
/// invisible in the results, so this is purely a tuning knob.
const MIN_FAST_STEPS: u64 = 3;

/// Per-busy-pCPU execution state hoisted once per quiescent span, so
/// the per-sub-step fast path re-derives nothing.
#[derive(Debug, Clone, Copy)]
pub(super) struct FastSlot {
    pcpu: usize,
    vid: crate::ids::VcpuId,
    vm: usize,
    slot: usize,
    socket: usize,
    /// CPU time accumulated by this slot during the span (flushed into
    /// the u64 accounting fields at span exit).
    acc_ns: u64,
}

/// Seed base for the per-socket scratch RNGs of a parallel span. The
/// coalesce contract forbids shared-RNG draws, so the scratch streams
/// are never consumed — they exist only to satisfy [`ExecContext`],
/// and their (deterministic) seeding is immaterial to any result. The
/// serial-vs-parallel conformance suite would catch a workload that
/// drew from one.
const SPAN_RNG_SEED: u64 = 0x005e_a50c_4e7a_11e1;

/// How a coalesced span's execution was carried out.
enum SpanExec {
    /// The span is ineligible for the pool (no pool, one socket busy,
    /// or a VM's running slots straddle sockets); the caller runs the
    /// serial loop, byte-for-byte the pre-parallel code.
    Serial,
    /// Every slot conformed; accumulators are credited, the caller
    /// advances the clock and continues the span.
    Clean,
    /// A slot broke the coalesce contract (in-tree workloads never do;
    /// fault-injected ones may — the break is counted and traced).
    /// Recovery — accounting flush, stop-reason handling, dense
    /// completion of the window, clock advance — already happened; the
    /// caller abandons the span.
    Aborted,
}

/// One slot's execution order within a [`SocketSpan`]: everything the
/// worker-side chunk runner needs that is not socket-wide.
struct SpanJob<'a> {
    /// VM index (into the simulation's workload table).
    vm: usize,
    /// Slot index local to the VM.
    slot: usize,
    /// LLC owner index (global vCPU index).
    owner: usize,
    /// Index into the owning [`SocketSpan::wls`].
    wl_idx: usize,
    /// The running vCPU (PMU counters, L2 warmth).
    vcpu: &'a mut Vcpu,
}

/// One socket lane of a parallel span: exclusive ownership of the
/// socket's LLC and rate cache plus the jobs of every busy pCPU on the
/// socket, in pCPU order. Running the jobs serially on one lane makes
/// each socket's f64 call sequence identical to the serial loop's —
/// cross-socket interleaving has no data overlap, so the results are
/// bit-identical for any worker count.
struct SocketSpan<'a> {
    socket: usize,
    llc: &'a mut LlcState,
    cache: &'a mut RateCache,
    /// Scratch stream (see [`SPAN_RNG_SEED`]); never drawn from by a
    /// conforming workload.
    rng: SimRng,
    spec: &'a CacheSpec,
    /// The whole `vm_running` table (shared, read-only during a span);
    /// jobs index it by VM.
    vm_running: &'a [Vec<bool>],
    jobs: Vec<SpanJob<'a>>,
    /// The distinct workloads driven by this lane's jobs. A VM whose
    /// running slots straddle sockets is ineligible (checked up
    /// front), so each workload belongs to exactly one lane.
    wls: Vec<&'a mut Box<dyn GuestWorkload>>,
    /// Outcomes in job (pCPU) order, filled by the worker.
    outs: Vec<RunOutcome>,
    budget: u64,
    now: SimTime,
}

/// The worker-side chunk runner: the parallel twin of
/// `Simulation::run_chunk` for whole-span coalesced chunks, one lane's
/// jobs back to back in pCPU order.
fn run_socket_span(t: &mut SocketSpan<'_>) {
    let budget = t.budget;
    for ji in 0..t.jobs.len() {
        let job = &mut t.jobs[ji];
        let v = &mut *job.vcpu;
        let mut ctx = ExecContext {
            now: t.now,
            spec: t.spec,
            llc: &mut *t.llc,
            pmu: &mut v.pmu,
            l2_warmth: &mut v.l2_warmth,
            rng: &mut t.rng,
            owner: job.owner,
            running_slots: &t.vm_running[job.vm],
            lean: true,
            rate_cache: Some(&mut *t.cache),
        };
        let mut out = t.wls[job.wl_idx].run(job.slot, budget, &mut ctx);
        debug_assert!(
            out.used_ns <= budget,
            "workload '{}' overran its budget",
            t.wls[job.wl_idx].name()
        );
        out.used_ns = out.used_ns.min(budget);
        t.outs.push(out);
    }
}

impl Simulation {
    /// The adaptive run loop. Event handling, rescheduling and the
    /// generic sub-step are shared with the dense loop; the only
    /// addition is the quiescent-span fast-forward between them.
    pub(super) fn run_until_adaptive(&mut self, end: SimTime) {
        debug_assert_eq!(self.time_mode, TimeMode::Adaptive);
        // A previous call's failed plan may have been bounded by that
        // call's `end`; this call can see further.
        self.scratch.failed_plan_gen = None;
        while self.now < end {
            // 0. A tripped run budget aborts mid-run (identical to
            // dense): return, never `break` — the epilogue would
            // falsify the clock.
            if self.budget_stop() {
                return;
            }
            // 1. Process all events due now (identical to dense).
            while self
                .queue
                .peek_time()
                .is_some_and(|t| t <= self.now && t <= end)
            {
                let (t, ev) = self.queue.pop().expect("peeked");
                debug_assert!(t <= self.now);
                self.handle_event(ev);
            }
            // 2. Repair scheduling decisions (identical to dense).
            self.resched_all();
            // 3. Plan the advance.
            let t_next = self.queue.peek_time().map_or(end, |t| t.min(end));
            if t_next <= self.now {
                if self.queue.peek_time().is_some_and(|t| t <= self.now) {
                    continue;
                }
                break;
            }
            if !self.hv.pcpus.iter().any(|p| p.running.is_some()) {
                // Machine fully idle: leap to the next event, exactly
                // as the dense loop does.
                self.now = t_next;
                continue;
            }
            // A plan that failed can only start succeeding after the
            // scheduling state moves: slices end, kick deadlines pass
            // and IO queues drain all *via* a dispatch/block/preempt or
            // an event, each of which bumps `sched_gen`. So a failed
            // plan is memoized against the generation instead of being
            // recomputed every sub-step of a short-quantum regime.
            if self.scratch.failed_plan_gen != Some(self.sched_gen) {
                let span_end = self.quiescent_until(t_next);
                if whole_steps(self.now, span_end, self.substep_ns) >= MIN_FAST_STEPS {
                    self.fast_forward(span_end);
                    // Re-derive everything at the new grid point: the
                    // dense loop performs the same event drain and
                    // resched there (both provably no-ops unless the
                    // span aborted).
                    continue;
                }
                self.scratch.failed_plan_gen = Some(self.sched_gen);
            }
            // 4. Not quiescent for long enough: one generic sub-step.
            // `advance_all_adaptive` advances the same state the dense
            // `advance_all` would — it only skips idle pCPUs whose
            // dispatch attempt provably fails.
            let span = t_next - self.now;
            let dt = span.min(self.substep_ns);
            self.advance_all_adaptive(dt);
            self.now += dt;
        }
        self.now = end;
    }

    /// The earliest instant anything scheduler-visible can happen, at
    /// most `t_next` (the next queued event). Called immediately after
    /// the event drain and `resched_all`, which is what makes the
    /// bound sound — see the module docs.
    ///
    /// Bails to `self.now` ("not worth it") as soon as the bound drops
    /// below [`MIN_FAST_STEPS`] sub-steps, so short-quantum regimes
    /// (microsliced slices, dense vSlicer kick deadlines) pay a scan of
    /// at most a few pCPUs per sub-step, not a full machine scan.
    fn quiescent_until(&self, t_next: SimTime) -> SimTime {
        let floor = self.now + MIN_FAST_STEPS * self.substep_ns;
        if t_next < floor {
            return self.now;
        }
        let mut span_end = t_next;
        for pi in 0..self.hv.pcpus.len() {
            let Some(rv) = self.hv.pcpus[pi].running else {
                continue;
            };
            let v = &self.hv.vcpus[rv.index()];
            // Slice expiry is a dispatch point.
            span_end = span_end.min(v.slice_end);
            if span_end < floor {
                return self.now;
            }
            // The workload's own promise.
            match self.workloads[v.vm.index()].horizon(v.slot, self.now) {
                Horizon::Unknown => return self.now,
                Horizon::At(t) => span_end = span_end.min(t),
                Horizon::Never => {}
            }
            if span_end < floor {
                return self.now;
            }
            // vSlicer differentiated frequency: a queued vCPU whose
            // kick period elapses preempts a kickless runner.
            if v.kick_period_ns.is_none() {
                for w in self.hv.pcpus[pi].queue.iter() {
                    let wc = &self.hv.vcpus[w.index()];
                    if let Some(p) = wc.kick_period_ns {
                        span_end = span_end.min(wc.last_desched + p);
                    }
                }
                if span_end < floor {
                    return self.now;
                }
            }
        }
        span_end
    }

    /// Fast-forwards whole sub-steps across a proven-quiescent span:
    /// per grid point, one execution chunk per busy pCPU (in pCPU
    /// order, exactly like `advance_all`) and nothing else. Exits at
    /// the last grid point before `span_end`, or at the first sub-step
    /// where a workload deviated from its horizon promise (that
    /// sub-step is completed densely before returning).
    fn fast_forward(&mut self, span_end: SimTime) {
        let dt = self.substep_ns;
        let mut slots = std::mem::take(&mut self.scratch.fast_slots);
        slots.clear();
        for pi in 0..self.hv.pcpus.len() {
            if let Some(vid) = self.hv.pcpus[pi].running {
                let v = &self.hv.vcpus[vid.index()];
                debug_assert_eq!(v.state, VcpuState::Running);
                slots.push(FastSlot {
                    pcpu: pi,
                    vid,
                    vm: v.vm.index(),
                    slot: v.slot,
                    socket: self.hv.machine.socket_of(PcpuId(pi)).index(),
                    acc_ns: 0,
                });
            }
        }
        let mut steps = whole_steps(self.now, span_end, dt);
        debug_assert!(steps > 0, "caller checked the span fits a sub-step");
        // Chunk-coalescing probe cadence. A failed probe (some slot not
        // linear yet — typically rewarming its private L2 after a
        // dispatch) is retried with exponential backoff instead of
        // never: warm-up completes *inside* long spans, and the probe
        // then coalesces the warm tail. The backoff saturates at 64
        // steps, so a span that never turns linear pays O(log steps)
        // probes up front and then at most one per 64 grid steps
        // (~1.5 % overhead) — the cap bounds how much of a late warm
        // tail can be missed, which matters more than shaving the last
        // probes off hopeless spans.
        let mut probe_in: u64 = 0;
        let mut probe_backoff: u64 = 1;
        'span: while steps > 0 {
            // Chunk coalescing: when every running slot signs the
            // linear contract (pure-rate execution at the memory
            // fixpoint, no scheduler-visible act, no shared state), the
            // dense chunk grid is redundant — one `run_chunk` per slot
            // covers the rest of the span. Results differ from the
            // dense sequence only in the f64 summation order of
            // accumulated metrics; every u64 account and every event is
            // exact (the tolerance conformance suite and the rendered
            // goldens pin this).
            if self.coalesce && steps >= 2 && probe_in == 0 {
                if let Some(k) = self.coalescible_steps(&slots, steps, dt) {
                    let budget = k * dt;
                    // Multi-socket spans fan across the span pool when
                    // one exists; the serial loop below is the
                    // single-lane fallback and the bit-identity
                    // reference (see `run_span_parallel`).
                    match self.run_span_parallel(&mut slots, budget) {
                        SpanExec::Clean => {
                            self.now += budget;
                            steps -= k;
                            continue 'span;
                        }
                        SpanExec::Aborted => {
                            slots.clear();
                            break 'span;
                        }
                        SpanExec::Serial => {}
                    }
                    for i in 0..slots.len() {
                        let s = slots[i];
                        let out =
                            self.run_chunk(s.vid, s.vm, s.slot, s.socket, budget, self.now, true);
                        if out.used_ns == budget && out.stop == StopReason::BudgetExhausted {
                            slots[i].acc_ns += budget;
                            continue;
                        }
                        // A linear hint lied. In-tree workloads never
                        // do this; fault injection (`coalesce-break`)
                        // does it on purpose. Count it, say so, and
                        // recover by finishing the span window densely
                        // from the deviation, exactly like a broken
                        // horizon promise.
                        self.contract_breaks += 1;
                        self.trace.emit(self.now, || {
                            format!(
                                "coalesce contract broken by vm {} slot {}; \
                                 recovering densely",
                                s.vm, s.slot
                            )
                        });
                        slots[i].acc_ns += out.used_ns;
                        self.flush_fast_accounting(&mut slots);
                        match out.stop {
                            StopReason::BudgetExhausted => {}
                            StopReason::Blocked => self.block(s.pcpu, s.vid),
                            StopReason::Yielded => self.yield_requeue(s.pcpu, s.vid),
                        }
                        let spins = u32::from(out.used_ns == 0);
                        self.advance_pcpu_from(s.pcpu, out.used_ns, budget, spins);
                        for pj in (s.pcpu + 1)..self.hv.pcpus.len() {
                            self.advance_pcpu_from(pj, 0, budget, 0);
                        }
                        self.now += budget;
                        slots.clear();
                        break 'span;
                    }
                    self.now += budget;
                    steps -= k;
                    // A slot's linear window may have capped `k` (phase
                    // boundary): the tail re-probes immediately and
                    // otherwise resumes on the per-step grid.
                    continue 'span;
                    // (A broken contract above breaks out of 'span via
                    // the shared epilogue, like the grid-path recovery.)
                }
                probe_in = probe_backoff;
                probe_backoff = (probe_backoff * 2).min(64);
            }
            probe_in = probe_in.saturating_sub(1);
            for i in 0..slots.len() {
                let s = slots[i];
                // The span proof guarantees the slice outlives this
                // sub-step; the budget is always the full grid step.
                debug_assert!(
                    self.hv.vcpus[s.vid.index()]
                        .slice_end
                        .saturating_since(self.now)
                        >= dt
                );
                let out = self.run_chunk(s.vid, s.vm, s.slot, s.socket, dt, self.now, false);
                if out.used_ns == dt && out.stop == StopReason::BudgetExhausted {
                    slots[i].acc_ns += dt;
                    continue;
                }
                // Horizon promise broken: flush the span accounting,
                // replay the dense stop-reason handling for this chunk
                // and finish the sub-step densely for this pCPU and
                // every later one — byte-for-byte what the dense loop
                // would have done from here.
                slots[i].acc_ns += out.used_ns;
                self.flush_fast_accounting(&mut slots);
                match out.stop {
                    StopReason::BudgetExhausted => {}
                    StopReason::Blocked => self.block(s.pcpu, s.vid),
                    StopReason::Yielded => self.yield_requeue(s.pcpu, s.vid),
                }
                let spins = u32::from(out.used_ns == 0);
                self.advance_pcpu_from(s.pcpu, out.used_ns, dt, spins);
                for pj in (s.pcpu + 1)..self.hv.pcpus.len() {
                    self.advance_pcpu_from(pj, 0, dt, 0);
                }
                self.now += dt;
                slots.clear();
                break 'span;
            }
            self.now += dt;
            steps -= 1;
        }
        self.flush_fast_accounting(&mut slots);
        self.scratch.fast_slots = slots;
    }

    /// The adaptive twin of [`Simulation::advance_all`]: advances every
    /// pCPU whose sub-step can matter and skips idle pCPUs whose
    /// dispatch attempt provably fails — an empty local queue and no
    /// stealable work anywhere in their pool. The skip is exact: a
    /// failed `try_dispatch` performs no state change, and the
    /// precomputed pool flags are trusted only while `sched_gen` stands
    /// still (any block/yield/preempt/dispatch inside this sub-step
    /// bumps it, and the remaining pCPUs then take the full path).
    /// The dense loop keeps the exhaustive scan — it is the oracle.
    fn advance_all_adaptive(&mut self, dt: u64) {
        let gen0 = self.sched_gen;
        let mut flags = std::mem::take(&mut self.scratch.pool_stealable);
        // The flags are a pure function of queue contents, which only
        // change when `sched_gen` moves — consecutive quiet sub-steps
        // reuse them.
        if self.scratch.pool_stealable_gen != Some(gen0) {
            flags.clear();
            flags.resize(self.hv.pools.len(), false);
            let crate::engine::Hypervisor {
                vcpus,
                pcpus,
                pinned_vcpus,
                ..
            } = &self.hv;
            let has_pins = *pinned_vcpus > 0;
            for p in pcpus {
                let n = if has_pins {
                    p.queue
                        .stealable_len_where(|v| vcpus[v.index()].pinned.is_none())
                } else {
                    p.queue.stealable_len()
                };
                if n > 0 {
                    flags[p.pool.index()] = true;
                }
            }
            self.scratch.pool_stealable_gen = Some(gen0);
        }
        for pi in 0..self.hv.pcpus.len() {
            let p = &self.hv.pcpus[pi];
            if self.sched_gen == gen0
                && p.running.is_none()
                && p.queue.is_empty()
                && !flags[p.pool.index()]
            {
                continue;
            }
            self.advance_pcpu_from(pi, 0, dt, 0);
        }
        self.scratch.pool_stealable = flags;
    }

    /// Executes one coalesced span's chunks across the span pool, one
    /// worker lane per busy socket, and merges the results back in
    /// socket order.
    ///
    /// # Eligibility
    ///
    /// Falls back to [`SpanExec::Serial`] (the caller's pre-parallel
    /// loop, byte-for-byte) unless a pool exists, at least two sockets
    /// have busy pCPUs, and no VM's running slots straddle sockets (a
    /// VM is one `GuestWorkload` object — one `&mut`, one lane).
    ///
    /// # Determinism
    ///
    /// Each lane owns its socket's LLC and rate cache exclusively and
    /// runs its slots serially in pCPU order — the same per-socket
    /// call sequence the serial loop produces, since cross-socket
    /// chunks share no mutable state (the coalesce contract forbids
    /// shared-RNG draws and shared-LLC mutation). The merge walks
    /// slots in pCPU (= socket-major) order, so accounting sums, PMU
    /// samples and metric sums land in a thread-arrival-independent
    /// order. Results are therefore bit-identical for every
    /// `span_workers` value, including 1.
    fn run_span_parallel(&mut self, slots: &mut [FastSlot], budget: u64) -> SpanExec {
        if self.span_pool.is_none() || slots.is_empty() {
            return SpanExec::Serial;
        }
        // Slots are pCPU-ordered and pCPUs are socket-major, so socket
        // indices are nondecreasing: one comparison finds multi-socket
        // spans, and lane groups are contiguous runs.
        debug_assert!(slots.windows(2).all(|w| w[0].socket <= w[1].socket));
        if slots[0].socket == slots[slots.len() - 1].socket {
            return SpanExec::Serial;
        }
        for (i, a) in slots.iter().enumerate() {
            if slots[i + 1..]
                .iter()
                .any(|b| b.vm == a.vm && b.socket != a.socket)
            {
                return SpanExec::Serial;
            }
        }
        let outcomes: Vec<RunOutcome> = {
            let sim = &mut *self;
            let Simulation {
                hv,
                workloads,
                vm_running,
                rate_caches,
                span_pool,
                now,
                ..
            } = sim;
            let super::Hypervisor {
                vcpus,
                llcs,
                machine,
                ..
            } = hv;
            // Exclusive borrow dispatch: each socket's LLC and rate
            // cache, each running vCPU and each VM's workload is taken
            // out of its table exactly once and moved into its lane.
            let mut vcpu_refs: Vec<Option<&mut Vcpu>> = vcpus.iter_mut().map(Some).collect();
            let mut llc_refs: Vec<Option<&mut LlcState>> = llcs.iter_mut().map(Some).collect();
            let mut cache_refs: Vec<Option<&mut RateCache>> =
                rate_caches.iter_mut().map(Some).collect();
            let mut wl_refs: Vec<Option<&mut Box<dyn GuestWorkload>>> =
                workloads.iter_mut().map(Some).collect();
            let mut tasks: Vec<SocketSpan<'_>> = Vec::new();
            for s in slots.iter() {
                if tasks.last().map(|t| t.socket) != Some(s.socket) {
                    tasks.push(SocketSpan {
                        socket: s.socket,
                        llc: llc_refs[s.socket].take().expect("one lane per socket"),
                        cache: cache_refs[s.socket].take().expect("one lane per socket"),
                        rng: SimRng::seed_from(SPAN_RNG_SEED ^ s.socket as u64),
                        spec: &machine.cache,
                        vm_running,
                        jobs: Vec::new(),
                        wls: Vec::new(),
                        outs: Vec::new(),
                        budget,
                        now: *now,
                    });
                }
                let t = tasks.last_mut().expect("just ensured");
                let wl_idx = match t.jobs.iter().find(|j| j.vm == s.vm) {
                    Some(j) => j.wl_idx,
                    None => {
                        t.wls.push(
                            wl_refs[s.vm]
                                .take()
                                .expect("straddling VMs were ruled out above"),
                        );
                        t.wls.len() - 1
                    }
                };
                t.jobs.push(SpanJob {
                    vm: s.vm,
                    slot: s.slot,
                    owner: s.vid.index(),
                    wl_idx,
                    vcpu: vcpu_refs[s.vid.index()]
                        .take()
                        .expect("one running slot per vCPU"),
                });
            }
            // Concurrency-contract auditor (debug builds): each lane's
            // LLC panics on any mutation by an owner outside the lane.
            #[cfg(debug_assertions)]
            for t in tasks.iter_mut() {
                let owners: Vec<usize> = t.jobs.iter().map(|j| j.owner).collect();
                t.llc.audit_arm(&owners);
            }
            {
                let mut closures: Vec<_> = tasks
                    .iter_mut()
                    .map(|t| move || run_socket_span(t))
                    .collect();
                let mut jobs: Vec<&mut (dyn FnMut() + Send)> = closures
                    .iter_mut()
                    .map(|c| c as &mut (dyn FnMut() + Send))
                    .collect();
                span_pool.as_ref().expect("checked above").run(&mut jobs);
            }
            #[cfg(debug_assertions)]
            for t in tasks.iter_mut() {
                t.llc.audit_disarm();
            }
            // Socket-ordered merge: lanes are socket-ascending and lane
            // jobs are pCPU-ascending, so this concatenation is exactly
            // slot order.
            tasks.iter().flat_map(|t| t.outs.iter().copied()).collect()
        };
        debug_assert_eq!(outcomes.len(), slots.len());
        self.parallel_spans += 1;
        let mut clean = true;
        for (i, out) in outcomes.iter().enumerate() {
            if out.used_ns == budget && out.stop == StopReason::BudgetExhausted {
                slots[i].acc_ns += budget;
            } else {
                self.contract_breaks += 1;
                self.trace.emit(self.now, || {
                    format!(
                        "coalesce contract broken by vm {} slot {}; recovering densely",
                        slots[i].vm, slots[i].slot
                    )
                });
                slots[i].acc_ns += out.used_ns;
                clean = false;
            }
        }
        if clean {
            return SpanExec::Clean;
        }
        // Contract-break recovery, parallel flavour. Unlike the serial
        // loop — which stops at the first deviator, leaving later slots
        // unrun — every slot has already executed its chunk here, so
        // the recovery credits what actually ran, replays each
        // deviator's stop reason and dense continuation in pCPU order,
        // and completes the window on the idle pCPUs (a yielded
        // deviator may now be stealable). Conforming workloads never
        // reach either recovery; they exist so a lying hint costs
        // speed and a counted contract break, never
        // divergence-by-corruption.
        self.flush_fast_accounting(slots);
        for (i, out) in outcomes.iter().enumerate() {
            let conforming = out.used_ns == budget && out.stop == StopReason::BudgetExhausted;
            if conforming {
                continue;
            }
            let s = slots[i];
            match out.stop {
                StopReason::BudgetExhausted => {}
                StopReason::Blocked => self.block(s.pcpu, s.vid),
                StopReason::Yielded => self.yield_requeue(s.pcpu, s.vid),
            }
            let spins = u32::from(out.used_ns == 0);
            self.advance_pcpu_from(s.pcpu, out.used_ns, budget, spins);
        }
        for pj in 0..self.hv.pcpus.len() {
            if slots.iter().all(|s| s.pcpu != pj) {
                self.advance_pcpu_from(pj, 0, budget, 0);
            }
        }
        self.now += budget;
        SpanExec::Aborted
    }

    /// How many of the span's `steps` grid steps may be coalesced into
    /// a single execution chunk per slot: `None` unless **every**
    /// running slot signs the linear contract ([`CoalesceHint`]) for at
    /// least two whole steps, else the largest whole-step count every
    /// slot's linear window covers.
    fn coalescible_steps(&mut self, slots: &[FastSlot], steps: u64, dt: u64) -> Option<u64> {
        let mut k = steps;
        for s in slots {
            let mut probe = CoalesceProbe {
                spec: &self.hv.machine.cache,
                llc: &self.hv.llcs[s.socket],
                l2_warmth: self.hv.vcpus[s.vid.index()].l2_warmth,
                owner: s.vid.index(),
                running_slots: &self.vm_running[s.vm],
                rate_cache: &mut self.rate_caches[s.socket],
            };
            match self.workloads[s.vm].coalesce(s.slot, &mut probe) {
                CoalesceHint::No => return None,
                CoalesceHint::LinearFor(cpu_ns) => {
                    k = k.min(cpu_ns / dt);
                    if k < 2 {
                        return None;
                    }
                }
            }
        }
        Some(k)
    }

    /// Credits each slot's span-accumulated CPU time to the vCPU and
    /// pCPU accounting fields, consuming the accumulators. All of them
    /// are `u64`s, so crediting per span instead of per chunk is exact.
    fn flush_fast_accounting(&mut self, slots: &mut [FastSlot]) {
        for s in slots {
            if s.acc_ns == 0 {
                continue;
            }
            let v = &mut self.hv.vcpus[s.vid.index()];
            v.cpu_ns += s.acc_ns;
            v.unbilled_ns += s.acc_ns;
            v.pmu.add_ran_ns(s.acc_ns);
            self.hv.pcpus[s.pcpu].busy_ns += s.acc_ns;
            s.acc_ns = 0;
        }
    }
}
