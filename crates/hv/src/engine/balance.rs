//! Load balancing within pools: idle stealing and the periodic
//! run-queue rebalance.

use crate::ids::{PcpuId, VcpuId};
use crate::vm::Prio;

use super::Simulation;

impl Simulation {
    /// Steals a queued vCPU for an idle pCPU from the most loaded
    /// pool peer (deterministic order: longest queue, lowest index).
    /// Returns the stolen entry and the victim pCPU.
    pub(super) fn steal_from_peer(&mut self, pcpu: usize) -> Option<((VcpuId, Prio), PcpuId)> {
        let pool = self.hv.pcpus[pcpu].pool;
        // Pinned vCPUs must never move; on machines with pins the
        // queue scans take the predicate-filtered variants instead of
        // the O(1) counters. Destructured so the predicate (borrowing
        // `vcpus`) can run while `pcpus` queues are mutated.
        let crate::engine::Hypervisor {
            vcpus,
            pcpus,
            pools,
            pinned_vcpus,
            ..
        } = &mut self.hv;
        let has_pins = *pinned_vcpus > 0;
        let movable = |v: VcpuId| vcpus[v.index()].pinned.is_none();
        // Pick the peer with the most *stealable* (non-BOOST) work,
        // lowest index on ties. Ranking by stealable length rather
        // than total length matters: a queue of only BOOST vCPUs
        // yields nothing, and choosing it would leave this pCPU idle
        // while another peer holds stealable work. The scan avoids
        // collecting a peer list: it runs on every idle dispatch
        // attempt, so it must not allocate.
        let mut victim: Option<usize> = None;
        let mut best_key = (0usize, 0usize);
        for p in &pools[pool.index()].pcpus {
            let p = p.index();
            if p == pcpu {
                continue;
            }
            let len = if has_pins {
                pcpus[p].queue.stealable_len_where(movable)
            } else {
                pcpus[p].queue.stealable_len()
            };
            if len == 0 {
                continue;
            }
            let key = (len, usize::MAX - p);
            if victim.is_none() || key > best_key {
                victim = Some(p);
                best_key = key;
            }
        }
        let victim = victim?;
        let entry = if has_pins {
            pcpus[victim].queue.steal_tail_where(movable)
        } else {
            pcpus[victim].queue.steal_tail()
        }
        .expect("victim has stealable work");
        Some((entry, PcpuId(victim)))
    }

    /// Evens out run-queue lengths within each pool (Xen's periodic
    /// load balancing): with long quanta and saturated pCPUs, idle-time
    /// stealing never fires, so queue imbalance — e.g. after a pool
    /// reconfiguration — would otherwise persist indefinitely.
    pub(super) fn rebalance_pools(&mut self) {
        // The pCPU list is collected per pool because queues are
        // mutated inside the loop; the buffer is reused across calls.
        let mut pcpus = std::mem::take(&mut self.scratch.pool_pcpus);
        let has_pins = self.hv.pinned_vcpus > 0;
        for pool_idx in 0..self.hv.pools.len() {
            pcpus.clear();
            pcpus.extend(self.hv.pools[pool_idx].pcpus.iter().map(|p| p.index()));
            if pcpus.len() < 2 {
                continue;
            }
            for _ in 0..self.hv.vcpus.len() {
                let load = |p: &usize| {
                    self.hv.pcpus[*p].queue.len() + usize::from(self.hv.pcpus[*p].running.is_some())
                };
                let stealable = |p: &usize| {
                    if has_pins {
                        let vcpus = &self.hv.vcpus;
                        self.hv.pcpus[*p]
                            .queue
                            .stealable_len_where(|v| vcpus[v.index()].pinned.is_none())
                    } else {
                        self.hv.pcpus[*p].queue.stealable_len()
                    }
                };
                // The donor is the most loaded peer *among those with
                // movable work*: an unfiltered pick would let a
                // BOOST-only queue (never stolen from) win and abort
                // the round while real imbalance persists; ranking by
                // stealable length alone would let a lightly-loaded
                // peer shadow an overloaded one on ties. With no BOOST
                // queued anywhere this reduces to the plain
                // most-loaded pick.
                let Some(&max_p) = pcpus
                    .iter()
                    .filter(|p| stealable(p) > 0)
                    .max_by_key(|p| (load(p), usize::MAX - **p))
                else {
                    break;
                };
                let &min_p = pcpus
                    .iter()
                    .min_by_key(|p| (load(p), **p))
                    .expect("non-empty");
                if load(&max_p) <= load(&min_p) + 1 {
                    break;
                }
                let (vid, prio) = if has_pins {
                    let vcpus = &self.hv.vcpus;
                    let movable = |v: VcpuId| vcpus[v.index()].pinned.is_none();
                    self.hv.pcpus[max_p].queue.steal_tail_where(movable)
                } else {
                    self.hv.pcpus[max_p].queue.steal_tail()
                }
                .expect("donor has stealable work");
                self.hv.vcpus[vid.index()].affine_pcpu = PcpuId(min_p);
                self.hv.pcpus[min_p].queue.push_tail(prio, vid);
            }
        }
        self.scratch.pool_pcpus = pcpus;
    }
}
