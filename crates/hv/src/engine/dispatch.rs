//! The context-switch layer: preemption, quantum enforcement, and the
//! unified [`DispatchDecision`] path.
//!
//! Every context switch in the simulator — under native Xen, the
//! baselines and AQL_Sched alike — flows through
//! [`Simulation::try_dispatch`]: a decision is *formed* by
//! `next_decision` (which vCPU, from where, for how long) and then
//! *applied* by `apply_decision`. Policies influence decisions only
//! through configuration (pool quanta, per-vCPU overrides, kick
//! periods), never through private dispatch paths, so measured
//! differences between policies are attributable to policy alone.

use aql_sim::time::SimTime;

use super::Simulation;
use crate::ids::{PcpuId, VcpuId};
use crate::vm::{Prio, VcpuState};

/// Where a dispatched vCPU was taken from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchSource {
    /// The pCPU's own run queue.
    LocalQueue,
    /// Stolen from a pool peer's run queue (idle stealing).
    Stolen {
        /// The pCPU the vCPU was stolen from.
        victim: PcpuId,
    },
}

/// One scheduling decision of the dispatch layer.
///
/// The slice length is resolved here — per-vCPU override, else the
/// pool quantum, else the remainder of an involuntarily-preempted
/// slice — so the quantum a vCPU actually receives is decided in
/// exactly one place for every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchDecision {
    /// The pCPU being filled.
    pub pcpu: PcpuId,
    /// The vCPU chosen to run.
    pub vcpu: VcpuId,
    /// The priority class the vCPU was queued with.
    pub prio: Prio,
    /// The slice granted, in nanoseconds.
    pub slice_ns: u64,
    /// Whether the slice resumes an involuntarily-preempted one
    /// (rather than granting a fresh quantum).
    pub resumed: bool,
    /// Where the vCPU came from.
    pub source: DispatchSource,
}

impl Simulation {
    /// Applies pending preemptions and fills idle pCPUs.
    pub(super) fn resched_all(&mut self) {
        for pi in 0..self.hv.pcpus.len() {
            if self.hv.pcpus[pi].force_resched {
                self.hv.pcpus[pi].force_resched = false;
                if let Some(rv) = self.hv.pcpus[pi].running {
                    let wrong_pool = self.hv.vcpus[rv.index()].pool != self.hv.pcpus[pi].pool;
                    let parked = self.hv.vcpus[rv.index()].parked;
                    let better_waiter = self.hv.pcpus[pi]
                        .queue
                        .best_class()
                        .is_some_and(|c| c < self.hv.vcpus[rv.index()].prio);
                    if wrong_pool || parked || better_waiter {
                        self.preempt(pi, rv, false);
                    }
                }
            }
            // vSlicer differentiated frequency: a queued vCPU whose
            // kick period elapsed preempts the running vCPU and runs
            // next (its own slice is the short override).
            if let Some(rv) = self.hv.pcpus[pi].running {
                let due = self.hv.pcpus[pi].queue.iter().find(|v| {
                    let vc = &self.hv.vcpus[v.index()];
                    vc.kick_period_ns
                        .is_some_and(|p| self.now.saturating_since(vc.last_desched) >= p)
                });
                if let Some(due) = due {
                    if due != rv && self.hv.vcpus[rv.index()].kick_period_ns.is_none() {
                        // Preempt first (the victim head-requeues), then
                        // put the due vCPU in front so it runs next.
                        self.preempt(pi, rv, false);
                        let prio = self.hv.vcpus[due.index()].prio;
                        self.hv.pcpus[pi].queue.remove(due);
                        self.hv.pcpus[pi].queue.push_head(prio, due);
                    }
                }
            }
            if self.hv.pcpus[pi].running.is_none() {
                self.try_dispatch(pi, self.now);
            }
        }
    }

    /// Preempts the running vCPU. `exhausted` marks quantum expiry
    /// (affecting BOOST eligibility on the next wake).
    pub(super) fn preempt(&mut self, pcpu: usize, vcpu: VcpuId, exhausted: bool) {
        debug_assert_eq!(self.hv.pcpus[pcpu].running, Some(vcpu));
        self.sched_gen += 1;
        self.hv.pcpus[pcpu].running = None;
        let now = self.now;
        let (vm, slot, prio) = {
            let v = &mut self.hv.vcpus[vcpu.index()];
            v.state = VcpuState::Runnable;
            v.last_slice_exhausted = exhausted;
            v.last_desched = now;
            // An involuntarily preempted vCPU resumes its remaining
            // slice later; granting a fresh quantum every time would
            // let a head-requeued victim monopolise the queue.
            v.resume_slice_ns = if exhausted {
                None
            } else {
                Some(v.slice_end.saturating_since(now).max(100_000))
            };
            if v.prio == Prio::Boost {
                v.prio = Prio::Under;
            }
            (v.vm.index(), v.slot, v.prio)
        };
        self.vm_running[vm][slot] = false;
        // Parked vCPUs (capped VM out of credit) stay off the queues
        // until the next refill unparks them.
        if self.hv.vcpus[vcpu.index()].parked {
            return;
        }
        // Expired slices requeue at the tail; involuntary preemptions
        // resume at the head of their class.
        self.hv.enqueue(vcpu, prio, !exhausted, false);
    }

    /// Blocks the running vCPU (no runnable work).
    pub(super) fn block(&mut self, pcpu: usize, vcpu: VcpuId) {
        debug_assert_eq!(self.hv.pcpus[pcpu].running, Some(vcpu));
        self.sched_gen += 1;
        self.hv.pcpus[pcpu].running = None;
        let now = self.now;
        let v = &mut self.hv.vcpus[vcpu.index()];
        v.state = VcpuState::Blocked;
        v.last_slice_exhausted = false;
        v.last_desched = now;
        v.resume_slice_ns = None;
        if v.prio == Prio::Boost {
            v.prio = Prio::Under;
        }
        let (vm, slot) = (v.vm.index(), v.slot);
        self.vm_running[vm][slot] = false;
        // Re-arm the timer: the workload's next wake-up may have moved.
        self.arm_timer(vcpu.index());
    }

    /// Voluntary yield: requeue at the tail, stay runnable.
    pub(super) fn yield_requeue(&mut self, pcpu: usize, vcpu: VcpuId) {
        debug_assert_eq!(self.hv.pcpus[pcpu].running, Some(vcpu));
        self.sched_gen += 1;
        self.hv.pcpus[pcpu].running = None;
        let now = self.now;
        let (vm, slot, prio) = {
            let v = &mut self.hv.vcpus[vcpu.index()];
            v.state = VcpuState::Runnable;
            v.last_slice_exhausted = false;
            v.last_desched = now;
            v.resume_slice_ns = None;
            if v.prio == Prio::Boost {
                v.prio = Prio::Under;
            }
            (v.vm.index(), v.slot, v.prio)
        };
        self.vm_running[vm][slot] = false;
        self.hv.enqueue(vcpu, prio, false, false);
    }

    /// Dispatches the best available vCPU onto an idle pCPU, stealing
    /// from pool peers when the local queue is empty. Returns whether
    /// something ran.
    pub(super) fn try_dispatch(&mut self, pcpu: usize, t: SimTime) -> bool {
        let Some(decision) = self.next_decision(pcpu) else {
            return false;
        };
        self.apply_decision(decision, t);
        true
    }

    /// Forms the next dispatch decision for an idle pCPU: picks the
    /// best local vCPU (falling back to idle stealing) and resolves
    /// the slice it will receive. Returns `None` when no runnable work
    /// exists anywhere in the pool.
    ///
    /// The picked vCPU is popped from its queue, so a returned
    /// decision must be passed to `apply_decision`.
    fn next_decision(&mut self, pcpu: usize) -> Option<DispatchDecision> {
        debug_assert!(self.hv.pcpus[pcpu].running.is_none());
        let ((vid, prio), source) = match self.hv.pcpus[pcpu].queue.pop_best() {
            Some(entry) => (entry, DispatchSource::LocalQueue),
            None => {
                let (entry, victim) = self.steal_from_peer(pcpu)?;
                (entry, DispatchSource::Stolen { victim })
            }
        };
        let quantum = self.hv.quantum_for(vid);
        let v = &mut self.hv.vcpus[vid.index()];
        let resumed = v.resume_slice_ns.is_some();
        let slice_ns = v.resume_slice_ns.take().unwrap_or(quantum);
        Some(DispatchDecision {
            pcpu: PcpuId(pcpu),
            vcpu: vid,
            prio,
            slice_ns,
            resumed,
            source,
        })
    }

    /// Applies a dispatch decision: puts the vCPU on the pCPU for a
    /// slice starting at `t`, then notifies the trace log and the
    /// policy's [`on_dispatch`](crate::policy::SchedPolicy::on_dispatch)
    /// hook.
    fn apply_decision(&mut self, decision: DispatchDecision, t: SimTime) {
        self.sched_gen += 1;
        let pcpu = decision.pcpu.index();
        let vid = decision.vcpu;
        let (vm, slot) = {
            let v = &mut self.hv.vcpus[vid.index()];
            debug_assert_eq!(v.state, VcpuState::Runnable);
            v.state = VcpuState::Running;
            v.slice_end = t + decision.slice_ns;
            v.affine_pcpu = decision.pcpu;
            (v.vm.index(), v.slot)
        };
        // Private-cache cooling: a different vCPU ran here in between.
        if self.hv.pcpus[pcpu].last_vcpu != Some(vid) {
            self.hv.vcpus[vid.index()].l2_warmth = 0.0;
        }
        self.hv.vcpus[vid.index()].last_pcpu = Some(decision.pcpu);
        self.hv.pcpus[pcpu].last_vcpu = Some(vid);
        self.hv.pcpus[pcpu].running = Some(vid);
        self.vm_running[vm][slot] = true;
        self.trace.emit(t, || {
            let src = match decision.source {
                DispatchSource::LocalQueue => String::new(),
                DispatchSource::Stolen { victim } => format!(", stolen from {victim}"),
            };
            let kind = if decision.resumed { "resume" } else { "slice" };
            format!(
                "{} <- {} ({:?}, {kind} {}ns{src})",
                decision.pcpu, decision.vcpu, decision.prio, decision.slice_ns
            )
        });
        self.policy.on_dispatch(&self.hv, &decision, t);
    }
}
