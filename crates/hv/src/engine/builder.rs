//! [`SimulationBuilder`]: assembles a [`Simulation`] from a machine
//! shape, VMs with their workloads, and a scheduling policy.

use aql_sim::queue::EventQueue;
use aql_sim::rng::SimRng;
use aql_sim::time::SimTime;
use aql_sim::trace::TraceLog;

use super::{Event, Hypervisor, Scratch, Simulation, TimeMode, DEFAULT_SUBSTEP_NS};
use crate::ids::VcpuId;
use crate::policy::SchedPolicy;
use crate::sched::refill_credits;
use crate::topology::MachineSpec;
use crate::vm::VmSpec;
use crate::workload::GuestWorkload;
use crate::{MONITOR_PERIOD_NS, TICK_NS};

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    machine: MachineSpec,
    seed: u64,
    substep_ns: u64,
    time_mode: TimeMode,
    coalesce: bool,
    span_workers: usize,
    trace_capacity: usize,
    vms: Vec<(VmSpec, Box<dyn GuestWorkload>)>,
    policy: Option<Box<dyn SchedPolicy>>,
}

impl SimulationBuilder {
    /// Starts a build for the given machine.
    pub fn new(machine: MachineSpec) -> Self {
        SimulationBuilder {
            machine,
            seed: 1,
            substep_ns: DEFAULT_SUBSTEP_NS,
            time_mode: TimeMode::default(),
            coalesce: true,
            span_workers: 1,
            trace_capacity: 0,
            vms: Vec::new(),
            policy: None,
        }
    }

    /// Sets the deterministic seed (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution sub-step (default 100 µs). Smaller values
    /// sharpen cross-pCPU interactions (spin-lock handoffs) at the
    /// cost of simulation speed.
    pub fn substep_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "substep must be positive");
        self.substep_ns = ns;
        self
    }

    /// Selects the time-advance mode (default [`TimeMode::Adaptive`]).
    /// [`TimeMode::Dense`] is the original exhaustive loop, kept as the
    /// conformance oracle; both modes produce byte-identical results.
    pub fn time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// Enables or disables chunk coalescing inside the adaptive
    /// time-advance (default on). Off, `TimeMode::Adaptive` replays
    /// the dense sub-step grid bit-for-bit — the PR-3 behaviour, kept
    /// for conformance bisection and the CI perf baseline.
    pub fn coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Number of threads (including the calling one) a coalesced span
    /// may fan its per-socket execution across (default 1 = fully
    /// serial). Capped at the machine's socket count — sockets are the
    /// unit of isolation, so more lanes than sockets cannot help.
    /// Results are byte-identical for every value: each socket's slots
    /// run serially in pCPU order on one lane, and the merge back into
    /// the scheduler core is ordered by socket index, not thread
    /// arrival. Ignored by [`TimeMode::Dense`] and with coalescing
    /// disabled.
    pub fn span_workers(mut self, n: usize) -> Self {
        assert!(n > 0, "span_workers must be positive");
        self.span_workers = n;
        self
    }

    /// Enables the trace log with the given line capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Adds a VM with its workload. The workload must drive exactly
    /// `spec.vcpus` slots.
    pub fn vm(mut self, spec: VmSpec, workload: Box<dyn GuestWorkload>) -> Self {
        assert_eq!(
            workload.vcpu_slots(),
            spec.vcpus,
            "workload '{}' drives {} slots but VM '{}' has {} vCPUs",
            workload.name(),
            workload.vcpu_slots(),
            spec.name,
            spec.vcpus
        );
        self.vms.push((spec, workload));
        self
    }

    /// Adds a batch of VMs in iteration order; equivalent to chaining
    /// [`SimulationBuilder::vm`] per element. This is the entry point
    /// the scenario layer uses after expanding a declarative spec.
    pub fn vms<I>(mut self, vms: I) -> Self
    where
        I: IntoIterator<Item = (VmSpec, Box<dyn GuestWorkload>)>,
    {
        for (spec, wl) in vms {
            self = self.vm(spec, wl);
        }
        self
    }

    /// Sets the scheduling policy (defaults to native Xen 30 ms).
    pub fn policy(mut self, policy: Box<dyn SchedPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Builds the simulation: admits VMs, initialises the policy, arms
    /// recurring events and performs initial wake-ups.
    pub fn build(self) -> Simulation {
        let mut hv = Hypervisor::new(self.machine);
        let mut workloads = Vec::with_capacity(self.vms.len());
        let mut vm_running = Vec::with_capacity(self.vms.len());
        for (spec, wl) in self.vms {
            let slots = spec.vcpus;
            hv.add_vm(spec);
            vm_running.push(vec![false; slots]);
            workloads.push(wl);
        }
        let mut policy = self
            .policy
            .unwrap_or_else(|| Box::new(crate::policy::FixedQuantumPolicy::xen_default()));
        policy.init(&mut hv);
        let trace = if self.trace_capacity > 0 {
            TraceLog::enabled(self.trace_capacity)
        } else {
            TraceLog::disabled()
        };
        // Fresh VMs start with a full accounting period of credits so
        // the first 30 ms are not artificially BOOST-starved.
        refill_credits(&mut hv.vcpus, &hv.vms, &hv.pools);
        let vcpu_count = hv.vcpus.len();
        let sockets = hv.machine.sockets;
        // One lane per socket at most; extra workers would idle.
        let lanes = self.span_workers.min(sockets);
        let span_pool = (self.time_mode == TimeMode::Adaptive && self.coalesce && lanes > 1)
            .then(|| super::spanpool::SpanPool::new(lanes - 1));
        let mut sim = Simulation {
            hv,
            workloads,
            vm_running,
            policy,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from(self.seed),
            substep_ns: self.substep_ns,
            time_mode: self.time_mode,
            coalesce: self.coalesce,
            rate_caches: (0..sockets)
                .map(|_| aql_mem::RateCache::new(vcpu_count))
                .collect(),
            span_pool,
            parallel_spans: 0,
            budget: None,
            contract_breaks: 0,
            sched_gen: 0,
            trace,
            tick_count: 0,
            measure_start: SimTime::ZERO,
            scratch: Scratch::default(),
        };
        sim.queue.push(SimTime(TICK_NS), Event::Tick);
        sim.queue.push(SimTime(MONITOR_PERIOD_NS), Event::Monitor);
        // Initial admission: wake runnable slots, arm timers.
        for vi in 0..sim.hv.vcpus.len() {
            let (vm, slot) = {
                let v = &sim.hv.vcpus[vi];
                (v.vm.index(), v.slot)
            };
            if sim.workloads[vm].runnable(slot) {
                sim.hv.wake(VcpuId(vi));
            }
            sim.arm_timer(vi);
        }
        sim
    }
}
