//! Periodic event handling: credit ticks, PMU monitoring periods and
//! guest timers.
//!
//! The monitoring period is the paper's 30 ms sampling boundary: every
//! vCPU's PMU counters are snapshot into `Vcpu::last_sample` and the
//! policy's [`on_monitor`](crate::policy::SchedPolicy::on_monitor)
//! hook runs — for every policy, through this single path.

use aql_sim::time::SimTime;

use super::{Event, Simulation};
use crate::ids::VcpuId;
use crate::sched::{burn_credits, refill_credits};
use crate::vm::{Prio, VcpuState};
use crate::{ACCT_TICKS, MONITOR_PERIOD_NS, TICK_NS};

impl Simulation {
    /// Dispatches one engine event.
    pub(super) fn handle_event(&mut self, ev: Event) {
        self.sched_gen += 1;
        match ev {
            Event::Tick => self.handle_tick(),
            Event::Monitor => self.handle_monitor(),
            Event::GuestTimer { vcpu, gen } => self.handle_guest_timer(vcpu, gen),
        }
    }

    /// The 10 ms credit tick: burn credits, demote running BOOST
    /// vCPUs, and every [`ACCT_TICKS`] ticks run the accounting pass
    /// (credit refill + cap parking).
    fn handle_tick(&mut self) {
        self.tick_count += 1;
        for v in &mut self.hv.vcpus {
            burn_credits(v);
        }
        // Xen demotes a running BOOST vCPU at the tick.
        for pi in 0..self.hv.pcpus.len() {
            if let Some(rv) = self.hv.pcpus[pi].running {
                let v = &mut self.hv.vcpus[rv.index()];
                if v.prio == Prio::Boost {
                    v.prio = Prio::Under;
                }
            }
        }
        if self.tick_count.is_multiple_of(ACCT_TICKS) {
            refill_credits(&mut self.hv.vcpus, &self.hv.vms, &self.hv.pools);
            self.update_parking();
        }
        self.queue.push(self.now + TICK_NS, Event::Tick);
    }

    /// The 30 ms monitoring period: snapshot every vCPU's PMU counters
    /// into `Vcpu::last_sample`, run the policy's `on_monitor` hook,
    /// then rebalance run queues within each pool.
    fn handle_monitor(&mut self) {
        for v in &mut self.hv.vcpus {
            v.last_sample = v.pmu.snapshot_and_reset(MONITOR_PERIOD_NS);
        }
        self.policy.on_monitor(&mut self.hv, self.now);
        self.rebalance_pools();
        self.queue
            .push(self.now + MONITOR_PERIOD_NS, Event::Monitor);
    }

    /// A guest timer fired (unless stale): deliver it to the workload,
    /// account IO events, wake the vCPU if requested and re-arm.
    fn handle_guest_timer(&mut self, vcpu: usize, gen: u64) {
        if self.hv.vcpus[vcpu].timer_gen != gen {
            return; // Stale timer.
        }
        let (vm, slot) = {
            let v = &self.hv.vcpus[vcpu];
            (v.vm.index(), v.slot)
        };
        let fire = self.workloads[vm].on_timer(slot, self.now);
        if fire.io_events > 0 {
            self.hv.vcpus[vcpu].pmu.add_io_events(fire.io_events);
        }
        if fire.wake {
            self.hv.wake(VcpuId(vcpu));
        }
        self.arm_timer(vcpu);
    }

    /// Re-arms the guest timer for a vCPU from its workload's
    /// `next_timer`, invalidating any previously queued timer.
    pub(super) fn arm_timer(&mut self, vcpu: usize) {
        let (vm, slot) = {
            let v = &self.hv.vcpus[vcpu];
            (v.vm.index(), v.slot)
        };
        let v = &mut self.hv.vcpus[vcpu];
        v.timer_gen += 1;
        if let Some(t) = self.workloads[vm].next_timer(slot) {
            let gen = v.timer_gen;
            let when = if t <= self.now {
                SimTime(self.now.as_ns() + 1)
            } else {
                t
            };
            self.queue.push(when, Event::GuestTimer { vcpu, gen });
        }
    }

    /// Parks and unparks capped VMs' vCPUs, as Xen's `csched_acct`
    /// does: a capped VM whose credits are exhausted is taken off the
    /// run queues until the next refill brings it back above zero —
    /// this is what makes `cap` bind even on an idle machine.
    fn update_parking(&mut self) {
        for vi in 0..self.hv.vcpus.len() {
            let vm = self.hv.vcpus[vi].vm;
            if self.hv.vms[vm.index()].spec.cap_pct.is_none() {
                continue;
            }
            let (parked, credit, state) = {
                let v = &self.hv.vcpus[vi];
                (v.parked, v.credit, v.state)
            };
            if !parked && credit <= 0.0 {
                self.hv.vcpus[vi].parked = true;
                // Remove from any queue; preempt if running.
                let vid = VcpuId(vi);
                for p in 0..self.hv.pcpus.len() {
                    self.hv.pcpus[p].queue.remove(vid);
                    if self.hv.pcpus[p].running == Some(vid) {
                        self.hv.pcpus[p].force_resched = true;
                    }
                }
            } else if parked && credit > 0.0 {
                self.hv.vcpus[vi].parked = false;
                if state == VcpuState::Runnable {
                    let prio = self.hv.vcpus[vi].prio;
                    self.hv.enqueue(VcpuId(vi), prio, false, false);
                }
            }
        }
    }
}
