//! The paper's application-type taxonomy (§3.2).
//!
//! Five types cover the workloads the paper identifies in cloud
//! platforms. The type of a vCPU at an instant is the type of the
//! thread using it; AQL_Sched's vTRS re-estimates it every monitoring
//! period.

use core::fmt;

/// The five vCPU/application types of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VcpuType {
    /// IO-intensive, latency-critical (`IOInt`).
    IoInt,
    /// Concurrent threads synchronising over spin-locks (`ConSpin`).
    ConSpin,
    /// Last-level-cache friendly: WSS fits the LLC (`LLCF`).
    Llcf,
    /// Low-level-cache friendly: WSS fits L1/L2 (`LoLCF`).
    Lolcf,
    /// Trashing: WSS overflows the LLC (`LLCO`).
    Llco,
}

impl VcpuType {
    /// All types, in the paper's presentation order.
    pub const ALL: [VcpuType; 5] = [
        VcpuType::IoInt,
        VcpuType::ConSpin,
        VcpuType::Llcf,
        VcpuType::Lolcf,
        VcpuType::Llco,
    ];

    /// The paper's notation for the type.
    pub fn label(self) -> &'static str {
        match self {
            VcpuType::IoInt => "IOInt",
            VcpuType::ConSpin => "ConSpin",
            VcpuType::Llcf => "LLCF",
            VcpuType::Lolcf => "LoLCF",
            VcpuType::Llco => "LLCO",
        }
    }

    /// Parses the paper's notation back into a type (the inverse of
    /// [`VcpuType::label`]), case-insensitively. Returns `None` for
    /// unknown labels.
    pub fn from_label(label: &str) -> Option<Self> {
        VcpuType::ALL
            .into_iter()
            .find(|t| t.label().eq_ignore_ascii_case(label))
    }

    /// Whether the type is quantum-length agnostic per the calibration
    /// (§3.4.2): `LoLCF` and `LLCO` are; they serve as cluster fillers.
    pub fn quantum_agnostic(self) -> bool {
        matches!(self, VcpuType::Lolcf | VcpuType::Llco)
    }
}

impl fmt::Display for VcpuType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(VcpuType::IoInt.to_string(), "IOInt");
        assert_eq!(VcpuType::ConSpin.to_string(), "ConSpin");
        assert_eq!(VcpuType::Llcf.to_string(), "LLCF");
        assert_eq!(VcpuType::Lolcf.to_string(), "LoLCF");
        assert_eq!(VcpuType::Llco.to_string(), "LLCO");
    }

    #[test]
    fn from_label_inverts_label() {
        for t in VcpuType::ALL {
            assert_eq!(VcpuType::from_label(t.label()), Some(t));
            assert_eq!(VcpuType::from_label(&t.label().to_lowercase()), Some(t));
        }
        assert_eq!(VcpuType::from_label("gpu"), None);
    }

    #[test]
    fn agnostic_types_are_the_fillers() {
        let agnostic: Vec<_> = VcpuType::ALL
            .into_iter()
            .filter(|t| t.quantum_agnostic())
            .collect();
        assert_eq!(agnostic, vec![VcpuType::Lolcf, VcpuType::Llco]);
    }

    #[test]
    fn all_lists_five_types() {
        assert_eq!(VcpuType::ALL.len(), 5);
    }
}
