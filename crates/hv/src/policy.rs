//! The scheduling-policy hook.
//!
//! A [`SchedPolicy`] configures the hypervisor's CPU pools and vCPU
//! placement: once at boot ([`SchedPolicy::init`]) and on every 30 ms
//! monitoring period ([`SchedPolicy::on_monitor`]), right after PMU
//! snapshots are taken. The native Xen configuration, the paper's
//! AQL_Sched and the comparator systems (vTurbo, vSlicer, Microsliced)
//! are all implementations of this trait over the same substrate, so
//! measured differences are attributable to policy alone.

use std::any::Any;

use aql_sim::time::SimTime;

use crate::engine::{DispatchDecision, Hypervisor};
use crate::ids::PoolId;
use crate::pool::PoolSpec;
use crate::DEFAULT_QUANTUM_NS;

/// A scheduler-configuration policy.
pub trait SchedPolicy {
    /// Short policy name, used in reports.
    fn name(&self) -> &str;

    /// Called once after all VMs are admitted; typically builds pools.
    fn init(&mut self, hv: &mut Hypervisor);

    /// Called every monitoring period (30 ms) after per-vCPU PMU
    /// snapshots are refreshed in `Vcpu::last_sample`.
    fn on_monitor(&mut self, _hv: &mut Hypervisor, _now: SimTime) {}

    /// Called after every [`DispatchDecision`] has been applied — the
    /// single context-switch path every policy shares. Policies
    /// influence decisions only through configuration (pool quanta,
    /// overrides, kick periods); this hook exists to *observe* the
    /// unified dispatch stream (tracing, per-slice accounting) and is
    /// a no-op by default.
    fn on_dispatch(&mut self, _hv: &Hypervisor, _decision: &DispatchDecision, _now: SimTime) {}

    /// Downcast support so experiment harnesses can pull
    /// policy-internal traces (e.g. vTRS cursor histories).
    fn as_any(&self) -> &dyn Any;
}

/// A single machine-wide pool with a fixed quantum.
///
/// With the default 30 ms quantum this is the native Xen Credit
/// configuration the paper normalises everything against; with 1 ms it
/// is the Microsliced \[6\] configuration.
#[derive(Debug, Clone)]
pub struct FixedQuantumPolicy {
    quantum_ns: u64,
    label: String,
}

impl FixedQuantumPolicy {
    /// A fixed machine-wide quantum.
    pub fn new(quantum_ns: u64) -> Self {
        FixedQuantumPolicy {
            quantum_ns,
            label: format!("fixed-{}", aql_sim::time::fmt_dur(quantum_ns)),
        }
    }

    /// Native Xen: 30 ms.
    pub fn xen_default() -> Self {
        let mut p = FixedQuantumPolicy::new(DEFAULT_QUANTUM_NS);
        p.label = "xen-credit-30ms".to_string();
        p
    }

    /// The configured quantum (ns).
    pub fn quantum_ns(&self) -> u64 {
        self.quantum_ns
    }
}

impl SchedPolicy for FixedQuantumPolicy {
    fn name(&self) -> &str {
        &self.label
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        let all = (0..hv.machine.total_pcpus())
            .map(crate::ids::PcpuId)
            .collect();
        let assignment = vec![PoolId(0); hv.vcpus.len()];
        hv.apply_plan(vec![PoolSpec::new(all, self.quantum_ns)], assignment)
            .expect("single machine-wide pool is always valid");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A fixed-quantum credit scheduler restricted to a subset of the
/// sockets (dom0-style reservation): guest vCPUs run only on the
/// given sockets' pool; the remaining cores form a separate, empty
/// pool. With the default 30 ms quantum this is "native Xen minus the
/// dom0 socket", the baseline of the paper's 4-socket case (Fig. 3).
#[derive(Debug, Clone)]
pub struct RestrictedCredit {
    quantum_ns: u64,
    sockets: Vec<crate::ids::SocketId>,
}

impl RestrictedCredit {
    /// 30 ms quantum over the given sockets.
    pub fn new(sockets: Vec<crate::ids::SocketId>) -> Self {
        RestrictedCredit {
            quantum_ns: DEFAULT_QUANTUM_NS,
            sockets,
        }
    }

    /// An arbitrary fixed quantum over the given sockets.
    pub fn with_quantum(sockets: Vec<crate::ids::SocketId>, quantum_ns: u64) -> Self {
        RestrictedCredit {
            quantum_ns,
            sockets,
        }
    }

    /// The guest-usable sockets.
    pub fn sockets(&self) -> &[crate::ids::SocketId] {
        &self.sockets
    }
}

impl SchedPolicy for RestrictedCredit {
    fn name(&self) -> &str {
        "xen-credit-restricted"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        let mut guest: Vec<crate::ids::PcpuId> = Vec::new();
        let mut reserved: Vec<crate::ids::PcpuId> = Vec::new();
        for s in 0..hv.machine.sockets {
            let socket = crate::ids::SocketId(s);
            let pcpus = hv.machine.pcpus_of_socket(socket);
            if self.sockets.contains(&socket) {
                guest.extend(pcpus);
            } else {
                reserved.extend(pcpus);
            }
        }
        let mut pools = vec![PoolSpec::new(guest, self.quantum_ns)];
        if !reserved.is_empty() {
            pools.push(PoolSpec::new(reserved, self.quantum_ns));
        }
        let assignment = vec![PoolId(0); hv.vcpus.len()];
        hv.apply_plan(pools, assignment)
            .expect("socket split is always valid");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_names() {
        assert_eq!(FixedQuantumPolicy::xen_default().name(), "xen-credit-30ms");
        assert_eq!(
            FixedQuantumPolicy::new(aql_sim::time::MS).name(),
            "fixed-1ms"
        );
    }

    #[test]
    fn quantum_accessor() {
        assert_eq!(
            FixedQuantumPolicy::xen_default().quantum_ns(),
            DEFAULT_QUANTUM_NS
        );
    }
}
