//! Credit-scheduler mechanics: run queues and credit accounting.
//!
//! This module contains the pure parts of the Xen Credit scheduler the
//! engine drives (§2.1 of the paper):
//!
//! * [`RunQueue`] — a per-pCPU queue with three priority classes
//!   (`BOOST` > `UNDER` > `OVER`), FIFO within a class.
//! * [`burn_credits`] — debits a vCPU's credits for consumed CPU time
//!   (100 credits per 10 ms tick of full-speed execution).
//! * [`refill_credits`] — the 30 ms accounting pass distributing
//!   credits per pool in proportion to VM weights, honouring caps.

use std::collections::VecDeque;

use crate::ids::VcpuId;
use crate::pool::CpuPool;
use crate::vm::{Prio, Vcpu, VmMeta};
use crate::TICK_NS;

/// Credits granted per pCPU per accounting period (Xen: 300).
pub const CREDITS_PER_ACCT_PER_PCPU: f64 = 300.0;
/// Upper clamp on a vCPU's credit balance.
pub const CREDIT_MAX: f64 = 300.0;
/// Lower clamp on a vCPU's credit balance.
pub const CREDIT_MIN: f64 = -300.0;
/// Credits burned by one full tick of execution (Xen: 100).
pub const CREDITS_PER_TICK: f64 = 100.0;

/// A per-pCPU run queue with priority classes.
///
/// # Examples
///
/// ```
/// use aql_hv::sched::RunQueue;
/// use aql_hv::vm::Prio;
/// use aql_hv::VcpuId;
///
/// let mut q = RunQueue::new();
/// q.push_tail(Prio::Under, VcpuId(1));
/// q.push_tail(Prio::Over, VcpuId(2));
/// q.push_tail(Prio::Boost, VcpuId(3));
/// assert_eq!(q.pop_best(), Some((VcpuId(3), Prio::Boost)));
/// assert_eq!(q.pop_best(), Some((VcpuId(1), Prio::Under)));
/// assert_eq!(q.pop_best(), Some((VcpuId(2), Prio::Over)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    boost: VecDeque<VcpuId>,
    under: VecDeque<VcpuId>,
    over: VecDeque<VcpuId>,
}

impl RunQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    fn class(&mut self, prio: Prio) -> &mut VecDeque<VcpuId> {
        match prio {
            Prio::Boost => &mut self.boost,
            Prio::Under => &mut self.under,
            Prio::Over => &mut self.over,
        }
    }

    /// Appends at the tail of the priority class (normal requeue).
    pub fn push_tail(&mut self, prio: Prio, id: VcpuId) {
        self.class(prio).push_back(id);
    }

    /// Inserts at the head of the priority class (preempted vCPUs
    /// resume before their peers).
    pub fn push_head(&mut self, prio: Prio, id: VcpuId) {
        self.class(prio).push_front(id);
    }

    /// Removes and returns the best queued vCPU.
    pub fn pop_best(&mut self) -> Option<(VcpuId, Prio)> {
        if let Some(v) = self.boost.pop_front() {
            return Some((v, Prio::Boost));
        }
        if let Some(v) = self.under.pop_front() {
            return Some((v, Prio::Under));
        }
        self.over.pop_front().map(|v| (v, Prio::Over))
    }

    /// The class of the best queued vCPU, if any.
    pub fn best_class(&self) -> Option<Prio> {
        if !self.boost.is_empty() {
            Some(Prio::Boost)
        } else if !self.under.is_empty() {
            Some(Prio::Under)
        } else if !self.over.is_empty() {
            Some(Prio::Over)
        } else {
            None
        }
    }

    /// Steals a vCPU from the tail, preferring lower classes so the
    /// victim pCPU keeps its most urgent work (Xen steals `UNDER`
    /// before `OVER`; `BOOST` is never stolen).
    pub fn steal_tail(&mut self) -> Option<(VcpuId, Prio)> {
        if let Some(v) = self.under.pop_back() {
            return Some((v, Prio::Under));
        }
        self.over.pop_back().map(|v| (v, Prio::Over))
    }

    /// Like [`RunQueue::steal_tail`], but only takes vCPUs the
    /// predicate admits (used to skip hard-pinned vCPUs): the latest
    /// admissible `UNDER` entry, else the latest admissible `OVER`
    /// one. The plain variant stays the hot-path default; this scan
    /// only runs on machines that actually pin vCPUs.
    pub fn steal_tail_where(&mut self, admit: impl Fn(VcpuId) -> bool) -> Option<(VcpuId, Prio)> {
        if let Some(pos) = self.under.iter().rposition(|&v| admit(v)) {
            let v = self.under.remove(pos).expect("position is in range");
            return Some((v, Prio::Under));
        }
        let pos = self.over.iter().rposition(|&v| admit(v))?;
        let v = self.over.remove(pos).expect("position is in range");
        Some((v, Prio::Over))
    }

    /// Like [`RunQueue::stealable_len`], but counting only vCPUs the
    /// predicate admits.
    pub fn stealable_len_where(&self, admit: impl Fn(VcpuId) -> bool) -> usize {
        self.under
            .iter()
            .chain(self.over.iter())
            .filter(|&&v| admit(v))
            .count()
    }

    /// Removes a specific vCPU wherever it is queued; returns whether
    /// it was present.
    pub fn remove(&mut self, id: VcpuId) -> bool {
        for q in [&mut self.boost, &mut self.under, &mut self.over] {
            if let Some(pos) = q.iter().position(|&v| v == id) {
                q.remove(pos);
                return true;
            }
        }
        false
    }

    /// Total queued vCPUs.
    pub fn len(&self) -> usize {
        self.boost.len() + self.under.len() + self.over.len()
    }

    /// Queued vCPUs a peer is allowed to steal (`BOOST` is never
    /// stolen, so it does not count).
    pub fn stealable_len(&self) -> usize {
        self.under.len() + self.over.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued vCPUs, best class first, FIFO within class.
    pub fn iter(&self) -> impl Iterator<Item = VcpuId> + '_ {
        self.boost
            .iter()
            .chain(self.under.iter())
            .chain(self.over.iter())
            .copied()
    }
}

/// Debits `vcpu`'s credits for its unbilled CPU time and re-derives its
/// priority class (`OVER` when the balance goes negative). Boost is not
/// granted here — only wake-ups grant boost.
pub fn burn_credits(vcpu: &mut Vcpu) {
    if vcpu.unbilled_ns == 0 {
        return;
    }
    let burned = vcpu.unbilled_ns as f64 / TICK_NS as f64 * CREDITS_PER_TICK;
    vcpu.unbilled_ns = 0;
    vcpu.credit = (vcpu.credit - burned).max(CREDIT_MIN);
    if vcpu.credit < 0.0 {
        vcpu.prio = Prio::Over;
    } else if vcpu.prio == Prio::Over {
        vcpu.prio = Prio::Under;
    }
}

/// The 30 ms accounting pass: distributes
/// [`CREDITS_PER_ACCT_PER_PCPU`] × pool size among the pool's vCPUs in
/// proportion to VM weights, splits each VM's grant equally across its
/// vCPUs in the pool, honours `cap`, clamps balances, and re-derives
/// priorities. As in Xen's `csched_acct`, the pass resets every vCPU
/// to `UNDER`/`OVER`, clearing stale `BOOST` states of queued vCPUs.
pub fn refill_credits(vcpus: &mut [Vcpu], vms: &[VmMeta], pools: &[CpuPool]) {
    for pool in pools {
        // Weight mass per VM present in this pool (deterministic VM order).
        let mut vm_members: Vec<(usize, Vec<usize>)> = Vec::new();
        for vm in vms {
            let members: Vec<usize> = vm
                .vcpus
                .iter()
                .map(|v| v.index())
                .filter(|&vi| vcpus[vi].pool == pool.id)
                .collect();
            if !members.is_empty() {
                vm_members.push((vm.id.index(), members));
            }
        }
        let total_weight: f64 = vm_members
            .iter()
            .map(|(vmi, _)| vms[*vmi].spec.weight as f64)
            .sum();
        if total_weight <= 0.0 {
            continue;
        }
        let pot = CREDITS_PER_ACCT_PER_PCPU * pool.pcpus.len() as f64;
        for (vmi, members) in &vm_members {
            let vm = &vms[*vmi];
            let mut vm_gain = pot * vm.spec.weight as f64 / total_weight;
            if let Some(cap) = vm.spec.cap_pct {
                vm_gain = vm_gain.min(CREDITS_PER_ACCT_PER_PCPU * cap as f64 / 100.0);
            }
            let per_vcpu = vm_gain / members.len() as f64;
            for &vi in members {
                let v = &mut vcpus[vi];
                v.credit = (v.credit + per_vcpu).min(CREDIT_MAX);
                v.prio = if v.credit < 0.0 {
                    Prio::Over
                } else {
                    Prio::Under
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PcpuId, PoolId, VmId};
    use crate::vm::VmSpec;

    fn mk_vcpu(i: usize, vm: usize) -> Vcpu {
        Vcpu::new(VcpuId(i), VmId(vm), 0, PoolId(0), PcpuId(0))
    }

    fn mk_vm(id: usize, weight: u32, vcpus: &[usize]) -> VmMeta {
        VmMeta {
            id: VmId(id),
            spec: VmSpec {
                name: format!("vm{id}"),
                weight,
                cap_pct: None,
                vcpus: vcpus.len(),
                pin: None,
            },
            vcpus: vcpus.iter().map(|&v| VcpuId(v)).collect(),
        }
    }

    #[test]
    fn queue_priority_order() {
        let mut q = RunQueue::new();
        q.push_tail(Prio::Over, VcpuId(0));
        q.push_tail(Prio::Under, VcpuId(1));
        q.push_tail(Prio::Under, VcpuId(2));
        assert_eq!(q.best_class(), Some(Prio::Under));
        assert_eq!(q.pop_best().unwrap().0, VcpuId(1));
        assert_eq!(q.pop_best().unwrap().0, VcpuId(2));
        assert_eq!(q.pop_best().unwrap().0, VcpuId(0));
        assert_eq!(q.pop_best(), None);
    }

    #[test]
    fn queue_head_insert_resumes_first() {
        let mut q = RunQueue::new();
        q.push_tail(Prio::Under, VcpuId(0));
        q.push_head(Prio::Under, VcpuId(1));
        assert_eq!(q.pop_best().unwrap().0, VcpuId(1));
    }

    #[test]
    fn steal_prefers_under_tail() {
        let mut q = RunQueue::new();
        q.push_tail(Prio::Boost, VcpuId(0));
        q.push_tail(Prio::Under, VcpuId(1));
        q.push_tail(Prio::Under, VcpuId(2));
        q.push_tail(Prio::Over, VcpuId(3));
        assert_eq!(q.steal_tail(), Some((VcpuId(2), Prio::Under)));
        assert_eq!(q.steal_tail(), Some((VcpuId(1), Prio::Under)));
        // Boost is never stolen; Over is the fallback.
        assert_eq!(q.steal_tail(), Some((VcpuId(3), Prio::Over)));
        assert_eq!(q.steal_tail(), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_finds_any_class() {
        let mut q = RunQueue::new();
        q.push_tail(Prio::Boost, VcpuId(0));
        q.push_tail(Prio::Over, VcpuId(1));
        assert!(q.remove(VcpuId(1)));
        assert!(!q.remove(VcpuId(1)));
        assert!(q.remove(VcpuId(0)));
        assert!(q.is_empty());
    }

    #[test]
    fn iter_orders_best_first() {
        let mut q = RunQueue::new();
        q.push_tail(Prio::Over, VcpuId(5));
        q.push_tail(Prio::Boost, VcpuId(6));
        q.push_tail(Prio::Under, VcpuId(7));
        let order: Vec<usize> = q.iter().map(|v| v.index()).collect();
        assert_eq!(order, vec![6, 7, 5]);
    }

    #[test]
    fn burn_debits_proportionally() {
        let mut v = mk_vcpu(0, 0);
        v.credit = 100.0;
        v.unbilled_ns = TICK_NS; // one full tick
        burn_credits(&mut v);
        assert_eq!(v.credit, 0.0);
        assert_eq!(v.prio, Prio::Under);
        v.unbilled_ns = TICK_NS / 2;
        burn_credits(&mut v);
        assert_eq!(v.credit, -50.0);
        assert_eq!(v.prio, Prio::Over);
    }

    #[test]
    fn burn_clamps_at_minimum() {
        let mut v = mk_vcpu(0, 0);
        v.credit = CREDIT_MIN + 10.0;
        v.unbilled_ns = 10 * TICK_NS;
        burn_credits(&mut v);
        assert_eq!(v.credit, CREDIT_MIN);
    }

    #[test]
    fn refill_splits_by_weight() {
        let mut vcpus = vec![mk_vcpu(0, 0), mk_vcpu(1, 1)];
        let vms = vec![mk_vm(0, 256, &[0]), mk_vm(1, 512, &[1])];
        let pools = vec![CpuPool::new(PoolId(0), vec![PcpuId(0)], TICK_NS)];
        refill_credits(&mut vcpus, &vms, &pools);
        // 300 credits split 1:2.
        assert!((vcpus[0].credit - 100.0).abs() < 1e-9);
        assert!((vcpus[1].credit - 200.0).abs() < 1e-9);
    }

    #[test]
    fn refill_respects_cap() {
        let mut vcpus = vec![mk_vcpu(0, 0)];
        let mut vm = mk_vm(0, 256, &[0]);
        vm.spec.cap_pct = Some(10); // 10% of one pCPU = 30 credits
        let pools = vec![CpuPool::new(PoolId(0), vec![PcpuId(0)], TICK_NS)];
        refill_credits(&mut vcpus, &[vm], &pools);
        assert!((vcpus[0].credit - 30.0).abs() < 1e-9);
    }

    #[test]
    fn refill_clamps_at_maximum() {
        let mut vcpus = vec![mk_vcpu(0, 0)];
        vcpus[0].credit = 290.0;
        let vms = vec![mk_vm(0, 256, &[0])];
        let pools = vec![CpuPool::new(PoolId(0), vec![PcpuId(0)], TICK_NS)];
        refill_credits(&mut vcpus, &vms, &pools);
        assert_eq!(vcpus[0].credit, CREDIT_MAX);
    }

    #[test]
    fn refill_recovers_over_vcpus() {
        let mut vcpus = vec![mk_vcpu(0, 0)];
        vcpus[0].credit = -100.0;
        vcpus[0].prio = Prio::Over;
        let vms = vec![mk_vm(0, 256, &[0])];
        let pools = vec![CpuPool::new(PoolId(0), vec![PcpuId(0)], TICK_NS)];
        refill_credits(&mut vcpus, &vms, &pools);
        assert!(vcpus[0].credit > 0.0);
        assert_eq!(vcpus[0].prio, Prio::Under);
    }

    #[test]
    fn refill_is_per_pool() {
        // vcpu0 in pool0, vcpu1 in pool1; each pool has one pCPU, so
        // each vCPU gets the whole per-pool pot regardless of weights.
        let mut vcpus = vec![mk_vcpu(0, 0), mk_vcpu(1, 1)];
        vcpus[1].pool = PoolId(1);
        let vms = vec![mk_vm(0, 256, &[0]), mk_vm(1, 64, &[1])];
        let pools = vec![
            CpuPool::new(PoolId(0), vec![PcpuId(0)], TICK_NS),
            CpuPool::new(PoolId(1), vec![PcpuId(1)], TICK_NS),
        ];
        refill_credits(&mut vcpus, &vms, &pools);
        assert!((vcpus[0].credit - 300.0).abs() < 1e-9);
        assert!((vcpus[1].credit - 300.0).abs() < 1e-9);
    }

    #[test]
    fn refill_splits_within_vm() {
        let mut vcpus = vec![mk_vcpu(0, 0), mk_vcpu(1, 0)];
        let vms = vec![mk_vm(0, 256, &[0, 1])];
        let pools = vec![CpuPool::new(PoolId(0), vec![PcpuId(0)], TICK_NS)];
        refill_credits(&mut vcpus, &vms, &pools);
        assert!((vcpus[0].credit - 150.0).abs() < 1e-9);
        assert!((vcpus[1].credit - 150.0).abs() < 1e-9);
    }
}

/// Property tests: [`RunQueue`] against a straightforward reference
/// model (three explicit FIFO lists) under random operation sequences.
#[cfg(test)]
mod runqueue_properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// The reference model: one FIFO per class, mirroring the
    /// documented semantics directly.
    #[derive(Debug, Default)]
    struct Model {
        classes: [VecDeque<VcpuId>; 3],
    }

    const PRIOS: [Prio; 3] = [Prio::Boost, Prio::Under, Prio::Over];

    fn class_idx(p: Prio) -> usize {
        match p {
            Prio::Boost => 0,
            Prio::Under => 1,
            Prio::Over => 2,
        }
    }

    impl Model {
        fn push_tail(&mut self, p: Prio, id: VcpuId) {
            self.classes[class_idx(p)].push_back(id);
        }

        fn push_head(&mut self, p: Prio, id: VcpuId) {
            self.classes[class_idx(p)].push_front(id);
        }

        fn pop_best(&mut self) -> Option<(VcpuId, Prio)> {
            for (i, q) in self.classes.iter_mut().enumerate() {
                if let Some(v) = q.pop_front() {
                    return Some((v, PRIOS[i]));
                }
            }
            None
        }

        fn best_class(&self) -> Option<Prio> {
            self.classes
                .iter()
                .position(|q| !q.is_empty())
                .map(|i| PRIOS[i])
        }

        /// Steal prefers `Under` tails, falls back to `Over`; `Boost`
        /// is never stolen.
        fn steal_tail(&mut self) -> Option<(VcpuId, Prio)> {
            if let Some(v) = self.classes[1].pop_back() {
                return Some((v, Prio::Under));
            }
            self.classes[2].pop_back().map(|v| (v, Prio::Over))
        }

        /// Removes the first occurrence, searching best class first.
        fn remove(&mut self, id: VcpuId) -> bool {
            for q in &mut self.classes {
                if let Some(pos) = q.iter().position(|&v| v == id) {
                    q.remove(pos);
                    return true;
                }
            }
            false
        }

        fn len(&self) -> usize {
            self.classes.iter().map(|q| q.len()).sum()
        }

        fn iter(&self) -> impl Iterator<Item = VcpuId> + '_ {
            self.classes.iter().flatten().copied()
        }
    }

    /// Encoded operation: (opcode, priority selector, vCPU selector).
    /// Small vCPU domains force duplicate-id and remove-hit coverage.
    fn arb_ops() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
        prop::collection::vec((0usize..5, 0usize..3, 0usize..12), 1..120)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Every operation agrees with the reference model, and
        /// `len`/`is_empty`/`best_class` stay consistent throughout.
        #[test]
        fn matches_reference_model(ops in arb_ops()) {
            let mut q = RunQueue::new();
            let mut m = Model::default();
            for (op, prio_sel, vcpu_sel) in ops {
                let prio = PRIOS[prio_sel];
                let id = VcpuId(vcpu_sel);
                match op {
                    0 => {
                        q.push_tail(prio, id);
                        m.push_tail(prio, id);
                    }
                    1 => {
                        q.push_head(prio, id);
                        m.push_head(prio, id);
                    }
                    2 => prop_assert_eq!(q.pop_best(), m.pop_best()),
                    3 => prop_assert_eq!(q.steal_tail(), m.steal_tail()),
                    _ => prop_assert_eq!(q.remove(id), m.remove(id)),
                }
                prop_assert_eq!(q.len(), m.len());
                prop_assert_eq!(q.is_empty(), m.len() == 0);
                prop_assert_eq!(
                    q.stealable_len(),
                    m.classes[1].len() + m.classes[2].len()
                );
                prop_assert_eq!(q.best_class(), m.best_class());
                let got: Vec<VcpuId> = q.iter().collect();
                let want: Vec<VcpuId> = m.iter().collect();
                prop_assert_eq!(got, want, "iteration order diverged");
            }
        }

        /// Draining any population by `pop_best` yields classes in
        /// strict priority order and FIFO order within a class.
        #[test]
        fn drain_orders_classes_then_fifo(ops in arb_ops()) {
            let mut q = RunQueue::new();
            let mut per_class: [Vec<VcpuId>; 3] = Default::default();
            for (op, prio_sel, vcpu_sel) in ops {
                // Only pushes: build an arbitrary population.
                if op < 4 {
                    let prio = PRIOS[prio_sel];
                    let id = VcpuId(vcpu_sel);
                    q.push_tail(prio, id);
                    per_class[prio_sel].push(id);
                }
            }
            let mut drained: Vec<(VcpuId, Prio)> = Vec::new();
            while let Some(e) = q.pop_best() {
                drained.push(e);
            }
            let want: Vec<(VcpuId, Prio)> = PRIOS
                .iter()
                .enumerate()
                .flat_map(|(i, &p)| per_class[i].iter().map(move |&v| (v, p)))
                .collect();
            prop_assert_eq!(drained, want);
            prop_assert!(q.is_empty());
            prop_assert_eq!(q.len(), 0);
        }

        /// `steal_tail` never yields `Boost`, and stealing until dry
        /// leaves exactly the boosted entries behind.
        #[test]
        fn steal_never_takes_boost(ops in arb_ops()) {
            let mut q = RunQueue::new();
            let mut boosted = 0usize;
            for (op, prio_sel, vcpu_sel) in ops {
                if op < 4 {
                    q.push_tail(PRIOS[prio_sel], VcpuId(vcpu_sel));
                    if PRIOS[prio_sel] == Prio::Boost {
                        boosted += 1;
                    }
                }
            }
            while let Some((_, p)) = q.steal_tail() {
                prop_assert_ne!(p, Prio::Boost, "steal must never take BOOST");
            }
            prop_assert_eq!(q.len(), boosted, "only boosted entries survive stealing");
        }
    }
}
