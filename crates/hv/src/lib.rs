//! A simulated virtualized multi-core platform.
//!
//! This crate is the substrate the AQL_Sched reproduction runs on: a
//! deterministic discrete-event model of a multi-socket machine managed
//! by a Xen-style hypervisor. It provides:
//!
//! * [`topology`] — machine shapes ([`MachineSpec`]), including the
//!   paper's two hosts (Table 2 and §4.2).
//! * [`vm`] — VMs and vCPUs with Credit-scheduler state (credits,
//!   `UNDER`/`OVER`/`BOOST` priorities).
//! * [`pool`] — CPU pools: disjoint pCPU sets, each with its own
//!   quantum length. Pools are the mechanism AQL_Sched's clustering
//!   configures (§3.5).
//! * [`sched`] — the Credit scheduler: per-pCPU run queues, 10 ms tick
//!   accounting, 30 ms credit refill, BOOST on IO wake, work stealing
//!   within a pool.
//! * [`workload`] — the [`GuestWorkload`] trait workloads implement,
//!   plus [`ExecContext`] giving them metered access to the cache and
//!   PMU models.
//! * [`engine`] — the simulation loop ([`Simulation`]) advancing
//!   running vCPUs in bounded sub-steps and dispatching timer events;
//!   [`TimeMode`] selects between the dense oracle loop and the
//!   byte-identical event-horizon fast path.
//! * [`policy`] — the [`SchedPolicy`] hook AQL_Sched and the baseline
//!   schedulers implement.
//! * [`spinlock`] — a guest-visible ticket spin-lock whose
//!   holder/waiter preemption pathologies the paper's §3.2 describes.
//! * [`report`] — per-run results: CPU accounting, fairness indices and
//!   workload metrics.

#![warn(missing_docs)]

pub mod apptype;
pub mod engine;
pub mod ids;
pub mod policy;
pub mod pool;
pub mod report;
pub mod sched;
pub mod spinlock;
pub mod topology;
pub mod vm;
pub mod workload;

pub use apptype::VcpuType;
pub use engine::{EngineError, RunBudget, Simulation, SimulationBuilder, TimeMode};
pub use ids::{PcpuId, PoolId, SocketId, VcpuId, VmId};
pub use policy::{FixedQuantumPolicy, SchedPolicy};
pub use pool::{CpuPool, PoolSpec};
pub use report::{RunReport, VmReport};
pub use topology::MachineSpec;
pub use vm::{Prio, Vcpu, VcpuState, VmSpec};
pub use workload::{
    ExecContext, GuestWorkload, Horizon, LatencySummary, RunOutcome, StopReason, TimerFire,
    WorkloadMetrics,
};

/// The Xen Credit scheduler's accounting tick (10 ms).
pub const TICK_NS: u64 = 10 * aql_sim::time::MS;
/// Credit refill period: one accounting period is three ticks (30 ms).
pub const ACCT_TICKS: u64 = 3;
/// The paper's monitoring period for vTRS sampling (30 ms).
pub const MONITOR_PERIOD_NS: u64 = 30 * aql_sim::time::MS;
/// Xen's default quantum length (30 ms).
pub const DEFAULT_QUANTUM_NS: u64 = 30 * aql_sim::time::MS;
