//! End-of-run reports.

use crate::ids::VmId;
use crate::workload::WorkloadMetrics;

/// Results for one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmReport {
    /// The VM's identifier.
    pub vm: VmId,
    /// The VM's name (from its spec).
    pub name: String,
    /// CPU time per vCPU slot (ns).
    pub vcpu_cpu_ns: Vec<u64>,
    /// Pool migrations per vCPU slot.
    pub vcpu_pool_migrations: Vec<u64>,
    /// Application metrics from the VM's workload.
    pub metrics: WorkloadMetrics,
}

impl VmReport {
    /// Total CPU time across the VM's vCPUs (ns).
    pub fn cpu_ns(&self) -> u64 {
        self.vcpu_cpu_ns.iter().sum()
    }
}

/// Results of a whole simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Simulated duration (ns).
    pub sim_ns: u64,
    /// Name of the scheduling policy that ran.
    pub policy: String,
    /// Per-VM results, id-ordered.
    pub vms: Vec<VmReport>,
    /// Per-pCPU busy time (ns).
    pub pcpu_busy_ns: Vec<u64>,
}

impl RunReport {
    /// Looks a VM up by name (first match).
    pub fn vm_by_name(&self, name: &str) -> Option<&VmReport> {
        self.vms.iter().find(|v| v.name == name)
    }

    /// Total CPU time consumed by all vCPUs (ns).
    pub fn total_cpu_ns(&self) -> u64 {
        self.vms.iter().map(|v| v.cpu_ns()).sum()
    }

    /// Machine utilisation in `[0, 1]`: busy time over capacity.
    pub fn utilisation(&self) -> f64 {
        self.utilization(self.pcpu_busy_ns.len())
    }

    /// Utilisation against an explicit pCPU count: busy time over
    /// `machine_pcpus × sim_ns`. Use this when the capacity basis is
    /// not the report's own pCPU list — e.g. normalising across
    /// machines of different sizes, or scoring a pool subset.
    pub fn utilization(&self, machine_pcpus: usize) -> f64 {
        if self.sim_ns == 0 || machine_pcpus == 0 {
            return 0.0;
        }
        let cap = self.sim_ns as f64 * machine_pcpus as f64;
        self.pcpu_busy_ns.iter().sum::<u64>() as f64 / cap
    }

    /// Jain's fairness index over per-vCPU CPU time:
    /// `(Σx)² / (n · Σx²)`, 1.0 when perfectly equal.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .vms
            .iter()
            .flat_map(|v| v.vcpu_cpu_ns.iter().map(|&x| x as f64))
            .collect();
        jain_index(&xs)
    }

    /// CPU share of one VM relative to all consumed CPU, in `[0, 1]`.
    pub fn vm_cpu_share(&self, name: &str) -> Option<f64> {
        let total = self.total_cpu_ns() as f64;
        if total <= 0.0 {
            return None;
        }
        self.vm_by_name(name).map(|v| v.cpu_ns() as f64 / total)
    }
}

/// Jain's fairness index of a sample; 1.0 = perfectly fair, `1/n` =
/// maximally unfair. Empty or all-zero input yields 1.0 (vacuously
/// fair).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{LatencySummary, WorkloadMetrics};

    fn report() -> RunReport {
        RunReport {
            sim_ns: 1_000,
            policy: "test".to_string(),
            vms: vec![
                VmReport {
                    vm: VmId(0),
                    name: "a".to_string(),
                    vcpu_cpu_ns: vec![400, 400],
                    vcpu_pool_migrations: vec![0, 0],
                    metrics: WorkloadMetrics::Mem { instructions: 1e6 },
                },
                VmReport {
                    vm: VmId(1),
                    name: "b".to_string(),
                    vcpu_cpu_ns: vec![800],
                    vcpu_pool_migrations: vec![2],
                    metrics: WorkloadMetrics::Io {
                        latency: LatencySummary {
                            count: 5,
                            mean_ns: 100.0,
                            ..Default::default()
                        },
                        completed: 5,
                        offered: 5,
                    },
                },
            ],
            pcpu_busy_ns: vec![800, 800],
        }
    }

    #[test]
    fn lookup_and_totals() {
        let r = report();
        assert_eq!(r.vm_by_name("a").unwrap().cpu_ns(), 800);
        assert!(r.vm_by_name("zzz").is_none());
        assert_eq!(r.total_cpu_ns(), 1600);
    }

    #[test]
    fn utilisation_is_busy_over_capacity() {
        let r = report();
        assert!((r.utilisation() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn utilization_takes_an_explicit_capacity() {
        let r = report();
        // Same basis as the report's own pCPU list: identical value.
        assert_eq!(r.utilization(2), r.utilisation());
        // Scored against a 4-pCPU machine, the same busy time is half
        // the utilisation.
        assert!((r.utilization(4) - 0.4).abs() < 1e-12);
        assert_eq!(r.utilization(0), 0.0);
    }

    #[test]
    fn cpu_share_sums_to_one() {
        let r = report();
        let a = r.vm_cpu_share("a").unwrap();
        let b = r.vm_cpu_share("b").unwrap();
        assert!((a + b - 1.0).abs() < 1e-12);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One hog out of four: index = 1/4.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let r = report();
        // 400, 400, 800 → (1600²)/(3·960000) ≈ 0.888.
        assert!((r.jain_fairness() - 1600.0 * 1600.0 / (3.0 * 960_000.0)).abs() < 1e-9);
    }
}
