//! Comparator scheduling policies (§4.2, Fig. 8; related work §5).
//!
//! The paper compares AQL_Sched against three published systems plus
//! native Xen. All four run on the same simulated hypervisor, so the
//! measured differences are attributable to policy alone:
//!
//! * [`XenCredit`] — the native Credit scheduler: one machine-wide
//!   pool, fixed 30 ms quantum, BOOST on IO wake.
//! * [`Microsliced`] — Ahn et al. \[6\]: one machine-wide pool with a
//!   *small* quantum for every vCPU.
//! * [`VSlicer`] — Xu et al. \[15\]: latency-sensitive VMs (manually
//!   tagged) are scheduled with micro slices (differentiated-frequency
//!   CPU slicing) on the shared pool; everyone else keeps 30 ms.
//! * [`VTurbo`] — Xu et al. \[14\]: a dedicated *turbo* core pool with a
//!   small quantum serves the tagged IO VMs exclusively; the remaining
//!   cores keep the default quantum.
//!
//! As the paper notes, none of these implements online type
//! recognition — the IO VM lists are static configuration ("we
//! manually configured each solution in order to obtain its best
//! performance").

#![warn(missing_docs)]

use std::any::Any;

use aql_hv::engine::Hypervisor;
use aql_hv::ids::{PcpuId, PoolId, SocketId, VcpuId};
use aql_hv::policy::{FixedQuantumPolicy, SchedPolicy};
use aql_hv::pool::PoolSpec;
use aql_sim::time::MS;

/// Native Xen Credit: fixed 30 ms quantum, machine-wide pool.
pub type XenCredit = FixedQuantumPolicy;

/// Convenience constructor for the native Xen baseline.
pub fn xen_credit() -> XenCredit {
    FixedQuantumPolicy::xen_default()
}

/// Microsliced \[6\]: every vCPU runs with a small quantum.
#[derive(Debug, Clone)]
pub struct Microsliced {
    quantum_ns: u64,
    inner: FixedQuantumPolicy,
}

impl Microsliced {
    /// The Fig. 8 configuration: 1 ms machine-wide.
    pub fn new(quantum_ns: u64) -> Self {
        Microsliced {
            quantum_ns,
            inner: FixedQuantumPolicy::new(quantum_ns),
        }
    }

    /// The quantum in use.
    pub fn quantum_ns(&self) -> u64 {
        self.quantum_ns
    }
}

impl Default for Microsliced {
    fn default() -> Self {
        Microsliced::new(MS)
    }
}

impl SchedPolicy for Microsliced {
    fn name(&self) -> &str {
        "microsliced"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        self.inner.init(hv);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// vSlicer \[15\]: tagged latency-sensitive VMs get micro slices on the
/// shared pool at a higher scheduling frequency (differentiated-
/// frequency CPU slicing); other VMs keep the default quantum but are
/// periodically preempted by due LSVMs and resume afterwards.
#[derive(Debug, Clone)]
pub struct VSlicer {
    /// Names of the latency-sensitive VMs.
    pub lsvm_names: Vec<String>,
    /// Micro-slice length for LSVM vCPUs (paper comparison: 1 ms).
    pub micro_quantum_ns: u64,
    /// Scheduling period of LSVM vCPUs: queued longer than this, they
    /// preempt.
    pub micro_period_ns: u64,
    /// Quantum for everyone else (Xen default 30 ms).
    pub default_quantum_ns: u64,
}

impl VSlicer {
    /// Tags the given VMs as latency-sensitive with 1 ms micro slices
    /// every 3 ms.
    pub fn new(lsvm_names: &[&str]) -> Self {
        VSlicer {
            lsvm_names: lsvm_names.iter().map(|s| s.to_string()).collect(),
            micro_quantum_ns: MS,
            micro_period_ns: 3 * MS,
            default_quantum_ns: 30 * MS,
        }
    }
}

impl SchedPolicy for VSlicer {
    fn name(&self) -> &str {
        "vslicer"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        let all = (0..hv.machine.total_pcpus()).map(PcpuId).collect();
        let assignment = vec![PoolId(0); hv.vcpus.len()];
        hv.apply_plan(
            vec![PoolSpec::new(all, self.default_quantum_ns)],
            assignment,
        )
        .expect("machine-wide pool is always valid");
        for name in &self.lsvm_names {
            let vcpus: Vec<VcpuId> = hv
                .vm_vcpus_by_name(name)
                .unwrap_or_else(|| panic!("vSlicer: unknown VM '{name}'"))
                .to_vec();
            for v in vcpus {
                hv.set_vcpu_quantum_override(v, Some(self.micro_quantum_ns));
                hv.set_vcpu_kick_period(v, Some(self.micro_period_ns));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// vTurbo \[14\]: dedicated turbo cores with a small quantum serve the
/// tagged IO VMs; regular cores keep the default quantum.
#[derive(Debug, Clone)]
pub struct VTurbo {
    /// Names of the IO-intensive VMs pinned to the turbo pool.
    pub io_vm_names: Vec<String>,
    /// Turbo cores reserved per socket.
    pub turbo_cores_per_socket: usize,
    /// Turbo-pool quantum (paper comparison: 1 ms).
    pub turbo_quantum_ns: u64,
    /// Regular-pool quantum (Xen default 30 ms).
    pub default_quantum_ns: u64,
}

impl VTurbo {
    /// One turbo core per socket at 1 ms for the given VMs.
    pub fn new(io_vm_names: &[&str]) -> Self {
        VTurbo {
            io_vm_names: io_vm_names.iter().map(|s| s.to_string()).collect(),
            turbo_cores_per_socket: 1,
            turbo_quantum_ns: MS,
            default_quantum_ns: 30 * MS,
        }
    }
}

impl SchedPolicy for VTurbo {
    fn name(&self) -> &str {
        "vturbo"
    }

    fn init(&mut self, hv: &mut Hypervisor) {
        assert!(
            self.turbo_cores_per_socket < hv.machine.cores_per_socket,
            "turbo cores must leave regular cores on each socket"
        );
        let mut turbo: Vec<PcpuId> = Vec::new();
        let mut regular: Vec<PcpuId> = Vec::new();
        for s in 0..hv.machine.sockets {
            let pcpus = hv.machine.pcpus_of_socket(SocketId(s));
            let (t, r) = pcpus.split_at(self.turbo_cores_per_socket);
            turbo.extend_from_slice(t);
            regular.extend_from_slice(r);
        }
        let io_vcpus: Vec<VcpuId> = self
            .io_vm_names
            .iter()
            .flat_map(|name| {
                hv.vm_vcpus_by_name(name)
                    .unwrap_or_else(|| panic!("vTurbo: unknown VM '{name}'"))
                    .to_vec()
            })
            .collect();
        let mut assignment = vec![PoolId(1); hv.vcpus.len()];
        for v in &io_vcpus {
            assignment[v.index()] = PoolId(0);
        }
        hv.apply_plan(
            vec![
                PoolSpec::new(turbo, self.turbo_quantum_ns),
                PoolSpec::new(regular, self.default_quantum_ns),
            ],
            assignment,
        )
        .expect("turbo/regular split is always valid");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_hv::workload::WorkloadMetrics;
    use aql_hv::{MachineSpec, SimulationBuilder, VmSpec};
    use aql_mem::CacheSpec;
    use aql_sim::time::SEC;
    use aql_workloads::{IoServer, IoServerCfg, MemWalk};

    fn machine() -> MachineSpec {
        MachineSpec::custom("2core", 1, 2, CacheSpec::i7_3770())
    }

    fn mean_latency_ms(report: &aql_hv::RunReport, name: &str) -> f64 {
        let WorkloadMetrics::Io { latency, .. } = &report.vm_by_name(name).unwrap().metrics else {
            panic!("expected Io metrics");
        };
        latency.mean_ns / 1e6
    }

    fn webfarm(policy: Box<dyn aql_hv::SchedPolicy>) -> aql_hv::RunReport {
        let spec = CacheSpec::i7_3770();
        let mut sim = SimulationBuilder::new(machine())
            .policy(policy)
            .vm(
                VmSpec::single("web"),
                Box::new(IoServer::new("web", IoServerCfg::heterogeneous(100.0), 7)),
            )
            .vm(VmSpec::single("b1"), Box::new(MemWalk::lolcf("b1", &spec)))
            .vm(VmSpec::single("b2"), Box::new(MemWalk::lolcf("b2", &spec)))
            .vm(VmSpec::single("b3"), Box::new(MemWalk::lolcf("b3", &spec)))
            .build();
        sim.run_for(SEC);
        sim.reset_measurements();
        sim.run_for(4 * SEC);
        sim.report()
    }

    #[test]
    fn microsliced_beats_xen_for_heterogeneous_io() {
        let xen = webfarm(Box::new(xen_credit()));
        let micro = webfarm(Box::new(Microsliced::default()));
        let lx = mean_latency_ms(&xen, "web");
        let lm = mean_latency_ms(&micro, "web");
        assert!(
            lm < lx / 2.0,
            "microslicing should slash heterogeneous IO latency: xen={lx}ms micro={lm}ms"
        );
    }

    #[test]
    fn vslicer_cuts_latency_without_touching_others() {
        let xen = webfarm(Box::new(xen_credit()));
        let vs = webfarm(Box::new(VSlicer::new(&["web"])));
        let lx = mean_latency_ms(&xen, "web");
        let lv = mean_latency_ms(&vs, "web");
        assert!(
            lv < lx / 2.0,
            "vSlicer should slash tagged-VM latency: xen={lx}ms vslicer={lv}ms"
        );
        // The untagged batch VMs keep their CPU share.
        let share_xen = xen.vm_cpu_share("b1").unwrap();
        let share_vs = vs.vm_cpu_share("b1").unwrap();
        assert!(
            (share_vs - share_xen).abs() < 0.1,
            "batch share moved too much: {share_xen} vs {share_vs}"
        );
    }

    #[test]
    fn vturbo_isolates_io_on_turbo_cores() {
        let vt = webfarm(Box::new(VTurbo::new(&["web"])));
        let lv = mean_latency_ms(&vt, "web");
        // With a dedicated turbo core the IO VM no longer queues behind
        // batch VMs at all: latency is near service time.
        assert!(lv < 1.0, "vTurbo should give near-solo latency, got {lv}ms");
    }

    #[test]
    fn policy_names() {
        assert_eq!(Microsliced::default().name(), "microsliced");
        assert_eq!(VSlicer::new(&[]).name(), "vslicer");
        assert_eq!(VTurbo::new(&[]).name(), "vturbo");
        assert_eq!(xen_credit().name(), "xen-credit-30ms");
    }

    #[test]
    #[should_panic(expected = "unknown VM")]
    fn vslicer_rejects_unknown_vm() {
        let spec = CacheSpec::i7_3770();
        let _ = SimulationBuilder::new(machine())
            .policy(Box::new(VSlicer::new(&["nope"])))
            .vm(VmSpec::single("a"), Box::new(MemWalk::lolcf("a", &spec)))
            .build();
    }

    #[test]
    fn vturbo_pool_layout() {
        let spec = CacheSpec::i7_3770();
        let sim = SimulationBuilder::new(MachineSpec::custom("4core", 1, 4, spec))
            .policy(Box::new(VTurbo::new(&["io"])))
            .vm(
                VmSpec::single("io"),
                Box::new(IoServer::new("io", IoServerCfg::exclusive(100.0), 1)),
            )
            .vm(VmSpec::single("b"), Box::new(MemWalk::lolcf("b", &spec)))
            .build();
        assert_eq!(sim.hv.pools.len(), 2);
        assert_eq!(sim.hv.pools[0].quantum_ns, MS);
        assert_eq!(sim.hv.pools[0].pcpus.len(), 1);
        assert_eq!(sim.hv.pools[1].quantum_ns, 30 * MS);
        assert_eq!(sim.hv.pools[1].pcpus.len(), 3);
        // IO vCPU in the turbo pool, batch vCPU in the regular pool.
        assert_eq!(sim.hv.vcpus[0].pool, PoolId(0));
        assert_eq!(sim.hv.vcpus[1].pool, PoolId(1));
    }
}
