//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the API this workspace's property tests use
//! (see `crates/compat/README.md`): the [`Strategy`] trait with
//! implementations for numeric ranges, tuples, [`Just`], [`any`] and
//! `prop::collection::vec`; the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros; and
//! [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * Sampling is deterministic: the RNG is seeded from the test's
//!   name, so failures reproduce without a persistence file.
//! * There is no shrinking. A failing case panics immediately with the
//!   sampled inputs printed by the `proptest!` harness.

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The random source handed to strategies; wraps the shimmed
/// [`StdRng`].
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (the test name).
    /// The seed is FNV-1a over the label bytes — a fixed algorithm,
    /// so the sampled stream is stable across toolchains (std's
    /// `DefaultHasher` gives no such guarantee) and failures
    /// reproduce anywhere.
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h | 1),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        self.inner.random_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: Strategy + ?Sized> Strategy for Box<T> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T: Strategy + ?Sized> Strategy for &T {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $sample:expr),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty strategy range");
                #[allow(clippy::redundant_closure_call)]
                ($sample)(rng, self.start, self.end)
            }
        }
    )*};
}

impl_range_strategy! {
    u64 => |rng: &mut TestRng, lo: u64, hi: u64| {
        lo + (((rng.next_u64() as u128) * ((hi - lo) as u128)) >> 64) as u64
    },
    u32 => |rng: &mut TestRng, lo: u32, hi: u32| {
        lo + (((rng.next_u64() as u128) * ((hi - lo) as u128)) >> 64) as u32
    },
    usize => |rng: &mut TestRng, lo: usize, hi: usize| lo + rng.index(hi - lo),
    i64 => |rng: &mut TestRng, lo: i64, hi: i64| {
        lo + (((rng.next_u64() as u128) * ((hi - lo) as u128)) >> 64) as i64
    },
    f64 => |rng: &mut TestRng, lo: f64, hi: f64| lo + rng.unit() * (hi - lo),
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T` (only types with [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A uniform choice among boxed strategies ([`prop_oneof!`]).
pub struct Union<T: Debug> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Builds the union; at least one arm is required.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::fmt::Debug;

    /// A strategy for vectors with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.sizes.end > self.sizes.start, "empty size range");
            let n = self.sizes.start + rng.index(self.sizes.end - self.sizes.start);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values, length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }
}

/// Namespace mirror of real proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Harness configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The commonly used names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    }};
}

/// Asserts a condition inside a property (panics on failure, printing
/// the sampled inputs via the harness).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled executions. On failure
/// the panic message carries the case number and sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness $cfg; $($rest)*);
    };
    (@harness $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_label(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!("case {}/{}:", $(concat!(" ", stringify!($arg), "={:?}"),)*),
                        case + 1, cfg.cases, $(&$arg),*
                    );
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = result {
                        eprintln!("proptest {} failed at {}", stringify!($name), inputs);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@harness $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_label("ranges");
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = crate::TestRng::from_label("union");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.sample(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_strategy_honours_sizes() {
        let s = prop::collection::vec(0u64..10, 2..5);
        let mut rng = crate::TestRng::from_label("vec");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_and_samples(x in 1u64..100, flip in any::<bool>()) {
            prop_assert!((1..100).contains(&x));
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn harness_default_config(v in prop::collection::vec(0usize..4, 1..8)) {
            prop_assert!(!v.is_empty());
        }
    }
}
